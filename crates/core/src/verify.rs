//! Streaming vcode verifier and differential machine-code checker.
//!
//! The paper concedes that because VCODE transliterates instructions in
//! place with no intermediate representation, "error checking" is hard to
//! bolt on (§6). This module closes that gap without abandoning the
//! zero-pass emission discipline:
//!
//! - A **streaming verifier** ([`VerifierState`]) rides the
//!   [`Assembler`](crate::Assembler) emit path and checks each vcode
//!   instruction the moment it is specified: def-before-use register
//!   tracking per bank, register-class/`Ty` misuse, leaked `getreg` /
//!   double `putreg`, labels bound twice, stack-slot out-of-bounds
//!   `ld_slot`/`st_slot`, callee-saved clobbers, dangling fixups at
//!   `end`, and unbalanced `lambda`/`end` or `call_begin`/`call_end`.
//! - A **differential machine-code checker** ([`cross_check`]) re-decodes
//!   the emitted bytes through an [`InsnDecoder`] (the sim disassemblers
//!   for mips/sparc/alpha, a length-decoder for x86-64) and cross-checks
//!   instruction boundaries, branch targets, and delay-slot hazards
//!   against the recorded vcode stream.
//!
//! Diagnostics are typed ([`Diag`]), *collected not panicked*, and
//! queryable through [`Finished::verify`](crate::Finished) (or
//! [`Assembler::end_report`](crate::Assembler::end_report) when `end`
//! itself fails). The whole pass is skipped when disabled: emission sites
//! pay a single `Option` discriminant test and the emitted bytes are
//! identical either way (guarded by the differential test and the
//! codegen-cost bench gate).
//!
//! Enable globally with [`set_enabled`] (checked once per `lambda`), or
//! per session with
//! [`Assembler::enable_verifier`](crate::Assembler::enable_verifier).

use crate::label::{Fixup, FixupTarget, Label, LabelMap};
use crate::reg::{Bank, Reg, RegFile, RegKind};
use crate::target::{Finished, StackSlot};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

/// How bad a [`Diag`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational (e.g. a register still leased at `end`, which `end`
    /// reclaims anyway). Does not affect [`VerifyReport::is_clean`].
    Note,
    /// Almost certainly a client bug, but the generated code may still
    /// run (e.g. reading a register before writing it).
    Warning,
    /// The generated code is wrong or unusable.
    Error,
}

/// Which lint rule produced a [`Diag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Rule {
    /// A register was read before any instruction wrote it.
    UseBeforeDef,
    /// A register bank disagreed with the instruction's `Ty` (float op
    /// on an integer register or vice versa).
    BankMismatch,
    /// An instruction named a register the target reserves for
    /// instruction synthesis or the ABI.
    ReservedRegister,
    /// A register outside the target's register file was named.
    UnknownRegister,
    /// An immediate cannot be represented in the target's word.
    ImmOutOfRange,
    /// A register obtained from `getreg` was never returned with
    /// `putreg` before `end` (a [`Severity::Note`]: `end` reclaims
    /// everything).
    LeakedReg,
    /// `putreg` of a register that was not allocated (double free).
    DoubleFree,
    /// A latched `BadOperands` condition (hard register index out of
    /// range, void local, ...), diagnosed with the source operation.
    BadOperand,
    /// A call was marshaled inside a procedure declared leaf.
    CallInLeaf,
    /// A label was bound twice.
    LabelRebound,
    /// A fixup at `end` referenced a label that was never bound.
    LabelUnbound,
    /// A fixup was recorded past the buffer write cursor.
    FixupPastCursor,
    /// `ld_slot`/`st_slot` accessed a stack slot outside every
    /// allocated local.
    SlotOutOfBounds,
    /// A callee-saved register was written without being obtained from
    /// the allocator (the prologue will not save it).
    CalleeSavedClobber,
    /// `call_begin`/`call_end` did not balance.
    UnbalancedCall,
    /// A recorded instruction count disagreed with the mark stream
    /// (differential checker self-test).
    InsnCountMismatch,
    /// The differential checker could not decode emitted bytes.
    DecodeError,
    /// Decoded instruction lengths did not land on a recorded vcode
    /// instruction boundary.
    BoundaryMismatch,
    /// A branch target does not land on an instruction boundary.
    BranchTargetMisaligned,
    /// A control transfer sits in the delay slot of another control
    /// transfer.
    DelaySlotHazard,
}

/// One verifier diagnostic: typed, collected, never panicked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// The lint rule that fired.
    pub rule: Rule,
    /// How bad it is.
    pub severity: Severity,
    /// Byte offset in the code buffer the diagnostic anchors to.
    pub pc: usize,
    /// Human-readable context: source operation and operand.
    pub detail: String,
}

impl std::fmt::Display for Diag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?}({:?}) at {:#x}: {}",
            self.rule, self.severity, self.pc, self.detail
        )
    }
}

// ---------------------------------------------------------------------------
// The recorded vcode stream
// ---------------------------------------------------------------------------

/// Control-flow class of a recorded vcode instruction, for the
/// differential checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkKind {
    /// Straight-line computation.
    Other,
    /// Conditional branch to a label.
    Branch(Label),
    /// Unconditional jump, jump-and-link, or call.
    Jump,
    /// Memory load (including `ld_slot`).
    Load,
    /// Memory store (including `st_slot`).
    Store,
    /// Return.
    Ret,
}

/// The byte span one vcode instruction occupied in the code buffer.
///
/// Spans may be empty (backends elide e.g. the jump-to-epilogue of a
/// final `ret`); the differential checker decodes each non-empty span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsnMark {
    /// First byte of the machine code this vcode instruction produced.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
    /// Control-flow class.
    pub kind: MarkKind,
}

/// What one vcode instruction reads, writes and constrains — built
/// lazily by the `Assembler` only when the verifier is enabled.
#[derive(Debug, Clone, Copy)]
pub struct VInsn {
    /// Source operation name (`"addi"`, `"ld_slot"`, ...).
    pub name: &'static str,
    /// Control-flow class for the mark stream.
    pub kind: MarkKind,
    /// Registers read, each with the bank it must come from
    /// (`true` = floating-point).
    pub reads: [Option<(Reg, bool)>; 3],
    /// Register written, with its required bank.
    pub write: Option<(Reg, bool)>,
    /// Immediate operand, for representability checks.
    pub imm: Option<i64>,
    /// Stack slot accessed, for bounds checks.
    pub slot: Option<StackSlot>,
}

impl VInsn {
    /// A new record for `name` with no operands.
    pub fn new(name: &'static str) -> VInsn {
        VInsn {
            name,
            kind: MarkKind::Other,
            reads: [None; 3],
            write: None,
            imm: None,
            slot: None,
        }
    }

    /// Adds a read of `reg` from the float (`true`) or int bank.
    #[must_use]
    pub fn r(mut self, reg: Reg, flt: bool) -> VInsn {
        if let Some(s) = self.reads.iter_mut().find(|s| s.is_none()) {
            *s = Some((reg, flt));
        }
        self
    }

    /// Sets the written register and its required bank.
    #[must_use]
    pub fn w(mut self, reg: Reg, flt: bool) -> VInsn {
        self.write = Some((reg, flt));
        self
    }

    /// Sets the immediate operand.
    #[must_use]
    pub fn i(mut self, imm: i64) -> VInsn {
        self.imm = Some(imm);
        self
    }

    /// Sets the control-flow class.
    #[must_use]
    pub fn k(mut self, kind: MarkKind) -> VInsn {
        self.kind = kind;
        self
    }

    /// Sets the accessed stack slot.
    #[must_use]
    pub fn s(mut self, slot: StackSlot) -> VInsn {
        self.slot = Some(slot);
        self
    }
}

// ---------------------------------------------------------------------------
// Per-target check tables
// ---------------------------------------------------------------------------

/// Static per-target verification table
/// ([`Target::CHECKS`](crate::Target::CHECKS)).
///
/// Backends override the default (derived from the `Target` consts) with
/// their reserved-register lists and instruction alignment.
#[derive(Debug, Clone, Copy)]
pub struct TargetChecks {
    /// Machine word width, for immediate representability.
    pub word_bits: u32,
    /// Instruction alignment in bytes (4 on the RISC targets, 1 on
    /// x86-64).
    pub insn_align: usize,
    /// Branch delay slots, for the hazard checks.
    pub branch_delay_slots: u32,
    /// Load delay cycles (MIPS-I).
    pub load_delay_cycles: u32,
    /// Integer registers (by number) the backend reserves for
    /// instruction synthesis; clients must never name them.
    pub reserved_int: &'static [u8],
    /// Reserved floating-point registers, by number.
    pub reserved_flt: &'static [u8],
}

// ---------------------------------------------------------------------------
// Enablement
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static ORPHANS: AtomicU64 = AtomicU64::new(0);

/// Globally enables or disables the streaming verifier for subsequent
/// `lambda` calls. Off by default; when off the fast path pays one
/// `Option` discriminant test per instruction and emits identical bytes.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Release);
}

/// Whether the global verifier switch is on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Number of verified generation sessions dropped without `end` — the
/// unbalanced-`lambda` detector. Monotonic over the process lifetime.
pub fn orphaned_sessions() -> u64 {
    ORPHANS.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// The verify report
// ---------------------------------------------------------------------------

/// Everything the verifier collected over one generation session.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// All diagnostics, in emission order.
    pub diags: Vec<Diag>,
    /// The recorded vcode stream: one byte span per instruction.
    pub marks: Vec<InsnMark>,
    /// vcode instructions the verifier observed (should equal
    /// `marks.len()`).
    pub vcode_insns: u64,
    /// Buffer cursor when the session finished.
    pub code_len: usize,
}

impl VerifyReport {
    /// `true` when no diagnostic of [`Severity::Warning`] or above was
    /// collected.
    pub fn is_clean(&self) -> bool {
        self.diags.iter().all(|d| d.severity < Severity::Warning)
    }

    /// Number of diagnostics produced by `rule`.
    pub fn count(&self, rule: Rule) -> usize {
        self.diags.iter().filter(|d| d.rule == rule).count()
    }

    /// Whether any diagnostic with `rule` fired.
    pub fn has(&self, rule: Rule) -> bool {
        self.count(rule) > 0
    }

    /// Diagnostics at or above `min`.
    pub fn at_least(&self, min: Severity) -> impl Iterator<Item = &Diag> {
        self.diags.iter().filter(move |d| d.severity >= min)
    }
}

// ---------------------------------------------------------------------------
// Streaming verifier state
// ---------------------------------------------------------------------------

/// Live state of the streaming verifier, owned by
/// [`Asm`](crate::Asm) while a verified session is open.
#[derive(Debug)]
pub struct VerifierState {
    rf: &'static RegFile,
    checks: TargetChecks,
    /// Bit `n` set: register `n` of the bank holds a defined value.
    defined: [u64; 2],
    /// Bit set: register is owned (argument, `getreg`, hard name).
    owned: [u64; 2],
    /// Bit set: register is on lease from `getreg` (leak tracking).
    leased: [u64; 2],
    /// Allocated stack slots: `(base, off, bytes)`.
    slots: Vec<(Reg, i32, u32)>,
    open_calls: u32,
    report: VerifyReport,
    ended: bool,
}

fn bank_ix(bank: Bank) -> usize {
    match bank {
        Bank::Int => 0,
        Bank::Flt => 1,
    }
}

fn bit(reg: Reg) -> u64 {
    if reg.num() < 64 {
        1u64 << reg.num()
    } else {
        0
    }
}

impl VerifierState {
    /// Fresh state for one generation session.
    pub fn new(rf: &'static RegFile, checks: TargetChecks) -> VerifierState {
        VerifierState {
            rf,
            checks,
            defined: [0; 2],
            owned: [0; 2],
            leased: [0; 2],
            slots: Vec::new(),
            open_calls: 0,
            report: VerifyReport::default(),
            ended: false,
        }
    }

    /// Marks the incoming argument registers owned and defined.
    pub fn note_args(&mut self, args: &[Reg]) {
        for &r in args {
            self.owned[bank_ix(r.bank())] |= bit(r);
            self.defined[bank_ix(r.bank())] |= bit(r);
        }
    }

    /// Records a diagnostic.
    pub fn diag(&mut self, rule: Rule, severity: Severity, pc: usize, detail: String) {
        self.report.diags.push(Diag {
            rule,
            severity,
            pc,
            detail,
        });
    }

    /// Diagnostics collected so far.
    pub fn diags(&self) -> &[Diag] {
        &self.report.diags
    }

    fn anchored(&self, reg: Reg) -> bool {
        reg == self.rf.sp || reg == self.rf.fp || Some(reg) == self.rf.zero
    }

    fn reserved(&self, reg: Reg) -> bool {
        let listed = match reg.bank() {
            Bank::Int => self.checks.reserved_int.contains(&reg.num()),
            Bank::Flt => self.checks.reserved_flt.contains(&reg.num()),
        };
        listed
            || self
                .rf
                .desc(reg)
                .is_some_and(|d| matches!(d.kind, RegKind::Reserved))
    }

    fn check_operand(&mut self, name: &'static str, pc: usize, reg: Reg, flt: bool) -> bool {
        if reg.is_flt() != flt {
            let want = if flt { "float" } else { "integer" };
            self.diag(
                Rule::BankMismatch,
                Severity::Error,
                pc,
                format!("{name}: {reg} is not a {want} register"),
            );
            return false;
        }
        if self.anchored(reg) {
            return false;
        }
        if self.reserved(reg) {
            self.diag(
                Rule::ReservedRegister,
                Severity::Warning,
                pc,
                format!("{name}: {reg} is reserved by the target"),
            );
        } else if self.rf.desc(reg).is_none() {
            self.diag(
                Rule::UnknownRegister,
                Severity::Warning,
                pc,
                format!("{name}: {reg} is not in the target register file"),
            );
        }
        true
    }

    /// Streams one emitted vcode instruction through the rule set.
    pub fn insn(&mut self, start: usize, end: usize, vi: &VInsn) {
        self.report.vcode_insns += 1;
        self.report.marks.push(InsnMark {
            start,
            end,
            kind: vi.kind,
        });
        for &(reg, flt) in vi.reads.iter().flatten() {
            if self.check_operand(vi.name, start, reg, flt) {
                let (b, m) = (bank_ix(reg.bank()), bit(reg));
                if self.defined[b] & m == 0 {
                    self.diag(
                        Rule::UseBeforeDef,
                        Severity::Warning,
                        start,
                        format!("{}: {reg} read before any write", vi.name),
                    );
                    self.defined[b] |= m; // report each register once
                }
            }
        }
        if let Some(imm) = vi.imm {
            if self.checks.word_bits == 32
                && (imm > i64::from(u32::MAX) || imm < i64::from(i32::MIN))
            {
                self.diag(
                    Rule::ImmOutOfRange,
                    Severity::Warning,
                    start,
                    format!(
                        "{}: immediate {imm:#x} is not representable in a 32-bit word",
                        vi.name
                    ),
                );
            }
        }
        if let Some(slot) = vi.slot {
            self.check_slot(vi.name, start, slot);
        }
        if let Some((reg, flt)) = vi.write {
            if self.check_operand(vi.name, start, reg, flt) {
                let (b, m) = (bank_ix(reg.bank()), bit(reg));
                let callee_saved = self
                    .rf
                    .desc(reg)
                    .is_some_and(|d| matches!(d.kind, RegKind::CalleeSaved));
                if callee_saved && self.owned[b] & m == 0 {
                    self.diag(
                        Rule::CalleeSavedClobber,
                        Severity::Warning,
                        start,
                        format!(
                            "{}: {reg} is callee-saved but was never allocated; \
                             the prologue will not save it",
                            vi.name
                        ),
                    );
                    self.owned[b] |= m; // report once
                }
                self.defined[b] |= m;
            }
        }
    }

    fn check_slot(&mut self, name: &'static str, pc: usize, slot: StackSlot) {
        let Some(size) = slot.ty.try_size_bytes(self.checks.word_bits) else {
            return;
        };
        let size = size as u32;
        let ok = self.slots.iter().any(|&(base, off, bytes)| {
            base == slot.base
                && slot.off >= off
                && i64::from(slot.off) + i64::from(size) <= i64::from(off) + i64::from(bytes)
        });
        if !ok {
            self.diag(
                Rule::SlotOutOfBounds,
                Severity::Warning,
                pc,
                format!(
                    "{name}: slot {}{:+} ({size} bytes) is outside every allocated local",
                    slot.base, slot.off
                ),
            );
        }
    }

    /// Records a `local`/`local_array` element allocation.
    pub fn note_local(&mut self, slot: StackSlot, bytes: u32) {
        self.slots.push((slot.base, slot.off, bytes));
    }

    /// Records a successful `getreg`.
    pub fn note_getreg(&mut self, reg: Reg) {
        let (b, m) = (bank_ix(reg.bank()), bit(reg));
        self.owned[b] |= m;
        self.leased[b] |= m;
    }

    /// Records ownership of a register acquired outside `getreg`
    /// (hard names, `take`).
    pub fn note_owned(&mut self, reg: Reg) {
        self.owned[bank_ix(reg.bank())] |= bit(reg);
    }

    /// Records a `putreg`; diagnoses double frees.
    pub fn note_putreg(&mut self, reg: Reg, pc: usize) {
        let (b, m) = (bank_ix(reg.bank()), bit(reg));
        if self.owned[b] & m == 0 {
            self.diag(
                Rule::DoubleFree,
                Severity::Warning,
                pc,
                format!("putreg: {reg} is not allocated (double free?)"),
            );
        }
        self.owned[b] &= !m;
        self.leased[b] &= !m;
    }

    /// Records a `call_begin`.
    pub fn note_call_begin(&mut self, pc: usize) {
        if self.open_calls > 0 {
            self.diag(
                Rule::UnbalancedCall,
                Severity::Warning,
                pc,
                "call_begin while another call is being marshaled".to_owned(),
            );
        }
        self.open_calls += 1;
    }

    /// Records a `call_end`.
    pub fn note_call_end(&mut self, pc: usize) {
        if self.open_calls == 0 {
            self.diag(
                Rule::UnbalancedCall,
                Severity::Warning,
                pc,
                "call_end without a matching call_begin".to_owned(),
            );
        } else {
            self.open_calls -= 1;
        }
    }

    /// Runs the end-of-session checks: dangling fixups, leaked leases,
    /// unbalanced call marshaling.
    pub fn finish(&mut self, labels: &LabelMap, fixups: &[Fixup], code_len: usize) {
        self.ended = true;
        self.report.code_len = code_len;
        for f in fixups {
            if let FixupTarget::Label(l) = f.target {
                if labels.offset(l).is_none() {
                    self.diag(
                        Rule::LabelUnbound,
                        Severity::Error,
                        f.at,
                        format!("label {} referenced here but never bound", l.index()),
                    );
                }
            }
        }
        for bank in [Bank::Int, Bank::Flt] {
            let mut left = self.leased[bank_ix(bank)];
            while left != 0 {
                let n = left.trailing_zeros() as u8;
                left &= left - 1;
                let reg = match bank {
                    Bank::Int => Reg::int(n),
                    Bank::Flt => Reg::flt(n),
                };
                self.diag(
                    Rule::LeakedReg,
                    Severity::Note,
                    code_len,
                    format!("{reg} from getreg was never returned with putreg"),
                );
            }
        }
        if self.open_calls > 0 {
            self.diag(
                Rule::UnbalancedCall,
                Severity::Warning,
                code_len,
                format!("{} call_begin without call_end at end", self.open_calls),
            );
        }
    }

    /// Extracts the finished report, leaving the state empty.
    pub fn take_report(&mut self) -> VerifyReport {
        self.ended = true;
        std::mem::take(&mut self.report)
    }
}

impl Drop for VerifierState {
    fn drop(&mut self) {
        if !self.ended {
            ORPHANS.fetch_add(1, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------------
// Differential machine-code checker
// ---------------------------------------------------------------------------

/// One machine instruction recovered by an [`InsnDecoder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedInsn {
    /// Encoded length in bytes (nonzero).
    pub len: usize,
    /// Whether this is a control transfer (branch/jump/call/return).
    pub control: bool,
    /// Resolved branch target as a byte offset from the start of the
    /// code buffer, when the encoding is pc-relative.
    pub target: Option<i64>,
}

/// A machine-code decoder the differential checker walks the emitted
/// bytes with. The sim crates implement this over their disassemblers;
/// the x86-64 backend provides a length decoder for its encoding subset.
pub trait InsnDecoder {
    /// Decodes the instruction at byte offset `at`, or `None` when the
    /// bytes are not a recognizable encoding.
    fn decode(&self, code: &[u8], at: usize) -> Option<DecodedInsn>;
}

/// Re-decodes the emitted machine code and cross-checks it against the
/// recorded vcode stream: every recorded instruction span must decode
/// cleanly and end on a boundary, branch targets must land on
/// instruction boundaries, and no control transfer may occupy another's
/// delay slot. Returns the (possibly empty) list of differential
/// diagnostics.
pub fn cross_check(
    code: &[u8],
    report: &VerifyReport,
    finished: &Finished,
    dec: &dyn InsnDecoder,
    checks: &TargetChecks,
) -> Vec<Diag> {
    let mut diags = Vec::new();
    let mut push = |rule, severity, pc, detail: String| {
        diags.push(Diag {
            rule,
            severity,
            pc,
            detail,
        })
    };
    if report.marks.len() as u64 != report.vcode_insns {
        push(
            Rule::InsnCountMismatch,
            Severity::Error,
            0,
            format!(
                "{} vcode instructions recorded but {} marks",
                report.vcode_insns,
                report.marks.len()
            ),
        );
    }
    // Walk every recorded span, collecting machine-instruction
    // boundaries.
    let mut boundaries = std::collections::BTreeSet::new();
    let mut decoded: Vec<(usize, DecodedInsn)> = Vec::new();
    for m in &report.marks {
        let mut at = m.start;
        boundaries.insert(at);
        while at < m.end {
            match dec.decode(code, at) {
                None => {
                    push(
                        Rule::DecodeError,
                        Severity::Error,
                        at,
                        format!(
                            "undecodable bytes inside a recorded instruction span ({:?})",
                            m
                        ),
                    );
                    break;
                }
                Some(d) if d.len == 0 || at + d.len > m.end => {
                    push(
                        Rule::BoundaryMismatch,
                        Severity::Error,
                        at,
                        format!(
                            "decoded length {} overruns the recorded span {}..{}",
                            d.len, m.start, m.end
                        ),
                    );
                    break;
                }
                Some(d) => {
                    decoded.push((at, d));
                    at += d.len;
                    boundaries.insert(at);
                }
            }
        }
    }
    let in_marks = |t: usize| report.marks.iter().any(|m| m.start <= t && t < m.end);
    // Branch targets recovered from the machine encodings.
    for &(at, d) in &decoded {
        if let Some(t) = d.target {
            if t.rem_euclid(checks.insn_align as i64) != 0 {
                push(
                    Rule::BranchTargetMisaligned,
                    Severity::Error,
                    at,
                    format!(
                        "decoded branch target {t:#x} is not {}-byte aligned",
                        checks.insn_align
                    ),
                );
            } else if t >= 0 && (t as usize) < code.len() {
                let t = t as usize;
                if in_marks(t) && !boundaries.contains(&t) {
                    push(
                        Rule::BranchTargetMisaligned,
                        Severity::Error,
                        at,
                        format!("decoded branch target {t:#x} is inside an instruction"),
                    );
                }
            }
        }
    }
    // Branch targets from the resolved label table.
    for m in &report.marks {
        if let MarkKind::Branch(l) = m.kind {
            if let Some(off) = finished.label_offset(l) {
                if off % checks.insn_align != 0 || (in_marks(off) && !boundaries.contains(&off)) {
                    push(
                        Rule::BranchTargetMisaligned,
                        Severity::Error,
                        m.start,
                        format!(
                            "label {} resolves to {off:#x}, not an instruction boundary",
                            l.index()
                        ),
                    );
                }
            }
        }
    }
    // Delay-slot hazards: consecutive decoded control transfers.
    if checks.branch_delay_slots > 0 {
        for w in decoded.windows(2) {
            let ((a_at, a), (b_at, b)) = (w[0], w[1]);
            if a_at + a.len == b_at && a.control && b.control {
                push(
                    Rule::DelaySlotHazard,
                    Severity::Error,
                    b_at,
                    "control transfer in the delay slot of another control transfer".to_owned(),
                );
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::RegDesc;

    fn rf() -> &'static RegFile {
        static INT: [RegDesc; 4] = [
            RegDesc {
                reg: Reg::int(8),
                kind: RegKind::CallerSaved,
                name: "t0",
            },
            RegDesc {
                reg: Reg::int(9),
                kind: RegKind::CallerSaved,
                name: "t1",
            },
            RegDesc {
                reg: Reg::int(16),
                kind: RegKind::CalleeSaved,
                name: "s0",
            },
            RegDesc {
                reg: Reg::int(1),
                kind: RegKind::Reserved,
                name: "at",
            },
        ];
        static RF: RegFile = RegFile {
            int: &INT,
            flt: &[],
            hard_temps: &[],
            hard_saved: &[],
            sp: Reg::int(29),
            fp: Reg::int(30),
            zero: Some(Reg::int(0)),
        };
        &RF
    }

    const CHECKS: TargetChecks = TargetChecks {
        word_bits: 32,
        insn_align: 4,
        branch_delay_slots: 0,
        load_delay_cycles: 0,
        reserved_int: &[1],
        reserved_flt: &[],
    };

    #[test]
    fn use_before_def_and_write_defines() {
        let mut vs = VerifierState::new(rf(), CHECKS);
        vs.insn(
            0,
            4,
            &VInsn::new("movi")
                .w(Reg::int(8), false)
                .r(Reg::int(9), false),
        );
        assert_eq!(vs.diags()[0].rule, Rule::UseBeforeDef);
        // r8 now defined; reading it is clean, and r9 reported once.
        vs.insn(
            4,
            8,
            &VInsn::new("addi")
                .w(Reg::int(9), false)
                .r(Reg::int(8), false),
        );
        assert_eq!(vs.take_report().count(Rule::UseBeforeDef), 1);
    }

    #[test]
    fn bank_mismatch_and_reserved() {
        let mut vs = VerifierState::new(rf(), CHECKS);
        vs.insn(0, 4, &VInsn::new("addf").w(Reg::int(8), true));
        vs.insn(4, 8, &VInsn::new("movi").w(Reg::int(1), false));
        let r = vs.take_report();
        assert!(r.has(Rule::BankMismatch));
        assert!(r.has(Rule::ReservedRegister));
        assert!(!r.is_clean());
    }

    #[test]
    fn callee_clobber_unless_owned() {
        let mut vs = VerifierState::new(rf(), CHECKS);
        vs.insn(0, 4, &VInsn::new("seti").w(Reg::int(16), false));
        assert_eq!(vs.diags()[0].rule, Rule::CalleeSavedClobber);
        let mut vs = VerifierState::new(rf(), CHECKS);
        vs.note_getreg(Reg::int(16));
        vs.insn(0, 4, &VInsn::new("seti").w(Reg::int(16), false));
        assert!(vs.diags().is_empty());
    }

    #[test]
    fn leak_is_a_note_double_free_warns() {
        let mut vs = VerifierState::new(rf(), CHECKS);
        vs.note_getreg(Reg::int(8));
        vs.note_putreg(Reg::int(9), 0);
        vs.finish(&LabelMap::new(), &[], 0);
        let r = vs.take_report();
        assert!(r.has(Rule::DoubleFree));
        assert!(r.has(Rule::LeakedReg));
        // Leak alone is a Note; the double free is the only Warning.
        assert_eq!(r.at_least(Severity::Warning).count(), 1);
    }

    #[test]
    fn orphaned_sessions_counted() {
        let before = orphaned_sessions();
        drop(VerifierState::new(rf(), CHECKS));
        assert_eq!(orphaned_sessions(), before + 1);
        let mut vs = VerifierState::new(rf(), CHECKS);
        vs.take_report();
        drop(vs);
        assert_eq!(orphaned_sessions(), before + 1);
    }

    #[test]
    fn slot_bounds() {
        let mut vs = VerifierState::new(rf(), CHECKS);
        let base = Reg::int(30);
        let slot = StackSlot {
            base,
            off: -8,
            ty: crate::ty::Ty::I,
        };
        vs.note_local(slot, 4);
        vs.insn(0, 4, &VInsn::new("ld_slot").s(slot));
        assert!(vs.diags().is_empty());
        let bad = StackSlot {
            base,
            off: 64,
            ty: crate::ty::Ty::I,
        };
        vs.insn(4, 8, &VInsn::new("ld_slot").s(bad));
        assert_eq!(vs.take_report().count(Rule::SlotOutOfBounds), 1);
    }

    struct Words;
    impl InsnDecoder for Words {
        fn decode(&self, code: &[u8], at: usize) -> Option<DecodedInsn> {
            let w = u32::from_le_bytes(code.get(at..at + 4)?.try_into().ok()?);
            if w == 0xdead_beef {
                return None;
            }
            Some(DecodedInsn {
                len: 4,
                control: w & 1 == 1,
                target: None,
            })
        }
    }

    #[test]
    fn cross_check_flags_bad_spans_and_hazards() {
        let mut code = Vec::new();
        code.extend_from_slice(&2u32.to_le_bytes());
        code.extend_from_slice(&1u32.to_le_bytes()); // control
        code.extend_from_slice(&3u32.to_le_bytes()); // control in delay slot
        code.extend_from_slice(&0xdead_beefu32.to_le_bytes());
        let report = VerifyReport {
            marks: vec![
                InsnMark {
                    start: 0,
                    end: 4,
                    kind: MarkKind::Other,
                },
                InsnMark {
                    start: 4,
                    end: 12,
                    kind: MarkKind::Jump,
                },
                InsnMark {
                    start: 12,
                    end: 16,
                    kind: MarkKind::Other,
                },
            ],
            vcode_insns: 3,
            code_len: 16,
            diags: Vec::new(),
        };
        let fin = Finished {
            entry: 0,
            len: 16,
            label_offsets: Vec::new(),
            verify: None,
            insns: 3,
        };
        let checks = TargetChecks {
            branch_delay_slots: 1,
            ..CHECKS
        };
        let diags = cross_check(&code, &report, &fin, &Words, &checks);
        assert!(diags.iter().any(|d| d.rule == Rule::DelaySlotHazard));
        assert!(diags.iter().any(|d| d.rule == Rule::DecodeError));
    }
}
