//! Background compile service: codegen off the request path, with
//! graceful degradation.
//!
//! The paper's premise is that dynamic code generation is cheap enough
//! to sit on the request path. At serving scale the *expected* cost
//! still is — but the tail is not: a builder that stalls, panics, or
//! simply arrives in a burst of cold keys must never stall traffic.
//! [`CompileService`] layers a work-stealing worker pool over the
//! [`LambdaCache`]'s `Building`-slot machinery so a request thread never
//! compiles and never waits:
//!
//! - [`submit`](CompileService::submit) is non-blocking. A warm key
//!   returns [`Submit::Ready`]; a cold key is *claimed* (the cache's
//!   thundering-herd guarantee: one claim per key, no matter how many
//!   threads race) and handed to the pool, and the caller serves a
//!   fallback until the native code publishes.
//! - Every build carries a **deadline**. A job still queued past its
//!   deadline is dropped un-run; a build that finishes past it is
//!   discarded. Either way the `Building` slot is vacated (pointer-
//!   checked, so a successor build is never clobbered) and the key is
//!   quarantined.
//! - Failing keys enter a **quarantine** table with exponential
//!   backoff: a poison lambda cannot hot-loop the workers. After the
//!   backoff expires, exactly one probe rebuild is admitted; success
//!   clears the entry, failure doubles the backoff.
//! - When the queue exceeds a configured depth the service **sheds
//!   load**: the submit returns [`Submit::Shed`] and the caller serves
//!   its fallback — nothing is enqueued, nothing waits.
//!
//! The per-key lifecycle (see DESIGN.md "Compile service & graceful
//! degradation"):
//!
//! ```text
//! Missing ──submit──▶ Queued ──worker──▶ Building ──ok──▶ Ready
//!    │                  │                   │
//!    │ queue full       │ deadline          │ error / panic / overrun
//!    ▼                  ▼                   ▼
//!  Shed             Quarantined ◀───────────┘   (backoff ×2 per failure,
//!                       │                        capped; probe on expiry)
//!                       └──backoff expired, probe succeeds──▶ Ready
//! ```
//!
//! Builder errors cross the service as `String` (via `Display`) so one
//! service type serves every cache value type in the workspace — the
//! engine's `dyn Lambda`, DPF's compiled classifiers, ASH's kernels.

use crate::cache::{CacheKey, LambdaCache};
use crate::obs;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
// Synchronization via the `vsync` facade (std in production, model-
// checked under `mcheck`): the quarantine/backoff table, the idle-
// worker condvar, and the shutdown flag are driven by `crates/mcheck`
// model programs. No raw `std::sync` in this module (DESIGN.md
// "Model-checked concurrency").
use crate::vsync::thread::JoinHandle;
use crate::vsync::{
    self, Arc, AtomicBool, AtomicU64, AtomicUsize, Condvar, Duration, Instant, Mutex, Ordering,
};

/// Tuning for one [`CompileService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads in the pool (clamped to ≥ 1).
    pub workers: usize,
    /// Queue depth beyond which submits are shed.
    pub queue_depth: usize,
    /// Per-build deadline: queued-past-deadline jobs are dropped un-run;
    /// builds finishing past it are discarded and the key quarantined.
    pub deadline: Duration,
    /// First-failure quarantine backoff (doubles per consecutive
    /// failure).
    pub quarantine_base: Duration,
    /// Backoff ceiling.
    pub quarantine_cap: Duration,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8),
            queue_depth: 64,
            deadline: Duration::from_secs(2),
            quarantine_base: Duration::from_millis(100),
            quarantine_cap: Duration::from_secs(5),
        }
    }
}

/// Outcome of one non-blocking [`CompileService::submit`].
///
/// Every variant is a *served* request: `Ready` serves native code, the
/// rest tell the caller to serve its fallback ladder (and why).
pub enum Submit<V: ?Sized> {
    /// Finished code was already cached — serve it directly.
    Ready(Arc<V>),
    /// The build was accepted onto the queue; serve the fallback and
    /// poll [`LambdaCache::peek`] for the upgrade.
    Queued,
    /// Another build (sync or async) already holds the key's `Building`
    /// slot; serve the fallback.
    InFlight,
    /// The queue was at its configured depth (or the cache shard at its
    /// simultaneous-build cap) — the build was shed, nothing enqueued.
    Shed,
    /// The key is quarantined after repeated failures; serve the
    /// fallback and retry after `retry_in`.
    Quarantined {
        /// Time until the next rebuild probe is admitted.
        retry_in: Duration,
        /// Consecutive failures recorded for the key.
        failures: u32,
    },
}

impl<V: ?Sized> Submit<V> {
    /// Whether the build will (or did) run: `Ready`, `Queued` and
    /// `InFlight` all end with finished code under the key, while `Shed`
    /// and `Quarantined` dropped the request. Heat-triggered rebuilds use
    /// this to decide whether to try again on a later crossing.
    pub fn accepted(&self) -> bool {
        matches!(self, Submit::Ready(_) | Submit::Queued | Submit::InFlight)
    }
}

impl<V: ?Sized> fmt::Debug for Submit<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Submit::Ready(_) => f.write_str("Ready(..)"),
            Submit::Queued => f.write_str("Queued"),
            Submit::InFlight => f.write_str("InFlight"),
            Submit::Shed => f.write_str("Shed"),
            Submit::Quarantined { retry_in, failures } => f
                .debug_struct("Quarantined")
                .field("retry_in", retry_in)
                .field("failures", failures)
                .finish(),
        }
    }
}

/// Per-service counter snapshot (process-wide totals live in
/// [`obs::service_counters`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Builds accepted onto the queue.
    pub enqueued: u64,
    /// Builds that finished in time and published.
    pub completed: u64,
    /// Builds that ran and returned an error.
    pub failed: u64,
    /// Builds whose builder panicked (caught; slot vacated).
    pub panicked: u64,
    /// Submits shed at the queue-depth (or build-cap) limit.
    pub shed: u64,
    /// Submits rejected because the key was quarantined.
    pub quarantine_rejects: u64,
    /// Builds dropped for exceeding their deadline (queued or built).
    pub deadline_expired: u64,
    /// Jobs currently queued.
    pub queue_depth: usize,
    /// High-water mark of the queue depth.
    pub queue_depth_peak: usize,
    /// Keys currently quarantined.
    pub quarantined_keys: usize,
}

/// A key's quarantine record, as seen by [`CompileService::quarantine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineInfo {
    /// Consecutive failures recorded.
    pub failures: u32,
    /// Time until the next probe is admitted (zero if expired).
    pub retry_in: Duration,
    /// `Display` form of the most recent failure.
    pub last_error: String,
}

struct QEntry {
    failures: u32,
    until: Instant,
    /// A post-expiry rebuild probe is queued or building; further
    /// submits stay on their fallback until it resolves.
    probing: bool,
    last_error: String,
}

type Builder<V> = Box<dyn FnOnce() -> Result<Arc<V>, String> + Send + 'static>;

struct Job<V: ?Sized> {
    ticket: crate::cache::BuildTicket<V>,
    builder: Builder<V>,
    deadline: Instant,
}

#[derive(Default)]
struct StatCells {
    enqueued: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    panicked: AtomicU64,
    shed: AtomicU64,
    quarantine_rejects: AtomicU64,
    deadline_expired: AtomicU64,
    depth_peak: AtomicUsize,
}

struct Shared<V: ?Sized> {
    cache: Arc<LambdaCache<V>>,
    cfg: ServiceConfig,
    /// One deque per worker; owners pop the front, thieves the back.
    queues: Vec<Mutex<VecDeque<Job<V>>>>,
    /// Jobs queued across all deques (shed check + idle sleep guard).
    depth: AtomicUsize,
    /// Jobs currently inside a builder (for [`CompileService::wait_idle`]).
    active: AtomicUsize,
    /// Round-robin enqueue cursor.
    cursor: AtomicUsize,
    idle: Mutex<()>,
    work: Condvar,
    quarantine: Mutex<HashMap<CacheKey, QEntry>>,
    stats: StatCells,
    shutdown: AtomicBool,
}

/// A background compile service over one [`LambdaCache`]. See the
/// [module docs](self) for the degradation ladder.
pub struct CompileService<V: ?Sized + Send + Sync + 'static> {
    shared: Arc<Shared<V>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl<V: ?Sized + Send + Sync + 'static> fmt::Debug for CompileService<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompileService")
            .field("config", &self.shared.cfg)
            .field("queue_depth", &self.shared.depth.load(Ordering::Relaxed))
            .field("active", &self.shared.active.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl<V: ?Sized + Send + Sync + 'static> CompileService<V> {
    /// Starts a service (and its worker threads) over `cache`.
    pub fn new(cache: Arc<LambdaCache<V>>, cfg: ServiceConfig) -> CompileService<V> {
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            cache,
            cfg,
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            depth: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            cursor: AtomicUsize::new(0),
            idle: Mutex::new(()),
            work: Condvar::new(),
            quarantine: Mutex::new(HashMap::new()),
            stats: StatCells::default(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                vsync::thread::Builder::new()
                    .name(format!("vcode-compile-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn compile worker")
            })
            .collect();
        CompileService {
            shared,
            workers: Mutex::new(handles),
        }
    }

    /// The cache this service publishes into.
    pub fn cache(&self) -> &Arc<LambdaCache<V>> {
        &self.shared.cache
    }

    /// The service's configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.shared.cfg
    }

    /// Non-blocking lookup-or-enqueue for `key`. Never compiles and
    /// never waits on the calling thread; see [`Submit`] for the five
    /// served outcomes. `builder` runs on a pool worker only if the
    /// submit is accepted ([`Submit::Queued`]).
    pub fn submit<F>(&self, key: CacheKey, builder: F) -> Submit<V>
    where
        F: FnOnce() -> Result<Arc<V>, String> + Send + 'static,
    {
        let s = &*self.shared;
        // Quarantine gate first: a poisoned key must not even probe the
        // cache's build cap until its backoff expires.
        let now = Instant::now();
        {
            let q = s.quarantine.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(entry) = q.get(&key) {
                if entry.probing {
                    // A rebuild probe is already in flight.
                    return Submit::InFlight;
                }
                if now < entry.until {
                    s.stats.quarantine_rejects.fetch_add(1, Ordering::Relaxed);
                    return Submit::Quarantined {
                        retry_in: entry.until - now,
                        failures: entry.failures,
                    };
                }
                // Backoff expired: fall through and admit one probe.
            }
        }
        if s.depth.load(Ordering::SeqCst) >= s.cfg.queue_depth {
            s.stats.shed.fetch_add(1, Ordering::Relaxed);
            obs::note_service_shed();
            return Submit::Shed;
        }
        match s.cache.begin_build(&key) {
            crate::cache::Probe::Ready(val) => {
                // Someone (a sync path, another service) already built
                // it — a stale quarantine entry is moot.
                s.quarantine
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .remove(&key);
                Submit::Ready(val)
            }
            crate::cache::Probe::InFlight => Submit::InFlight,
            crate::cache::Probe::Busy => {
                s.stats.shed.fetch_add(1, Ordering::Relaxed);
                obs::note_service_shed();
                Submit::Shed
            }
            crate::cache::Probe::Claimed(ticket) => {
                // If this is a post-quarantine probe, mark it so racing
                // submits keep serving their fallback meanwhile.
                {
                    let mut q = s.quarantine.lock().unwrap_or_else(|e| e.into_inner());
                    if let Some(entry) = q.get_mut(&key) {
                        entry.probing = true;
                    }
                }
                let job = Job {
                    ticket,
                    builder: Box::new(builder),
                    deadline: Instant::now() + s.cfg.deadline,
                };
                let slot = s.cursor.fetch_add(1, Ordering::Relaxed) % s.queues.len();
                s.queues[slot]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push_back(job);
                let depth = s.depth.fetch_add(1, Ordering::SeqCst) + 1;
                s.stats.enqueued.fetch_add(1, Ordering::Relaxed);
                s.stats.depth_peak.fetch_max(depth, Ordering::Relaxed);
                obs::note_service_enqueued(depth as u64);
                // Lock-then-notify pairs with the worker's locked
                // depth re-check: no lost wakeups.
                let _g = s.idle.lock().unwrap_or_else(|e| e.into_inner());
                s.work.notify_one();
                Submit::Queued
            }
        }
    }

    /// The key's quarantine record, if any.
    pub fn quarantine(&self, key: &CacheKey) -> Option<QuarantineInfo> {
        let q = self
            .shared
            .quarantine
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        q.get(key).map(|e| QuarantineInfo {
            failures: e.failures,
            retry_in: e.until.saturating_duration_since(Instant::now()),
            last_error: e.last_error.clone(),
        })
    }

    /// Snapshot of the service's counters.
    pub fn stats(&self) -> ServiceStats {
        let s = &*self.shared;
        ServiceStats {
            enqueued: s.stats.enqueued.load(Ordering::Relaxed),
            completed: s.stats.completed.load(Ordering::Relaxed),
            failed: s.stats.failed.load(Ordering::Relaxed),
            panicked: s.stats.panicked.load(Ordering::Relaxed),
            shed: s.stats.shed.load(Ordering::Relaxed),
            quarantine_rejects: s.stats.quarantine_rejects.load(Ordering::Relaxed),
            deadline_expired: s.stats.deadline_expired.load(Ordering::Relaxed),
            queue_depth: s.depth.load(Ordering::Relaxed),
            queue_depth_peak: s.stats.depth_peak.load(Ordering::Relaxed),
            quarantined_keys: s.quarantine.lock().unwrap_or_else(|e| e.into_inner()).len(),
        }
    }

    /// Blocks until no job is queued or building, or `timeout` elapses.
    /// Returns whether the service went idle. Test/drain aid — request
    /// paths never call this.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let s = &*self.shared;
            if s.depth.load(Ordering::SeqCst) == 0 && s.active.load(Ordering::SeqCst) == 0 {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            vsync::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Stops the workers: queued jobs are abandoned (their `Building`
    /// slots vacated), the running build finishes its current job.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _g = self.shared.idle.lock().unwrap_or_else(|e| e.into_inner());
            self.shared.work.notify_all();
        }
        let mut workers = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        for h in workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl<V: ?Sized + Send + Sync + 'static> Drop for CompileService<V> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Pops the next job for worker `me`: own queue from the front, then a
/// steal sweep over the other workers' backs.
fn next_job<V: ?Sized>(s: &Shared<V>, me: usize) -> Option<Job<V>> {
    if let Some(job) = s.queues[me]
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .pop_front()
    {
        return Some(job);
    }
    let n = s.queues.len();
    for off in 1..n {
        let victim = (me + off) % n;
        if let Some(job) = s.queues[victim]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_back()
        {
            return Some(job);
        }
    }
    None
}

fn worker_loop<V: ?Sized + Send + Sync + 'static>(s: &Shared<V>, me: usize) {
    loop {
        let Some(job) = next_job(s, me) else {
            if s.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let guard = s.idle.lock().unwrap_or_else(|e| e.into_inner());
            if s.depth.load(Ordering::SeqCst) == 0 && !s.shutdown.load(Ordering::SeqCst) {
                // Bounded wait: belt-and-braces against any missed
                // notify; correctness never depends on the timeout.
                let _ = s
                    .work
                    .wait_timeout(guard, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner());
            }
            continue;
        };
        s.depth.fetch_sub(1, Ordering::SeqCst);
        if s.shutdown.load(Ordering::SeqCst) {
            // Torn down with work queued: vacate the slot so no sync
            // waiter blocks on a build that will never run.
            job.ticket.abandon();
            continue;
        }
        run_job(s, job);
    }
}

fn run_job<V: ?Sized + Send + Sync + 'static>(s: &Shared<V>, job: Job<V>) {
    let Job {
        ticket,
        builder,
        deadline,
    } = job;
    let key = ticket.key().clone();
    let start = Instant::now();
    if start > deadline {
        // Expired while queued: never run the builder.
        ticket.abandon();
        s.stats.deadline_expired.fetch_add(1, Ordering::Relaxed);
        obs::note_service_deadline_expired();
        quarantine_failure(s, key, "build deadline expired in queue".to_string());
        return;
    }
    // The job stays `active` until its outcome is fully *recorded*
    // (publish or quarantine entry), not merely until the builder
    // returns — `wait_idle` reports idle off this counter, so
    // decrementing before the bookkeeping lets a drain-then-inspect
    // caller read the quarantine map a beat too early.
    s.active.fetch_add(1, Ordering::SeqCst);
    let outcome = catch_unwind(AssertUnwindSafe(builder));
    let elapsed = start.elapsed();
    let now = Instant::now();
    match outcome {
        Ok(Ok(val)) if now <= deadline => {
            // `finish` is pointer-checked: if stall recovery vacated the
            // slot meanwhile, the value is simply not cached.
            ticket.finish(val);
            s.stats.completed.fetch_add(1, Ordering::Relaxed);
            obs::note_service_completed(elapsed.as_nanos() as u64);
            s.quarantine
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&key);
        }
        Ok(Ok(_)) => {
            // Finished past the deadline: the result is discarded — a
            // builder this slow must not be hot-looped, so the key is
            // quarantined like a failure.
            ticket.abandon();
            s.stats.deadline_expired.fetch_add(1, Ordering::Relaxed);
            obs::note_service_deadline_expired();
            quarantine_failure(s, key, format!("build overran its deadline ({elapsed:?})"));
        }
        Ok(Err(e)) => {
            ticket.abandon();
            s.stats.failed.fetch_add(1, Ordering::Relaxed);
            obs::note_service_failed();
            quarantine_failure(s, key, e);
        }
        Err(panic) => {
            ticket.abandon();
            s.stats.panicked.fetch_add(1, Ordering::Relaxed);
            obs::note_service_panicked();
            let msg = panic
                .downcast_ref::<&str>()
                .map(|m| (*m).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "builder panicked".to_string());
            quarantine_failure(s, key, format!("builder panicked: {msg}"));
        }
    }
    s.active.fetch_sub(1, Ordering::SeqCst);
}

/// Records a failed/expired build: creates or extends the key's
/// quarantine entry with exponential backoff.
fn quarantine_failure<V: ?Sized>(s: &Shared<V>, key: CacheKey, error: String) {
    let mut q = s.quarantine.lock().unwrap_or_else(|e| e.into_inner());
    let entry = q.entry(key).or_insert_with(|| QEntry {
        failures: 0,
        until: Instant::now(),
        probing: false,
        last_error: String::new(),
    });
    entry.failures = entry.failures.saturating_add(1);
    let shift = entry.failures.saturating_sub(1).min(16);
    let backoff = s
        .cfg
        .quarantine_base
        .saturating_mul(1u32 << shift)
        .min(s.cfg.quarantine_cap);
    entry.until = Instant::now() + backoff;
    entry.probing = false;
    entry.last_error = error;
    obs::note_service_quarantined();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn key(n: u8) -> CacheKey {
        CacheKey::new(crate::engine::TargetId::X64, vec![n])
    }

    fn service(cfg: ServiceConfig) -> CompileService<u64> {
        CompileService::new(Arc::new(LambdaCache::new(64)), cfg)
    }

    fn tight() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            queue_depth: 8,
            deadline: Duration::from_secs(2),
            quarantine_base: Duration::from_millis(20),
            quarantine_cap: Duration::from_millis(200),
        }
    }

    #[test]
    fn builds_in_background_and_publishes() {
        let sv = service(tight());
        match sv.submit(key(1), || Ok(Arc::new(41u64))) {
            Submit::Queued => {}
            other => panic!("expected Queued, got {other:?}"),
        }
        assert!(sv.wait_idle(Duration::from_secs(5)));
        assert_eq!(sv.cache().peek(&key(1)).as_deref(), Some(&41));
        match sv.submit(key(1), || Ok(Arc::new(99u64))) {
            Submit::Ready(v) => assert_eq!(*v, 41),
            other => panic!("expected Ready, got {other:?}"),
        }
        let st = sv.stats();
        assert_eq!(st.enqueued, 1);
        assert_eq!(st.completed, 1);
    }

    #[test]
    fn failing_key_quarantines_and_recovers_after_backoff() {
        let sv = service(tight());
        let attempts = Arc::new(AtomicUsize::new(0));
        let a = Arc::clone(&attempts);
        assert!(matches!(
            sv.submit(key(2), move || {
                a.fetch_add(1, Ordering::SeqCst);
                Err("boom".to_string())
            }),
            Submit::Queued
        ));
        assert!(sv.wait_idle(Duration::from_secs(5)));
        // Quarantined: immediate resubmits are rejected without running.
        let q = sv.quarantine(&key(2)).expect("quarantined");
        assert_eq!(q.failures, 1);
        assert!(q.last_error.contains("boom"));
        match sv.submit(key(2), || Ok(Arc::new(1u64))) {
            Submit::Quarantined { failures: 1, .. } => {}
            other => panic!("expected Quarantined, got {other:?}"),
        }
        assert_eq!(attempts.load(Ordering::SeqCst), 1);
        // After backoff expiry one probe is admitted; success clears.
        std::thread::sleep(Duration::from_millis(30));
        assert!(matches!(
            sv.submit(key(2), || Ok(Arc::new(7u64))),
            Submit::Queued
        ));
        assert!(sv.wait_idle(Duration::from_secs(5)));
        assert!(sv.quarantine(&key(2)).is_none());
        assert_eq!(sv.cache().peek(&key(2)).as_deref(), Some(&7));
    }

    #[test]
    fn panicking_builder_is_caught_and_quarantined() {
        let sv = service(tight());
        assert!(matches!(
            sv.submit(key(3), || panic!("kaboom")),
            Submit::Queued
        ));
        assert!(sv.wait_idle(Duration::from_secs(5)));
        let q = sv.quarantine(&key(3)).expect("quarantined after panic");
        assert!(q.last_error.contains("kaboom"), "{}", q.last_error);
        assert_eq!(sv.stats().panicked, 1);
        // The slot was vacated: the cache holds nothing for the key.
        assert!(sv.cache().peek(&key(3)).is_none());
    }

    #[test]
    fn queue_depth_sheds_load() {
        // One worker wedged on a slow build; depth 1 → the second cold
        // key queues, the third sheds.
        let sv = service(ServiceConfig {
            workers: 1,
            queue_depth: 1,
            ..tight()
        });
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        assert!(matches!(
            sv.submit(key(4), move || {
                let (lock, cv) = &*g;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                Ok(Arc::new(4u64))
            }),
            Submit::Queued
        ));
        // Wait until the worker picks the job up (depth back to 0).
        let t0 = Instant::now();
        while sv.stats().queue_depth > 0 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(matches!(
            sv.submit(key(5), || Ok(Arc::new(5u64))),
            Submit::Queued
        ));
        match sv.submit(key(6), || Ok(Arc::new(6u64))) {
            Submit::Shed => {}
            other => panic!("expected Shed, got {other:?}"),
        }
        assert_eq!(sv.stats().shed, 1);
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        assert!(sv.wait_idle(Duration::from_secs(5)));
        assert_eq!(sv.cache().peek(&key(4)).as_deref(), Some(&4));
        assert_eq!(sv.cache().peek(&key(5)).as_deref(), Some(&5));
        assert!(sv.cache().peek(&key(6)).is_none(), "shed key never built");
    }

    #[test]
    fn duplicate_submits_collapse_to_one_build() {
        let sv = service(ServiceConfig {
            workers: 1,
            ..tight()
        });
        let runs = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let (r, g) = (Arc::clone(&runs), Arc::clone(&gate));
        assert!(matches!(
            sv.submit(key(7), move || {
                r.fetch_add(1, Ordering::SeqCst);
                let (lock, cv) = &*g;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                Ok(Arc::new(7u64))
            }),
            Submit::Queued
        ));
        for _ in 0..16 {
            let r = Arc::clone(&runs);
            match sv.submit(key(7), move || {
                r.fetch_add(1, Ordering::SeqCst);
                Ok(Arc::new(7u64))
            }) {
                Submit::Queued | Submit::InFlight => {}
                other => panic!("expected collapse, got {other:?}"),
            }
        }
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        assert!(sv.wait_idle(Duration::from_secs(5)));
        assert_eq!(runs.load(Ordering::SeqCst), 1, "one build per key");
        assert_eq!(sv.cache().peek(&key(7)).as_deref(), Some(&7));
    }

    #[test]
    fn deadline_overrun_discards_and_quarantines() {
        let sv = service(ServiceConfig {
            workers: 1,
            deadline: Duration::from_millis(10),
            ..tight()
        });
        assert!(matches!(
            sv.submit(key(8), || {
                std::thread::sleep(Duration::from_millis(40));
                Ok(Arc::new(8u64))
            }),
            Submit::Queued
        ));
        assert!(sv.wait_idle(Duration::from_secs(5)));
        assert!(sv.cache().peek(&key(8)).is_none(), "overrun result dropped");
        assert_eq!(sv.stats().deadline_expired, 1);
        let q = sv.quarantine(&key(8)).expect("overrun quarantines");
        assert!(q.last_error.contains("overran"), "{}", q.last_error);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let sv = service(ServiceConfig {
            workers: 1,
            quarantine_base: Duration::from_millis(10),
            quarantine_cap: Duration::from_millis(25),
            ..tight()
        });
        for want_failures in 1..=4u32 {
            // Wait out any prior backoff, then probe with a failure.
            let t0 = Instant::now();
            loop {
                match sv.quarantine(&key(9)) {
                    Some(q) if q.retry_in > Duration::ZERO => {
                        std::thread::sleep(q.retry_in.min(Duration::from_millis(5)));
                    }
                    _ => break,
                }
                assert!(
                    t0.elapsed() < Duration::from_secs(5),
                    "backoff never expired"
                );
            }
            assert!(matches!(
                sv.submit(key(9), || Err("still bad".to_string())),
                Submit::Queued
            ));
            assert!(sv.wait_idle(Duration::from_secs(5)));
            let q = sv.quarantine(&key(9)).unwrap();
            assert_eq!(q.failures, want_failures);
            // Backoff: 10, 20, then capped at 25ms.
            assert!(q.retry_in <= Duration::from_millis(25));
        }
    }

    #[test]
    fn shutdown_abandons_queued_work() {
        let sv = service(ServiceConfig {
            workers: 1,
            queue_depth: 8,
            ..tight()
        });
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        assert!(matches!(
            sv.submit(key(10), move || {
                let (lock, cv) = &*g;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                Ok(Arc::new(10u64))
            }),
            Submit::Queued
        ));
        let t0 = Instant::now();
        while sv.stats().queue_depth > 0 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(matches!(
            sv.submit(key(11), || Ok(Arc::new(11u64))),
            Submit::Queued
        ));
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        sv.shutdown();
        // The queued-but-never-run job's slot was vacated: a sync build
        // can claim the key immediately (no wedge).
        let cache = Arc::clone(sv.cache());
        let v =
            cache.get_or_insert_with::<std::convert::Infallible>(key(11), || Ok(Arc::new(11u64)));
        assert_eq!(*v.unwrap(), 11);
    }
}
