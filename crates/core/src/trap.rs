//! Unified execution-trap taxonomy and fuel limits.
//!
//! The paper's contract is that misuse "signals an error" rather than
//! corrupting state (§5.2). Generation-time misuse surfaces as
//! [`Error`](crate::Error); this module extends the contract to *run*
//! time. Every way a generated function can stop abnormally — on the
//! MIPS/SPARC/Alpha instruction-set simulators or natively on x86-64
//! under a guarded call — is folded into one [`Trap`] value with a
//! machine-independent [`TrapKind`], so clients handle "the generated
//! code faulted" uniformly across backends, and differential tests can
//! assert that all backends classify the same fault the same way.
//!
//! Runaway execution is a fault like any other: [`Fuel`] makes step and
//! wall-clock limits first-class, and exhausting either surfaces as
//! [`TrapKind::FuelExhausted`] instead of a hang.

use std::fmt;
use std::time::Duration;

/// Machine-independent classification of an execution trap.
///
/// Simulator traps (e.g. `vcode_sim::mips::Trap`) and native traps
/// (`vcode_x64::NativeTrap`) all convert into this taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum TrapKind {
    /// A load or store touched memory outside the legal region
    /// (simulator bounds, native SIGSEGV/SIGBUS).
    BadAccess,
    /// A load or store was misaligned for its width.
    Unaligned,
    /// Control flow left the code region (simulator PC check); native
    /// executions report such escapes as [`TrapKind::BadAccess`] or
    /// [`TrapKind::IllegalInsn`] depending on where the PC lands.
    BadPc,
    /// The processor could not decode or execute an instruction
    /// (simulator decode failure, native SIGILL).
    IllegalInsn,
    /// An arithmetic fault such as integer division by zero (native
    /// SIGFPE; the simulators' divide helpers report the same way).
    ArithFault,
    /// The step or wall-clock budget in [`Fuel`] ran out — a runaway
    /// loop, converted into a typed error instead of a hang.
    FuelExhausted,
    /// A target-specific scheduling hazard (e.g. a MIPS load-delay
    /// violation, a SPARC register-window overflow) that strict
    /// simulation reports.
    ScheduleHazard,
}

impl fmt::Display for TrapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrapKind::BadAccess => "bad memory access",
            TrapKind::Unaligned => "unaligned access",
            TrapKind::BadPc => "pc outside code",
            TrapKind::IllegalInsn => "illegal instruction",
            TrapKind::ArithFault => "arithmetic fault",
            TrapKind::FuelExhausted => "fuel exhausted",
            TrapKind::ScheduleHazard => "scheduling hazard",
        };
        f.write_str(s)
    }
}

/// A typed execution trap: what went wrong, where, and on which backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trap {
    /// The machine-independent classification.
    pub kind: TrapKind,
    /// The faulting address (data address for access faults, PC for
    /// control-flow faults) when the backend can report one.
    pub addr: Option<u64>,
    /// The reporting backend (`"mips"`, `"sparc"`, `"alpha"`,
    /// `"x86-64"`), for diagnostics in differential tests.
    pub backend: &'static str,
}

impl Trap {
    /// Creates a trap with no address information.
    pub fn new(kind: TrapKind, backend: &'static str) -> Trap {
        Trap {
            kind,
            addr: None,
            backend,
        }
    }

    /// Creates a trap with a faulting address.
    pub fn at(kind: TrapKind, addr: u64, backend: &'static str) -> Trap {
        Trap {
            kind,
            addr: Some(addr),
            backend,
        }
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} trap: {}", self.backend, self.kind)?;
        if let Some(a) = self.addr {
            write!(f, " at {a:#x}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Trap {}

/// Any way producing *or* running a generated function can fail.
///
/// Clients that compile and execute (DPF, ASH, the fault-injection
/// harness) report through this one type: generation errors, executable-
/// memory errors, and runtime traps, so a caller can implement a
/// degradation ladder (retry with more storage on
/// [`Error::Overflow`](crate::Error::Overflow), fall back to an
/// interpreter on anything else) against a single taxonomy.
#[derive(Debug)]
#[non_exhaustive]
pub enum ExecError {
    /// Code generation failed (latched by `Assembler::end`).
    Codegen(crate::Error),
    /// Executable memory could not be obtained or protected.
    Mem(std::io::Error),
    /// The generated code ran and trapped.
    Trap(Trap),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Codegen(e) => write!(f, "code generation: {e}"),
            ExecError::Mem(e) => write!(f, "executable memory: {e}"),
            ExecError::Trap(t) => write!(f, "{t}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Codegen(e) => Some(e),
            ExecError::Mem(e) => Some(e),
            ExecError::Trap(t) => Some(t),
        }
    }
}

impl From<crate::Error> for ExecError {
    fn from(e: crate::Error) -> ExecError {
        ExecError::Codegen(e)
    }
}

impl From<Trap> for ExecError {
    fn from(t: Trap) -> ExecError {
        ExecError::Trap(t)
    }
}

/// First-class execution budget for generated code.
///
/// Simulated backends charge `steps`; the native backend arms a
/// wall-clock watchdog from `time`. Exhausting either raises
/// [`TrapKind::FuelExhausted`] — a runaway loop in generated code
/// degrades into a typed error, never a hang.
///
/// # Examples
///
/// ```
/// use vcode::trap::Fuel;
/// let f = Fuel::DEFAULT;
/// assert!(f.steps > 0 && !f.time.is_zero());
/// let tight = Fuel::steps(10_000);
/// assert_eq!(tight.steps, 10_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fuel {
    /// Maximum simulated instructions (simulator backends).
    pub steps: u64,
    /// Maximum wall-clock time (native backend watchdog).
    pub time: Duration,
}

impl Fuel {
    /// A budget generous enough for any test workload while still
    /// bounding runaway loops (1M steps / 2 s).
    pub const DEFAULT: Fuel = Fuel {
        steps: 1_000_000,
        time: Duration::from_secs(2),
    };

    /// A budget limited by step count, with the default time allowance.
    pub fn steps(steps: u64) -> Fuel {
        Fuel {
            steps,
            ..Fuel::DEFAULT
        }
    }

    /// A budget limited by wall-clock time, with the default step count.
    pub fn time(time: Duration) -> Fuel {
        Fuel {
            time,
            ..Fuel::DEFAULT
        }
    }
}

impl Default for Fuel {
    fn default() -> Fuel {
        Fuel::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_backend_and_address() {
        let t = Trap::at(TrapKind::BadAccess, 0xdead, "mips");
        assert_eq!(t.to_string(), "mips trap: bad memory access at 0xdead");
        let t = Trap::new(TrapKind::FuelExhausted, "x86-64");
        assert_eq!(t.to_string(), "x86-64 trap: fuel exhausted");
    }

    #[test]
    fn exec_error_wraps_all_layers() {
        let e: ExecError = crate::Error::Overflow { capacity: 16 }.into();
        assert!(matches!(e, ExecError::Codegen(_)));
        assert!(e.to_string().contains("code generation"));
        let e: ExecError = Trap::new(TrapKind::IllegalInsn, "alpha").into();
        assert!(matches!(e, ExecError::Trap(_)));
        let e = ExecError::Mem(std::io::Error::from_raw_os_error(12));
        assert!(e.to_string().contains("executable memory"));
    }

    #[test]
    fn fuel_constructors() {
        assert_eq!(Fuel::default(), Fuel::DEFAULT);
        assert_eq!(Fuel::steps(5).steps, 5);
        assert_eq!(Fuel::steps(5).time, Fuel::DEFAULT.time);
        assert_eq!(
            Fuel::time(Duration::from_millis(7)).time,
            Duration::from_millis(7)
        );
    }
}
