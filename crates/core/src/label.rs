//! Labels and unresolved-jump records.
//!
//! Complete code generation includes jump resolution: VCODE marks where
//! jump and branch instructions occur in the instruction stream and, when
//! the client indicates code generation is finished, backpatches unresolved
//! jumps (paper §3.2). At a cost of a few words per label this is the only
//! bookkeeping VCODE keeps besides the emitted code itself.

/// A code label, created with
/// [`Assembler::genlabel`](crate::Assembler::genlabel) and bound with
/// [`Assembler::label`](crate::Assembler::label).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub(crate) u32);

impl Label {
    /// The label's index (diagnostic use).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Offset table for labels; `UNBOUND` until `bind` is called.
#[derive(Debug, Default)]
pub struct LabelMap {
    offsets: Vec<usize>,
}

const UNBOUND: usize = usize::MAX;

impl LabelMap {
    /// Creates an empty map.
    pub fn new() -> LabelMap {
        LabelMap::default()
    }

    /// Allocates a fresh, unbound label.
    pub fn fresh(&mut self) -> Label {
        let l = Label(self.offsets.len() as u32);
        self.offsets.push(UNBOUND);
        l
    }

    /// Binds `label` to byte offset `off`.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound (a client bug the paper's C
    /// implementation would silently miscompile).
    pub fn bind(&mut self, label: Label, off: usize) {
        let slot = &mut self.offsets[label.0 as usize];
        assert_eq!(*slot, UNBOUND, "label {label:?} bound twice");
        *slot = off;
    }

    /// Binds `label` to byte offset `off` unless it was already bound,
    /// returning whether the binding took place. The verifier uses this
    /// to turn the rebinding panic of [`bind`](Self::bind) into a
    /// collected diagnostic.
    pub fn try_bind(&mut self, label: Label, off: usize) -> bool {
        let slot = &mut self.offsets[label.0 as usize];
        if *slot != UNBOUND {
            return false;
        }
        *slot = off;
        true
    }

    /// The offset `label` is bound to, if any.
    pub fn offset(&self, label: Label) -> Option<usize> {
        match self.offsets.get(label.0 as usize) {
            Some(&UNBOUND) | None => None,
            Some(&off) => Some(off),
        }
    }

    /// Number of labels allocated.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// `true` when no labels exist.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Iterates over unbound labels (for error reporting at `end`).
    pub fn unbound(&self) -> impl Iterator<Item = Label> + '_ {
        self.offsets
            .iter()
            .enumerate()
            .filter(|(_, &o)| o == UNBOUND)
            .map(|(i, _)| Label(i as u32))
    }
}

/// What an unresolved instruction refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixupTarget {
    /// A client label.
    Label(Label),
    /// An entry in the function's floating-point literal pool
    /// (paper §5.2: constants are placed at the end of the instruction
    /// stream so their space is reclaimed with the function).
    Lit(LitId),
}

/// A recorded unresolved reference, resolved by the backend's
/// [`Target::patch`](crate::target::Target::patch) when generation ends.
///
/// `kind` is backend-defined (branch vs. jump vs. pc-relative load have
/// different encodings); the core treats it as opaque.
#[derive(Debug, Clone, Copy)]
pub struct Fixup {
    /// Byte offset of the instruction to patch.
    pub at: usize,
    /// What it refers to.
    pub target: FixupTarget,
    /// Backend-defined patch kind.
    pub kind: u8,
}

/// Identifier of a literal-pool entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LitId(pub(crate) u32);

/// The per-function constant pool for values that cannot be encoded as
/// instruction immediates — chiefly floating-point constants (paper §5.2),
/// but backends may also use it for far pointers.
///
/// Entries are deduplicated by bit pattern.
#[derive(Debug, Default)]
pub struct LiteralPool {
    entries: Vec<(u64, u8)>, // (bits, size in bytes)
    /// Byte offset of each entry once the pool has been emitted.
    offsets: Vec<usize>,
}

impl LiteralPool {
    /// Creates an empty pool.
    pub fn new() -> LiteralPool {
        LiteralPool::default()
    }

    /// Interns a value with the given size (4 or 8 bytes), returning its id.
    pub fn intern(&mut self, bits: u64, size: u8) -> LitId {
        debug_assert!(size == 4 || size == 8);
        if let Some(i) = self.entries.iter().position(|&e| e == (bits, size)) {
            return LitId(i as u32);
        }
        self.entries.push((bits, size));
        LitId(self.entries.len() as u32 - 1)
    }

    /// Interns an `f32` constant.
    pub fn intern_f32(&mut self, v: f32) -> LitId {
        self.intern(v.to_bits() as u64, 4)
    }

    /// Interns an `f64` constant.
    pub fn intern_f64(&mut self, v: f64) -> LitId {
        self.intern(v.to_bits(), 8)
    }

    /// `true` when nothing was interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of pool entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Emits the pool at the end of the instruction stream and records
    /// entry offsets. 8-byte entries are laid out first so that a single
    /// 8-byte alignment suffices.
    pub fn emit(&mut self, buf: &mut crate::buf::CodeBuffer<'_>) {
        if self.entries.is_empty() {
            return;
        }
        buf.align_to(8, 0);
        self.offsets = vec![0; self.entries.len()];
        for size in [8u8, 4u8] {
            for (i, &(bits, sz)) in self.entries.iter().enumerate() {
                if sz != size {
                    continue;
                }
                self.offsets[i] = buf.len();
                if sz == 8 {
                    buf.put_u64(bits);
                } else {
                    buf.put_u32(bits as u32);
                }
            }
        }
    }

    /// Byte offset of `id` after [`emit`](Self::emit) has run.
    pub fn offset(&self, id: LitId) -> usize {
        self.offsets[id.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buf::CodeBuffer;

    #[test]
    fn fresh_bind_offset() {
        let mut m = LabelMap::new();
        let a = m.fresh();
        let b = m.fresh();
        assert_ne!(a, b);
        assert_eq!(m.offset(a), None);
        m.bind(a, 12);
        assert_eq!(m.offset(a), Some(12));
        assert_eq!(m.unbound().collect::<Vec<_>>(), vec![b]);
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut m = LabelMap::new();
        let a = m.fresh();
        m.bind(a, 0);
        m.bind(a, 4);
    }

    #[test]
    fn pool_dedups() {
        let mut p = LiteralPool::new();
        let a = p.intern_f64(1.5);
        let b = p.intern_f64(1.5);
        let c = p.intern_f32(1.5);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn pool_emits_aligned_doubles_first() {
        let mut p = LiteralPool::new();
        let f = p.intern_f32(2.0);
        let d = p.intern_f64(3.0);
        let mut mem = [0u8; 64];
        let mut buf = CodeBuffer::new(&mut mem);
        buf.put_u8(0x90); // force misalignment
        p.emit(&mut buf);
        assert_eq!(p.offset(d) % 8, 0);
        assert_eq!(p.offset(d), 8);
        assert_eq!(p.offset(f), 16);
        assert_eq!(buf.read_u32(p.offset(f)), 2.0f32.to_bits());
    }

    #[test]
    fn empty_pool_emits_nothing() {
        let mut p = LiteralPool::new();
        let mut mem = [0u8; 8];
        let mut buf = CodeBuffer::new(&mut mem);
        p.emit(&mut buf);
        assert_eq!(buf.len(), 0);
    }
}
