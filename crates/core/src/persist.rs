//! Persistent (L2) code cache: verified on-disk artifacts behind the
//! [`CacheTier`] seam.
//!
//! The in-memory [`LambdaCache`] is fast but process-local: every cold
//! start pays full compile cost for every lambda, which is exactly
//! where the paper's "dynamic compilation must be cheap" argument bites
//! hardest. This module adds a second tier — one artifact file per
//! cache key under a cache directory — so a warm process boots straight
//! to executable code:
//!
//! ```text
//!   compile_cached ── L1 (LambdaCache) ── L2 (DiskTier) ── Backend::compile
//!                      hit: Arc clone      hit: load +        miss: compile,
//!                                          revalidate +       store-through
//!                                          adopt              to L2
//! ```
//!
//! **Artifact format** (all fields little-endian; layout constants
//! exported below so corruption tests can patch fields surgically):
//!
//! ```text
//!   off  0  magic      b"VCAR"
//!   off  4  format     u16   bumped on any layout change
//!   off  6  target     u8    TargetId::index()
//!   off  7  args       u8    client arity metadata
//!   off  8  abi        u64   abi_fingerprint(): crate version,
//!                            pointer width, endianness, format
//!   off 16  insns      u64   vcode insn count (client metadata)
//!   off 24  key_len    u32
//!   off 28  meta_len   u32
//!   off 32  code_len   u32
//!   off 36  key_hash   u64   FNV-1a of the key bytes
//!   off 44  key bytes ‖ meta bytes ‖ code bytes
//!   tail    checksum   u64   FNV-1a of everything before it
//! ```
//!
//! **Revalidation before mapping.** A loaded artifact is hostile input:
//! the header/length/checksum checks above run first, then the client
//! codec re-decodes the native bytes with the verifier's differential
//! decoder ([`redecode`], the PR 4 `cross_check` machinery pointed at a
//! whole buffer instead of an emission report) before any byte lands in
//! executable memory. A truncated, bit-flipped, cross-version, or
//! wrong-target artifact is a typed [`PersistError`] — never a crash,
//! never mapped — and the load path silently falls back to a fresh
//! compile.
//!
//! **Publication.** Writers stage the encoded artifact in a unique temp
//! file and `rename(2)` it into place: readers observe either no file
//! or a complete one, never a torn prefix. Within a process,
//! [`StoreSlots`] reuses the cache's `Building`-slot machinery so
//! threads racing to persist one key write exactly one artifact (the
//! claim protocol is model-checked in `crates/mcheck`; see
//! `persist_single_writer`).

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::RwLock;

use crate::cache::{Build, CacheKey, LambdaCache};
use crate::engine::{fnv1a, TargetId};
use crate::obs;
use crate::verify::InsnDecoder;
use crate::vsync::{self, Arc, Mutex};

/// Artifact file magic: the first four bytes of every vcode artifact.
pub const MAGIC: [u8; 4] = *b"VCAR";
/// On-disk format version; bumped on any layout change so stale
/// artifacts classify as [`PersistError::WrongFormat`], not garbage.
pub const FORMAT_VERSION: u16 = 1;
/// Byte offset of the `format` field (u16 LE) in an encoded artifact.
pub const OFF_FORMAT: usize = 4;
/// Byte offset of the `target` field (u8) in an encoded artifact.
pub const OFF_TARGET: usize = 6;
/// Byte offset of the `abi` fingerprint (u64 LE) in an encoded artifact.
pub const OFF_ABI: usize = 8;
/// Fixed header length; payload (key ‖ meta ‖ code) follows.
pub const HEADER_LEN: usize = 44;
/// Trailing checksum length (u64 LE FNV-1a over everything before it).
pub const FOOTER_LEN: usize = 8;

/// Fingerprint of everything that must match for native bytes to be
/// safely adopted by this build: crate version, on-disk format,
/// pointer width, and endianness. Two builds that disagree on any of
/// these refuse each other's artifacts ([`PersistError::WrongAbi`])
/// rather than mapping code compiled under different assumptions.
pub fn abi_fingerprint() -> u64 {
    let mut id = Vec::with_capacity(32);
    id.extend_from_slice(env!("CARGO_PKG_VERSION").as_bytes());
    id.push(0);
    id.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    id.push(size_of::<usize>() as u8);
    id.push(if cfg!(target_endian = "little") { 1 } else { 2 });
    fnv1a(&id)
}

/// Typed failure of a persistent-cache operation. Every corrupt,
/// truncated, cross-version, or wrong-target artifact surfaces as one
/// of these — the load path then falls back to a fresh compile, so a
/// bad cache directory can cost time but never correctness.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PersistError {
    /// Filesystem failure (permissions, disk full, unreadable file).
    Io(String),
    /// The file is shorter than its own bookkeeping claims.
    Truncated {
        /// Bytes the header or envelope requires.
        need: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The file does not start with [`MAGIC`] — not a vcode artifact.
    BadMagic,
    /// Artifact written by a different on-disk format version.
    WrongFormat {
        /// The version recorded in the file.
        found: u16,
    },
    /// Artifact written under a different ABI fingerprint (crate
    /// version, pointer width, or endianness mismatch).
    WrongAbi {
        /// The fingerprint recorded in the file.
        found: u64,
    },
    /// Artifact names a different backend than the key it was loaded
    /// for.
    WrongTarget {
        /// The target recorded in the file.
        found: TargetId,
        /// The target the cache key requires.
        expected: TargetId,
    },
    /// The trailing FNV-1a checksum does not cover the bytes present —
    /// bit rot, torn write, or tampering.
    Checksum {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed over the file contents.
        computed: u64,
    },
    /// The artifact's embedded key bytes differ from the cache key that
    /// named it (hash-collision or misfiled artifact).
    KeyMismatch,
    /// Structurally invalid envelope (bad target index, internal hash
    /// mismatch, trailing garbage).
    Malformed(&'static str),
    /// The native bytes failed revalidation: the differential re-decode
    /// or the client codec rejected them before mapping.
    Revalidation(String),
    /// No differential decoder is registered for the artifact's target,
    /// so its bytes cannot be revalidated (and are therefore refused).
    NoDecoder(TargetId),
    /// The value cannot be serialized (e.g. position-dependent code
    /// holding absolute jump-table addresses). Store paths treat this
    /// as a benign skip, not a failure.
    NotPersistable(&'static str),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "artifact i/o: {e}"),
            PersistError::Truncated { need, got } => {
                write!(f, "artifact truncated: need {need} bytes, got {got}")
            }
            PersistError::BadMagic => write!(f, "not a vcode artifact (bad magic)"),
            PersistError::WrongFormat { found } => {
                write!(
                    f,
                    "artifact format v{found}, this build reads v{FORMAT_VERSION}"
                )
            }
            PersistError::WrongAbi { found } => {
                write!(
                    f,
                    "artifact abi fingerprint {found:#018x} does not match this build"
                )
            }
            PersistError::WrongTarget { found, expected } => {
                write!(
                    f,
                    "artifact targets {}, key requires {}",
                    found.name(),
                    expected.name()
                )
            }
            PersistError::Checksum { stored, computed } => {
                write!(
                    f,
                    "artifact checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
                )
            }
            PersistError::KeyMismatch => {
                write!(f, "artifact embeds a different cache key than requested")
            }
            PersistError::Malformed(what) => write!(f, "malformed artifact: {what}"),
            PersistError::Revalidation(why) => {
                write!(f, "artifact failed revalidation: {why}")
            }
            PersistError::NoDecoder(t) => {
                write!(f, "no differential decoder registered for {}", t.name())
            }
            PersistError::NotPersistable(why) => {
                write!(f, "value not persistable: {why}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> PersistError {
        PersistError::Io(e.to_string())
    }
}

fn target_from_index(i: u8) -> Option<TargetId> {
    TargetId::ALL.get(i as usize).copied()
}

/// One decoded on-disk artifact: the serialized cache identity, the
/// native code bytes, and the client metadata needed to re-adopt them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// Backend the code bytes were compiled for.
    pub target: TargetId,
    /// Client arity metadata (argument count for engine lambdas; 0 for
    /// clients with fixed signatures).
    pub args: u8,
    /// vcode instruction count of the original emission (observability
    /// metadata, not trusted for anything load-bearing).
    pub insns: u64,
    /// The cache key's content bytes (e.g. a `Program::encode()`
    /// stream) — embedded verbatim so a misfiled artifact is caught by
    /// byte comparison, not just by hash.
    pub key: Vec<u8>,
    /// Client metadata blob (e.g. DPF dispatch strategies).
    pub meta: Vec<u8>,
    /// The native code bytes. Never mapped before revalidation.
    pub code: Vec<u8>,
}

impl Artifact {
    /// Serializes the artifact into the versioned envelope documented
    /// in the module header, trailing checksum included.
    pub fn encode(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(HEADER_LEN + self.key.len() + self.meta.len() + self.code.len() + 8);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.push(self.target.index() as u8);
        out.push(self.args);
        out.extend_from_slice(&abi_fingerprint().to_le_bytes());
        out.extend_from_slice(&self.insns.to_le_bytes());
        out.extend_from_slice(&(self.key.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.meta.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.code.len() as u32).to_le_bytes());
        out.extend_from_slice(&fnv1a(&self.key).to_le_bytes());
        debug_assert_eq!(out.len(), HEADER_LEN);
        out.extend_from_slice(&self.key);
        out.extend_from_slice(&self.meta);
        out.extend_from_slice(&self.code);
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Parses and validates an encoded artifact: length envelope, magic,
    /// format version, checksum, ABI fingerprint, target index, and
    /// embedded key hash, in that order — so each corruption class maps
    /// to its own [`PersistError`] variant.
    ///
    /// # Errors
    ///
    /// Every validation failure is a typed [`PersistError`]; no partial
    /// artifact is ever returned.
    pub fn decode(bytes: &[u8]) -> Result<Artifact, PersistError> {
        let floor = HEADER_LEN + FOOTER_LEN;
        if bytes.len() < floor {
            return Err(PersistError::Truncated {
                need: floor,
                got: bytes.len(),
            });
        }
        if bytes[..4] != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let u16le = |at: usize| u16::from_le_bytes([bytes[at], bytes[at + 1]]);
        let u32le = |at: usize| {
            u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
        };
        let u64le = |at: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[at..at + 8]);
            u64::from_le_bytes(b)
        };
        let format = u16le(OFF_FORMAT);
        if format != FORMAT_VERSION {
            return Err(PersistError::WrongFormat { found: format });
        }
        let key_len = u32le(24) as usize;
        let meta_len = u32le(28) as usize;
        let code_len = u32le(32) as usize;
        let need = HEADER_LEN + key_len + meta_len + code_len + FOOTER_LEN;
        match bytes.len().cmp(&need) {
            std::cmp::Ordering::Less => {
                return Err(PersistError::Truncated {
                    need,
                    got: bytes.len(),
                })
            }
            std::cmp::Ordering::Greater => {
                return Err(PersistError::Malformed("trailing bytes after checksum"))
            }
            std::cmp::Ordering::Equal => {}
        }
        let stored = u64le(bytes.len() - FOOTER_LEN);
        let computed = fnv1a(&bytes[..bytes.len() - FOOTER_LEN]);
        if stored != computed {
            return Err(PersistError::Checksum { stored, computed });
        }
        let abi = u64le(OFF_ABI);
        if abi != abi_fingerprint() {
            return Err(PersistError::WrongAbi { found: abi });
        }
        let target = target_from_index(bytes[OFF_TARGET])
            .ok_or(PersistError::Malformed("target index out of range"))?;
        let key = bytes[HEADER_LEN..HEADER_LEN + key_len].to_vec();
        if u64le(36) != fnv1a(&key) {
            return Err(PersistError::Malformed("embedded key hash mismatch"));
        }
        let meta_at = HEADER_LEN + key_len;
        let code_at = meta_at + meta_len;
        Ok(Artifact {
            target,
            args: bytes[7],
            insns: u64le(16),
            key,
            meta: bytes[meta_at..code_at].to_vec(),
            code: bytes[code_at..code_at + code_len].to_vec(),
        })
    }

    /// Checks that this artifact is the one `key` names: same target,
    /// byte-identical embedded key.
    ///
    /// # Errors
    ///
    /// [`PersistError::WrongTarget`] or [`PersistError::KeyMismatch`].
    pub fn matches(&self, key: &CacheKey) -> Result<(), PersistError> {
        if self.target != key.target() {
            return Err(PersistError::WrongTarget {
                found: self.target,
                expected: key.target(),
            });
        }
        if self.key != key.content() {
            return Err(PersistError::KeyMismatch);
        }
        Ok(())
    }
}

/// Whole-buffer differential re-decode: the artifact-load analogue of
/// the verifier's `cross_check`. Walks `code` from offset 0 with the
/// target's independent instruction decoder and requires that every
/// instruction decodes with a nonzero length, the walk lands exactly on
/// the buffer end, and every pc-relative branch target is an
/// instruction boundary (the one-past-the-end offset counts — the
/// emitters use it for fallthrough-shaped epilogue jumps). Returns the
/// instruction count.
///
/// # Errors
///
/// [`PersistError::Revalidation`] describing the first offset at which
/// the bytes stop looking like code this build's emitters produce.
pub fn redecode(code: &[u8], dec: &dyn InsnDecoder) -> Result<u64, PersistError> {
    if code.is_empty() {
        return Err(PersistError::Revalidation("empty code buffer".into()));
    }
    let mut boundaries = std::collections::HashSet::new();
    let mut targets: Vec<(usize, i64)> = Vec::new();
    let mut at = 0usize;
    let mut n = 0u64;
    while at < code.len() {
        let d = dec.decode(code, at).ok_or_else(|| {
            PersistError::Revalidation(format!("undecodable instruction at offset {at}"))
        })?;
        if d.len == 0 {
            return Err(PersistError::Revalidation(format!(
                "zero-length decode at offset {at}"
            )));
        }
        boundaries.insert(at as i64);
        if d.control {
            if let Some(t) = d.target {
                targets.push((at, t));
            }
        }
        at += d.len;
        if at > code.len() {
            return Err(PersistError::Revalidation(format!(
                "instruction at offset {} overruns the buffer",
                at - d.len
            )));
        }
        n += 1;
    }
    boundaries.insert(code.len() as i64);
    for (from, t) in targets {
        if t < 0 || !boundaries.contains(&t) {
            return Err(PersistError::Revalidation(format!(
                "branch at offset {from} targets non-boundary offset {t}"
            )));
        }
    }
    Ok(n)
}

// ---------------------------------------------------------------------
// Differential-decoder registry
// ---------------------------------------------------------------------

/// Decoder registry slots, one per [`TargetId`]. Mirrors the engine's
/// executor registry: a const-initialized `std` lock (init-once
/// registration, no protocol to model — the vsync facade is for
/// modeled modules).
static DECODERS: RwLock<[Option<Arc<dyn InsnDecoder + Send + Sync>>; 4]> =
    RwLock::new([const { None }; 4]);

/// Registers the differential decoder for `target`, replacing any
/// previous registration. `vcode_sim::engine::install()` registers the
/// three simulator decoders; the x86-64 backend supplies its own
/// length decoder directly.
pub fn set_decoder(target: TargetId, dec: Arc<dyn InsnDecoder + Send + Sync>) {
    let mut slots = DECODERS.write().unwrap_or_else(|e| e.into_inner());
    slots[target.index()] = Some(dec);
}

/// The registered differential decoder for `target`, if any.
pub fn decoder(target: TargetId) -> Option<Arc<dyn InsnDecoder + Send + Sync>> {
    let slots = DECODERS.read().unwrap_or_else(|e| e.into_inner());
    slots[target.index()].clone()
}

// ---------------------------------------------------------------------
// Tier seam
// ---------------------------------------------------------------------

/// One tier of the lambda store. The in-memory [`LambdaCache`] is the
/// L1 implementation; [`DiskTier`] is L2. `load` answers `Ok(None)` on
/// a clean miss; `store` answers `Ok(false)` when the value was already
/// present (or is not persistable) — both are expected outcomes, not
/// failures.
pub trait CacheTier<V: ?Sized>: Send + Sync + fmt::Debug {
    /// Looks `key` up in this tier.
    ///
    /// # Errors
    ///
    /// [`PersistError`] when the tier holds something for `key` but it
    /// failed validation; callers treat this as a miss plus a counter.
    fn load(&self, key: &CacheKey) -> Result<Option<Arc<V>>, PersistError>;

    /// Publishes `val` under `key`; `Ok(true)` when this call stored
    /// it, `Ok(false)` when it was already present, being stored by a
    /// racing thread, or not persistable.
    ///
    /// # Errors
    ///
    /// [`PersistError`] on an I/O or serialization failure.
    fn store(&self, key: &CacheKey, val: &Arc<V>) -> Result<bool, PersistError>;
}

impl<V: ?Sized + Send + Sync> CacheTier<V> for LambdaCache<V> {
    fn load(&self, key: &CacheKey) -> Result<Option<Arc<V>>, PersistError> {
        Ok(self.peek(key))
    }

    fn store(&self, key: &CacheKey, val: &Arc<V>) -> Result<bool, PersistError> {
        let got = self
            .get_or_insert_with(key.clone(), || {
                Ok::<_, std::convert::Infallible>(Arc::clone(val))
            })
            .unwrap_or_else(|e| match e {});
        Ok(Arc::ptr_eq(&got, val))
    }
}

/// Translates between a cached value and its on-disk [`Artifact`].
/// Each client supplies one: the engine's codec round-trips
/// `dyn Lambda` via `Backend::adopt`, DPF's round-trips compiled
/// classifier sets (dispatch strategies in the meta blob), ASH's
/// round-trips kernel pipelines. `from_artifact` owns revalidation —
/// it must re-decode the code bytes before mapping them.
pub trait ArtifactCodec<V: ?Sized>: Send + Sync {
    /// Serializes `val` into an artifact.
    ///
    /// # Errors
    ///
    /// [`PersistError::NotPersistable`] when `val` cannot leave the
    /// process (store paths treat this as a benign skip).
    fn to_artifact(&self, key: &CacheKey, val: &Arc<V>) -> Result<Artifact, PersistError>;

    /// Revalidates and re-materializes a value from a decoded,
    /// envelope-checked artifact.
    ///
    /// # Errors
    ///
    /// [`PersistError::Revalidation`] (or `NoDecoder`) when the bytes
    /// fail the differential re-decode or client-level checks.
    ///
    /// (`from_*` with `&self` is deliberate: the codec is a translator
    /// object, not the value's own constructor.)
    #[allow(clippy::wrong_self_convention)]
    fn from_artifact(&self, artifact: &Artifact) -> Result<Arc<V>, PersistError>;
}

// ---------------------------------------------------------------------
// Single-writer store slots
// ---------------------------------------------------------------------

/// Within-process single-writer arbitration for artifact publication,
/// reusing the cache's `Building`-slot machinery: the first thread to
/// [`try_claim`](StoreSlots::try_claim) a fingerprint holds the write
/// slot; racers get `None` and skip the store (the winner's rename will
/// publish for everyone). Claims release on drop — panic-safe — and
/// wake any watcher via the underlying `Build` condvar protocol.
#[derive(Debug, Default)]
pub struct StoreSlots {
    inner: Mutex<HashMap<u64, Arc<Build>>>,
}

/// An exclusive claim on one artifact fingerprint; releasing (drop)
/// vacates the slot and notifies watchers.
pub struct StoreTicket<'s> {
    slots: &'s StoreSlots,
    fp: u64,
    build: Arc<Build>,
}

impl fmt::Debug for StoreTicket<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StoreTicket").field("fp", &self.fp).finish()
    }
}

impl StoreSlots {
    /// Creates an empty slot table.
    pub fn new() -> StoreSlots {
        StoreSlots::default()
    }

    /// Attempts to claim the write slot for `fp`. `None` means another
    /// thread already holds it — the caller should skip its store and
    /// rely on the winner's publication.
    pub fn try_claim(&self, fp: u64) -> Option<StoreTicket<'_>> {
        let mut slots = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if slots.contains_key(&fp) {
            return None;
        }
        let build = Arc::new(Build::default());
        if !vsync::injected(vsync::Injection::PersistClaimRace) {
            slots.insert(fp, Arc::clone(&build));
        }
        // Mutation under test (model checker only): the claim is handed
        // out but never recorded, so a racing thread claims the same
        // fingerprint and both write — the single-writer model program
        // observes the double publication and fails.
        Some(StoreTicket {
            slots: self,
            fp,
            build,
        })
    }

    /// Number of claims currently outstanding (test observability).
    pub fn outstanding(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

impl Drop for StoreTicket<'_> {
    fn drop(&mut self) {
        let mut slots = self.slots.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(cur) = slots.get(&self.fp) {
            if Arc::ptr_eq(cur, &self.build) {
                slots.remove(&self.fp);
            }
        }
        drop(slots);
        self.build.wake();
    }
}

// ---------------------------------------------------------------------
// Disk tier
// ---------------------------------------------------------------------

/// Counter for unique temp-file names within one process (the pid
/// disambiguates across processes). Deliberately a plain std atomic:
/// temp-name uniqueness is not a scheduling property, so the model
/// checker has nothing to explore here.
static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// The on-disk L2 tier: one artifact file per key under `dir`, named by
/// a stable versioned fingerprint, published by atomic write-rename,
/// revalidated on every load by the client [`ArtifactCodec`].
pub struct DiskTier<V: ?Sized> {
    dir: PathBuf,
    codec: Box<dyn ArtifactCodec<V>>,
    slots: StoreSlots,
}

impl<V: ?Sized> fmt::Debug for DiskTier<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiskTier")
            .field("dir", &self.dir)
            .field("outstanding", &self.slots.outstanding())
            .finish()
    }
}

impl<V: ?Sized> DiskTier<V> {
    /// Opens (creating if needed) an artifact directory with the given
    /// value codec.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the directory cannot be created.
    pub fn new(
        dir: impl Into<PathBuf>,
        codec: Box<dyn ArtifactCodec<V>>,
    ) -> Result<DiskTier<V>, PersistError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DiskTier {
            dir,
            codec,
            slots: StoreSlots::new(),
        })
    }

    /// The artifact directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Stable content-addressed fingerprint of a key: FNV-1a over the
    /// key's content bytes (process-independent, unlike the key's
    /// in-memory routing hash).
    pub fn fingerprint(key: &CacheKey) -> u64 {
        fnv1a(key.content())
    }

    /// The artifact file name for `key`: format version, target,
    /// ABI fingerprint, and content fingerprint — every component that
    /// must match for the bytes to be adoptable, so incompatible builds
    /// sharing one cache directory simply never collide.
    pub fn file_name(key: &CacheKey) -> String {
        format!(
            "v{}-{}-{:016x}-{:016x}.vcar",
            FORMAT_VERSION,
            key.target().name(),
            abi_fingerprint(),
            Self::fingerprint(key),
        )
    }

    /// Full artifact path for `key` under this tier's directory.
    pub fn path_for(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(Self::file_name(key))
    }

    /// Reads and envelope-validates the artifact for `key` without
    /// invoking the codec (no adoption, nothing mapped). `Ok(None)` on
    /// a clean miss.
    ///
    /// # Errors
    ///
    /// Any [`PersistError`] from the envelope checks or [`Artifact::matches`].
    pub fn load_artifact(&self, key: &CacheKey) -> Result<Option<Artifact>, PersistError> {
        let path = self.path_for(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let artifact = Artifact::decode(&bytes)?;
        artifact.matches(key)?;
        Ok(Some(artifact))
    }

    /// Stages `bytes` in a unique temp file in the artifact directory
    /// and renames it over `path` — readers observe no file or a whole
    /// file, never a prefix.
    fn publish(&self, path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
        let seq = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}-{}",
            std::process::id(),
            seq,
            path.file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("artifact"),
        ));
        let result = (|| -> Result<(), PersistError> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
            drop(f);
            fs::rename(&tmp, path)?;
            Ok(())
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }
}

impl<V: ?Sized> DiskTier<V> {
    /// Removes a rejected artifact so the miss path's store-through can
    /// heal it — otherwise a corrupt file would cost a recompile on
    /// every process start forever (the store's exists-check would keep
    /// skipping it).
    ///
    /// Deleting is sound because the file *name* already carries the
    /// format, target, ABI and content fingerprints: any build that
    /// would compute this path would reject these same bytes, so the
    /// file has no other legitimate reader. (The one exception is a
    /// full 64-bit content-fingerprint collision between two different
    /// programs, where the colliding keys thrash one path — correct
    /// either way, since each loser recompiles.) `Io` rejects are
    /// exempt: a transient read failure says nothing about the bytes.
    fn evict_rejected(&self, key: &CacheKey, err: &PersistError) {
        if !matches!(err, PersistError::Io(_)) {
            let _ = fs::remove_file(self.path_for(key));
        }
    }
}

impl<V: ?Sized + Send + Sync> CacheTier<V> for DiskTier<V> {
    fn load(&self, key: &CacheKey) -> Result<Option<Arc<V>>, PersistError> {
        let artifact = match self.load_artifact(key) {
            Ok(Some(a)) => a,
            Ok(None) => {
                obs::note_persist_miss();
                return Ok(None);
            }
            Err(e) => {
                obs::note_persist_reject();
                self.evict_rejected(key, &e);
                return Err(e);
            }
        };
        match self.codec.from_artifact(&artifact) {
            Ok(v) => {
                obs::note_persist_hit();
                Ok(Some(v))
            }
            Err(e) => {
                obs::note_persist_reject();
                self.evict_rejected(key, &e);
                Err(e)
            }
        }
    }

    fn store(&self, key: &CacheKey, val: &Arc<V>) -> Result<bool, PersistError> {
        let path = self.path_for(key);
        if path.exists() {
            return Ok(false);
        }
        let artifact = match self.codec.to_artifact(key, val) {
            Ok(a) => a,
            Err(PersistError::NotPersistable(_)) => return Ok(false),
            Err(e) => return Err(e),
        };
        // Claim the within-process write slot *before* encoding work so
        // racing threads skip early; cross-process races are harmless
        // (both writers publish identical bytes by construction, and
        // rename keeps each publication atomic).
        let Some(_ticket) = self.slots.try_claim(Self::fingerprint(key)) else {
            return Ok(false);
        };
        if path.exists() {
            return Ok(false);
        }
        self.publish(&path, &artifact.encode())?;
        obs::note_persist_store();
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("vcode-persist-test-{}-{}", std::process::id(), tag));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> Artifact {
        Artifact {
            target: TargetId::X64,
            args: 2,
            insns: 7,
            key: vec![1, 2, 3, 4],
            meta: vec![9, 9],
            code: vec![0xc3; 16],
        }
    }

    #[test]
    fn envelope_round_trips() {
        let a = sample();
        let bytes = a.encode();
        assert_eq!(Artifact::decode(&bytes).expect("round trip"), a);
    }

    #[test]
    fn every_truncation_is_typed() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            let err = Artifact::decode(&bytes[..cut]).expect_err("truncated must fail");
            assert!(
                matches!(
                    err,
                    PersistError::Truncated { .. }
                        | PersistError::Checksum { .. }
                        | PersistError::BadMagic
                        | PersistError::WrongFormat { .. }
                ),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn every_bitflip_is_typed() {
        let bytes = sample().encode();
        for at in 0..bytes.len() {
            for bit in [0u8, 3, 7] {
                let mut c = bytes.clone();
                c[at] ^= 1 << bit;
                assert!(
                    Artifact::decode(&c).is_err(),
                    "flip at byte {at} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn cross_version_and_cross_abi_are_refused() {
        let mut bytes = sample().encode();
        bytes[OFF_FORMAT] = 0x7f;
        let n = bytes.len();
        let sum = fnv1a(&bytes[..n - FOOTER_LEN]);
        bytes[n - FOOTER_LEN..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Artifact::decode(&bytes),
            Err(PersistError::WrongFormat { found: 0x7f })
        ));

        let mut bytes = sample().encode();
        bytes[OFF_ABI] ^= 0xff;
        let sum = fnv1a(&bytes[..n - FOOTER_LEN]);
        bytes[n - FOOTER_LEN..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Artifact::decode(&bytes),
            Err(PersistError::WrongAbi { .. })
        ));
    }

    #[test]
    fn wrong_target_caught_by_match() {
        let a = sample();
        let other = CacheKey::new(TargetId::Mips, a.key.clone());
        assert!(matches!(
            a.matches(&other),
            Err(PersistError::WrongTarget { .. })
        ));
        let wrong_bytes = CacheKey::new(TargetId::X64, vec![5, 5]);
        assert!(matches!(
            a.matches(&wrong_bytes),
            Err(PersistError::KeyMismatch)
        ));
    }

    #[test]
    fn store_slots_single_writer() {
        let slots = StoreSlots::new();
        let t = slots.try_claim(42).expect("first claim wins");
        assert!(slots.try_claim(42).is_none(), "second claim must lose");
        assert!(slots.try_claim(43).is_some(), "other keys unaffected");
        drop(t);
        assert!(slots.try_claim(42).is_some(), "released slot reclaimable");
    }

    #[derive(Debug)]
    struct BlobCodec;
    impl ArtifactCodec<Vec<u8>> for BlobCodec {
        fn to_artifact(
            &self,
            key: &CacheKey,
            val: &Arc<Vec<u8>>,
        ) -> Result<Artifact, PersistError> {
            Ok(Artifact {
                target: key.target(),
                args: 0,
                insns: 0,
                key: key.content().to_vec(),
                meta: Vec::new(),
                code: val.as_ref().clone(),
            })
        }
        fn from_artifact(&self, artifact: &Artifact) -> Result<Arc<Vec<u8>>, PersistError> {
            Ok(Arc::new(artifact.code.clone()))
        }
    }

    #[test]
    fn disk_tier_round_trips_and_misses_clean() {
        let dir = scratch_dir("roundtrip");
        let tier: DiskTier<Vec<u8>> = DiskTier::new(&dir, Box::new(BlobCodec)).expect("open");
        let key = CacheKey::new(TargetId::Mips, vec![1, 2, 3]);
        assert!(tier.load(&key).expect("clean miss").is_none());
        let val = Arc::new(vec![0xAAu8; 32]);
        assert!(tier.store(&key, &val).expect("store"));
        assert!(
            !tier.store(&key, &val).expect("idempotent"),
            "restore must skip"
        );
        let back = tier.load(&key).expect("load").expect("hit");
        assert_eq!(*back, *val);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_file_is_typed_not_fatal() {
        let dir = scratch_dir("corrupt");
        let tier: DiskTier<Vec<u8>> = DiskTier::new(&dir, Box::new(BlobCodec)).expect("open");
        let key = CacheKey::new(TargetId::Alpha, vec![7; 8]);
        let val = Arc::new(vec![0x55u8; 16]);
        tier.store(&key, &val).expect("store");
        let path = tier.path_for(&key);
        fs::write(&path, b"garbage").expect("clobber");
        assert!(tier.load(&key).is_err(), "garbage must be a typed error");
        fs::write(&path, b"").expect("zero");
        assert!(matches!(
            tier.load(&key),
            Err(PersistError::Truncated { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejected_artifact_is_evicted_and_heals() {
        let dir = scratch_dir("heal");
        let tier: DiskTier<Vec<u8>> = DiskTier::new(&dir, Box::new(BlobCodec)).expect("open");
        let key = CacheKey::new(TargetId::Sparc, vec![3; 4]);
        let val = Arc::new(vec![0x11u8; 24]);
        tier.store(&key, &val).expect("store");
        let path = tier.path_for(&key);
        fs::write(&path, b"rotten").expect("clobber");
        assert!(tier.load(&key).is_err(), "rot must be a typed error");
        assert!(
            !path.exists(),
            "rejected artifact must be evicted so store-through can heal it"
        );
        assert!(
            tier.store(&key, &val).expect("heal"),
            "store after eviction must publish, not skip"
        );
        let back = tier.load(&key).expect("healed load").expect("hit");
        assert_eq!(*back, *val);
        let _ = fs::remove_dir_all(&dir);
    }
}
