//! Alpha instruction encoders (21064-era ISA: no BWX byte/word memory
//! ops, no hardware integer division).

use vcode::buf::CodeBuffer;

/// Conventional register numbers.
pub mod r {
    #![allow(missing_docs)]
    pub const V0: u8 = 0;
    pub const T9: u8 = 23; // division-routine linkage
    pub const T10: u8 = 24; // division dividend
    pub const T11: u8 = 25; // division divisor
    pub const RA: u8 = 26;
    pub const PV: u8 = 27; // procedure value / division result (t12)
    pub const AT: u8 = 28;
    pub const GP: u8 = 29;
    pub const SP: u8 = 30;
    pub const ZERO: u8 = 31;
    pub const A0: u8 = 16;
}

/// Memory-format instruction: `opcode ra, disp(rb)`.
#[inline]
pub fn mem(b: &mut CodeBuffer<'_>, opcode: u8, ra: u8, rb: u8, disp: i16) {
    b.put_u32(
        (u32::from(opcode) << 26)
            | (u32::from(ra) << 21)
            | (u32::from(rb) << 16)
            | u32::from(disp as u16),
    );
}

/// Memory opcodes.
pub mod m {
    #![allow(missing_docs)]
    pub const LDA: u8 = 0x08;
    pub const LDAH: u8 = 0x09;
    pub const LDQ_U: u8 = 0x0b;
    pub const STQ_U: u8 = 0x0f;
    pub const LDS: u8 = 0x22;
    pub const LDT: u8 = 0x23;
    pub const LDL: u8 = 0x28;
    pub const LDQ: u8 = 0x29;
    pub const STS: u8 = 0x26;
    pub const STT: u8 = 0x27;
    pub const STL: u8 = 0x2c;
    pub const STQ: u8 = 0x2d;
}

/// Operate-format, register operand: `opcode.func rc = ra op rb`.
#[inline]
pub fn opr(b: &mut CodeBuffer<'_>, opcode: u8, func: u8, ra: u8, rb: u8, rc: u8) {
    b.put_u32(
        (u32::from(opcode) << 26)
            | (u32::from(ra) << 21)
            | (u32::from(rb) << 16)
            | (u32::from(func) << 5)
            | u32::from(rc),
    );
}

/// Operate-format, 8-bit literal operand.
#[inline]
pub fn opl(b: &mut CodeBuffer<'_>, opcode: u8, func: u8, ra: u8, lit: u8, rc: u8) {
    b.put_u32(
        (u32::from(opcode) << 26)
            | (u32::from(ra) << 21)
            | (u32::from(lit) << 13)
            | (1 << 12)
            | (u32::from(func) << 5)
            | u32::from(rc),
    );
}

/// Integer operate function codes by opcode.
pub mod f {
    #![allow(missing_docs)]
    // opcode 0x10
    pub const ADDL: u8 = 0x00;
    pub const SUBL: u8 = 0x09;
    pub const ADDQ: u8 = 0x20;
    pub const SUBQ: u8 = 0x29;
    pub const CMPULT: u8 = 0x1d;
    pub const CMPEQ: u8 = 0x2d;
    pub const CMPULE: u8 = 0x3d;
    pub const CMPLT: u8 = 0x4d;
    pub const CMPLE: u8 = 0x6d;
    // opcode 0x11
    pub const AND: u8 = 0x00;
    pub const BIC: u8 = 0x08;
    pub const BIS: u8 = 0x20;
    pub const ORNOT: u8 = 0x28;
    pub const XOR: u8 = 0x40;
    // opcode 0x12
    pub const MSKBL: u8 = 0x02;
    pub const EXTBL: u8 = 0x06;
    pub const INSBL: u8 = 0x0b;
    pub const MSKWL: u8 = 0x12;
    pub const EXTWL: u8 = 0x16;
    pub const INSWL: u8 = 0x1b;
    pub const ZAPNOT: u8 = 0x31;
    pub const SRL: u8 = 0x34;
    pub const SLL: u8 = 0x39;
    pub const SRA: u8 = 0x3c;
    // opcode 0x13
    pub const MULL: u8 = 0x00;
    pub const MULQ: u8 = 0x20;
}

/// Branch-format: `opcode ra, disp21` (target = pc + 4 + 4*disp).
#[inline]
pub fn branch(b: &mut CodeBuffer<'_>, opcode: u8, ra: u8, disp21: i32) {
    b.put_u32((u32::from(opcode) << 26) | (u32::from(ra) << 21) | (disp21 as u32 & 0x1f_ffff));
}

/// Branch opcodes.
pub mod br {
    #![allow(missing_docs)]
    pub const BR: u8 = 0x30;
    pub const BSR: u8 = 0x34;
    pub const FBEQ: u8 = 0x31;
    pub const FBLT: u8 = 0x32;
    pub const FBLE: u8 = 0x33;
    pub const FBNE: u8 = 0x35;
    pub const FBGE: u8 = 0x36;
    pub const FBGT: u8 = 0x37;
    pub const BLBC: u8 = 0x38;
    pub const BEQ: u8 = 0x39;
    pub const BLT: u8 = 0x3a;
    pub const BLE: u8 = 0x3b;
    pub const BLBS: u8 = 0x3c;
    pub const BNE: u8 = 0x3d;
    pub const BGE: u8 = 0x3e;
    pub const BGT: u8 = 0x3f;
}

/// Jump-class instruction (opcode 0x1a): `func` 0 = jmp, 1 = jsr,
/// 2 = ret.
#[inline]
pub fn jump(b: &mut CodeBuffer<'_>, func: u8, ra: u8, rb: u8) {
    b.put_u32(
        (0x1au32 << 26) | (u32::from(ra) << 21) | (u32::from(rb) << 16) | (u32::from(func) << 14),
    );
}

/// IEEE floating operate (opcode 0x16) function codes.
pub mod ff {
    #![allow(missing_docs)]
    pub const ADDS: u16 = 0x080;
    pub const SUBS: u16 = 0x081;
    pub const MULS: u16 = 0x082;
    pub const DIVS: u16 = 0x083;
    pub const ADDT: u16 = 0x0a0;
    pub const SUBT: u16 = 0x0a1;
    pub const MULT: u16 = 0x0a2;
    pub const DIVT: u16 = 0x0a3;
    pub const CMPTEQ: u16 = 0x0a5;
    pub const CMPTLT: u16 = 0x0a6;
    pub const CMPTLE: u16 = 0x0a7;
    pub const CVTTQ_C: u16 = 0x02f; // truncating
    pub const CVTQS: u16 = 0x0bc;
    pub const CVTQT: u16 = 0x0be;
    pub const CVTTS: u16 = 0x2ac;
}

/// FP operate (opcode 0x16): `fc = fa op fb`.
#[inline]
pub fn fop(b: &mut CodeBuffer<'_>, func: u16, fa: u8, fb: u8, fc: u8) {
    b.put_u32(
        (0x16u32 << 26)
            | (u32::from(fa) << 21)
            | (u32::from(fb) << 16)
            | (u32::from(func) << 5)
            | u32::from(fc),
    );
}

/// FP operate (opcode 0x17): `cpys`-family.
#[inline]
pub fn fop17(b: &mut CodeBuffer<'_>, func: u16, fa: u8, fb: u8, fc: u8) {
    b.put_u32(
        (0x17u32 << 26)
            | (u32::from(fa) << 21)
            | (u32::from(fb) << 16)
            | (u32::from(func) << 5)
            | u32::from(fc),
    );
}

/// `cpys` (FP move / sign copy).
pub const CPYS: u16 = 0x020;
/// `cpysn` (FP negate).
pub const CPYSN: u16 = 0x021;

/// `nop` (`bis $31, $31, $31`).
#[inline]
pub fn nop(b: &mut CodeBuffer<'_>) {
    opr(b, 0x11, f::BIS, r::ZERO, r::ZERO, r::ZERO);
}

/// `mov rs, rd` (`bis $31, rs, rd`).
#[inline]
pub fn mov(b: &mut CodeBuffer<'_>, rd: u8, rs: u8) {
    opr(b, 0x11, f::BIS, r::ZERO, rs, rd);
}

/// Loads a 64-bit constant into `rd` (1–7 instructions; may use
/// `scratch` for the general 64-bit case).
#[inline]
pub fn li64(b: &mut CodeBuffer<'_>, rd: u8, v: i64, scratch: u8) {
    if let Ok(v16) = i16::try_from(v) {
        mem(b, m::LDA, rd, r::ZERO, v16);
        return;
    }
    let lo = v as i16;
    let rest = v - i64::from(lo);
    if let Ok(hi) = i16::try_from(rest >> 16) {
        mem(b, m::LDAH, rd, r::ZERO, hi);
        if lo != 0 {
            mem(b, m::LDA, rd, rd, lo);
        }
        return;
    }
    if i32::try_from(v).is_ok() {
        // The ldah carry overflowed i16 (values near i32::MAX with a
        // negative low half): let ldah wrap, then re-canonicalize the
        // sign extension with addl.
        mem(b, m::LDAH, rd, r::ZERO, (rest >> 16) as u16 as i16);
        if lo != 0 {
            mem(b, m::LDA, rd, rd, lo);
        }
        opl(b, 0x10, f::ADDL, rd, 0, rd);
        return;
    }
    // General 64-bit: build the high half, shift it up, then add the
    // zero-extended low half. The sub-builds only need their low 32 bits
    // correct (shift and zapnot discard the rest), so the wrapped path
    // above is harmless here.
    let lo32 = v as u32;
    let hi32 = (v >> 32) as i32;
    li64(b, rd, i64::from(hi32), scratch);
    opl(b, 0x12, f::SLL, rd, 32, rd);
    li64(b, scratch, i64::from(lo32 as i32), scratch);
    opl(b, 0x12, f::ZAPNOT, scratch, 0x0f, scratch);
    opr(b, 0x10, f::ADDQ, rd, scratch, rd);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emit(fun: impl FnOnce(&mut CodeBuffer<'_>)) -> Vec<u32> {
        let mut mbuf = [0u8; 64];
        let mut b = CodeBuffer::new(&mut mbuf);
        fun(&mut b);
        (0..b.len() / 4).map(|i| b.read_u32(i * 4)).collect()
    }

    #[test]
    fn operate_forms() {
        // addq $1, $2, $3
        let w = emit(|b| opr(b, 0x10, f::ADDQ, 1, 2, 3))[0];
        assert_eq!(w, (0x10 << 26) | (1 << 21) | (2 << 16) | (0x20 << 5) | 3);
        // addq $1, 7, $3 (literal)
        let w = emit(|b| opl(b, 0x10, f::ADDQ, 1, 7, 3))[0];
        assert_eq!(
            w,
            (0x10 << 26) | (1 << 21) | (7 << 13) | (1 << 12) | (0x20 << 5) | 3
        );
    }

    #[test]
    fn memory_and_branch_forms() {
        let w = emit(|b| mem(b, m::LDQ, 1, 30, -16))[0];
        assert_eq!(w >> 26, 0x29);
        assert_eq!(w & 0xffff, (-16i16 as u16) as u32);
        let w = emit(|b| branch(b, br::BNE, 5, -3))[0];
        assert_eq!(w >> 26, 0x3d);
        assert_eq!(w & 0x1f_ffff, (-3i32 as u32) & 0x1f_ffff);
        let w = emit(|b| jump(b, 2, r::ZERO, r::RA))[0];
        assert_eq!(w >> 26, 0x1a);
        assert_eq!((w >> 14) & 3, 2, "ret");
    }

    #[test]
    fn li64_sizes() {
        assert_eq!(emit(|b| li64(b, 1, 100, 28)).len(), 1);
        assert_eq!(emit(|b| li64(b, 1, -100, 28)).len(), 1);
        assert_eq!(emit(|b| li64(b, 1, 0x12345678, 28)).len(), 2);
        assert_eq!(emit(|b| li64(b, 1, -0x12345678, 28)).len(), 2);
        assert_eq!(emit(|b| li64(b, 1, 0x10000, 28)).len(), 1, "ldah only");
        let n = emit(|b| li64(b, 1, 0x1234_5678_9abc_def0, 28)).len();
        assert!(n <= 7, "general case is bounded: {n}");
    }

    #[test]
    fn nop_is_bis_zero() {
        let w = emit(nop)[0];
        assert_eq!(w, (0x11 << 26) | (31 << 21) | (31 << 16) | (0x20 << 5) | 31);
    }
}
