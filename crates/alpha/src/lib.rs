//! # vcode-alpha — Alpha backend for vcode (21064-era ISA)
//!
//! The third of the paper's platforms, and the one whose quirks the paper
//! dwells on (§5.2, §6.2):
//!
//! - **no byte or halfword memory operations** — "the current generation
//!   of Alpha chips lack byte and short word operations. As a result,
//!   VCODE must synthesize its load and store byte instructions from
//!   multiple Alpha instructions": `ldq_u`/`extbl` for loads,
//!   `ldq_u`/`insbl`/`mskbl`/`bis`/`stq_u` for stores;
//! - **no integer division** — "on machines that do not provide division
//!   in hardware, the VCODE integer division instructions require
//!   subroutine calls" that obey a special convention (arguments in
//!   `t10`/`t11`, result in `t12`, linkage in `t9`) which preserves all
//!   caller-saved registers, so leaf procedures stay leaves;
//! - **no GPR↔FPR moves** — conversions bounce through a scratch slot.
//!
//! 32-bit values (`i` *and* `u`) are kept sign-extended in 64-bit
//! registers, the Alpha convention; sign extension is order-preserving
//! for unsigned comparison, so `cmpult` works unchanged.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod encode;

use encode::{br, f, ff, m, r, CPYS, CPYSN};
use vcode::asm::Asm;
use vcode::label::{Fixup, FixupTarget, Label};
use vcode::op::{BinOp, Cond, Imm, UnOp};
use vcode::reg::{Reg, RegDesc, RegFile};
use vcode::target::{BrOperand, CallFrame, JumpTarget, Leaf, Off, StackSlot, Target};
use vcode::ty::{Sig, Ty};
use vcode::{Bank, Error};

/// The Alpha target.
#[derive(Debug, Clone, Copy)]
pub enum Alpha {}

/// Base of the simulator's division-support routines (the "runtime
/// system" the paper's §5.2 discusses). Each entry is 8 bytes apart.
pub const DIV_SUPPORT_BASE: u64 = 0xd000;

/// Offsets of the individual routines from [`DIV_SUPPORT_BASE`].
pub mod divop {
    #![allow(missing_docs)]
    pub const DIVL: u64 = 0x00;
    pub const DIVLU: u64 = 0x08;
    pub const REML: u64 = 0x10;
    pub const REMLU: u64 = 0x18;
    pub const DIVQ: u64 = 0x20;
    pub const DIVQU: u64 = 0x28;
    pub const REMQ: u64 = 0x30;
    pub const REMQU: u64 = 0x38;
}

const AT: u8 = r::AT; // primary scratch
const PV: u8 = r::PV; // secondary scratch / call target
const T10: u8 = r::T10;
const T11: u8 = r::T11;
const FSCR: u8 = 1; // FP scratch

static INT_REGS: [RegDesc; 22] = vcode::regdescs![int:
    1, CallerSaved, "t0";
    2, CallerSaved, "t1";
    3, CallerSaved, "t2";
    4, CallerSaved, "t3";
    5, CallerSaved, "t4";
    6, CallerSaved, "t5";
    7, CallerSaved, "t6";
    8, CallerSaved, "t7";
    21, Arg(5), "a5";
    20, Arg(4), "a4";
    19, Arg(3), "a3";
    18, Arg(2), "a2";
    17, Arg(1), "a1";
    16, Arg(0), "a0";
    9, CalleeSaved, "s0";
    10, CalleeSaved, "s1";
    11, CalleeSaved, "s2";
    12, CalleeSaved, "s3";
    13, CalleeSaved, "s4";
    14, CalleeSaved, "s5";
    0, Reserved, "v0";
    28, Reserved, "at";
];

static FLT_REGS: [RegDesc; 18] = vcode::regdescs![flt:
    10, CallerSaved, "f10";
    11, CallerSaved, "f11";
    12, CallerSaved, "f12";
    13, CallerSaved, "f13";
    14, CallerSaved, "f14";
    15, CallerSaved, "f15";
    22, CallerSaved, "f22";
    23, CallerSaved, "f23";
    19, Arg(3), "f19";
    18, Arg(2), "f18";
    17, Arg(1), "f17";
    16, Arg(0), "f16";
    2, CalleeSaved, "f2";
    3, CalleeSaved, "f3";
    4, CalleeSaved, "f4";
    5, CalleeSaved, "f5";
    0, Reserved, "f0";
    1, Reserved, "f1";
];

static REGFILE: RegFile = RegFile {
    int: &INT_REGS,
    flt: &FLT_REGS,
    hard_temps: &[Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4)],
    hard_saved: &[Reg::int(9), Reg::int(10), Reg::int(11), Reg::int(12)],
    sp: Reg::int(r::SP),
    fp: Reg::int(15),
    zero: Some(Reg::int(r::ZERO)),
};

/// Stack frame layout (sp-relative): `ra` at 0, `s0`–`s5` at 8..56,
/// callee-saved FP at 56..88, scratch for GPR↔FPR transfers at 88,
/// locals from 96.
const RA_SLOT: i32 = 0;
const S_SLOTS: i32 = 8;
const F_SLOTS: i32 = 56;
const SCRATCH_SLOT: i16 = 88;
const SAVE_AREA: i32 = 96;
const F_CALLEE: [u8; 4] = [2, 3, 4, 5];

/// Fixup kind: 21-bit branch displacement.
const FIX_BR21: u8 = 0;

fn is32(ty: Ty) -> bool {
    matches!(ty, Ty::I | Ty::U)
}

impl Alpha {
    fn branch_to(a: &mut Asm<'_>, l: Label, opcode: u8, ra: u8) {
        a.fixup_here(FixupTarget::Label(l), FIX_BR21);
        encode::branch(&mut a.buf, opcode, ra, 0);
    }

    /// Computes the effective address into `AT` unless it is directly
    /// encodable, returning `(base, disp)`.
    fn mem_addr(a: &mut Asm<'_>, base: Reg, off: Off) -> (u8, i16) {
        match off {
            Off::I(d) => match i16::try_from(d) {
                Ok(d16) => (base.num(), d16),
                Err(_) => {
                    encode::li64(&mut a.buf, AT, i64::from(d), PV);
                    encode::opr(&mut a.buf, 0x10, f::ADDQ, base.num(), AT, AT);
                    (AT, 0)
                }
            },
            Off::R(idx) => {
                encode::opr(&mut a.buf, 0x10, f::ADDQ, base.num(), idx.num(), AT);
                (AT, 0)
            }
        }
    }

    /// Re-canonicalizes a 32-bit result (sign-extend via `addl 0`).
    fn sext32(a: &mut Asm<'_>, rd: u8) {
        encode::opl(&mut a.buf, 0x10, f::ADDL, rd, 0, rd);
    }

    /// Calls a division-support routine: dividend in `t10`, divisor in
    /// `t11`, result in `t12` (`pv`), linkage in `t9` — the special
    /// convention that preserves all caller-saved registers (paper §5.2).
    fn div_call(a: &mut Asm<'_>, routine: u64, rd: u8, rs1: u8, rs2: u8) {
        encode::mov(&mut a.buf, T10, rs1);
        encode::mov(&mut a.buf, T11, rs2);
        encode::li64(&mut a.buf, AT, (DIV_SUPPORT_BASE + routine) as i64, PV);
        encode::jump(&mut a.buf, 1, r::T9, AT); // jsr t9, (at)
        encode::mov(&mut a.buf, rd, PV);
    }

    /// Moves integer bits into an FP register through the scratch slot.
    fn int_to_fpr(a: &mut Asm<'_>, fd: u8, rs: u8) {
        encode::mem(&mut a.buf, m::STQ, rs, r::SP, SCRATCH_SLOT);
        encode::mem(&mut a.buf, m::LDT, fd, r::SP, SCRATCH_SLOT);
    }

    fn fpr_to_int(a: &mut Asm<'_>, rd: u8, fs: u8) {
        encode::mem(&mut a.buf, m::STT, fs, r::SP, SCRATCH_SLOT);
        encode::mem(&mut a.buf, m::LDQ, rd, r::SP, SCRATCH_SLOT);
    }
}

/// Immediate-form fallback: materialize through the scratch (PV holds
/// the constant so AT stays free for the operation's own synthesis). Out
/// of line so the hot arms of `emit_binop_imm` fold into each call site.
#[inline(never)]
fn binop_imm_slow(a: &mut Asm<'_>, op: BinOp, ty: Ty, rd: Reg, rs: Reg, imm: i64) {
    encode::li64(&mut a.buf, PV, imm, AT);
    Alpha::emit_binop(a, op, ty, rd, rs, Reg::int(PV));
}

impl Target for Alpha {
    const NAME: &'static str = "alpha";
    const WORD_BITS: u32 = 64;
    // ra + 6 s-regs + 4 FP callee = 11 reserved save instructions.
    const MAX_SAVE_BYTES: usize = 11 * 4;
    const CHECKS: vcode::TargetChecks = vcode::TargetChecks {
        word_bits: Self::WORD_BITS,
        insn_align: 4,
        branch_delay_slots: Self::BRANCH_DELAY_SLOTS,
        load_delay_cycles: Self::LOAD_DELAY_CYCLES,
        // $v0 (return) and $at (instruction synthesis).
        reserved_int: &[0, 28],
        // $f0 (return) and $f1 (synthesis scratch).
        reserved_flt: &[0, 1],
    };

    fn regfile() -> &'static RegFile {
        &REGFILE
    }

    fn begin(a: &mut Asm<'_>, sig: &Sig, _leaf: Leaf) -> Result<Vec<Reg>, Error> {
        // lda sp, -FRAME(sp); disp patched at end.
        a.ts.frame_fix = a.buf.len();
        encode::mem(&mut a.buf, m::LDA, r::SP, r::SP, 0);
        let start = a.buf.reserve(Self::MAX_SAVE_BYTES, 0);
        // Zero-filled reservations must be real nops when unused.
        let mut at = start;
        while at < a.buf.len() {
            a.buf.patch_u32(at, {
                // bis $31,$31,$31
                (0x11u32 << 26) | (31 << 21) | (31 << 16) | (0x20 << 5) | 31
            });
            at += 4;
        }
        a.ts.save_area = (start, a.buf.len());
        let mut args = Vec::with_capacity(sig.args().len());
        let (mut ni, mut nf) = (0u8, 0u8);
        for &ty in sig.args() {
            if ty.is_float() {
                if nf >= 4 {
                    return Err(Error::TooManyArgs {
                        requested: sig.args().len(),
                        max: 4,
                    });
                }
                let reg = Reg::flt(16 + nf);
                a.ra.take(reg);
                args.push(reg);
                nf += 1;
            } else {
                if ni >= 6 {
                    return Err(Error::TooManyArgs {
                        requested: sig.args().len(),
                        max: 6,
                    });
                }
                let reg = Reg::int(16 + ni);
                a.ra.take(reg);
                args.push(reg);
                ni += 1;
            }
        }
        Ok(args)
    }

    fn local(a: &mut Asm<'_>, ty: Ty) -> StackSlot {
        let size = ty.size_bytes(64);
        let start = a.locals_bytes.div_ceil(size) * size;
        a.locals_bytes = start + size;
        StackSlot {
            base: Reg::int(r::SP),
            off: SAVE_AREA + start as i32,
            ty,
        }
    }

    #[allow(clippy::collapsible_match)] // the guard form obscures the ABI cases
    #[inline]
    fn emit_ret(a: &mut Asm<'_>, val: Option<(Ty, Reg)>) {
        match val {
            Some((Ty::F | Ty::D, v)) => {
                if v.num() != 0 {
                    encode::fop17(&mut a.buf, CPYS, v.num(), v.num(), 0);
                }
            }
            Some((_, v)) => {
                if v.num() != r::V0 {
                    encode::mov(&mut a.buf, r::V0, v.num());
                }
            }
            None => {}
        }
        a.ret_sites.push(a.buf.len());
        let l = a.epilogue;
        Self::branch_to(a, l, br::BR, r::ZERO);
    }

    fn end(a: &mut Asm<'_>) -> Result<(), Error> {
        let used_s = a.ra.callee_used(Bank::Int);
        let used_f = a.ra.callee_used(Bank::Flt);
        let leaf = matches!(a.leaf, Leaf::Yes);
        // Fill the reserved prologue saves.
        let (start, _) = a.ts.save_area;
        let mut at = start;
        let mut put = |a: &mut Asm<'_>, opcode: u8, ra: u8, disp: i32| {
            let w = (u32::from(opcode) << 26)
                | (u32::from(ra) << 21)
                | (u32::from(r::SP) << 16)
                | (disp as u16 as u32);
            a.buf.patch_u32(at, w);
            at += 4;
        };
        if !leaf {
            put(a, m::STQ, r::RA, RA_SLOT);
        }
        for (k, s) in (9u8..15).enumerate() {
            if used_s & (1 << s) != 0 {
                put(a, m::STQ, s, S_SLOTS + 8 * k as i32);
            }
        }
        for (j, &fr) in F_CALLEE.iter().enumerate() {
            if used_f & (1 << fr) != 0 {
                put(a, m::STT, fr, F_SLOTS + 8 * j as i32);
            }
        }
        // Skip the unused tail of the reserved area with a branch.
        let (_, save_end) = a.ts.save_area;
        let rest_words = (save_end - at) / 4;
        if rest_words >= 2 {
            let w = (u32::from(br::BR) << 26)
                | (u32::from(r::ZERO) << 21)
                | ((rest_words as u32 - 1) & 0x1f_ffff);
            a.buf.patch_u32(at, w);
        }
        // Patch the frame size.
        let frame = (SAVE_AREA as usize + a.locals_bytes).div_ceil(16) * 16;
        let old = a.buf.read_u32(a.ts.frame_fix);
        a.buf.patch_u32(
            a.ts.frame_fix,
            (old & 0xffff_0000) | ((-(frame as i32)) as u16 as u32),
        );
        // Deferred epilogue.
        let here = a.buf.len();
        a.labels.bind(a.epilogue, here);
        if !leaf {
            encode::mem(&mut a.buf, m::LDQ, r::RA, r::SP, RA_SLOT as i16);
        }
        for (k, s) in (9u8..15).enumerate() {
            if used_s & (1 << s) != 0 {
                encode::mem(
                    &mut a.buf,
                    m::LDQ,
                    s,
                    r::SP,
                    (S_SLOTS + 8 * k as i32) as i16,
                );
            }
        }
        for (j, &fr) in F_CALLEE.iter().enumerate() {
            if used_f & (1 << fr) != 0 {
                encode::mem(
                    &mut a.buf,
                    m::LDT,
                    fr,
                    r::SP,
                    (F_SLOTS + 8 * j as i32) as i16,
                );
            }
        }
        encode::mem(&mut a.buf, m::LDA, r::SP, r::SP, frame as i16);
        encode::jump(&mut a.buf, 2, r::ZERO, r::RA); // ret (ra)
        Ok(())
    }

    #[inline]
    fn patch(a: &mut Asm<'_>, fixup: Fixup, dest: usize) {
        let disp = (dest as i64 - (fixup.at as i64 + 4)) / 4;
        if !(-(1 << 20)..(1 << 20)).contains(&disp) {
            a.record_err(Error::BranchOutOfRange { at: fixup.at, dest });
            return;
        }
        let old = a.buf.read_u32(fixup.at);
        a.buf
            .patch_u32(fixup.at, (old & 0xffe0_0000) | (disp as u32 & 0x1f_ffff));
    }

    #[inline(always)]
    fn emit_binop(a: &mut Asm<'_>, op: BinOp, ty: Ty, rd: Reg, rs1: Reg, rs2: Reg) {
        if ty.is_float() {
            let func = match (op, ty) {
                (BinOp::Add, Ty::F) => ff::ADDS,
                (BinOp::Add, _) => ff::ADDT,
                (BinOp::Sub, Ty::F) => ff::SUBS,
                (BinOp::Sub, _) => ff::SUBT,
                (BinOp::Mul, Ty::F) => ff::MULS,
                (BinOp::Mul, _) => ff::MULT,
                (BinOp::Div, Ty::F) => ff::DIVS,
                (BinOp::Div, _) => ff::DIVT,
                _ => {
                    a.record_err(Error::BadOperands("float binop"));
                    return;
                }
            };
            encode::fop(&mut a.buf, func, rs1.num(), rs2.num(), rd.num());
            return;
        }
        let (rd, rs1, rs2) = (rd.num(), rs1.num(), rs2.num());
        let w32 = is32(ty);
        let signed = ty.is_signed();
        match op {
            BinOp::Add => {
                let func = if w32 { f::ADDL } else { f::ADDQ };
                encode::opr(&mut a.buf, 0x10, func, rs1, rs2, rd);
            }
            BinOp::Sub => {
                let func = if w32 { f::SUBL } else { f::SUBQ };
                encode::opr(&mut a.buf, 0x10, func, rs1, rs2, rd);
            }
            BinOp::And => encode::opr(&mut a.buf, 0x11, f::AND, rs1, rs2, rd),
            BinOp::Or => encode::opr(&mut a.buf, 0x11, f::BIS, rs1, rs2, rd),
            BinOp::Xor => encode::opr(&mut a.buf, 0x11, f::XOR, rs1, rs2, rd),
            BinOp::Mul => {
                let func = if w32 { f::MULL } else { f::MULQ };
                encode::opr(&mut a.buf, 0x13, func, rs1, rs2, rd);
            }
            BinOp::Div | BinOp::Mod => {
                // No hardware division (paper §5.2): runtime support.
                let routine = match (op, w32, signed) {
                    (BinOp::Div, true, true) => divop::DIVL,
                    (BinOp::Div, true, false) => divop::DIVLU,
                    (BinOp::Div, false, true) => divop::DIVQ,
                    (BinOp::Div, false, false) => divop::DIVQU,
                    (_, true, true) => divop::REML,
                    (_, true, false) => divop::REMLU,
                    (_, false, true) => divop::REMQ,
                    _ => divop::REMQU,
                };
                Self::div_call(a, routine, rd, rs1, rs2);
            }
            BinOp::Lsh => {
                if w32 {
                    encode::opr(&mut a.buf, 0x12, f::SLL, rs1, rs2, rd);
                    Self::sext32(a, rd);
                } else {
                    encode::opr(&mut a.buf, 0x12, f::SLL, rs1, rs2, rd);
                }
            }
            BinOp::Rsh if signed => encode::opr(&mut a.buf, 0x12, f::SRA, rs1, rs2, rd),
            BinOp::Rsh => {
                if w32 {
                    // Zero-extend the canonical (sign-extended) 32-bit
                    // value before the logical shift.
                    encode::opl(&mut a.buf, 0x12, f::ZAPNOT, rs1, 0x0f, AT);
                    encode::opr(&mut a.buf, 0x12, f::SRL, AT, rs2, rd);
                    Self::sext32(a, rd);
                } else {
                    encode::opr(&mut a.buf, 0x12, f::SRL, rs1, rs2, rd);
                }
            }
        }
    }

    #[inline(always)]
    fn emit_binop_imm(a: &mut Asm<'_>, op: BinOp, ty: Ty, rd: Reg, rs: Reg, imm: i64) {
        let lit_ok = (0..256).contains(&imm);
        let w32 = is32(ty);
        match op {
            BinOp::Add | BinOp::Sub | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Mul
                if lit_ok =>
            {
                let (opc, func) = match op {
                    BinOp::Add if w32 => (0x10, f::ADDL),
                    BinOp::Add => (0x10, f::ADDQ),
                    BinOp::Sub if w32 => (0x10, f::SUBL),
                    BinOp::Sub => (0x10, f::SUBQ),
                    BinOp::And => (0x11, f::AND),
                    BinOp::Or => (0x11, f::BIS),
                    BinOp::Xor => (0x11, f::XOR),
                    BinOp::Mul if w32 => (0x13, f::MULL),
                    _ => (0x13, f::MULQ),
                };
                encode::opl(&mut a.buf, opc, func, rs.num(), imm as u8, rd.num());
            }
            BinOp::Lsh | BinOp::Rsh => {
                let shift = (imm & if w32 { 31 } else { 63 }) as u8;
                if op == BinOp::Lsh {
                    encode::opl(&mut a.buf, 0x12, f::SLL, rs.num(), shift, rd.num());
                    if w32 {
                        Self::sext32(a, rd.num());
                    }
                } else if ty.is_signed() {
                    encode::opl(&mut a.buf, 0x12, f::SRA, rs.num(), shift, rd.num());
                } else if w32 {
                    encode::opl(&mut a.buf, 0x12, f::ZAPNOT, rs.num(), 0x0f, AT);
                    encode::opl(&mut a.buf, 0x12, f::SRL, AT, shift, rd.num());
                    Self::sext32(a, rd.num());
                } else {
                    encode::opl(&mut a.buf, 0x12, f::SRL, rs.num(), shift, rd.num());
                }
            }
            BinOp::Add if i16::try_from(imm).is_ok() && !w32 => {
                // lda covers 16-bit quadword adds in one instruction.
                encode::mem(&mut a.buf, m::LDA, rd.num(), rs.num(), imm as i16);
            }
            _ => binop_imm_slow(a, op, ty, rd, rs, imm),
        }
    }

    #[inline]
    fn emit_unop(a: &mut Asm<'_>, op: UnOp, ty: Ty, rd: Reg, rs: Reg) {
        match (op, ty.is_float()) {
            (UnOp::Mov, true) => {
                if rd != rs {
                    encode::fop17(&mut a.buf, CPYS, rs.num(), rs.num(), rd.num());
                }
            }
            (UnOp::Mov, false) => {
                if rd != rs {
                    encode::mov(&mut a.buf, rd.num(), rs.num());
                }
            }
            (UnOp::Neg, true) => {
                encode::fop17(&mut a.buf, CPYSN, rs.num(), rs.num(), rd.num());
            }
            (UnOp::Neg, false) => {
                let func = if is32(ty) { f::SUBL } else { f::SUBQ };
                encode::opr(&mut a.buf, 0x10, func, r::ZERO, rs.num(), rd.num());
            }
            (UnOp::Com, _) => {
                encode::opr(&mut a.buf, 0x11, f::ORNOT, r::ZERO, rs.num(), rd.num());
            }
            (UnOp::Not, _) => {
                encode::opr(&mut a.buf, 0x10, f::CMPEQ, rs.num(), r::ZERO, rd.num());
            }
        }
    }

    #[inline]
    fn emit_set(a: &mut Asm<'_>, ty: Ty, rd: Reg, imm: Imm) {
        match imm {
            Imm::Int(v) => {
                let v = if is32(ty) { i64::from(v as i32) } else { v };
                encode::li64(&mut a.buf, rd.num(), v, AT);
            }
            Imm::F32(v) => {
                encode::li64(&mut a.buf, AT, i64::from(v.to_bits() as i32), PV);
                encode::mem(&mut a.buf, m::STL, AT, r::SP, SCRATCH_SLOT);
                encode::mem(&mut a.buf, m::LDS, rd.num(), r::SP, SCRATCH_SLOT);
            }
            Imm::F64(v) => {
                encode::li64(&mut a.buf, AT, v.to_bits() as i64, PV);
                encode::mem(&mut a.buf, m::STQ, AT, r::SP, SCRATCH_SLOT);
                encode::mem(&mut a.buf, m::LDT, rd.num(), r::SP, SCRATCH_SLOT);
            }
        }
    }

    #[inline]
    fn emit_cvt(a: &mut Asm<'_>, from: Ty, to: Ty, rd: Reg, rs: Reg) {
        match (from.is_float(), to.is_float()) {
            (false, false) => match (from, to) {
                // u → 64-bit: the canonical form is sign-extended, so
                // widening zero-extends explicitly.
                (Ty::U, Ty::L | Ty::Ul | Ty::P) => {
                    encode::opl(&mut a.buf, 0x12, f::ZAPNOT, rs.num(), 0x0f, rd.num());
                }
                // 64-bit → 32-bit: truncate to canonical.
                (Ty::L | Ty::Ul | Ty::P, Ty::I | Ty::U) => {
                    encode::opl(&mut a.buf, 0x10, f::ADDL, rs.num(), 0, rd.num());
                }
                _ => {
                    if rd != rs {
                        encode::mov(&mut a.buf, rd.num(), rs.num());
                    }
                }
            },
            (false, true) => {
                // Through memory, then convert-from-quad.
                if from == Ty::U {
                    encode::opl(&mut a.buf, 0x12, f::ZAPNOT, rs.num(), 0x0f, AT);
                    Self::int_to_fpr(a, FSCR, AT);
                } else {
                    Self::int_to_fpr(a, FSCR, rs.num());
                }
                let func = if to == Ty::F { ff::CVTQS } else { ff::CVTQT };
                encode::fop(&mut a.buf, func, r::ZERO, FSCR, rd.num());
            }
            (true, false) => {
                encode::fop(&mut a.buf, ff::CVTTQ_C, r::ZERO, rs.num(), FSCR);
                Self::fpr_to_int(a, rd.num(), FSCR);
                if is32(to) {
                    Self::sext32(a, rd.num());
                }
            }
            (true, true) => match (from, to) {
                (Ty::D, Ty::F) => encode::fop(&mut a.buf, ff::CVTTS, r::ZERO, rs.num(), rd.num()),
                _ => {
                    // Register singles already live in T format.
                    if rd != rs {
                        encode::fop17(&mut a.buf, CPYS, rs.num(), rs.num(), rd.num());
                    }
                }
            },
        }
    }

    #[inline]
    fn emit_ld(a: &mut Asm<'_>, ty: Ty, rd: Reg, base: Reg, off: Off) {
        match ty {
            Ty::I | Ty::U => {
                let (b, d) = Self::mem_addr(a, base, off);
                encode::mem(&mut a.buf, m::LDL, rd.num(), b, d);
            }
            Ty::L | Ty::Ul | Ty::P => {
                let (b, d) = Self::mem_addr(a, base, off);
                encode::mem(&mut a.buf, m::LDQ, rd.num(), b, d);
            }
            Ty::F => {
                let (b, d) = Self::mem_addr(a, base, off);
                encode::mem(&mut a.buf, m::LDS, rd.num(), b, d);
            }
            Ty::D => {
                let (b, d) = Self::mem_addr(a, base, off);
                encode::mem(&mut a.buf, m::LDT, rd.num(), b, d);
            }
            // Byte/halfword loads are synthesized (paper §6.2).
            Ty::C | Ty::Uc | Ty::S | Ty::Us => {
                let (b, d) = Self::mem_addr(a, base, off);
                // at = effective address; t10 = surrounding quad.
                encode::mem(&mut a.buf, m::LDA, AT, b, d);
                encode::mem(&mut a.buf, m::LDQ_U, T10, AT, 0);
                let (ext, bits) = match ty {
                    Ty::C | Ty::Uc => (f::EXTBL, 56u8),
                    _ => (f::EXTWL, 48u8),
                };
                encode::opr(&mut a.buf, 0x12, ext, T10, AT, rd.num());
                if ty.is_signed() {
                    encode::opl(&mut a.buf, 0x12, f::SLL, rd.num(), bits, rd.num());
                    encode::opl(&mut a.buf, 0x12, f::SRA, rd.num(), bits, rd.num());
                }
            }
            Ty::V => a.record_err(Error::BadOperands("load of void")),
        }
    }

    #[inline]
    fn emit_st(a: &mut Asm<'_>, ty: Ty, src: Reg, base: Reg, off: Off) {
        match ty {
            Ty::I | Ty::U => {
                let (b, d) = Self::mem_addr(a, base, off);
                encode::mem(&mut a.buf, m::STL, src.num(), b, d);
            }
            Ty::L | Ty::Ul | Ty::P => {
                let (b, d) = Self::mem_addr(a, base, off);
                encode::mem(&mut a.buf, m::STQ, src.num(), b, d);
            }
            Ty::F => {
                let (b, d) = Self::mem_addr(a, base, off);
                encode::mem(&mut a.buf, m::STS, src.num(), b, d);
            }
            Ty::D => {
                let (b, d) = Self::mem_addr(a, base, off);
                encode::mem(&mut a.buf, m::STT, src.num(), b, d);
            }
            // The paper's worst case: byte stores synthesized with
            // ldq_u / ins / msk / bis / stq_u (§6.2).
            Ty::C | Ty::Uc | Ty::S | Ty::Us => {
                let (b, d) = Self::mem_addr(a, base, off);
                encode::mem(&mut a.buf, m::LDA, AT, b, d);
                encode::mem(&mut a.buf, m::LDQ_U, T10, AT, 0);
                let (ins, msk) = match ty {
                    Ty::C | Ty::Uc => (f::INSBL, f::MSKBL),
                    _ => (f::INSWL, f::MSKWL),
                };
                encode::opr(&mut a.buf, 0x12, ins, src.num(), AT, T11);
                encode::opr(&mut a.buf, 0x12, msk, T10, AT, T10);
                encode::opr(&mut a.buf, 0x11, f::BIS, T10, T11, T10);
                encode::mem(&mut a.buf, m::STQ_U, T10, AT, 0);
            }
            Ty::V => a.record_err(Error::BadOperands("store of void")),
        }
    }

    #[inline]
    fn emit_branch(a: &mut Asm<'_>, cond: Cond, ty: Ty, rs1: Reg, rs2: BrOperand, l: Label) {
        if ty.is_float() {
            let BrOperand::R(rs2) = rs2 else {
                a.record_err(Error::BadOperands("float branch immediate"));
                return;
            };
            let (func, x, y, on_ne) = match cond {
                Cond::Lt => (ff::CMPTLT, rs1.num(), rs2.num(), true),
                Cond::Le => (ff::CMPTLE, rs1.num(), rs2.num(), true),
                Cond::Gt => (ff::CMPTLT, rs2.num(), rs1.num(), true),
                Cond::Ge => (ff::CMPTLE, rs2.num(), rs1.num(), true),
                Cond::Eq => (ff::CMPTEQ, rs1.num(), rs2.num(), true),
                Cond::Ne => (ff::CMPTEQ, rs1.num(), rs2.num(), false),
            };
            encode::fop(&mut a.buf, func, x, y, FSCR);
            let opcode = if on_ne { br::FBNE } else { br::FBEQ };
            Self::branch_to(a, l, opcode, FSCR);
            return;
        }
        let signed = ty.is_signed();
        // Compare-to-zero uses the direct branch forms when signed.
        if let BrOperand::I(0) = rs2 {
            if signed || matches!(cond, Cond::Eq | Cond::Ne) {
                let opcode = match cond {
                    Cond::Lt => br::BLT,
                    Cond::Le => br::BLE,
                    Cond::Gt => br::BGT,
                    Cond::Ge => br::BGE,
                    Cond::Eq => br::BEQ,
                    Cond::Ne => br::BNE,
                };
                Self::branch_to(a, l, opcode, rs1.num());
                return;
            }
        }
        // General: compare into AT, then bne/beq.
        let (func, swap, on_ne) = match (cond, signed) {
            (Cond::Eq, _) => (f::CMPEQ, false, true),
            (Cond::Ne, _) => (f::CMPEQ, false, false),
            (Cond::Lt, true) => (f::CMPLT, false, true),
            (Cond::Le, true) => (f::CMPLE, false, true),
            (Cond::Gt, true) => (f::CMPLE, false, false),
            (Cond::Ge, true) => (f::CMPLT, false, false),
            (Cond::Lt, false) => (f::CMPULT, false, true),
            (Cond::Le, false) => (f::CMPULE, false, true),
            (Cond::Gt, false) => (f::CMPULE, false, false),
            (Cond::Ge, false) => (f::CMPULT, false, false),
        };
        let _ = swap;
        match rs2 {
            BrOperand::R(r2) => {
                encode::opr(&mut a.buf, 0x10, func, rs1.num(), r2.num(), AT);
            }
            BrOperand::I(imm) => {
                // Canonicalize the immediate for 32-bit comparisons: the
                // register operand is sign-extended. Unsigned 32-bit
                // compares rely on sign-extension being order-preserving,
                // so the immediate must be sign-extended too.
                let imm = if is32(ty) { i64::from(imm as i32) } else { imm };
                if (0..256).contains(&imm) {
                    encode::opl(&mut a.buf, 0x10, func, rs1.num(), imm as u8, AT);
                } else {
                    encode::li64(&mut a.buf, PV, imm, AT);
                    encode::opr(&mut a.buf, 0x10, func, rs1.num(), PV, AT);
                }
            }
        }
        let opcode = if on_ne { br::BNE } else { br::BEQ };
        Self::branch_to(a, l, opcode, AT);
    }

    #[inline]
    fn emit_jump(a: &mut Asm<'_>, t: JumpTarget) {
        match t {
            JumpTarget::Label(l) => Self::branch_to(a, l, br::BR, r::ZERO),
            JumpTarget::Reg(rs) => encode::jump(&mut a.buf, 0, r::ZERO, rs.num()),
            JumpTarget::Abs(addr) => {
                encode::li64(&mut a.buf, AT, addr as i64, PV);
                encode::jump(&mut a.buf, 0, r::ZERO, AT);
            }
        }
    }

    #[inline]
    fn emit_jal(a: &mut Asm<'_>, t: JumpTarget) {
        match t {
            JumpTarget::Label(l) => Self::branch_to(a, l, br::BSR, r::RA),
            JumpTarget::Reg(rs) => encode::jump(&mut a.buf, 1, r::RA, rs.num()),
            JumpTarget::Abs(addr) => {
                encode::li64(&mut a.buf, PV, addr as i64, AT);
                encode::jump(&mut a.buf, 1, r::RA, PV);
            }
        }
    }

    #[inline]
    fn emit_nop(a: &mut Asm<'_>) {
        encode::nop(&mut a.buf);
    }

    fn call_begin(a: &mut Asm<'_>, sig: &Sig) -> CallFrame {
        let _ = a;
        CallFrame {
            sig: sig.clone(),
            stack_bytes: 0,
            next_int: 0,
            next_flt: 0,
            misc: 0,
        }
    }

    /// Note: staging adjusts `$sp`, which local slots are relative to —
    /// clients must not access locals between `call_arg` and `call_end`.
    fn call_arg(a: &mut Asm<'_>, cf: &mut CallFrame, idx: usize, ty: Ty, src: Reg) {
        let _ = idx;
        encode::mem(&mut a.buf, m::LDA, r::SP, r::SP, -8);
        if ty.is_float() {
            cf.next_flt += 1;
            if cf.next_flt > 4 {
                a.record_err(Error::TooManyArgs {
                    requested: cf.next_flt as usize,
                    max: 4,
                });
                return;
            }
            let op = if ty == Ty::F { m::STS } else { m::STT };
            encode::mem(&mut a.buf, op, src.num(), r::SP, 0);
        } else {
            cf.next_int += 1;
            if cf.next_int > 6 {
                a.record_err(Error::TooManyArgs {
                    requested: cf.next_int as usize,
                    max: 6,
                });
                return;
            }
            encode::mem(&mut a.buf, m::STQ, src.num(), r::SP, 0);
        }
        cf.stack_bytes += 8;
    }

    fn call_end(a: &mut Asm<'_>, cf: CallFrame, target: JumpTarget, ret: Option<(Ty, Reg)>) {
        let target = match target {
            JumpTarget::Reg(rs) => {
                encode::mov(&mut a.buf, PV, rs.num());
                JumpTarget::Reg(Reg::int(PV))
            }
            t => t,
        };
        let (mut int_slot, mut flt_slot) = (0u8, 0u8);
        let placements: Vec<(Ty, u8)> = cf
            .sig
            .args()
            .iter()
            .map(|&ty| {
                if ty.is_float() {
                    let s = flt_slot;
                    flt_slot += 1;
                    (ty, s)
                } else {
                    let s = int_slot;
                    int_slot += 1;
                    (ty, s)
                }
            })
            .collect();
        for &(ty, slot) in placements.iter().rev() {
            if ty.is_float() {
                let op = if ty == Ty::F { m::LDS } else { m::LDT };
                encode::mem(&mut a.buf, op, 16 + slot, r::SP, 0);
            } else {
                encode::mem(&mut a.buf, m::LDQ, 16 + slot, r::SP, 0);
            }
            encode::mem(&mut a.buf, m::LDA, r::SP, r::SP, 8);
        }
        Self::emit_jal(a, target);
        if let Some((ty, rd)) = ret {
            match ty {
                Ty::F | Ty::D => encode::fop17(&mut a.buf, CPYS, 0, 0, rd.num()),
                _ => encode::mov(&mut a.buf, rd.num(), r::V0),
            }
        }
    }
}

vcode::code_backend!(
    /// Runtime-selectable engine adapter for the Alpha target: replays a
    /// recorded [`vcode::engine::Program`] through `Assembler<Alpha>` and
    /// returns the finished image as a simulator-executable
    /// [`vcode::engine::CodeImage`].
    AlphaBackend,
    Alpha,
    vcode::engine::TargetId::Alpha
);

#[cfg(test)]
mod tests {
    use super::*;
    use vcode::{Assembler, RegClass};

    fn words(mem: &[u8], n: usize) -> Vec<u32> {
        (0..n)
            .map(|i| u32::from_le_bytes(mem[i * 4..i * 4 + 4].try_into().unwrap()))
            .collect()
    }

    #[test]
    fn plus1_layout() {
        let mut mem = vec![0u8; 1024];
        let mut a = Assembler::<Alpha>::lambda(&mut mem, "%i", Leaf::Yes).unwrap();
        let x = a.arg(0);
        assert_eq!(x, Reg::int(16), "first arg in a0");
        a.addii(x, x, 1);
        a.reti(x);
        let fin = a.end().unwrap();
        let w = words(&mem, fin.len / 4);
        // lda sp, -96(sp).
        assert_eq!(w[0] >> 26, 0x08);
        assert_eq!((w[0] & 0xffff) as i16, -96);
        // After 11 reserved nops: addl a0, 1, a0 (literal form).
        assert_eq!(w[12] >> 26, 0x10);
        assert_eq!((w[12] >> 5) & 0x7f, u32::from(f::ADDL));
        assert_eq!((w[12] >> 12) & 1, 1, "literal form");
        // Tail: lda sp, +96(sp); ret.
        assert_eq!(w[w.len() - 2] >> 26, 0x08);
        assert_eq!(w[w.len() - 1] >> 26, 0x1a);
    }

    #[test]
    fn store_byte_is_synthesized_with_five_ops() {
        // The §6.2 case: an unsigned byte store expands to the
        // ldq_u/insbl/mskbl/bis/stq_u sequence.
        let mut mem = vec![0u8; 1024];
        let mut a = Assembler::<Alpha>::lambda(&mut mem, "%p%i", Leaf::Yes).unwrap();
        let (p, v) = (a.arg(0), a.arg(1));
        let before = a.code_len();
        a.stuci(v, p, 3);
        let n = (a.code_len() - before) / 4;
        assert_eq!(n, 6, "lda + ldq_u + insbl + mskbl + bis + stq_u");
        a.retv();
        a.end().unwrap();
    }

    #[test]
    fn signed_byte_load_sign_extends() {
        let mut mem = vec![0u8; 1024];
        let mut a = Assembler::<Alpha>::lambda(&mut mem, "%p", Leaf::Yes).unwrap();
        let p = a.arg(0);
        let t = a.getreg(RegClass::Temp).unwrap();
        let before = a.code_len();
        a.ldci(t, p, 0);
        assert_eq!((a.code_len() - before) / 4, 5, "lda+ldq_u+extbl+sll+sra");
        a.reti(t);
        a.end().unwrap();
    }

    #[test]
    fn division_calls_runtime_support() {
        let mut mem = vec![0u8; 1024];
        let mut a = Assembler::<Alpha>::lambda(&mut mem, "%i%i", Leaf::Yes).unwrap();
        let (x, y) = (a.arg(0), a.arg(1));
        a.divi(x, x, y);
        a.reti(x);
        let fin = a.end().unwrap();
        let w = words(&mem, fin.len / 4);
        // Somewhere: a jsr (opcode 0x1a func 1) with ra = t9.
        let jsr = w
            .iter()
            .find(|&&w| w >> 26 == 0x1a && (w >> 14) & 3 == 1)
            .expect("jsr to the division routine");
        assert_eq!((jsr >> 21) & 31, 23, "links through t9");
    }

    #[test]
    fn callee_saved_patched_into_prologue() {
        let mut mem = vec![0u8; 1024];
        let mut a = Assembler::<Alpha>::lambda(&mut mem, "", Leaf::No).unwrap();
        let s = a.getreg(RegClass::Persistent).unwrap();
        assert_eq!(s, Reg::int(9), "s0");
        a.setl(s, 1);
        a.retv();
        a.end().unwrap();
        let w = words(&mem, 13);
        // Reserved word 1 = stq ra, 0(sp); word 2 = stq s0, 8(sp).
        assert_eq!(w[1] >> 26, 0x2d);
        assert_eq!((w[1] >> 21) & 31, 26);
        assert_eq!(w[2] >> 26, 0x2d);
        assert_eq!((w[2] >> 21) & 31, 9);
        assert_eq!(w[2] & 0xffff, 8);
    }
}
