//! Compiled-lambda cache amortization.
//!
//! The paper fences dynamic compilation behind a cost budget (codegen
//! must stay a small fraction of one use — the 20% `codegen_cost`
//! fence); the engine's sharded cache changes the economics for repeated
//! shapes: the *first* compile pays full codegen cost, every subsequent
//! request for the same (backend, stream) returns finished code with
//! zero emission work. This bench measures both sides:
//!
//! - cold: `Engine::compile` (uncached single-shot path) per program;
//! - warm: `Engine::compile_cached` hit on an already-resident key;
//! - a hard gate: the warm hit must be ≥5× cheaper than the cold
//!   compile — if a "cache hit" ever re-runs emission, this fails;
//! - multi-thread: N threads hammering one shared cache on a small key
//!   working set (the DPF many-flows-few-filters shape), reported as
//!   aggregate lookups/s.

use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;
use vcode::engine::{Engine, Program, TargetId};
use vcode::BinOp;
use vcode_bench::snapshot;

/// A `BODY`-instruction straight-line program, distinct per `salt`.
fn prog(salt: i32, body: usize) -> Program {
    let mut p = Program::new(2).unwrap();
    p.bin(BinOp::Add, 2, 0, 1);
    for i in 0..body {
        match i % 3 {
            0 => p.bin_imm(BinOp::Xor, 2, 2, salt),
            1 => p.bin(BinOp::Add, 2, 2, 0),
            _ => p.bin_imm(BinOp::And, 2, 2, 0x7fff_fffe),
        }
    }
    p.ret(2);
    p
}

fn engine(capacity: usize) -> Engine {
    let mut e = Engine::new(capacity);
    e.register(Arc::new(vcode_x64::X64Backend));
    e
}

/// Best-of-windows ns per op for `f`.
fn measure(reps: u32, windows: u32, mut f: impl FnMut()) -> f64 {
    for _ in 0..reps {
        f(); // warmup
    }
    let mut best = f64::INFINITY;
    for _ in 0..windows {
        let t = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64());
    }
    best * 1e9 / f64::from(reps)
}

fn main() {
    let smoke = snapshot::smoke();
    let reps: u32 = if smoke { 200 } else { 2000 };
    let body = 128usize;
    let e = engine(256);

    println!("=== Lambda-cache amortization (x64 backend, {body}-insn programs) ===");

    // Cold: the uncached single-shot path, a fresh compile every time.
    // (This is the path the 20% codegen_cost fence covers.)
    let p = prog(1, body);
    let cold_ns = measure(reps, 10, || {
        black_box(e.compile(TargetId::X64, black_box(&p)).unwrap());
    });

    // Warm: resident key, finished code, zero emission work.
    e.compile_cached(TargetId::X64, &p).unwrap();
    let warm_ns = measure(reps * 10, 10, || {
        black_box(e.compile_cached(TargetId::X64, black_box(&p)).unwrap());
    });

    let ratio = cold_ns / warm_ns;
    println!("  cold compile      {cold_ns:>10.1} ns");
    println!("  warm cache hit    {warm_ns:>10.1} ns   ({ratio:.0}x cheaper)");

    // Multi-thread shared cache: every thread loops over a small key
    // working set that is resident after the first round.
    let threads = 4usize;
    let keys: Vec<Program> = (0..8).map(|k| prog(k, body)).collect();
    for k in &keys {
        e.compile_cached(TargetId::X64, k).unwrap();
    }
    let e = Arc::new(e);
    let keys = Arc::new(keys);
    let secs = if smoke { 0.05 } else { 0.3 };
    let barrier = Barrier::new(threads + 1);
    let stop = AtomicBool::new(false);
    let (total, elapsed) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let (e, keys) = (Arc::clone(&e), Arc::clone(&keys));
                let (barrier, stop) = (&barrier, &stop);
                s.spawn(move || {
                    let mut lookups = 0u64;
                    barrier.wait();
                    while !stop.load(Ordering::Relaxed) {
                        for (i, k) in keys.iter().enumerate() {
                            let f = e.compile_cached(TargetId::X64, k).unwrap();
                            if (t + i) % 64 == 0 {
                                black_box(f.call(&[1, 2]).unwrap());
                            }
                        }
                        lookups += keys.len() as u64;
                    }
                    lookups
                })
            })
            .collect();
        barrier.wait();
        let t = Instant::now();
        std::thread::sleep(std::time::Duration::from_secs_f64(secs));
        stop.store(true, Ordering::Relaxed);
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        (total, t.elapsed().as_secs_f64())
    });
    let mt_rate = total as f64 / elapsed;
    println!(
        "  shared cache, {threads} threads: {:>8.2} Mlookup/s aggregate",
        mt_rate / 1e6
    );

    let s = e.cache_stats();
    println!(
        "  cache counters: {} hits, {} misses, {} inserts, {} evictions",
        s.hits, s.misses, s.inserts, s.evictions
    );

    // Snapshot + regression gate, plus the hard amortization invariant:
    // a warm hit that is not clearly cheaper than a cold compile means
    // the hit path is doing emission work. The threshold sits well below
    // the honest ratio (~16x) but above what any hit-runs-emission bug
    // could produce (~1x): it used to be 50x, but dual-mapped ExecMem
    // cut the *cold* side ~3x (no mmap/mprotect per compile), and the
    // gate must not punish the cold path for getting faster.
    let mut failures = Vec::new();
    for (name, value, gate) in [
        ("cache_amortize/cold_compile_ns", cold_ns, true),
        ("cache_amortize/warm_hit_ns", warm_ns, true),
        // Throughput: bigger is better, so the bigger-is-worse ns gate
        // does not apply; recorded for the snapshot only.
        ("cache_amortize/mt_mlookups_per_s", mt_rate / 1e6, false),
    ] {
        snapshot::record(name, value);
        if gate {
            failures.extend(snapshot::check(name, value));
        }
    }
    if ratio < 5.0 {
        failures.push(format!(
            "cache_amortize: warm hit only {ratio:.1}x cheaper than cold compile \
             (cold {cold_ns:.0} ns, warm {warm_ns:.0} ns, need >=5x)"
        ));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("{f}");
        }
        std::process::exit(1);
    }
}
