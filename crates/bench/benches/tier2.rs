//! Tier-2 recompilation: what the optimizing tier costs and what it
//! buys, measured over the DPF/ASH hot-loop corpus (the recorded-IR
//! kernels a demux/transfer server actually runs hot).
//!
//! Three questions, three metrics:
//!
//! - **Cost** — `tier2/compile_ns_per_insn`: optimize + linear-scan
//!   replay time per source instruction. Tier-2 runs on a background
//!   worker, so this is latency-to-upgrade, not caller stall; it is
//!   still held to the snapshot's 20% fence so the optimizer cannot
//!   quietly become a second DCG.
//! - **Static win** — `tier2/insns_eliminated_pct`: executable
//!   instructions removed from the recorded IR by peephole + layout.
//! - **Dynamic win** — `tier2/sim_cycle_reduction_pct`: executed-cycle
//!   reduction tier-1 vs tier-2 on the MIPS simulator (deterministic
//!   machine model, so this number is exact, not a timing). CI runs
//!   this binary as a gate: aggregate reduction below 10% — the tier
//!   stopped paying for itself — fails the run with exit 1, as does any
//!   cross-tier result divergence.
//!
//! A native x86-64 wall-clock comparison of the same corpus is printed
//! and recorded (`tier2/x64_speedup`) but not gated: on a shared 1-core
//! host the sim cycle counts are the trustworthy signal.

use std::time::Instant;
use vcode::engine::{replay, Backend, Program};
use vcode::tier2;
use vcode_bench::snapshot;
use vcode_mips::Mips;
use vcode_x64::X64Backend;

/// Simulator step budget per corpus run (largest kernel: ~256
/// iterations of a ~40-instruction body).
const FUEL: u64 = 50_000_000;

/// Tier-1 MIPS image: straight transliteration of the recorded IR.
fn mips_tier1(p: &Program) -> Vec<u8> {
    let mut mem = vec![0u8; p.code_capacity()];
    let fin = replay::<Mips>(p, &mut mem).expect("tier-1 replay");
    mem.truncate(fin.len);
    mem
}

/// Tier-2 MIPS image: peephole + layout + linear-scan replay.
fn mips_tier2(p: &Program) -> Vec<u8> {
    let (opt, _) = tier2::optimize(p);
    let mut mem = vec![0u8; opt.code_capacity()];
    let fin = tier2::replay_opt::<Mips>(&opt, &mut mem).expect("tier-2 replay");
    mem.truncate(fin.len);
    mem
}

/// Runs a MIPS image on a fresh simulator; returns (result, cycles).
fn sim_run(code: &[u8], input: &[i32]) -> (i64, u64) {
    let mut m = vcode_sim::mips::Machine::new(1 << 21);
    let entry = m.load_code(code).expect("load");
    let args: Vec<u32> = input.iter().map(|&v| v as u32).collect();
    let r = m.call(entry, &args, FUEL).expect("sim run");
    (i64::from(r as i32), m.stats().cycles)
}

/// Best-of-rounds wall time per call of `f`, in nanoseconds.
fn best_ns(mut f: impl FnMut(), iters: u32, rounds: u32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t.elapsed().as_nanos() as f64 / f64::from(iters));
    }
    best
}

fn main() {
    let (iters, rounds) = if snapshot::smoke() {
        (64, 4)
    } else {
        (256, 12)
    };
    let corpus: Vec<(&str, Program, Vec<i32>)> = dpf::hotloop::corpus()
        .into_iter()
        .chain(ash::hotloop::corpus())
        .collect();

    println!("=== Tier-2 recompilation over the DPF/ASH hot-loop corpus ===");
    println!(
        "{:14} {:>8} {:>8} {:>7} {:>10} {:>10} {:>7} {:>12} {:>12}",
        "kernel",
        "insns",
        "t2 insns",
        "elim%",
        "t1 cycles",
        "t2 cycles",
        "cyc-%",
        "t1 comp ns",
        "t2 comp ns"
    );

    let x64 = X64Backend;
    let mut failures: Vec<String> = Vec::new();
    let (mut insns_in, mut insns_out) = (0u64, 0u64);
    let (mut t1_cycles, mut t2_cycles) = (0u64, 0u64);
    let (mut t1_comp_ns, mut t2_comp_ns) = (0.0f64, 0.0f64);
    let (mut x1_call_ns, mut x2_call_ns) = (0.0f64, 0.0f64);

    for (name, prog, input) in &corpus {
        let (_, stats) = tier2::optimize(prog);
        let want = prog
            .interpret(input, FUEL)
            .unwrap_or_else(|e| panic!("{name}: interpreter: {e}"));

        // Differential gate first: both tiers must agree with the
        // interpreter on the representative hot input.
        let code1 = mips_tier1(prog);
        let code2 = mips_tier2(prog);
        let (r1, c1) = sim_run(&code1, input);
        let (r2, c2) = sim_run(&code2, input);
        if r1 != want || r2 != want {
            failures.push(format!(
                "{name}: tiers diverge (interp {want}, tier-1 {r1}, tier-2 {r2})"
            ));
        }
        if c2 > c1 {
            failures.push(format!(
                "{name}: tier-2 executes MORE cycles than tier-1 ({c2} > {c1})"
            ));
        }

        // Compile cost, both tiers, best-of windows.
        let mut buf = vec![0u8; prog.code_capacity()];
        let n1 = best_ns(
            || {
                std::hint::black_box(replay::<Mips>(prog, &mut buf).expect("t1"));
            },
            iters,
            rounds,
        );
        let n2 = best_ns(
            || {
                let (o, _) = tier2::optimize(prog);
                let mut m = vec![0u8; o.code_capacity()];
                std::hint::black_box(tier2::replay_opt::<Mips>(&o, &mut m).expect("t2"));
            },
            iters,
            rounds,
        );

        // Native x86-64 wall clock for the same kernels (recorded, not
        // gated; see module docs).
        let l1 = x64.compile(prog).expect("x64 tier-1");
        let l2 = x64.compile_tier2(prog).expect("x64 tier-2");
        for (l, tier) in [(&l1, 1), (&l2, 2)] {
            let got = l.call(input).unwrap_or_else(|e| panic!("{name}: x64: {e}"));
            if got != want {
                failures.push(format!(
                    "{name}: x64 tier-{tier} returned {got}, want {want}"
                ));
            }
        }
        let w1 = best_ns(
            || {
                std::hint::black_box(l1.call(input).unwrap());
            },
            iters,
            rounds,
        );
        let w2 = best_ns(
            || {
                std::hint::black_box(l2.call(input).unwrap());
            },
            iters,
            rounds,
        );

        println!(
            "{:14} {:>8} {:>8} {:>6.1}% {:>10} {:>10} {:>6.1}% {:>12.0} {:>12.0}",
            name,
            stats.insns_in,
            stats.insns_out,
            stats.eliminated_pct(),
            c1,
            c2,
            (1.0 - c2 as f64 / c1 as f64) * 100.0,
            n1,
            n2,
        );

        insns_in += stats.insns_in as u64;
        insns_out += stats.insns_out as u64;
        t1_cycles += c1;
        t2_cycles += c2;
        t1_comp_ns += n1;
        t2_comp_ns += n2;
        x1_call_ns += w1;
        x2_call_ns += w2;
    }

    let elim_pct = (1.0 - insns_out as f64 / insns_in as f64) * 100.0;
    let cycle_pct = (1.0 - t2_cycles as f64 / t1_cycles as f64) * 100.0;
    let t1_per_insn = t1_comp_ns / insns_in as f64;
    let t2_per_insn = t2_comp_ns / insns_in as f64;
    let x64_speedup = x1_call_ns / x2_call_ns;
    println!(
        "aggregate: {elim_pct:.1}% insns eliminated, {cycle_pct:.1}% fewer sim cycles, \
         compile {t1_per_insn:.1} -> {t2_per_insn:.1} ns/insn, x64 calls {x64_speedup:.2}x"
    );

    // Snapshot + gates. Cycle counts are deterministic; the 10% floor is
    // a hard invariant, not a noise fence.
    for (name, value, fence) in [
        ("tier2/compile_ns_per_insn", t2_per_insn, true),
        ("tier2/tier1_compile_ns_per_insn", t1_per_insn, true),
        ("tier2/insns_eliminated_pct", elim_pct, false),
        ("tier2/sim_cycle_reduction_pct", cycle_pct, false),
        ("tier2/x64_speedup", x64_speedup, false),
    ] {
        snapshot::record(name, value);
        if fence {
            failures.extend(snapshot::check(name, value));
        }
    }
    if cycle_pct < 10.0 {
        failures.push(format!(
            "tier2: aggregate sim cycle reduction {cycle_pct:.1}% is below the 10% floor \
             ({t1_cycles} -> {t2_cycles} cycles)"
        ));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("{f}");
        }
        std::process::exit(1);
    }
    println!("tier-2 gate: all kernels agree across tiers; cycle floor held");
}
