//! Unified observability smoke: every backend — the three ISA
//! simulators and the native x86-64 path — must expose the shared
//! [`vcode::ExecStats`] schema with nonzero, internally consistent
//! counters after a real workload. CI runs this binary as a gate: a
//! backend whose counters go dark (all-zero stats, missing trap
//! tallies, disengaged cache model) fails the run with exit 1.
//!
//! The simulator counters are fully deterministic (same code, same
//! machine model), so they are recorded into the benchmark snapshot as
//! exact values; drift in `BENCH_codegen.json` means the executed
//! instruction stream changed.

use ash::generic::{self, fold_le_halfwords};
use ash::{reference, Step};
use vcode::target::Leaf;
use vcode::{Assembler, ExecStats, RegClass, TrapKind};
use vcode_bench::snapshot;
use vcode_sim::Cache;
use vcode_x64::{ExecMem, GuardedCall, X64};

const N: usize = 4 * 1024;
const STEPS: u64 = 50_000_000;

fn gen_code(f: &dyn Fn(&mut [u8]) -> vcode::Finished) -> Vec<u8> {
    let mut mem = vec![0u8; 8192];
    let fin = f(&mut mem);
    mem.truncate(fin.len);
    mem
}

/// Asserts the invariants every simulator's stats block must satisfy
/// after the fused checksum+swap pipeline ran cleanly.
fn check_sim(name: &str, s: &ExecStats) {
    assert!(s.insns_retired > 0, "{name}: insns_retired must be nonzero");
    assert!(s.cycles >= s.insns_retired, "{name}: cycles include stalls");
    assert_eq!(
        s.cycles,
        s.insns_retired + s.cache_stall_cycles,
        "{name}: cycle identity"
    );
    assert!(
        s.loads > 0 && s.stores > 0,
        "{name}: memory traffic counted"
    );
    assert!(s.branches > 0, "{name}: loop branches counted");
    assert!(
        s.cache_hits + s.cache_misses > 0,
        "{name}: cache model engaged"
    );
    assert_eq!(s.traps.total(), 0, "{name}: clean run tallies no traps");
}

fn main() {
    let data: Vec<u8> = (0..N).map(|i| (i * 31 + 7) as u8).collect();
    let want = reference::checksum(&data);
    let steps: [Step; 2] = [Step::Checksum, Step::Swap];

    println!("=== ExecStats schema smoke: all four backends ===");
    println!(
        "{:8} {:>10} {:>10} {:>8} {:>8} {:>9} {:>7}",
        "backend", "insns", "cycles", "loads", "stores", "hit%", "traps"
    );
    let row = |name: &str, s: &ExecStats| {
        println!(
            "{:8} {:>10} {:>10} {:>8} {:>8} {:>8.1}% {:>7}",
            name,
            s.insns_retired,
            s.cycles,
            s.loads,
            s.stores,
            s.cache_hit_ratio().unwrap_or(0.0) * 100.0,
            s.traps.total(),
        );
    };

    macro_rules! sim_stats {
        ($simmod:ident, $target:ty, $addr:ty) => {{
            let code = gen_code(&|m| generic::compile_fused::<$target>(m, &steps).unwrap());
            let mut m = vcode_sim::$simmod::Machine::new(1 << 22);
            m.dcache = Some(Cache::dec5000());
            let entry = m.load_code(&code).unwrap();
            let dst = m.alloc(N, 16).unwrap();
            let src = m.alloc(N, 16).unwrap();
            m.write(src, &data).unwrap();
            let sum = m.call(entry, &[dst, src, (N / 4) as $addr], STEPS).unwrap();
            assert_eq!(
                fold_le_halfwords(sum as u32),
                want,
                concat!(stringify!($simmod), " checksum")
            );
            m.stats()
        }};
    }

    let mips = sim_stats!(mips, vcode_mips::Mips, u32);
    let sparc = sim_stats!(sparc, vcode_sparc::Sparc, u32);
    let alpha = sim_stats!(alpha, vcode_alpha::Alpha, u64);
    for (name, s) in [("mips", &mips), ("sparc", &sparc), ("alpha", &alpha)] {
        row(name, s);
        check_sim(name, s);
        snapshot::record(&format!("exec_stats/{name}_insns"), s.insns_retired as f64);
        snapshot::record(&format!("exec_stats/{name}_cycles"), s.cycles as f64);
    }

    // Native x86-64: run a generated function cleanly, then trip one
    // deliberate illegal-instruction trap, and check the pool-backed
    // cache fields plus the guarded-call trap tally.
    let before = vcode_x64::exec_stats();
    let mut mem = ExecMem::new(4096).unwrap();
    let mut a = Assembler::<X64>::lambda(mem.as_mut_slice(), "%i%i", Leaf::Yes).unwrap();
    let (x, y) = (a.arg(0), a.arg(1));
    let t = a.getreg(RegClass::Temp).unwrap();
    a.addi(t, x, y);
    a.reti(t);
    a.end().unwrap();
    let code = mem.finalize().unwrap();
    let g = GuardedCall::new();
    assert_eq!(g.call2(&code, 40, 2), Ok(42), "x64 clean call");
    let mut ud2 = ExecMem::new(16).unwrap();
    ud2.as_mut_slice()[..2].copy_from_slice(&[0x0f, 0x0b]);
    let ud2 = ud2.finalize().unwrap();
    g.call0(&ud2).unwrap_err();
    let xs = vcode_x64::exec_stats();
    row("x64", &xs);
    assert!(
        xs.cache_hits + xs.cache_misses > before.cache_hits + before.cache_misses,
        "x64: exec-mem pool counters engaged"
    );
    assert!(
        xs.traps.count(TrapKind::IllegalInsn) > before.traps.count(TrapKind::IllegalInsn),
        "x64: guarded trap tallied"
    );
    assert_eq!(xs.insns_retired, 0, "x64: no fabricated retirement");
    assert!(
        vcode_x64::guarded_call_count() >= 2,
        "x64: guarded calls counted"
    );

    println!("all four backends expose nonzero schema-stable ExecStats");
}
