//! Table 4: cost of integrated and non-integrated memory operations.
//!
//! Rows: separate passes (modular baseline) with cold and warm caches,
//! the hand-integrated C loop, and the ASH (vcode-fused loop), for
//! copy+checksum and copy+checksum+byteswap. The paper's shape: the
//! fused pipeline wins 20–50% warm-cache and roughly 2× cold.
//! (On modern SIMD hardware the separate baseline's `memcpy` wins the
//! single-op pipeline warm; see EXPERIMENTS.md.)

use ash::{integrated, separate, Pipeline, Step};
use std::hint::black_box;
use std::time::Instant;
use vcode_bench::{criterion_group, criterion_main, Criterion, Throughput};

const MSG: usize = 16 * 1024;
const RING: usize = 4096;

fn bench(c: &mut Criterion) {
    let src: Vec<u8> = (0..MSG).map(|i| (i * 31 + 7) as u8).collect();
    let mut dst = vec![0u8; MSG];
    for steps in [vec![Step::Checksum], vec![Step::Checksum, Step::Swap]] {
        let name = if steps.len() == 1 {
            "cksum"
        } else {
            "cksum_swap"
        };
        let p = Pipeline::compile(&steps).expect("compiles");
        let mut group = c.benchmark_group(format!("table4_{name}"));
        group.throughput(Throughput::Bytes(MSG as u64));
        group.bench_function("separate", |b| {
            b.iter(|| black_box(separate(&steps, &src, &mut dst)))
        });
        group.bench_function("integrated_c", |b| {
            b.iter(|| black_box(integrated(&steps, &src, &mut dst)))
        });
        group.bench_function("ash_fused", |b| b.iter(|| black_box(p.run(&src, &mut dst))));
        group.finish();
    }

    // Paper-style table with cold rows (working set larger than LLC).
    let mut ring = vec![0u8; RING * 2 * MSG];
    for (i, b) in ring.iter_mut().enumerate() {
        *b = (i * 13 + 5) as u8;
    }
    let time_warm = |f: &mut dyn FnMut(&[u8], &mut [u8]) -> u16| {
        const REPS: u32 = 3000;
        let mut d = vec![0u8; MSG];
        let t = Instant::now();
        for _ in 0..REPS {
            black_box(f(&src, &mut d));
        }
        t.elapsed().as_secs_f64() * 1e9 / f64::from(REPS)
    };
    let mut time_cold = |f: &mut dyn FnMut(&[u8], &mut [u8]) -> u16| {
        let n = ring.len() / (2 * MSG);
        let t = Instant::now();
        for i in 0..n {
            let (a, b) = ring[i * 2 * MSG..(i + 1) * 2 * MSG].split_at_mut(MSG);
            black_box(f(a, b));
        }
        t.elapsed().as_secs_f64() * 1e9 / n as f64
    };
    println!("\n=== Table 4 analog: 16 KiB messages, ns/message ===");
    println!(
        "{:24} {:>12} {:>16}",
        "method", "copy+cksum", "copy+cksum+swap"
    );
    let mut rows: Vec<(&str, Vec<f64>)> = Vec::new();
    let cksum = vec![Step::Checksum];
    let both = vec![Step::Checksum, Step::Swap];
    let p1 = Pipeline::compile(&cksum).unwrap();
    let p2 = Pipeline::compile(&both).unwrap();
    rows.push((
        "separate, uncached",
        vec![
            time_cold(&mut |s, d| separate(&cksum, s, d)),
            time_cold(&mut |s, d| separate(&both, s, d)),
        ],
    ));
    rows.push((
        "separate",
        vec![
            time_warm(&mut |s, d| separate(&cksum, s, d)),
            time_warm(&mut |s, d| separate(&both, s, d)),
        ],
    ));
    rows.push((
        "C integrated",
        vec![
            time_warm(&mut |s, d| integrated(&cksum, s, d)),
            time_warm(&mut |s, d| integrated(&both, s, d)),
        ],
    ));
    rows.push((
        "ASH, uncached",
        vec![
            time_cold(&mut |s, d| p1.run(s, d)),
            time_cold(&mut |s, d| p2.run(s, d)),
        ],
    ));
    rows.push((
        "ASH",
        vec![
            time_warm(&mut |s, d| p1.run(s, d)),
            time_warm(&mut |s, d| p2.run(s, d)),
        ],
    ));
    for (name, v) in &rows {
        println!("{name:24} {:>12.0} {:>16.0}", v[0], v[1]);
    }
    println!(
        "\nfused-vs-separate: warm {:.2}x / {:.2}x, cold {:.2}x / {:.2}x \
         (paper: 1.2-1.5x warm, ~2x cold)",
        rows[1].1[0] / rows[4].1[0],
        rows[1].1[1] / rows[4].1[1],
        rows[0].1[0] / rows[3].1[0],
        rows[0].1[1] / rows[3].1[1],
    );
    let xs = vcode_x64::exec_stats();
    println!(
        "native ExecStats: exec-mem pool {} hits / {} misses \
         ({:.0}% reuse), {} guarded-call traps",
        xs.cache_hits,
        xs.cache_misses,
        xs.cache_hit_ratio().unwrap_or(0.0) * 100.0,
        xs.traps.total()
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
