//! Cold-start vs warm-start cost of the persistent (L2) code cache:
//! time from "decide to build a classifier" to "first packet
//! classified by native code", with and without a populated artifact
//! directory.
//!
//! This is the tentpole number for the persistent-cache PR: the paper's
//! cost model says dynamic codegen pays for itself through reuse, and
//! the L2 tier extends reuse across process restarts. Cold start
//! compiles every filter set from scratch (and stores through); warm
//! start finds verified artifacts on disk and must reach first
//! classified packet **at least 2×** faster — the bench hard-fails
//! otherwise, and `scripts/ci.sh` gates the committed snapshot on the
//! same ratio.
//!
//! Classifiers are compiled with jump tables and perfect-hash dispatch
//! disabled: those embed absolute side-table addresses and are
//! (correctly) refused by the codec, which would make the warm path
//! vacuous. Linear dispatch is position-independent and persists.

use dpf::packet::{self, PacketSpec};
use dpf::{Dpf, EngineKind, Options};
use std::time::Instant;
use vcode_bench::snapshot;

/// Position-independent codegen: persistable on every set.
fn pic_options() -> Options {
    Options {
        use_jump_tables: false,
        use_hashing: false,
        ..Options::default()
    }
}

fn port_msg(port: u16) -> Vec<u8> {
    packet::build(&PacketSpec {
        dst_port: port,
        ..PacketSpec::default()
    })
}

/// Builds, compiles, and first-classifies every filter set; returns
/// total elapsed seconds. `clear_cache` first forces L1 misses, so the
/// builds hit either the compiler (cold dir) or the disk tier (warm).
fn first_packet_pass(sets: &[(u16, u16)]) -> f64 {
    dpf::clear_cache();
    let t0 = Instant::now();
    for &(nf, base) in sets {
        let mut d = Dpf::with_options(pic_options());
        for f in packet::port_filter_set(nf, base) {
            d.insert(f);
        }
        d.compile().expect("classifier compiles");
        assert_eq!(
            d.engine(),
            Some(EngineKind::Native),
            "bench set must run native, not the interpreter"
        );
        let msg = port_msg(base);
        assert!(
            std::hint::black_box(d.classify(&msg)).is_some(),
            "first packet must classify"
        );
    }
    t0.elapsed().as_secs_f64()
}

fn main() {
    let smoke = snapshot::smoke();
    let nsets: u16 = if smoke { 3 } else { 8 };
    let nf: u16 = if smoke { 16 } else { 32 };
    let warm_reps = if smoke { 3 } else { 5 };
    let sets: Vec<(u16, u16)> = (0..nsets).map(|i| (nf, 1000 + i * 100)).collect();
    let mut failures = Vec::new();

    let dir = std::env::temp_dir().join(format!("vcode-persist-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        dpf::enable_persist(&dir).expect("artifact dir is writable"),
        "persistent tier must attach"
    );

    println!("=== Persistent code cache: cold vs warm first-classified-packet ===");
    println!("    ({nsets} filter sets x {nf} filters, linear dispatch)");

    // --- Cold: empty artifact dir. Compiles everything, stores through.
    let before = vcode::obs::persist_counters();
    let cold_s = first_packet_pass(&sets);
    let after = vcode::obs::persist_counters();
    let stored = after.stores - before.stores;
    let cold_us = cold_s * 1e6;
    println!("  cold start (compile + store-through)  {cold_us:>10.0} us");
    if stored < u64::from(nsets) {
        failures.push(format!(
            "persist: cold pass stored {stored} artifacts, expected {nsets} \
             (store-through is broken; warm numbers would be fiction)"
        ));
    }

    // --- Warm: same process, same dir, L1 cleared each rep — every
    // build must come from a verified on-disk artifact.
    let mut warm_s = f64::INFINITY;
    for _ in 0..warm_reps {
        let b = vcode::obs::persist_counters();
        let s = first_packet_pass(&sets);
        let a = vcode::obs::persist_counters();
        if a.hits - b.hits < u64::from(nsets) {
            failures.push(format!(
                "persist: warm pass loaded {} artifacts from disk, expected {nsets}",
                a.hits - b.hits
            ));
        }
        warm_s = warm_s.min(s);
    }
    let warm_us = warm_s * 1e6;
    let speedup = cold_s / warm_s;
    println!("  warm start (load + revalidate)        {warm_us:>10.0} us   ({speedup:.1}x)");

    snapshot::record("persist/cold_first_packet_us", cold_us);
    snapshot::record("persist/warm_first_packet_us", warm_us);
    snapshot::record("persist/warm_speedup", speedup);

    // The acceptance gate: warm start must be at least 2x faster.
    if warm_s * 2.0 > cold_s {
        failures.push(format!(
            "persist: warm start ({warm_us:.0} us) is not >=2x faster than \
             cold start ({cold_us:.0} us); speedup {speedup:.2}x"
        ));
    }

    let _ = std::fs::remove_dir_all(&dir);
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("{f}");
        }
        std::process::exit(1);
    }
}
