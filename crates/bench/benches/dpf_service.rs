//! Sustained classification throughput of the live DPF service
//! (`dpf::DpfService`): Mpackets/s vs filter count, update rate, and
//! thread count, plus the batch-dispatch amortization.
//!
//! The headline gate (ISSUE 8): classification throughput while filters
//! are installed/removed at a sustained rate must stay within 20% of
//! the static-filter-set baseline — the RCU hot swap may not stall the
//! data path. The gate is self-relative (measured in the same process,
//! same machine), so it holds in smoke mode too; the absolute numbers
//! are recorded in the snapshot but not fenced (throughput, not cost).
//! The per-packet ns metrics are held to the standard 20% fence.

use dpf::packet::{self, PacketSpec};
use dpf::DpfService;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use vcode_bench::snapshot;

const DST_IP: u32 = 0x0a00_0002;
const BATCH: usize = 64;

fn port_msg(port: u16) -> Vec<u8> {
    packet::build(&PacketSpec {
        dst_port: port,
        ..PacketSpec::default()
    })
}

/// A cyclic packet mix over `nf` resident filters plus 4 miss ports.
fn traffic(nf: u16, base: u16) -> Vec<Vec<u8>> {
    let span = nf + 4;
    (0..256u16).map(|i| port_msg(base + (i % span))).collect()
}

struct RunResult {
    mpps: f64,
    updates: u64,
    degraded_calls: u64,
    published: u64,
}

/// Runs `threads` batch-classifying readers for `dur`; when
/// `update_period` is set, a writer concurrently cycles one filter
/// in/out of the set (two updates per period). Returns aggregate
/// throughput and the service-counter deltas.
fn run(
    svc: &Arc<DpfService>,
    threads: usize,
    dur: Duration,
    update_period: Option<Duration>,
    msgs: &[Vec<u8>],
    churn_port: u16,
) -> RunResult {
    let stop = Arc::new(AtomicBool::new(false));
    let packets = Arc::new(AtomicU64::new(0));
    let parties = threads + 1 + usize::from(update_period.is_some());
    let barrier = Arc::new(Barrier::new(parties));
    let before = svc.stats();

    let readers: Vec<_> = (0..threads)
        .map(|t| {
            let svc = Arc::clone(svc);
            let stop = Arc::clone(&stop);
            let packets = Arc::clone(&packets);
            let barrier = Arc::clone(&barrier);
            let msgs = msgs.to_vec();
            std::thread::spawn(move || {
                let reader = svc.reader();
                let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
                let mut local = 0u64;
                let mut off = (t * 37) % refs.len();
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    let end = (off + BATCH).min(refs.len());
                    let out = reader.classify_batch(&refs[off..end]);
                    local += std::hint::black_box(&out).len() as u64;
                    off = if end == refs.len() { 0 } else { end };
                }
                packets.fetch_add(local, Ordering::SeqCst);
            })
        })
        .collect();

    let writer = update_period.map(|p| {
        let svc = Arc::clone(svc);
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            let mut updates = 0u64;
            barrier.wait();
            while !stop.load(Ordering::Relaxed) {
                let id = svc.insert(packet::tcp_port_filter(DST_IP, churn_port).unwrap());
                updates += 1;
                std::thread::sleep(p / 2);
                svc.remove(id);
                updates += 1;
                std::thread::sleep(p / 2);
            }
            updates
        })
    });

    barrier.wait();
    let t0 = Instant::now();
    std::thread::sleep(dur);
    stop.store(true, Ordering::SeqCst);
    let elapsed = t0.elapsed();
    for r in readers {
        r.join().expect("reader panicked");
    }
    let updates = writer.map_or(0, |w| w.join().expect("writer panicked"));
    let after = svc.stats();
    RunResult {
        mpps: packets.load(Ordering::SeqCst) as f64 / elapsed.as_secs_f64() / 1e6,
        updates,
        degraded_calls: after.degraded_calls - before.degraded_calls,
        published: after.published - before.published,
    }
}

/// Builds a flushed-native service over `nf` port filters.
fn service(nf: u16, base: u16, failures: &mut Vec<String>) -> Arc<DpfService> {
    let svc = Arc::new(DpfService::new());
    for f in packet::port_filter_set(nf, base) {
        svc.insert(f);
    }
    if !svc.flush(Duration::from_secs(30)) {
        failures.push(format!("dpf_service: {nf}-filter set never went native"));
    }
    svc
}

fn main() {
    let smoke = snapshot::smoke();
    let dur = Duration::from_millis(if smoke { 120 } else { 400 });
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let t_hi = 4.min(cores);
    let mut failures = Vec::new();

    println!("=== DPF live service: Mpackets/s (batch {BATCH}, cores {cores}) ===");

    // --- Filter-count sweep, static, one reader. -----------------------
    let mut static16 = f64::NAN;
    for nf in [4u16, 16, 64] {
        let svc = service(nf, 1000, &mut failures);
        let msgs = traffic(nf, 1000);
        let r = run(&svc, 1, dur, None, &msgs, 0);
        println!(
            "  static  {nf:>3} filters, 1 thread       {:>8.2} Mpkt/s",
            r.mpps
        );
        snapshot::record(&format!("dpf_service/static_f{nf}_1t_mpps"), r.mpps);
        if nf == 16 {
            static16 = r.mpps;
        }
        if r.degraded_calls > 0 {
            failures.push(format!(
                "dpf_service: static {nf}-filter run served {} degraded calls",
                r.degraded_calls
            ));
        }
    }

    // --- Thread sweep at 16 filters (clamped to cores, as in
    // par_codegen: oversubscription measures the scheduler). ------------
    let svc16 = service(16, 1000, &mut failures);
    let msgs16 = traffic(16, 1000);
    let r4 = run(&svc16, t_hi, dur, None, &msgs16, 0);
    println!(
        "  static   16 filters, {t_hi} thread(s)     {:>8.2} Mpkt/s (aggregate)",
        r4.mpps
    );
    snapshot::record("dpf_service/static_f16_4t_mpps", r4.mpps);
    snapshot::record("dpf_service/cores", cores as f64);

    // --- Update-under-traffic: the gated configuration. ----------------
    // ~1000 updates/s (insert + remove per 2 ms cycle). Every insert is
    // a cold build (fresh id -> fresh key); every remove republishes
    // warm. The 20% fence is the tentpole acceptance criterion.
    let period = Duration::from_millis(2);
    for (threads, name, baseline) in [
        (1usize, "dpf_service/update1k_f16_1t_mpps", static16),
        (t_hi, "dpf_service/update1k_f16_4t_mpps", r4.mpps),
    ] {
        let r = run(&svc16, threads, dur, Some(period), &msgs16, 9000);
        let pct = 100.0 * r.mpps / baseline;
        println!(
            "  updating 16 filters, {threads} thread(s)     {:>8.2} Mpkt/s \
             ({pct:.0}% of static, {} updates, {} generations)",
            r.mpps, r.updates, r.published
        );
        snapshot::record(name, r.mpps);
        if r.updates == 0 {
            failures.push(format!("dpf_service: {name}: writer made no updates"));
        }
        if r.published < r.updates {
            failures.push(format!(
                "dpf_service: {name}: {} updates but only {} generations published",
                r.updates, r.published
            ));
        }
        if r.mpps < 0.80 * baseline {
            failures.push(format!(
                "dpf_service: {name}: update-under-traffic throughput {:.2} Mpkt/s \
                 fell below 80% of the {:.2} Mpkt/s static baseline",
                r.mpps, baseline
            ));
        }
        svc16.flush(Duration::from_secs(30));
    }

    // --- Update-storm stress (~10k updates/s): recorded, not gated — at
    // this rate the delta windows dominate by design. --------------------
    let storm = run(
        &svc16,
        1,
        dur,
        Some(Duration::from_micros(200)),
        &msgs16,
        9000,
    );
    println!(
        "  storm    16 filters, 1 thread       {:>8.2} Mpkt/s \
         ({} updates, {} degraded calls)",
        storm.mpps, storm.updates, storm.degraded_calls
    );
    snapshot::record("dpf_service/update10k_f16_1t_mpps", storm.mpps);
    svc16.flush(Duration::from_secs(30));

    // --- Batch amortization: per-packet ns, batch vs single. -----------
    let reader = svc16.reader();
    let refs: Vec<&[u8]> = msgs16.iter().map(|m| m.as_slice()).collect();
    let reps: u32 = if smoke { 200 } else { 2000 };
    let single_ns = {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t = Instant::now();
            for _ in 0..reps {
                for m in refs.iter().take(BATCH) {
                    std::hint::black_box(reader.classify(std::hint::black_box(m)));
                }
            }
            best = best.min(t.elapsed().as_secs_f64());
        }
        best * 1e9 / f64::from(reps) / BATCH as f64
    };
    let batch_ns = {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(reader.classify_batch(&refs[..BATCH]));
            }
            best = best.min(t.elapsed().as_secs_f64());
        }
        best * 1e9 / f64::from(reps) / BATCH as f64
    };
    println!("  single classify                     {single_ns:>8.1} ns/pkt");
    println!(
        "  batch classify ({BATCH}/call)           {batch_ns:>8.1} ns/pkt   ({:.2}x)",
        single_ns / batch_ns
    );
    for (name, value) in [
        ("dpf_service/single_ns_per_pkt", single_ns),
        ("dpf_service/batch_ns_per_pkt", batch_ns),
    ] {
        snapshot::record(name, value);
        failures.extend(snapshot::check(name, value));
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("{f}");
        }
        std::process::exit(1);
    }
}
