//! Table 3: average time to classify TCP/IP headers destined for one of
//! ten resident filters — DPF (dynamically compiled) vs the MPF- and
//! PATHFINDER-style interpreters.
//!
//! Paper numbers (DEC5000/200, µs): DPF 1.5, PATHFINDER ~15, MPF ~30 —
//! i.e. DPF ≈10× PATHFINDER-interpretation and ≈20× MPF. The absolute
//! scale here is a modern CPU's; the ratios are the reproduced shape.

use dpf::mpf::Mpf;
use dpf::packet::{self, PacketSpec};
use dpf::{Dpf, Pathfinder};
use std::hint::black_box;
use std::time::Instant;
use vcode_bench::{criterion_group, criterion_main, Criterion, Throughput};

struct Setup {
    dpf: Dpf,
    mpf: Mpf,
    pf: Pathfinder,
    packets: Vec<Vec<u8>>,
}

fn setup() -> Setup {
    let filters = packet::port_filter_set(10, 1000);
    let mut dpf = Dpf::new();
    let mut mpf = Mpf::new();
    let mut pf = Pathfinder::new();
    for f in &filters {
        dpf.insert(f.clone());
        mpf.insert(f);
        pf.insert(f.clone());
    }
    dpf.compile().expect("compiles");
    // The experiment's stream: packets for each resident filter (the
    // paper classifies messages destined for one of the ten filters).
    let packets: Vec<Vec<u8>> = (0..10)
        .map(|i| {
            packet::build(&PacketSpec {
                dst_port: 1000 + i,
                ..PacketSpec::default()
            })
        })
        .collect();
    Setup {
        dpf,
        mpf,
        pf,
        packets,
    }
}

fn bench(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("table3_classify");
    group.throughput(Throughput::Elements(1));
    group.bench_function("dpf_compiled", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % s.packets.len();
            black_box(s.dpf.classify(&s.packets[i]))
        })
    });
    group.bench_function("pathfinder_interpreted", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % s.packets.len();
            black_box(s.pf.classify(&s.packets[i]))
        })
    });
    group.bench_function("mpf_interpreted", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % s.packets.len();
            black_box(s.mpf.classify(&s.packets[i]))
        })
    });
    group.finish();

    // Paper-style row: the average of 100 000 trials.
    const TRIALS: usize = 100_000;
    let avg = |f: &dyn Fn(&[u8]) -> Option<u32>| {
        let t = Instant::now();
        for k in 0..TRIALS {
            black_box(f(&s.packets[k % s.packets.len()]));
        }
        t.elapsed().as_secs_f64() * 1e9 / TRIALS as f64
    };
    let ns_dpf = avg(&|m| s.dpf.classify(m));
    let ns_pf = avg(&|m| s.pf.classify(m));
    let ns_mpf = avg(&|m| s.mpf.classify(m));
    println!("\n=== Table 3 analog: classify one of ten TCP/IP filters ===");
    println!("  engine       ns/msg      vs DPF   (paper: PF ~10x, MPF ~20x)");
    println!("  MPF        {ns_mpf:8.1}    {:8.1}x", ns_mpf / ns_dpf);
    println!("  PATHFINDER {ns_pf:8.1}    {:8.1}x", ns_pf / ns_dpf);
    println!("  DPF        {ns_dpf:8.1}         1x");
    let c = s.dpf.compiled().unwrap();
    println!(
        "  (DPF: {} bytes of code from {} vcode insns, dispatch {:?})",
        c.code_len, c.vcode_insns, c.strategies
    );
    let xs = vcode_x64::exec_stats();
    println!(
        "  native ExecStats: exec-mem pool {} hits / {} misses \
         ({:.0}% reuse), {} guarded-call traps",
        xs.cache_hits,
        xs.cache_misses,
        xs.cache_hit_ratio().unwrap_or(0.0) * 100.0,
        xs.traps.total()
    );

    // Amortization row: per-flow setup cost with and without the
    // classifier cache. A cold compile pays trie merge + full codegen;
    // a warm `compile()` on a resident filter set is a cache hit that
    // shares the finished classifier (the many-flows-few-filter-sets
    // shape the engine's lambda cache exists for).
    let filters = packet::port_filter_set(10, 1000);
    let fresh = || {
        let mut d = Dpf::new();
        for f in &filters {
            d.insert(f.clone());
        }
        d
    };
    const SETUPS: usize = 200;
    let cold_ns = {
        let t = Instant::now();
        for _ in 0..SETUPS {
            let mut d = fresh();
            d.compile_uncached().expect("compiles");
            black_box(&d);
        }
        t.elapsed().as_secs_f64() * 1e9 / SETUPS as f64
    };
    let mut d = fresh();
    d.compile().expect("compiles"); // prime the cache
    let warm_ns = {
        let t = Instant::now();
        for _ in 0..SETUPS {
            let mut d = fresh();
            d.compile().expect("cache hit");
            black_box(&d);
        }
        t.elapsed().as_secs_f64() * 1e9 / SETUPS as f64
    };
    let cs = dpf::cache_stats();
    println!("  per-flow setup: cold compile {cold_ns:.0} ns, warm cache hit {warm_ns:.0} ns");
    println!(
        "  ({:.0}x amortization; classifier cache: {} hits, {} misses)",
        cold_ns / warm_ns,
        cs.hits,
        cs.misses
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
