//! Code-generation cost (paper §1, §5.1, Figure 2, §7).
//!
//! Claims reproduced:
//! - VCODE generates code at ~6–10 host instructions per generated
//!   instruction (reported here as ns/instruction — a handful of
//!   instructions on a ~GHz-scale machine is single-digit nanoseconds);
//! - hard-coded register names roughly halve generation cost (§5.3);
//! - VCODE is ~35× faster than DCG, which builds and consumes IR trees
//!   at runtime (§2);
//! - VCODE's bookkeeping space is labels + unresolved jumps only, while
//!   DCG's IR grows with the program (§3).

use dcg::Fun;
use std::hint::black_box;
use std::time::Instant;
use vcode::target::Leaf;
use vcode::{Assembler, BinOp, Reg, RegClass, Ty};
use vcode_bench::BODY_INSNS;
use vcode_bench::{criterion_group, criterion_main, snapshot, BatchSize, Criterion, Throughput};
use vcode_x64::X64;

/// Emits `n` VCODE instructions using allocator-assigned registers.
fn emit_vcode(mem: &mut [u8], n: usize) -> usize {
    let mut a = Assembler::<X64>::lambda(mem, "%i%i", Leaf::Yes).unwrap();
    let (x, y) = (a.arg(0), a.arg(1));
    let t = a.getreg(RegClass::Temp).unwrap();
    for i in 0..n {
        match i % 4 {
            0 => a.addi(t, x, y),
            1 => a.subii(t, t, 3),
            2 => a.xori(t, t, x),
            _ => a.muli(t, t, y),
        }
    }
    a.reti(t);
    a.end().unwrap().len
}

/// The same body with hard-coded register names (paper §5.3): constant
/// registers let the compiler fold the encoding work.
fn emit_vcode_hard(mem: &mut [u8], n: usize) -> usize {
    let mut a = Assembler::<X64>::lambda(mem, "%i%i", Leaf::Yes).unwrap();
    // Fixed physical names, resolved at (Rust) compile time.
    const T: Reg = Reg::int(10); // r10
    const X: Reg = Reg::int(7); // rdi
    const Y: Reg = Reg::int(6); // rsi
    for i in 0..n {
        match i % 4 {
            0 => a.addi(T, X, Y),
            1 => a.subii(T, T, 3),
            2 => a.xori(T, T, X),
            _ => a.muli(T, T, Y),
        }
    }
    a.reti(T);
    a.end().unwrap().len
}

/// The same computation through DCG: IR trees built, then consumed.
fn emit_dcg(mem: &mut [u8], n: usize) -> usize {
    let mut f = Fun::new("%i%i").unwrap();
    let x = f.arg(0);
    let y = f.arg(1);
    let mut t = f.binop(BinOp::Add, Ty::I, x, y);
    for i in 1..n {
        t = match i % 4 {
            1 => {
                let c = f.constl(Ty::I, 3);
                f.binop(BinOp::Sub, Ty::I, t, c)
            }
            2 => f.binop(BinOp::Xor, Ty::I, t, x),
            _ => f.binop(BinOp::Mul, Ty::I, t, y),
        };
    }
    f.ret(Ty::I, t);
    f.compile::<X64>(mem, Leaf::Yes).unwrap().len
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("codegen_cost");
    group.throughput(Throughput::Elements(BODY_INSNS as u64));
    let mut mem = vec![0u8; 64 * 1024];

    group.bench_function("vcode", |b| {
        b.iter(|| black_box(emit_vcode(&mut mem, BODY_INSNS)))
    });
    group.bench_function("vcode_hard_regs", |b| {
        b.iter(|| black_box(emit_vcode_hard(&mut mem, BODY_INSNS)))
    });
    group.bench_function("dcg", |b| {
        b.iter_batched(
            || (),
            |()| black_box(emit_dcg(&mut mem, BODY_INSNS)),
            BatchSize::SmallInput,
        )
    });
    group.finish();

    // The paper-style summary table (ns per generated VCODE instruction).
    // Best of several short windows, like the harness: the minimum is
    // the honest cost estimate on a shared machine, and it is what the
    // CI regression gate compares against the committed snapshot.
    let reps: u32 = if snapshot::smoke() { 100 } else { 500 };
    let mut measure = |f: &dyn Fn(&mut [u8], usize) -> usize| {
        for _ in 0..reps {
            black_box(f(&mut mem, BODY_INSNS)); // warmup
        }
        let mut best = f64::INFINITY;
        for _ in 0..10 {
            let t = Instant::now();
            for _ in 0..reps {
                black_box(f(&mut mem, BODY_INSNS));
            }
            best = best.min(t.elapsed().as_secs_f64());
        }
        best * 1e9 / f64::from(reps) / BODY_INSNS as f64
    };
    let ns_vcode = measure(&|m, n| emit_vcode(m, n));
    let ns_hard = measure(&|m, n| emit_vcode_hard(m, n));
    let ns_dcg = measure(&|m, n| emit_dcg(m, n));
    println!("\n=== Codegen cost (ns per generated VCODE instruction) ===");
    println!("  vcode                    {ns_vcode:8.2} ns/insn");
    println!(
        "  vcode, hard-coded regs   {ns_hard:8.2} ns/insn  ({:.2}x cheaper; paper: ~2x)",
        ns_vcode / ns_hard
    );
    println!(
        "  dcg (IR trees)           {ns_dcg:8.2} ns/insn  ({:.1}x slower than vcode; paper: ~35x)",
        ns_dcg / ns_vcode
    );

    // Codegen event stream (the obs hook): aggregate the LambdaEnd
    // metrics over one emission. These are deterministic counters —
    // instructions specified, bytes emitted, allocator spills — so they
    // land in the snapshot as exact schema-stable values.
    let agg = std::sync::Arc::new(std::sync::Mutex::new((0u64, 0u64, 0u64, 0u64)));
    let sink = std::sync::Arc::clone(&agg);
    vcode::obs::set_hook(move |ev| {
        if let vcode::CodegenEvent::LambdaEnd {
            insns,
            bytes,
            spills,
            ..
        } = *ev
        {
            let mut a = sink.lock().unwrap();
            a.0 += 1;
            a.1 += insns;
            a.2 += bytes;
            a.3 += spills;
        }
    });
    black_box(emit_vcode(&mut mem, BODY_INSNS));
    vcode::obs::clear_hook();
    let (lambdas, insns, bytes, spills) = *agg.lock().unwrap();
    assert_eq!(lambdas, 1, "one lambda/end session observed");
    assert!(insns > BODY_INSNS as u64, "body plus the return");
    println!("\n=== Codegen events (one {BODY_INSNS}-insn emission, obs hook) ===");
    println!(
        "  lambdas {lambdas}, vcode insns {insns}, bytes {bytes}, spills {spills} \
         ({:.2} machine bytes per vcode insn)",
        bytes as f64 / insns as f64
    );

    // Snapshot + regression gate (see `vcode_bench::snapshot`): CI runs
    // this bench in smoke mode against the committed BENCH_codegen.json
    // and fails on any ns/insn metric >20% over baseline.
    let metrics = [
        ("codegen_cost/vcode_ns_per_insn", ns_vcode),
        ("codegen_cost/vcode_hard_regs_ns_per_insn", ns_hard),
        ("codegen_cost/dcg_ns_per_insn", ns_dcg),
        (
            "codegen_cost/bytes_per_vcode_insn",
            bytes as f64 / insns as f64,
        ),
    ];
    let mut failures = Vec::new();
    for (name, value) in metrics {
        snapshot::record(name, value);
        failures.extend(snapshot::check(name, value));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("{f}");
        }
        std::process::exit(1);
    }

    // Space behaviour (paper §3): VCODE keeps labels + unresolved jumps;
    // DCG's intermediate representation is proportional to program size.
    let mut a = Assembler::<X64>::lambda(&mut mem, "%i%i", Leaf::Yes).unwrap();
    let (x, y) = (a.arg(0), a.arg(1));
    let t = a.getreg(RegClass::Temp).unwrap();
    for _ in 0..BODY_INSNS {
        a.addi(t, x, y);
    }
    a.reti(t);
    let vcode_aux = a.aux_bytes();
    drop(a.end());
    let mut f = Fun::new("%i%i").unwrap();
    let x = f.arg(0);
    let y = f.arg(1);
    let mut t = f.binop(BinOp::Add, Ty::I, x, y);
    for _ in 1..BODY_INSNS {
        t = f.binop(BinOp::Add, Ty::I, t, y);
    }
    f.ret(Ty::I, t);
    let dcg_ir = f.ir_bytes();
    println!("\n=== Space for a {BODY_INSNS}-instruction function ===");
    println!("  vcode bookkeeping  {vcode_aux:8} bytes (labels + unresolved jumps)");
    println!(
        "  dcg IR             {dcg_ir:8} bytes ({:.0}x; grows with program size)",
        dcg_ir as f64 / vcode_aux.max(1) as f64
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
