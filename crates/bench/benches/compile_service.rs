//! The async compile service: warm-up latency, degradation-ladder
//! economics, and load shedding under a submit flood.
//!
//! Three questions a serve-while-compiling engine must answer with
//! numbers:
//!
//! - **warm-up latency**: how long after `compile_async` does native
//!   code publish? (The window in which requests ride the interpreter.)
//! - **fallback-vs-native crossover**: the interpreter serves at some
//!   multiple of native cost; dividing the cold-compile cost by that
//!   per-call penalty gives the call count below which blocking on the
//!   compiler would have been *faster* than degrading — the economic
//!   justification for the ladder.
//! - **load shedding**: a flood of submits against a small queue must
//!   come back typed (`Shed`), never blocked — and the service must
//!   still publish everything it accepted.

use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vcode::engine::{Engine, Program, TargetId};
use vcode::{BinOp, CacheKey, CompileService, LambdaCache, ServiceConfig, Submit};
use vcode_bench::snapshot;

/// A `body`-instruction straight-line program, distinct per `salt`.
fn prog(salt: i32, body: usize) -> Program {
    let mut p = Program::new(2).unwrap();
    p.bin(BinOp::Add, 2, 0, 1);
    for i in 0..body {
        match i % 3 {
            0 => p.bin_imm(BinOp::Xor, 2, 2, salt),
            1 => p.bin(BinOp::Add, 2, 2, 0),
            _ => p.bin_imm(BinOp::And, 2, 2, 0x7fff_fffe),
        }
    }
    p.ret(2);
    p
}

/// Best-of-windows ns per op for `f`.
fn measure(reps: u32, windows: u32, mut f: impl FnMut()) -> f64 {
    for _ in 0..reps {
        f(); // warmup
    }
    let mut best = f64::INFINITY;
    for _ in 0..windows {
        let t = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64());
    }
    best * 1e9 / f64::from(reps)
}

fn main() {
    let smoke = snapshot::smoke();
    let reps: u32 = if smoke { 200 } else { 2000 };
    let body = 128usize;
    let mut failures = Vec::new();

    let mut e = Engine::new(256);
    e.register(Arc::new(vcode_x64::X64Backend));
    println!("=== Compile service (x64 backend, {body}-insn programs) ===");

    // --- Warm-up latency: compile_async → native publish. -------------
    let rounds = if smoke { 5 } else { 20 };
    let mut best_us = f64::INFINITY;
    for salt in 0..rounds {
        let p = prog(1000 + salt, body);
        let t = Instant::now();
        let h = e.compile_async(TargetId::X64, &p).unwrap();
        while !h.native_ready() {
            std::hint::spin_loop();
            if t.elapsed() > Duration::from_secs(10) {
                failures.push("compile_service: background build never published".into());
                break;
            }
        }
        best_us = best_us.min(t.elapsed().as_secs_f64() * 1e6);
    }
    println!("  warm-up latency (submit -> native)  {best_us:>10.1} us");

    // --- Warm submit: the Ready fast path. -----------------------------
    let p = prog(1, body);
    e.compile_cached(TargetId::X64, &p).unwrap();
    let submit_ns = measure(reps * 5, 10, || {
        black_box(e.compile_async(TargetId::X64, black_box(&p)).unwrap());
    });
    println!("  warm submit (Ready fast path)       {submit_ns:>10.1} ns");

    // --- Fallback-vs-native crossover. ---------------------------------
    let native = e.compile_cached(TargetId::X64, &p).unwrap();
    let native_ns = measure(reps * 5, 10, || {
        black_box(native.call(black_box(&[3, 4])).unwrap());
    });
    let interp_ns = measure(reps, 10, || {
        black_box(p.interpret(black_box(&[3, 4]), 1 << 20).unwrap());
    });
    let cold_ns = measure(reps, 10, || {
        black_box(e.compile(TargetId::X64, black_box(&p)).unwrap());
    });
    let penalty = (interp_ns - native_ns).max(1.0);
    let crossover = cold_ns / penalty;
    println!("  native call                         {native_ns:>10.1} ns");
    println!(
        "  degraded (interpreted) call         {interp_ns:>10.1} ns   ({:.0}x native)",
        interp_ns / native_ns
    );
    println!("  crossover: degrading wins past      {crossover:>10.1} calls in the build window");
    if native_ns >= interp_ns {
        failures.push(format!(
            "compile_service: interpreter ({interp_ns:.0} ns) not slower than native \
             ({native_ns:.0} ns) — the ladder is measuring the wrong thing"
        ));
    }

    // --- Load shedding under a submit flood. ---------------------------
    // Slow builders, one worker, a 4-deep queue: most of a 64-key flood
    // must shed, every outcome must be typed, and the service must still
    // resolve everything it accepted.
    let sv: CompileService<u64> = CompileService::new(
        Arc::new(LambdaCache::new(256)),
        ServiceConfig {
            workers: 1,
            queue_depth: 4,
            deadline: Duration::from_secs(5),
            ..ServiceConfig::default()
        },
    );
    let flood = 64u64;
    let (mut queued, mut shed) = (0u64, 0u64);
    for n in 0..flood {
        match sv.submit(CacheKey::from_client_hash(TargetId::X64, n), move || {
            std::thread::sleep(Duration::from_millis(2));
            Ok(Arc::new(n))
        }) {
            Submit::Queued => queued += 1,
            Submit::Shed => shed += 1,
            Submit::InFlight | Submit::Ready(_) | Submit::Quarantined { .. } => {}
        }
    }
    if !sv.wait_idle(Duration::from_secs(30)) {
        failures.push("compile_service: flood never drained".into());
    }
    let st = sv.stats();
    println!(
        "  flood of {flood}: {queued} queued, {shed} shed \
         (queue depth 4, peak {})",
        st.queue_depth_peak
    );
    if shed == 0 {
        failures.push("compile_service: flood past queue depth must shed".into());
    }
    if st.enqueued != st.completed + st.failed + st.panicked + st.deadline_expired {
        failures.push(format!(
            "compile_service: accepted builds not all resolved: {st:?}"
        ));
    }

    // Snapshot + regression gates. Latency/crossover are recorded but
    // not gated (scheduler-dependent); the per-call costs are held to
    // the standard 20% fence.
    snapshot::record("compile_service/warmup_latency_us", best_us);
    snapshot::record("compile_service/crossover_calls", crossover);
    for (name, value) in [
        ("compile_service/warm_submit_ns", submit_ns),
        ("compile_service/native_call_ns", native_ns),
        ("compile_service/degraded_call_ns", interp_ns),
    ] {
        snapshot::record(name, value);
        failures.extend(snapshot::check(name, value));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("{f}");
        }
        std::process::exit(1);
    }
}
