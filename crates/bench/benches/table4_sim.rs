//! Table 4 replayed on the *simulated* paper machine: the fused and
//! separate pipelines generated for MIPS, executed by the instruction-set
//! simulator with the DECstation 3100 / 5000 cache models, reported in
//! deterministic cycles. This removes the modern-SIMD confound of the
//! native Table 4 run (see EXPERIMENTS.md): both competitors execute
//! scalar MIPS code, as on the paper's hardware.

use ash::generic::{self, fold_le_halfwords};
use ash::{reference, Step};
use vcode_mips::Mips;
use vcode_sim::mips::Machine;
use vcode_sim::Cache;

const MSG: usize = 16 * 1024;
const STEPS: u64 = 50_000_000;

struct SimSetup {
    m: Machine,
    fused_ck: u32,
    fused_both: u32,
    copy: u32,
    cksum: u32,
    swap: u32,
    src: u32,
    dst: u32,
}

fn setup(cache: Option<Cache>) -> SimSetup {
    let gen = |f: &dyn Fn(&mut [u8]) -> vcode::Finished| {
        let mut mem = vec![0u8; 8192];
        let fin = f(&mut mem);
        mem.truncate(fin.len);
        mem
    };
    let fused_ck = gen(&|m| generic::compile_fused::<Mips>(m, &[Step::Checksum]).unwrap());
    let fused_both =
        gen(&|m| generic::compile_fused::<Mips>(m, &[Step::Checksum, Step::Swap]).unwrap());
    let copy = gen(&|m| generic::compile_copy::<Mips>(m).unwrap());
    let cksum = gen(&|m| generic::compile_cksum::<Mips>(m).unwrap());
    let swap = gen(&|m| generic::compile_swap::<Mips>(m).unwrap());
    let mut m = Machine::new(1 << 22);
    m.strict_load_delay = true;
    m.dcache = cache;
    let fused_ck = m.load_code(&fused_ck).unwrap();
    let fused_both = m.load_code(&fused_both).unwrap();
    let copy = m.load_code(&copy).unwrap();
    let cksum = m.load_code(&cksum).unwrap();
    let swap = m.load_code(&swap).unwrap();
    let src = m.alloc(MSG, 16).unwrap();
    let dst = m.alloc(MSG, 16).unwrap();
    let data: Vec<u8> = (0..MSG).map(|i| (i * 31 + 7) as u8).collect();
    m.write(src, &data).unwrap();
    SimSetup {
        m,
        fused_ck,
        fused_both,
        copy,
        cksum,
        swap,
        src,
        dst,
    }
}

impl SimSetup {
    fn flush(&mut self) {
        if let Some(c) = &mut self.m.dcache {
            c.flush();
        }
    }

    fn cycles(&mut self, f: impl FnOnce(&mut Machine)) -> u64 {
        let before = self.m.cycles();
        f(&mut self.m);
        self.m.cycles() - before
    }

    fn run_fused(&mut self, both: bool) -> (u64, u16) {
        let entry = if both { self.fused_both } else { self.fused_ck };
        let (src, dst) = (self.src, self.dst);
        let mut sum = 0;
        let cyc = self.cycles(|m| {
            sum = m.call(entry, &[dst, src, (MSG / 4) as u32], STEPS).unwrap();
        });
        (cyc, fold_le_halfwords(sum))
    }

    fn run_separate(&mut self, both: bool) -> (u64, u16) {
        let (src, dst, copy, cksum, swap) = (self.src, self.dst, self.copy, self.cksum, self.swap);
        let mut sum = 0;
        let cyc = self.cycles(|m| {
            m.call(copy, &[dst, src, (MSG / 4) as u32], STEPS).unwrap();
            sum = m.call(cksum, &[dst, (MSG / 4) as u32], STEPS).unwrap();
            if both {
                m.call(swap, &[dst, (MSG / 4) as u32], STEPS).unwrap();
            }
        });
        (cyc, fold_le_halfwords(sum))
    }
}

/// The fused pipeline replayed on *every* simulated backend with the
/// DEC5000 cache model: one row per ISA from the unified
/// [`vcode::ExecStats`] surface — retired instructions, cycles, cache
/// hit ratio, delay-slot fills and division-routine calls.
fn cross_backend_stats() {
    use vcode::ExecStats;

    const N: usize = 4 * 1024;
    let data: Vec<u8> = (0..N).map(|i| (i * 31 + 7) as u8).collect();
    let want = reference::checksum(&data);
    let steps: [Step; 2] = [Step::Checksum, Step::Swap];
    let gen = |f: &dyn Fn(&mut [u8]) -> vcode::Finished| {
        let mut mem = vec![0u8; 8192];
        let fin = f(&mut mem);
        mem.truncate(fin.len);
        mem
    };

    let mips_stats = {
        let code = gen(&|m| generic::compile_fused::<Mips>(m, &steps).unwrap());
        let mut m = Machine::new(1 << 22);
        m.dcache = Some(Cache::dec5000());
        let entry = m.load_code(&code).unwrap();
        let dst = m.alloc(N, 16).unwrap();
        let src = m.alloc(N, 16).unwrap();
        m.write(src, &data).unwrap();
        let sum = m.call(entry, &[dst, src, (N / 4) as u32], STEPS).unwrap();
        assert_eq!(fold_le_halfwords(sum), want, "mips checksum");
        m.stats()
    };
    let sparc_stats = {
        let code = gen(&|m| generic::compile_fused::<vcode_sparc::Sparc>(m, &steps).unwrap());
        let mut m = vcode_sim::sparc::Machine::new(1 << 22);
        m.dcache = Some(Cache::dec5000());
        let entry = m.load_code(&code).unwrap();
        let dst = m.alloc(N, 16).unwrap();
        let src = m.alloc(N, 16).unwrap();
        m.write(src, &data).unwrap();
        let sum = m.call(entry, &[dst, src, (N / 4) as u32], STEPS).unwrap();
        assert_eq!(fold_le_halfwords(sum), want, "sparc checksum");
        m.stats()
    };
    let (alpha_stats, alpha_divs) = {
        let code = gen(&|m| generic::compile_fused::<vcode_alpha::Alpha>(m, &steps).unwrap());
        let mut m = vcode_sim::alpha::Machine::new(1 << 22);
        m.dcache = Some(Cache::dec5000());
        let entry = m.load_code(&code).unwrap();
        let dst = m.alloc(N, 16).unwrap();
        let src = m.alloc(N, 16).unwrap();
        m.write(src, &data).unwrap();
        let sum = m.call(entry, &[dst, src, (N / 4) as u64], STEPS).unwrap();
        assert_eq!(fold_le_halfwords(sum as u32), want, "alpha checksum");
        (m.stats(), m.div_calls)
    };

    println!("\n=== Fused pipeline, every simulated backend (DEC5000 dcache, 4 KiB msg) ===");
    println!(
        "{:8} {:>10} {:>10} {:>7} {:>9} {:>10} {:>9}",
        "backend", "insns", "cycles", "cpi", "hit%", "slotfills", "divcalls"
    );
    let row = |name: &str, s: &ExecStats, divs: u64| {
        println!(
            "{:8} {:>10} {:>10} {:>7.3} {:>8.1}% {:>10} {:>9}",
            name,
            s.insns_retired,
            s.cycles,
            s.cycles_per_insn().unwrap_or(0.0),
            s.cache_hit_ratio().unwrap_or(0.0) * 100.0,
            s.delay_slot_fills,
            divs,
        );
    };
    row("mips", &mips_stats, 0);
    row("sparc", &sparc_stats, 0);
    row("alpha", &alpha_stats, alpha_divs);
    for (name, s) in [
        ("mips", &mips_stats),
        ("sparc", &sparc_stats),
        ("alpha", &alpha_stats),
    ] {
        assert!(s.insns_retired > 0 && s.cycles >= s.insns_retired, "{name}");
        assert!(s.loads > 0 && s.stores > 0, "{name} load/store counters");
        assert!(
            s.cache_hits + s.cache_misses > 0,
            "{name} cache model engaged"
        );
    }
}

fn main() {
    println!("=== Table 4 on the simulated machines (cycles / 16 KiB message) ===");
    let expect: Vec<u8> = (0..MSG).map(|i| (i * 31 + 7) as u8).collect();
    let want = reference::checksum(&expect);
    for (machine, cache) in [
        ("DEC3100-like", Cache::dec3100()),
        ("DEC5000-like", Cache::dec5000()),
    ] {
        println!("\n{machine} (64 KiB direct-mapped dcache):");
        println!(
            "{:22} {:>12} {:>16}",
            "method", "copy+cksum", "copy+cksum+swap"
        );
        let mut rows: Vec<(&str, Vec<u64>)> = vec![
            ("separate, uncached", vec![]),
            ("separate, cached", vec![]),
            ("ASH, uncached", vec![]),
            ("ASH, cached", vec![]),
        ];
        for both in [false, true] {
            let mut s = setup(Some(cache.clone()));
            // Uncached: first touch after a flush.
            s.flush();
            let (cyc, ck) = s.run_separate(both);
            assert_eq!(ck, want, "separate checksum correct");
            rows[0].1.push(cyc);
            // Cached: run again warm.
            let (cyc, _) = s.run_separate(both);
            rows[1].1.push(cyc);
            s.flush();
            let (cyc, ck) = s.run_fused(both);
            assert_eq!(ck, want, "fused checksum correct");
            rows[2].1.push(cyc);
            let (cyc, _) = s.run_fused(both);
            rows[3].1.push(cyc);
        }
        for (name, v) in &rows {
            println!("{name:22} {:>12} {:>16}", v[0], v[1]);
        }
        println!(
            "fused-vs-separate: cached {:.2}x / {:.2}x, uncached {:.2}x / {:.2}x \
             (paper: 1.2-1.5x cached, ~2x flushed)",
            rows[1].1[0] as f64 / rows[3].1[0] as f64,
            rows[1].1[1] as f64 / rows[3].1[1] as f64,
            rows[0].1[0] as f64 / rows[2].1[0] as f64,
            rows[0].1[1] as f64 / rows[2].1[1] as f64,
        );
    }
    cross_backend_stats();
}
