//! Table 4 replayed on the *simulated* paper machine: the fused and
//! separate pipelines generated for MIPS, executed by the instruction-set
//! simulator with the DECstation 3100 / 5000 cache models, reported in
//! deterministic cycles. This removes the modern-SIMD confound of the
//! native Table 4 run (see EXPERIMENTS.md): both competitors execute
//! scalar MIPS code, as on the paper's hardware.

use ash::generic::{self, fold_le_halfwords};
use ash::{reference, Step};
use vcode_mips::Mips;
use vcode_sim::mips::Machine;
use vcode_sim::Cache;

const MSG: usize = 16 * 1024;
const STEPS: u64 = 50_000_000;

struct SimSetup {
    m: Machine,
    fused_ck: u32,
    fused_both: u32,
    copy: u32,
    cksum: u32,
    swap: u32,
    src: u32,
    dst: u32,
}

fn setup(cache: Option<Cache>) -> SimSetup {
    let gen = |f: &dyn Fn(&mut [u8]) -> vcode::Finished| {
        let mut mem = vec![0u8; 8192];
        let fin = f(&mut mem);
        mem.truncate(fin.len);
        mem
    };
    let fused_ck = gen(&|m| generic::compile_fused::<Mips>(m, &[Step::Checksum]).unwrap());
    let fused_both =
        gen(&|m| generic::compile_fused::<Mips>(m, &[Step::Checksum, Step::Swap]).unwrap());
    let copy = gen(&|m| generic::compile_copy::<Mips>(m).unwrap());
    let cksum = gen(&|m| generic::compile_cksum::<Mips>(m).unwrap());
    let swap = gen(&|m| generic::compile_swap::<Mips>(m).unwrap());
    let mut m = Machine::new(1 << 22);
    m.strict_load_delay = true;
    m.dcache = cache;
    let fused_ck = m.load_code(&fused_ck);
    let fused_both = m.load_code(&fused_both);
    let copy = m.load_code(&copy);
    let cksum = m.load_code(&cksum);
    let swap = m.load_code(&swap);
    let src = m.alloc(MSG, 16);
    let dst = m.alloc(MSG, 16);
    let data: Vec<u8> = (0..MSG).map(|i| (i * 31 + 7) as u8).collect();
    m.write(src, &data);
    SimSetup {
        m,
        fused_ck,
        fused_both,
        copy,
        cksum,
        swap,
        src,
        dst,
    }
}

impl SimSetup {
    fn flush(&mut self) {
        if let Some(c) = &mut self.m.dcache {
            c.flush();
        }
    }

    fn cycles(&mut self, f: impl FnOnce(&mut Machine)) -> u64 {
        let before = self.m.cycles();
        f(&mut self.m);
        self.m.cycles() - before
    }

    fn run_fused(&mut self, both: bool) -> (u64, u16) {
        let entry = if both { self.fused_both } else { self.fused_ck };
        let (src, dst) = (self.src, self.dst);
        let mut sum = 0;
        let cyc = self.cycles(|m| {
            sum = m.call(entry, &[dst, src, (MSG / 4) as u32], STEPS).unwrap();
        });
        (cyc, fold_le_halfwords(sum))
    }

    fn run_separate(&mut self, both: bool) -> (u64, u16) {
        let (src, dst, copy, cksum, swap) = (self.src, self.dst, self.copy, self.cksum, self.swap);
        let mut sum = 0;
        let cyc = self.cycles(|m| {
            m.call(copy, &[dst, src, (MSG / 4) as u32], STEPS).unwrap();
            sum = m.call(cksum, &[dst, (MSG / 4) as u32], STEPS).unwrap();
            if both {
                m.call(swap, &[dst, (MSG / 4) as u32], STEPS).unwrap();
            }
        });
        (cyc, fold_le_halfwords(sum))
    }
}

fn main() {
    println!("=== Table 4 on the simulated machines (cycles / 16 KiB message) ===");
    let expect: Vec<u8> = (0..MSG).map(|i| (i * 31 + 7) as u8).collect();
    let want = reference::checksum(&expect);
    for (machine, cache) in [
        ("DEC3100-like", Cache::dec3100()),
        ("DEC5000-like", Cache::dec5000()),
    ] {
        println!("\n{machine} (64 KiB direct-mapped dcache):");
        println!(
            "{:22} {:>12} {:>16}",
            "method", "copy+cksum", "copy+cksum+swap"
        );
        let mut rows: Vec<(&str, Vec<u64>)> = vec![
            ("separate, uncached", vec![]),
            ("separate, cached", vec![]),
            ("ASH, uncached", vec![]),
            ("ASH, cached", vec![]),
        ];
        for both in [false, true] {
            let mut s = setup(Some(cache.clone()));
            // Uncached: first touch after a flush.
            s.flush();
            let (cyc, ck) = s.run_separate(both);
            assert_eq!(ck, want, "separate checksum correct");
            rows[0].1.push(cyc);
            // Cached: run again warm.
            let (cyc, _) = s.run_separate(both);
            rows[1].1.push(cyc);
            s.flush();
            let (cyc, ck) = s.run_fused(both);
            assert_eq!(ck, want, "fused checksum correct");
            rows[2].1.push(cyc);
            let (cyc, _) = s.run_fused(both);
            rows[3].1.push(cyc);
        }
        for (name, v) in &rows {
            println!("{name:22} {:>12} {:>16}", v[0], v[1]);
        }
        println!(
            "fused-vs-separate: cached {:.2}x / {:.2}x, uncached {:.2}x / {:.2}x \
             (paper: 1.2-1.5x cached, ~2x flushed)",
            rows[1].1[0] as f64 / rows[3].1[0] as f64,
            rows[1].1[1] as f64 / rows[3].1[1] as f64,
            rows[0].1[0] as f64 / rows[2].1[0] as f64,
            rows[0].1[1] as f64 / rows[2].1[1] as f64,
        );
    }
}
