//! Cost of the streaming verifier (DESIGN.md "Static checking").
//!
//! Two claims are gated here:
//! - verifier **off** is the production fast path: its ns/insn must stay
//!   inside the same 20% regression fence as `codegen_cost` (it is the
//!   identical emission loop, plus one `Option` discriminant test per
//!   instruction);
//! - verifier **on** is reported (and recorded in the snapshot) so the
//!   check cost stays visible, but it is not failed on — diagnostics
//!   formatting and mark collection are allowed to cost what they cost.

use std::hint::black_box;
use std::time::Instant;
use vcode::target::Leaf;
use vcode::{Assembler, RegClass};
use vcode_bench::BODY_INSNS;
use vcode_bench::{criterion_group, criterion_main, snapshot, Criterion, Throughput};
use vcode_x64::X64;

fn emit(mem: &mut [u8], n: usize, verified: bool) -> usize {
    let mut a = Assembler::<X64>::lambda(mem, "%i%i", Leaf::Yes).unwrap();
    if verified {
        a.enable_verifier();
    }
    let (x, y) = (a.arg(0), a.arg(1));
    let t = a.getreg(RegClass::Temp).unwrap();
    for i in 0..n {
        match i % 4 {
            0 => a.addi(t, x, y),
            1 => a.subii(t, t, 3),
            2 => a.xori(t, t, x),
            _ => a.muli(t, t, y),
        }
    }
    a.putreg(t);
    a.reti(t);
    a.end().unwrap().len
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_overhead");
    group.throughput(Throughput::Elements(BODY_INSNS as u64));
    let mut mem = vec![0u8; 64 * 1024];
    group.bench_function("off", |b| {
        b.iter(|| black_box(emit(&mut mem, BODY_INSNS, false)))
    });
    group.bench_function("on", |b| {
        b.iter(|| black_box(emit(&mut mem, BODY_INSNS, true)))
    });
    group.finish();

    // Same best-of-windows floor estimate as codegen_cost.
    let reps: u32 = if snapshot::smoke() { 100 } else { 500 };
    let mut measure = |verified: bool| {
        for _ in 0..reps {
            black_box(emit(&mut mem, BODY_INSNS, verified));
        }
        let mut best = f64::INFINITY;
        for _ in 0..10 {
            let t = Instant::now();
            for _ in 0..reps {
                black_box(emit(&mut mem, BODY_INSNS, verified));
            }
            best = best.min(t.elapsed().as_secs_f64());
        }
        best * 1e9 / f64::from(reps) / BODY_INSNS as f64
    };
    let ns_off = measure(false);
    let ns_on = measure(true);
    println!("\n=== Streaming verifier overhead (ns per vcode instruction) ===");
    println!("  verifier off   {ns_off:8.2} ns/insn  (production fast path)");
    println!(
        "  verifier on    {ns_on:8.2} ns/insn  ({:.2}x; checks + mark stream)",
        ns_on / ns_off
    );

    snapshot::record("verify_overhead/off_ns_per_insn", ns_off);
    snapshot::record("verify_overhead/on_ns_per_insn", ns_on);
    // Only the off path is a regression gate; the on path is recorded
    // for trend visibility.
    let failures = snapshot::check("verify_overhead/off_ns_per_insn", ns_off);
    if let Some(f) = failures {
        eprintln!("{f}");
        std::process::exit(1);
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
