//! Ablations of the design choices DESIGN.md calls out:
//!
//! - DPF dispatch strategies (jump tables / hashing / bounds-check
//!   elision toggled off);
//! - ASH loop unrolling;
//! - per-target emission speed (retargetability: the emitters stay in
//!   the same cost class across ISAs);
//! - the Alpha byte-operation synthesis cost (paper §6.2) measured in
//!   simulated instructions;
//! - tcc end-to-end compile throughput.

use dpf::packet::{self, PacketSpec};
use dpf::{Dpf, Options};
use std::hint::black_box;
use std::time::Instant;
use vcode::target::{Leaf, Target};
use vcode::{Assembler, RegClass};
use vcode_bench::BODY_INSNS;
use vcode_bench::{criterion_group, criterion_main, Criterion};

fn emit_body<T: Target>(mem: &mut [u8]) -> usize {
    let mut a = Assembler::<T>::lambda(mem, "%i%i", Leaf::Yes).unwrap();
    let (x, y) = (a.arg(0), a.arg(1));
    let t = a.getreg(RegClass::Temp).unwrap();
    for i in 0..BODY_INSNS {
        match i % 4 {
            0 => a.addi(t, x, y),
            1 => a.subii(t, t, 3),
            2 => a.xori(t, t, x),
            _ => a.andii(t, t, 0xff),
        }
    }
    a.reti(t);
    a.end().unwrap().len
}

fn bench(c: &mut Criterion) {
    // --- Retargetability: emission cost per target. ---
    let mut mem = vec![0u8; 64 * 1024];
    let mut group = c.benchmark_group("emit_per_target");
    group.bench_function("x64", |b| {
        b.iter(|| black_box(emit_body::<vcode_x64::X64>(&mut mem)))
    });
    group.bench_function("mips", |b| {
        b.iter(|| black_box(emit_body::<vcode_mips::Mips>(&mut mem)))
    });
    group.bench_function("sparc", |b| {
        b.iter(|| black_box(emit_body::<vcode_sparc::Sparc>(&mut mem)))
    });
    group.bench_function("alpha", |b| {
        b.iter(|| black_box(emit_body::<vcode_alpha::Alpha>(&mut mem)))
    });
    group.finish();

    // --- DPF dispatch-strategy ablation. ---
    let filters = packet::port_filter_set(10, 1000);
    let packets: Vec<Vec<u8>> = (0..10)
        .map(|i| {
            packet::build(&PacketSpec {
                dst_port: 1000 + i,
                ..PacketSpec::default()
            })
        })
        .collect();
    let variants: [(&str, Options); 3] = [
        ("full", Options::default()),
        (
            "no_jump_tables",
            Options {
                use_jump_tables: false,
                ..Options::default()
            },
        ),
        (
            "no_elision_no_tables",
            Options {
                use_jump_tables: false,
                use_hashing: false,
                elide_bounds_checks: false,
                ..Options::default()
            },
        ),
    ];
    println!("\n=== DPF dispatch ablation (ns/classification) ===");
    for (name, opts) in variants {
        let mut d = Dpf::with_options(opts);
        for f in &filters {
            d.insert(f.clone());
        }
        d.compile().unwrap();
        const TRIALS: usize = 200_000;
        let t = Instant::now();
        for k in 0..TRIALS {
            black_box(d.classify(&packets[k % packets.len()]));
        }
        let ns = t.elapsed().as_secs_f64() * 1e9 / TRIALS as f64;
        println!(
            "  {name:24} {ns:7.2} ns  ({} bytes, {:?})",
            d.compiled().unwrap().code_len,
            d.compiled().unwrap().strategies
        );
    }

    // --- ASH unroll ablation. ---
    println!("\n=== ASH unroll ablation (16 KiB copy+cksum+swap, warm) ===");
    let src: Vec<u8> = (0..16 * 1024).map(|i| (i * 31 + 7) as u8).collect();
    let mut dst = vec![0u8; src.len()];
    for unroll in [1, 2, 4, 8, 16] {
        let p = ash::Pipeline::compile_with_unroll(&[ash::Step::Checksum, ash::Step::Swap], unroll)
            .unwrap();
        const REPS: u32 = 2000;
        let t = Instant::now();
        for _ in 0..REPS {
            black_box(p.run(&src, &mut dst));
        }
        let ns = t.elapsed().as_secs_f64() * 1e9 / f64::from(REPS);
        println!("  unroll {unroll:2}: {ns:8.0} ns/message");
    }

    // --- Alpha byte-op synthesis (paper §6.2), in simulated insns. ---
    println!("\n=== Alpha sub-word synthesis (simulated instructions per op) ===");
    for (name, gen) in [
        (
            "store byte",
            Box::new(|a: &mut Assembler<'_, vcode_alpha::Alpha>| {
                let (p, v) = (a.arg(0), a.arg(1));
                a.stuci(v, p, 1);
                a.retv();
            }) as Box<dyn Fn(&mut Assembler<'_, vcode_alpha::Alpha>)>,
        ),
        (
            "load signed byte",
            Box::new(|a: &mut Assembler<'_, vcode_alpha::Alpha>| {
                let p = a.arg(0);
                let t = a.getreg(RegClass::Temp).unwrap();
                a.ldci(t, p, 1);
                a.reti(t);
            }),
        ),
        (
            "store word (native)",
            Box::new(|a: &mut Assembler<'_, vcode_alpha::Alpha>| {
                let (p, v) = (a.arg(0), a.arg(1));
                a.stii(v, p, 0);
                a.retv();
            }),
        ),
    ] {
        let mut buf = vec![0u8; 4096];
        let mut a = Assembler::<vcode_alpha::Alpha>::lambda(&mut buf, "%p%i", Leaf::Yes).unwrap();
        let before = a.code_len();
        gen(&mut a);
        let body = a.code_len() - before;
        let fin = a.end().unwrap();
        buf.truncate(fin.len);
        let mut m = vcode_sim::alpha::Machine::new(1 << 20);
        let entry = m.load_code(&buf).unwrap();
        let addr = m.alloc(16, 8).unwrap();
        m.call(entry, &[addr, 0x5a], 10_000).unwrap();
        println!(
            "  {name:22} {:2} emitted insns (body), {:3} executed incl. prologue",
            body / 4,
            m.stats().insns_retired
        );
    }

    // --- tcc compile throughput. ---
    let source = r"
        int work(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s += i * i % 7;
            return s;
        }
        int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
    ";
    let mut group = c.benchmark_group("tcc");
    group.bench_function("compile_two_functions", |b| {
        b.iter(|| black_box(tcc::Program::compile(source).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
