//! Multi-core code generation scaling.
//!
//! VCODE's design goal — generating code at a handful of instructions
//! per generated instruction — makes the generator itself cheap enough
//! that shared-state contention would dominate if any existed. This
//! bench demonstrates there is none: N independent assemblers on N
//! threads, each emitting complete functions into pooled executable
//! memory ([`vcode_x64::ExecMem`]), scale with the hardware. Every
//! per-function structure (code buffer, register allocator, label map)
//! is thread-local by construction; the only shared state is the
//! executable-memory pool, which is sharded precisely so this workload
//! does not serialize on it.
//!
//! Reported per thread count: aggregate generated instructions per
//! second, speedup vs one thread, and parallel efficiency normalised by
//! the host's available cores (on a 1-CPU host, perfect scaling is a
//! flat aggregate rate, not a rising one).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;
use vcode::target::Leaf;
use vcode::{Assembler, RegClass};
use vcode_bench::{snapshot, BODY_INSNS};
use vcode_x64::{pool_stats, ExecMem, X64};

/// Emits one complete 256-instruction function into pooled executable
/// memory and finalizes it, returning its length (kept live past the
/// measurement via the byte returned).
fn one_lambda() -> usize {
    let mut mem = ExecMem::new(4096).expect("ExecMem");
    let mut a = Assembler::<X64>::lambda(mem.as_mut_slice(), "%i%i", Leaf::Yes).unwrap();
    let (x, y) = (a.arg(0), a.arg(1));
    let t = a.getreg(RegClass::Temp).unwrap();
    for i in 0..BODY_INSNS {
        match i % 4 {
            0 => a.addi(t, x, y),
            1 => a.subii(t, t, 3),
            2 => a.xori(t, t, x),
            _ => a.andii(t, t, 0xff),
        }
    }
    a.reti(t);
    let len = a.end().unwrap().len;
    let code = mem.finalize().expect("finalize");
    len + code.len() % 2
}

/// A persistent pool of `threads` generator threads that runs
/// barrier-delimited measurement windows on demand.
///
/// Keeping the workers alive across windows matters for the scaling
/// curve's fairness: thread spawn (stack/TLS page faulting) and thread
/// teardown (8 MiB stack unmap, join wakeup) both scale with the thread
/// count, and a harness that spawns fresh threads per window puts that
/// inside the timed region — charging higher thread counts a fixed tax
/// that reads as false contention. Idle pools park on a futex and cost
/// nothing, so every pool in the sweep can exist at once.
struct Pool {
    threads: usize,
    start: Arc<Barrier>,
    end: Arc<Barrier>,
    stop: Arc<AtomicBool>,
    done: Arc<AtomicBool>,
    counts: Arc<Vec<AtomicU64>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    fn new(threads: usize) -> Pool {
        let start = Arc::new(Barrier::new(threads + 1));
        let end = Arc::new(Barrier::new(threads + 1));
        let stop = Arc::new(AtomicBool::new(false));
        let done = Arc::new(AtomicBool::new(false));
        let counts: Arc<Vec<AtomicU64>> =
            Arc::new((0..threads).map(|_| AtomicU64::new(0)).collect());
        let handles = (0..threads)
            .map(|i| {
                let (start, end) = (Arc::clone(&start), Arc::clone(&end));
                let (stop, done) = (Arc::clone(&stop), Arc::clone(&done));
                let counts = Arc::clone(&counts);
                std::thread::spawn(move || loop {
                    start.wait();
                    if done.load(Ordering::SeqCst) {
                        return;
                    }
                    let mut lambdas = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        // A small batch per stop-flag check keeps the
                        // flag out of the hot loop.
                        for _ in 0..8 {
                            std::hint::black_box(one_lambda());
                        }
                        lambdas += 8;
                    }
                    counts[i].store(lambdas, Ordering::SeqCst);
                    end.wait();
                })
            })
            .collect();
        Pool {
            threads,
            start,
            end,
            stop,
            done,
            counts,
            handles,
        }
    }

    /// One timed window: returns (total lambdas generated, wall seconds).
    /// The clock stops when the stop flag is raised; each worker then
    /// finishes its in-flight batch (a few tens of microseconds) before
    /// publishing its count and parking at the end barrier.
    fn window(&self, secs: f64) -> (u64, f64) {
        self.stop.store(false, Ordering::SeqCst);
        self.start.wait();
        let t = Instant::now();
        std::thread::sleep(std::time::Duration::from_secs_f64(secs));
        let elapsed = t.elapsed().as_secs_f64();
        self.stop.store(true, Ordering::SeqCst);
        self.end.wait();
        let total = self.counts.iter().map(|c| c.load(Ordering::SeqCst)).sum();
        (total, elapsed)
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.done.store(true, Ordering::SeqCst);
        self.stop.store(true, Ordering::SeqCst);
        self.start.wait();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Best aggregate rate (generated instructions per second) per pool,
/// over several short windows with the thread counts *interleaved*:
/// round 1 measures 1t, 2t, 4t, 8t, then round 2 repeats. Like the rest
/// of the harness, many short windows resist scheduler noise better
/// than one long one — and interleaving the configurations keeps slow
/// host drift (frequency scaling, neighbour load ramping) from
/// systematically biasing whichever thread count happens to run last,
/// which a sequential sweep bakes into the scaling curve.
fn best_rates(pools: &[Pool], secs: f64, rounds: u32) -> Vec<f64> {
    let mut best = vec![0.0f64; pools.len()];
    for _ in 0..rounds {
        for (slot, pool) in best.iter_mut().zip(pools) {
            let (lambdas, elapsed) = pool.window(secs);
            *slot = slot.max(lambdas as f64 * BODY_INSNS as f64 / elapsed);
        }
    }
    best
}

fn main() {
    // Best-of needs enough rounds for every thread count to touch its
    // ceiling: the scaling signal on a small host (a few percent) is
    // comparable to per-window scheduler noise, and an unlucky config
    // that never got a clean window reads as a false scaling inversion.
    let (secs, rounds) = if snapshot::smoke() {
        (0.05, 2)
    } else {
        (0.15, 16)
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("=== Parallel code generation (pooled ExecMem, {cores} core(s) available) ===");

    // One persistent pool per *requested* thread count, with the actual
    // worker count clamped to the cores present. Oversubscribing (8
    // workers on fewer cores) measures the kernel's context-switch tax,
    // not the generator's scaling — on small hosts it read as a false
    // scaling inversion at 8t. The snapshot keeps the requested-count
    // labels (so the metric names are stable across hosts) and records
    // `par_codegen/cores` so the CI gate knows which points were
    // clamped to identical configurations. Spawning all pools up front
    // also walks the round-robin shard assignment, so the warm-up
    // window below populates every free-list shard the sweep touches.
    let requested: [usize; 4] = [1, 2, 4, 8];
    let pools: Vec<Pool> = requested
        .iter()
        .map(|&req| Pool::new(req.min(cores)))
        .collect();
    pools.last().unwrap().window(secs); // warm the pool and the code paths

    let before = pool_stats();
    let rates = best_rates(&pools, secs, rounds);
    let after = pool_stats();
    let base_rate = rates[0];
    snapshot::record("par_codegen/cores", cores as f64);
    for ((&req, pool), &rate) in requested.iter().zip(&pools).zip(&rates) {
        let threads = pool.threads;
        let speedup = rate / base_rate;
        let clamp = if threads < req {
            format!(" (clamped from {req})")
        } else {
            String::new()
        };
        println!(
            "  {threads} thread(s){clamp}: {:>7.1} Minsn/s aggregate  \
             {speedup:>5.2}x vs 1t (ideal {threads:.0}x)",
            rate / 1e6,
        );
        snapshot::record(&format!("par_codegen/minsn_per_s_{req}t"), rate / 1e6);
    }
    let lookups = (after.hits + after.misses) - (before.hits + before.misses);
    let hit_pct = if lookups == 0 {
        0.0
    } else {
        (after.hits - before.hits) as f64 / lookups as f64 * 100.0
    };
    println!("  pool hits over the sweep: {hit_pct:.1}%");
}
