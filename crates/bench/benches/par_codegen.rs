//! Multi-core code generation scaling.
//!
//! VCODE's design goal — generating code at a handful of instructions
//! per generated instruction — makes the generator itself cheap enough
//! that shared-state contention would dominate if any existed. This
//! bench demonstrates there is none: N independent assemblers on N
//! threads, each emitting complete functions into pooled executable
//! memory ([`vcode_x64::ExecMem`]), scale with the hardware. Every
//! per-function structure (code buffer, register allocator, label map)
//! is thread-local by construction; the only shared state is the
//! executable-memory pool, which is sharded precisely so this workload
//! does not serialize on it.
//!
//! Reported per thread count: aggregate generated instructions per
//! second, speedup vs one thread, and parallel efficiency normalised by
//! the host's available cores (on a 1-CPU host, perfect scaling is a
//! flat aggregate rate, not a rising one).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::Instant;
use vcode::target::Leaf;
use vcode::{Assembler, RegClass};
use vcode_bench::{snapshot, BODY_INSNS};
use vcode_x64::{pool_stats, ExecMem, X64};

/// Emits one complete 256-instruction function into pooled executable
/// memory and finalizes it, returning its length (kept live past the
/// measurement via the byte returned).
fn one_lambda() -> usize {
    let mut mem = ExecMem::new(4096).expect("ExecMem");
    let mut a = Assembler::<X64>::lambda(mem.as_mut_slice(), "%i%i", Leaf::Yes).unwrap();
    let (x, y) = (a.arg(0), a.arg(1));
    let t = a.getreg(RegClass::Temp).unwrap();
    for i in 0..BODY_INSNS {
        match i % 4 {
            0 => a.addi(t, x, y),
            1 => a.subii(t, t, 3),
            2 => a.xori(t, t, x),
            _ => a.andii(t, t, 0xff),
        }
    }
    a.reti(t);
    let len = a.end().unwrap().len;
    let code = mem.finalize().expect("finalize");
    len + code.len() % 2
}

/// Runs `threads` generators concurrently for `secs` seconds each and
/// returns (total lambdas generated, wall seconds).
fn run(threads: usize, secs: f64) -> (u64, f64) {
    let barrier = Barrier::new(threads + 1);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut lambdas = 0u64;
                    barrier.wait();
                    while !stop.load(Ordering::Relaxed) {
                        // A small batch per stop-flag check keeps the
                        // flag out of the hot loop.
                        for _ in 0..8 {
                            std::hint::black_box(one_lambda());
                        }
                        lambdas += 8;
                    }
                    lambdas
                })
            })
            .collect();
        barrier.wait();
        let t = Instant::now();
        std::thread::sleep(std::time::Duration::from_secs_f64(secs));
        stop.store(true, Ordering::Relaxed);
        let total = handles.into_iter().map(|h| h.join().unwrap()).sum();
        (total, t.elapsed().as_secs_f64())
    })
}

fn main() {
    let secs = if snapshot::smoke() { 0.05 } else { 0.4 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("=== Parallel code generation (pooled ExecMem, {cores} core(s) available) ===");

    // Warm the pool and the code paths.
    run(1, secs / 4.0);

    let mut base_rate = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let before = pool_stats();
        let (lambdas, elapsed) = run(threads, secs);
        let after = pool_stats();
        let rate = lambdas as f64 * BODY_INSNS as f64 / elapsed;
        if threads == 1 {
            base_rate = rate;
        }
        let speedup = rate / base_rate;
        // On a machine with fewer cores than threads, ideal speedup is
        // capped by the cores actually available.
        let ideal = (threads.min(cores)) as f64;
        let lookups = (after.hits + after.misses) - (before.hits + before.misses);
        let hit_pct = if lookups == 0 {
            0.0
        } else {
            (after.hits - before.hits) as f64 / lookups as f64 * 100.0
        };
        println!(
            "  {threads} thread(s): {:>7.1} Minsn/s aggregate  \
             {speedup:>5.2}x vs 1t (ideal {ideal:.0}x)  pool hits {hit_pct:>5.1}%",
            rate / 1e6,
        );
        snapshot::record(&format!("par_codegen/minsn_per_s_{threads}t"), rate / 1e6);
    }
}
