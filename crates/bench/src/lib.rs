//! Shared helpers for the benchmark harness. See the `benches/` targets:
//!
//! - `codegen_cost` — §1/§5.1/Figure 2: instructions-per-generated-
//!   instruction, VCODE vs hard-coded registers vs the DCG baseline,
//!   plus the space comparison.
//! - `table3_dpf` — Table 3: packet classification, DPF vs MPF vs
//!   PATHFINDER.
//! - `table4_ash` — Table 4: integrated vs non-integrated memory
//!   operations.
//! - `ablation` — design-choice ablations from DESIGN.md (dispatch
//!   strategies, bounds-check elision, unrolling, per-target emission
//!   speed, Alpha byte-op synthesis).

/// A standard straight-line workload: `n` arithmetic/memory VCODE
/// instructions, the unit of the codegen-cost experiments.
pub const BODY_INSNS: usize = 256;
