//! Shared helpers for the benchmark harness. See the `benches/` targets:
//!
//! - `codegen_cost` — §1/§5.1/Figure 2: instructions-per-generated-
//!   instruction, VCODE vs hard-coded registers vs the DCG baseline,
//!   plus the space comparison.
//! - `table3_dpf` — Table 3: packet classification, DPF vs MPF vs
//!   PATHFINDER.
//! - `table4_ash` — Table 4: integrated vs non-integrated memory
//!   operations.
//! - `ablation` — design-choice ablations from DESIGN.md (dispatch
//!   strategies, bounds-check elision, unrolling, per-target emission
//!   speed, Alpha byte-op synthesis).

/// A standard straight-line workload: `n` arithmetic/memory VCODE
/// instructions, the unit of the codegen-cost experiments.
pub const BODY_INSNS: usize = 256;

// ---------------------------------------------------------------------------
// Minimal benchmark runner with a criterion-compatible surface.
//
// The workspace builds fully offline, so the external `criterion` crate is
// not available; the `benches/` targets instead import this drop-in subset
// (`Criterion`, `benchmark_group`, `Bencher::iter`/`iter_batched`,
// `Throughput`, and the `criterion_group!`/`criterion_main!` macros). It
// calibrates an iteration count for a ~50 ms measurement window, takes the
// best of three runs, and prints ns/iter plus derived throughput.
// ---------------------------------------------------------------------------

use std::time::{Duration, Instant};

/// How measured quantities scale with one iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Each iteration processes this many logical elements.
    Elements(u64),
    /// Each iteration processes this many bytes.
    Bytes(u64),
}

/// Batch sizing hint for `iter_batched`; accepted for source compatibility
/// (every batch re-runs setup outside the timed region regardless).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Setup output is cheap to hold; batches can be large.
    SmallInput,
    /// Setup output is expensive to hold; batches stay small.
    LargeInput,
}

/// Times one benchmark body: accumulates the wall-clock cost of running
/// the closure `iters` times.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the calibrated iteration count.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let t = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed += t.elapsed();
    }

    /// Times `f` over the calibrated iteration count, running `setup`
    /// outside the timed region before each call.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut f: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(f(input));
            self.elapsed += t.elapsed();
        }
    }
}

/// Entry point handed to each `criterion_group!` target function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named collection of measurements sharing a throughput setting.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Declares how much work one iteration represents.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Calibrates, measures, and reports one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        // Calibrate: one iteration to estimate per-iter cost.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed.as_nanos().max(1) as f64;
        let iters = ((5e7 / per).ceil() as u64).clamp(1, 1_000_000);
        // Warm up with a quarter window, then keep the best of three runs.
        let mut b = Bencher {
            iters: (iters / 4).max(1),
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            best = best.min(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        let mut line = format!("{}/{id:<28} {:>12.1} ns/iter", self.name, best);
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                line += &format!("  {:>10.1} Melem/s", n as f64 / best * 1e3);
            }
            Some(Throughput::Bytes(n)) => {
                line += &format!("  {:>10.1} MiB/s", n as f64 / best * 1e9 / (1 << 20) as f64);
            }
            None => {}
        }
        println!("{line}");
        self
    }

    /// Ends the group (criterion API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
