//! Shared helpers for the benchmark harness. See the `benches/` targets:
//!
//! - `codegen_cost` — §1/§5.1/Figure 2: instructions-per-generated-
//!   instruction, VCODE vs hard-coded registers vs the DCG baseline,
//!   plus the space comparison.
//! - `table3_dpf` — Table 3: packet classification, DPF vs MPF vs
//!   PATHFINDER.
//! - `table4_ash` — Table 4: integrated vs non-integrated memory
//!   operations.
//! - `ablation` — design-choice ablations from DESIGN.md (dispatch
//!   strategies, bounds-check elision, unrolling, per-target emission
//!   speed, Alpha byte-op synthesis).

/// A standard straight-line workload: `n` arithmetic/memory VCODE
/// instructions, the unit of the codegen-cost experiments.
pub const BODY_INSNS: usize = 256;

// ---------------------------------------------------------------------------
// Minimal benchmark runner with a criterion-compatible surface.
//
// The workspace builds fully offline, so the external `criterion` crate is
// not available; the `benches/` targets instead import this drop-in subset
// (`Criterion`, `benchmark_group`, `Bencher::iter`/`iter_batched`,
// `Throughput`, and the `criterion_group!`/`criterion_main!` macros). It
// calibrates an iteration count for a ~50 ms measurement window, takes the
// best of three runs, and prints ns/iter plus derived throughput.
// ---------------------------------------------------------------------------

use std::time::{Duration, Instant};

/// How measured quantities scale with one iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Each iteration processes this many logical elements.
    Elements(u64),
    /// Each iteration processes this many bytes.
    Bytes(u64),
}

/// Batch sizing hint for `iter_batched`; accepted for source compatibility
/// (every batch re-runs setup outside the timed region regardless).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Setup output is cheap to hold; batches can be large.
    SmallInput,
    /// Setup output is expensive to hold; batches stay small.
    LargeInput,
}

/// Times one benchmark body: accumulates the wall-clock cost of running
/// the closure `iters` times.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the calibrated iteration count.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let t = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed += t.elapsed();
    }

    /// Times `f` over the calibrated iteration count, running `setup`
    /// outside the timed region before each call.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut f: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(f(input));
            self.elapsed += t.elapsed();
        }
    }
}

/// Entry point handed to each `criterion_group!` target function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named collection of measurements sharing a throughput setting.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Declares how much work one iteration represents.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Calibrates, measures, and reports one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        // Calibrate: one iteration to estimate per-iter cost.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed.as_nanos().max(1) as f64;
        // Smoke mode (CI) trades precision for a ~10x shorter run.
        let (window, rounds) = if snapshot::smoke() {
            (1.5e6, 4)
        } else {
            (1.5e7, 10)
        };
        let iters = ((window / per).ceil() as u64).clamp(1, 1_000_000);
        // Warm up with a quarter window, then keep the best window. Many
        // short windows resist scheduler noise on shared machines far
        // better than a few long ones: a burst of neighbour activity
        // poisons one 15 ms window, not the whole measurement.
        let mut b = Bencher {
            iters: (iters / 4).max(1),
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mut best = f64::INFINITY;
        for _ in 0..rounds {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            best = best.min(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        snapshot::record(&format!("{}/{id}_ns_per_iter", self.name), best);
        let mut line = format!("{}/{id:<28} {:>12.1} ns/iter", self.name, best);
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                line += &format!("  {:>10.1} Melem/s", n as f64 / best * 1e3);
            }
            Some(Throughput::Bytes(n)) => {
                line += &format!("  {:>10.1} MiB/s", n as f64 / best * 1e9 / (1 << 20) as f64);
            }
            None => {}
        }
        println!("{line}");
        self
    }

    /// Ends the group (criterion API compatibility; nothing to flush).
    pub fn finish(self) {}
}

// ---------------------------------------------------------------------------
// Benchmark snapshots: a flat JSON object of named scalar metrics,
// merged across bench binaries so one file accumulates the whole run.
// ---------------------------------------------------------------------------

/// Snapshot recording and regression checking for benchmark metrics.
///
/// When `VCODE_BENCH_JSON` names a file, [`record`](snapshot::record)
/// merges `name: value` into it (creating it if absent) — each bench
/// binary contributes its metrics and the file accumulates the full
/// set, e.g. `BENCH_codegen.json` at the repo root.
///
/// When `VCODE_BASELINE` names a previously committed snapshot,
/// [`check`](snapshot::check) compares a metric against it and returns
/// an error line when the new value regressed by more than 20%
/// (higher = worse; every recorded metric is a cost). CI runs the
/// codegen-cost bench in smoke mode with both variables set and fails
/// the build on any regression.
///
/// `VCODE_SMOKE=1` shortens measurement windows (~10x) so the check is
/// cheap enough for CI; snapshots meant for committing should be taken
/// without it.
pub mod snapshot {
    use std::fmt::Write as _;
    use std::fs;

    /// Whether smoke mode (short windows, CI-grade precision) is on.
    pub fn smoke() -> bool {
        std::env::var_os("VCODE_SMOKE").is_some_and(|v| v != "0")
    }

    /// Parses a flat `{"name": number, ...}` JSON object. Returns pairs
    /// in file order; `None` on malformed input.
    pub fn parse(text: &str) -> Option<Vec<(String, f64)>> {
        let body = text.trim().strip_prefix('{')?.strip_suffix('}')?;
        let mut out = Vec::new();
        for entry in body.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry.split_once(':')?;
            let key = key.trim().strip_prefix('"')?.strip_suffix('"')?;
            out.push((key.to_string(), value.trim().parse().ok()?));
        }
        Some(out)
    }

    fn render(entries: &[(String, f64)]) -> String {
        let mut s = String::from("{\n");
        for (i, (k, v)) in entries.iter().enumerate() {
            let sep = if i + 1 == entries.len() { "" } else { "," };
            let _ = writeln!(s, "  \"{k}\": {v:.2}{sep}");
        }
        s.push('}');
        s.push('\n');
        s
    }

    /// Records `name = value` into the snapshot file named by
    /// `VCODE_BENCH_JSON` (no-op without it). Existing entries for other
    /// names are preserved; a same-name entry is overwritten.
    pub fn record(name: &str, value: f64) {
        let Some(path) = std::env::var_os("VCODE_BENCH_JSON") else {
            return;
        };
        let mut entries = fs::read_to_string(&path)
            .ok()
            .and_then(|t| parse(&t))
            .unwrap_or_default();
        match entries.iter_mut().find(|(k, _)| k == name) {
            Some((_, v)) => *v = value,
            None => entries.push((name.to_string(), value)),
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        if let Err(e) = fs::write(&path, render(&entries)) {
            eprintln!("snapshot: cannot write {}: e={e}", path.to_string_lossy());
        }
    }

    /// Compares `value` against the committed baseline (the snapshot
    /// file named by `VCODE_BASELINE`). Returns a human-readable
    /// failure line when the metric regressed more than `TOLERANCE`;
    /// `None` when in tolerance, unknown to the baseline, or no
    /// baseline is configured.
    pub fn check(name: &str, value: f64) -> Option<String> {
        const TOLERANCE: f64 = 0.20;
        let path = std::env::var_os("VCODE_BASELINE")?;
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                return Some(format!(
                    "baseline {} unreadable: {e}",
                    path.to_string_lossy()
                ))
            }
        };
        let baseline = parse(&text)?;
        let &(_, expect) = baseline.iter().find(|(k, _)| k == name)?;
        (value > expect * (1.0 + TOLERANCE)).then(|| {
            format!(
                "REGRESSION {name}: {value:.2} vs baseline {expect:.2} \
                 (+{:.0}%, tolerance {:.0}%)",
                (value / expect - 1.0) * 100.0,
                TOLERANCE * 100.0
            )
        })
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
