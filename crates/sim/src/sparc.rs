//! A SPARC V8 instruction-set simulator (little-endian variant).
//!
//! Models the features the `vcode-sparc` backend relies on: register
//! windows (`save`/`restore`), integer condition codes, the `Y` register
//! feeding 64/32 division, the FP condition flag with its
//! one-instruction separation, and branch delay slots.

use crate::{host_range, merge_stats, Cache, MemError};
use std::fmt;
use vcode::obs::{ExecStats, TraceRecord};

/// Base address code is loaded at.
pub const CODE_BASE: u32 = 0x0000_1000;
/// Return sentinel (`jmpl %i7+8` with `%i7 = HALT - 8` stops the run).
pub const HALT: u32 = 0xffff_fff0;

/// The SPARC `nop` encoding (`sethi 0, %g0`) — a delay slot holding
/// anything else counts as filled.
const NOP: u32 = 0x0100_0000;

/// Abnormal stop.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Trap {
    /// PC left the code.
    BadPc(u32),
    /// Out-of-range access.
    BadAccess(u32),
    /// Misaligned access.
    Unaligned(u32),
    /// Unknown encoding.
    BadInsn {
        /// PC.
        pc: u32,
        /// Word.
        word: u32,
    },
    /// Step limit.
    StepLimit,
    /// Register-window over/underflow (recursion deeper than the
    /// simulated window file; real systems trap to a spill handler).
    WindowOverflow,
}

impl From<Trap> for vcode::Trap {
    fn from(t: Trap) -> vcode::Trap {
        use vcode::TrapKind;
        let backend = "sparc";
        match t {
            Trap::BadPc(pc) => vcode::Trap::at(TrapKind::BadPc, u64::from(pc), backend),
            Trap::BadAccess(a) => vcode::Trap::at(TrapKind::BadAccess, u64::from(a), backend),
            Trap::Unaligned(a) => vcode::Trap::at(TrapKind::Unaligned, u64::from(a), backend),
            Trap::BadInsn { pc, .. } => {
                vcode::Trap::at(TrapKind::IllegalInsn, u64::from(pc), backend)
            }
            Trap::StepLimit => vcode::Trap::new(TrapKind::FuelExhausted, backend),
            Trap::WindowOverflow => vcode::Trap::new(TrapKind::ScheduleHazard, backend),
        }
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::BadPc(pc) => write!(f, "pc {pc:#x} outside code"),
            Trap::BadAccess(a) => write!(f, "bad access at {a:#x}"),
            Trap::Unaligned(a) => write!(f, "unaligned access at {a:#x}"),
            Trap::BadInsn { pc, word } => write!(f, "bad instruction {word:#010x} at {pc:#x}"),
            Trap::StepLimit => write!(f, "step limit exceeded"),
            Trap::WindowOverflow => write!(f, "register window over/underflow"),
        }
    }
}

impl std::error::Error for Trap {}

const WINDOWS: usize = 512;

/// The simulated machine.
pub struct Machine {
    globals: [u32; 8],
    /// Per-window out registers; window `p`'s `%i` are window `p+1`'s
    /// outs.
    outs: Vec<[u32; 8]>,
    locals: Vec<[u32; 8]>,
    p: usize,
    /// FP registers (raw bits; doubles are even/odd with even = low
    /// word — the simulator's little-endian convention).
    pub fregs: [u32; 32],
    y: u32,
    // icc flags.
    n: bool,
    z: bool,
    v: bool,
    c: bool,
    /// FP compare result: 0 =, 1 <, 2 >, 3 unordered.
    fcc: u8,
    mem: Vec<u8>,
    code_end: u32,
    data_brk: u32,
    stats: ExecStats,
    /// Optional data-cache model; hits/misses/stalls fold into
    /// [`stats`](Self::stats).
    pub dcache: Option<Cache>,
    trace: Option<crate::TraceSink>,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("sparc::Machine")
            .field("stats", &self.stats)
            .finish()
    }
}

impl Machine {
    /// Creates a machine with `mem_size` bytes of memory.
    pub fn new(mem_size: usize) -> Machine {
        assert!(mem_size >= 64 * 1024);
        Machine {
            globals: [0; 8],
            outs: vec![[0; 8]; WINDOWS],
            locals: vec![[0; 8]; WINDOWS],
            p: WINDOWS / 2,
            fregs: [0; 32],
            y: 0,
            n: false,
            z: false,
            v: false,
            c: false,
            fcc: 0,
            mem: vec![0; mem_size],
            code_end: CODE_BASE,
            data_brk: (mem_size / 2) as u32,
            stats: ExecStats::default(),
            dcache: None,
            trace: None,
        }
    }

    /// Loads code; returns the entry address.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the image does not fit in simulated
    /// memory.
    pub fn load_code(&mut self, code: &[u8]) -> Result<u32, MemError> {
        let at = (self.code_end as usize).div_ceil(8) * 8;
        let end = at
            .checked_add(code.len())
            .filter(|&e| e <= self.mem.len() && u32::try_from(e).is_ok())
            .ok_or(MemError::OutOfRange {
                addr: at as u64,
                len: code.len(),
                size: self.mem.len(),
            })?;
        self.mem[at..end].copy_from_slice(code);
        self.code_end = end as u32;
        Ok(at as u32)
    }

    /// Allocates simulated data memory.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfMemory`] when the request exhausts (or
    /// arithmetically overflows) the heap region.
    pub fn alloc(&mut self, size: usize, align: usize) -> Result<u32, MemError> {
        let align = align.max(1);
        let enomem = MemError::OutOfMemory {
            requested: size,
            align,
        };
        let at = (self.data_brk as usize)
            .checked_next_multiple_of(align)
            .ok_or(enomem)?;
        let brk = at
            .checked_add(size)
            .filter(|&b| b < self.mem.len().saturating_sub(64 * 1024))
            .ok_or(enomem)?;
        self.data_brk = brk as u32;
        Ok(at as u32)
    }

    /// Writes bytes into simulated memory.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the range is out of bounds.
    pub fn write(&mut self, addr: u32, data: &[u8]) -> Result<(), MemError> {
        host_range(&self.mem, u64::from(addr), data.len())?;
        self.mem[addr as usize..addr as usize + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads bytes back.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the range is out of bounds.
    pub fn read(&self, addr: u32, len: usize) -> Result<&[u8], MemError> {
        host_range(&self.mem, u64::from(addr), len)?;
        Ok(&self.mem[addr as usize..addr as usize + len])
    }

    /// Unified execution statistics (shared across all three simulators).
    pub fn stats(&self) -> ExecStats {
        merge_stats(&self.stats, self.dcache.as_ref())
    }

    /// Total simulated cycles: one per retired instruction plus cache
    /// stalls.
    pub fn cycles(&self) -> u64 {
        self.stats().cycles
    }

    /// Zeroes all execution counters (including cache hit/miss totals).
    pub fn reset_stats(&mut self) {
        self.stats = ExecStats::default();
        if let Some(c) = &mut self.dcache {
            c.hits = 0;
            c.misses = 0;
        }
    }

    /// Installs a per-instruction trace callback (the §6.2 debugger
    /// stand-in): each executed instruction streams a
    /// [`TraceRecord`] with its disassembly and first register delta.
    pub fn set_trace(&mut self, f: impl FnMut(&TraceRecord) + Send + 'static) {
        self.trace = Some(Box::new(f));
    }

    /// Removes the trace callback.
    pub fn clear_trace(&mut self) {
        self.trace = None;
    }

    fn touch(&mut self, addr: u32, len: u32) {
        if let Some(c) = &mut self.dcache {
            c.access_span(u64::from(addr), u64::from(len));
        }
    }

    /// Current-window view of the 32 integer registers (`%g`, `%o`,
    /// `%l`, `%i`), as the executing instruction names them.
    fn reg_snapshot(&self) -> [u32; 32] {
        std::array::from_fn(|i| self.get(i as u8))
    }

    fn get(&self, r: u8) -> u32 {
        match r {
            0 => 0,
            1..=7 => self.globals[r as usize],
            8..=15 => self.outs[self.p][r as usize - 8],
            16..=23 => self.locals[self.p][r as usize - 16],
            _ => self.outs[self.p + 1][r as usize - 24],
        }
    }

    fn set(&mut self, r: u8, v: u32) {
        match r {
            0 => {}
            1..=7 => self.globals[r as usize] = v,
            8..=15 => self.outs[self.p][r as usize - 8] = v,
            16..=23 => self.locals[self.p][r as usize - 16] = v,
            _ => self.outs[self.p + 1][r as usize - 24] = v,
        }
    }

    fn fd(&self, f: u8) -> f64 {
        f64::from_bits(
            u64::from(self.fregs[f as usize]) | (u64::from(self.fregs[f as usize + 1]) << 32),
        )
    }

    fn set_fd(&mut self, f: u8, v: f64) {
        let b = v.to_bits();
        self.fregs[f as usize] = b as u32;
        self.fregs[f as usize + 1] = (b >> 32) as u32;
    }

    fn fs(&self, f: u8) -> f32 {
        f32::from_bits(self.fregs[f as usize])
    }

    /// Calls the code at `entry` with integer arguments in `%o0`–`%o5`
    /// (the callee's `%i` after its `save`), returning `%o0`.
    ///
    /// # Errors
    ///
    /// Any [`Trap`].
    pub fn call(&mut self, entry: u32, args: &[u32], max_steps: u64) -> Result<u32, Trap> {
        assert!(args.len() <= 6);
        for (i, &v) in args.iter().enumerate() {
            self.outs[self.p][i] = v;
        }
        self.run(entry, max_steps)?;
        Ok(self.outs[self.p][0])
    }

    /// Calls with double arguments in `%f2`/`%f4` pairs, returning
    /// `%f0:%f1`.
    ///
    /// # Errors
    ///
    /// Any [`Trap`].
    pub fn call_f64(&mut self, entry: u32, args: &[f64], max_steps: u64) -> Result<f64, Trap> {
        assert!(args.len() <= 2);
        for (i, &v) in args.iter().enumerate() {
            let b = v.to_bits();
            self.fregs[2 + i * 2] = b as u32;
            self.fregs[3 + i * 2] = (b >> 32) as u32;
        }
        self.run(entry, max_steps)?;
        Ok(self.fd(0))
    }

    /// Runs until return to [`HALT`].
    ///
    /// # Errors
    ///
    /// Any [`Trap`] raised during execution (also tallied in
    /// [`stats`](Self::stats)).
    pub fn run(&mut self, entry: u32, max_steps: u64) -> Result<(), Trap> {
        let mut tracer = self.trace.take();
        let r = self.run_loop(entry, max_steps, tracer.as_mut());
        self.trace = tracer;
        if let Err(t) = &r {
            self.stats.traps.record(vcode::Trap::from(t.clone()).kind);
        }
        r
    }

    fn run_loop(
        &mut self,
        entry: u32,
        max_steps: u64,
        mut tracer: Option<&mut crate::TraceSink>,
    ) -> Result<(), Trap> {
        // %o7 = HALT - 8 so the callee's `ret` (jmpl %i7+8) lands on HALT.
        self.outs[self.p][7] = HALT.wrapping_sub(8);
        self.outs[self.p][6] = (self.mem.len() - 256) as u32; // %sp
        let mut pc = entry;
        let mut npc = entry.wrapping_add(4);
        let mut steps = 0u64;
        let mut in_taken_slot = false;
        while pc != HALT {
            if steps >= max_steps {
                return Err(Trap::StepLimit);
            }
            steps += 1;
            if pc < CODE_BASE || pc >= self.code_end || pc & 3 != 0 {
                return Err(Trap::BadPc(pc));
            }
            let word =
                u32::from_le_bytes(self.mem[pc as usize..pc as usize + 4].try_into().unwrap());
            if in_taken_slot && word != NOP {
                self.stats.delay_slot_fills += 1;
            }
            let next = npc;
            let mut nnext = npc.wrapping_add(4);
            let before = tracer.as_ref().map(|_| self.reg_snapshot());
            self.step(pc, word, npc, &mut nnext)?;
            if let (Some(t), Some(before)) = (tracer.as_mut(), before) {
                let after = self.reg_snapshot();
                let delta = before
                    .iter()
                    .zip(after.iter())
                    .enumerate()
                    .find(|(_, (o, n))| o != n)
                    .map(|(i, (&o, &n))| (i as u8, u64::from(o), u64::from(n)));
                t(&TraceRecord {
                    pc: u64::from(pc),
                    disasm: disasm(word),
                    delta,
                });
            }
            in_taken_slot = nnext != npc.wrapping_add(4);
            pc = next;
            npc = nnext;
        }
        Ok(())
    }

    fn mem_addr(&self, rs1: u8, word: u32) -> u32 {
        let base = self.get(rs1);
        if word & (1 << 13) != 0 {
            let simm = ((word & 0x1fff) as i32) << 19 >> 19;
            base.wrapping_add(simm as u32)
        } else {
            base.wrapping_add(self.get((word & 31) as u8))
        }
    }

    fn ld32(&self, addr: u32) -> Result<u32, Trap> {
        if addr & 3 != 0 {
            return Err(Trap::Unaligned(addr));
        }
        let a = addr as usize;
        let b = self.mem.get(a..a + 4).ok_or(Trap::BadAccess(addr))?;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn st32(&mut self, addr: u32, v: u32) -> Result<(), Trap> {
        if addr & 3 != 0 {
            return Err(Trap::Unaligned(addr));
        }
        let a = addr as usize;
        self.mem
            .get_mut(a..a + 4)
            .ok_or(Trap::BadAccess(addr))?
            .copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn icc_taken(&self, cond: u8) -> bool {
        let (n, z, v, c) = (self.n, self.z, self.v, self.c);
        match cond & 0xf {
            8 => true,
            0 => false,
            1 => z,
            9 => !z,
            3 => n ^ v,
            11 => !(n ^ v),
            2 => z || (n ^ v),
            10 => !(z || (n ^ v)),
            5 => c,
            13 => !c,
            4 => c || z,
            12 => !(c || z),
            6 => n,   // bneg
            14 => !n, // bpos
            7 => v,   // bvs
            _ => !v,  // bvc
        }
    }

    fn fcc_taken(&self, cond: u8) -> bool {
        let f = self.fcc;
        match cond & 0xf {
            8 => true,
            0 => false,
            1 => f != 0,            // fbne (incl. unordered)
            9 => f == 0,            // fbe
            4 => f == 1,            // fbl
            6 => f == 2,            // fbg
            11 => f == 0 || f == 2, // fbge
            13 => f == 0 || f == 1, // fble
            _ => false,
        }
    }

    #[allow(clippy::too_many_lines)]
    fn step(&mut self, pc: u32, word: u32, npc: u32, nnext: &mut u32) -> Result<(), Trap> {
        self.stats.insns_retired += 1;
        let op = word >> 30;
        let rd = ((word >> 25) & 31) as u8;
        let bad = || Trap::BadInsn { pc, word };
        match op {
            0 => {
                // Branches / sethi.
                let op2 = (word >> 22) & 7;
                match op2 {
                    4 => self.set(rd, (word & 0x3f_ffff) << 10),
                    2 | 6 => {
                        self.stats.branches += 1;
                        let cond = ((word >> 25) & 0xf) as u8;
                        let taken = if op2 == 2 {
                            self.icc_taken(cond)
                        } else {
                            self.fcc_taken(cond)
                        };
                        if taken {
                            let disp = ((word & 0x3f_ffff) as i32) << 10 >> 10;
                            *nnext = pc.wrapping_add((disp << 2) as u32);
                        }
                    }
                    _ => return Err(bad()),
                }
            }
            1 => {
                // call disp30.
                self.stats.branches += 1;
                self.set(15, pc); // %o7
                let disp = (word as i32) << 2 >> 2;
                *nnext = pc.wrapping_add((disp << 2) as u32);
            }
            2 => {
                let op3 = ((word >> 19) & 0x3f) as u8;
                let rs1 = ((word >> 14) & 31) as u8;
                let operand2 = if word & (1 << 13) != 0 {
                    (((word & 0x1fff) as i32) << 19 >> 19) as u32
                } else {
                    self.get((word & 31) as u8)
                };
                let a = self.get(rs1);
                match op3 {
                    0x00 => self.set(rd, a.wrapping_add(operand2)),
                    0x01 => self.set(rd, a & operand2),
                    0x02 => self.set(rd, a | operand2),
                    0x03 => self.set(rd, a ^ operand2),
                    0x04 => self.set(rd, a.wrapping_sub(operand2)),
                    0x07 => self.set(rd, !(a ^ operand2)),
                    0x08 => self.set(rd, a.wrapping_add(operand2).wrapping_add(self.c as u32)),
                    0x0a => {
                        let p = u64::from(a) * u64::from(operand2);
                        self.y = (p >> 32) as u32;
                        self.set(rd, p as u32);
                    }
                    0x0b => {
                        let p = i64::from(a as i32) * i64::from(operand2 as i32);
                        self.y = (p >> 32) as u32;
                        self.set(rd, p as u32);
                    }
                    0x0e => {
                        let dividend = (u64::from(self.y) << 32) | u64::from(a);
                        let q = if operand2 == 0 {
                            0
                        } else {
                            dividend / u64::from(operand2)
                        };
                        self.set(rd, q as u32);
                    }
                    0x0f => {
                        let dividend = ((u64::from(self.y) << 32) | u64::from(a)) as i64;
                        let d = operand2 as i32;
                        let q = if d == 0 {
                            0
                        } else {
                            dividend.wrapping_div(i64::from(d))
                        };
                        self.set(rd, q as u32);
                    }
                    0x14 => {
                        // subcc
                        let r = a.wrapping_sub(operand2);
                        self.n = (r as i32) < 0;
                        self.z = r == 0;
                        self.c = a < operand2;
                        self.v = ((a ^ operand2) & (a ^ r)) >> 31 != 0;
                        self.set(rd, r);
                    }
                    0x25 => self.set(rd, a.wrapping_shl(operand2 & 31)),
                    0x26 => self.set(rd, a.wrapping_shr(operand2 & 31)),
                    0x27 => self.set(rd, ((a as i32).wrapping_shr(operand2 & 31)) as u32),
                    0x28 => self.set(rd, self.y),
                    0x30 => self.y = a ^ operand2,
                    0x34 => {
                        // FPop1.
                        let opf = ((word >> 5) & 0x1ff) as u16;
                        let fs1 = rs1;
                        let fs2 = (word & 31) as u8;
                        self.fpop1(opf, rd, fs1, fs2).ok_or_else(bad)?;
                    }
                    0x35 => {
                        let opf = ((word >> 5) & 0x1ff) as u16;
                        let fs2 = (word & 31) as u8;
                        match opf {
                            0x051 => {
                                let (x, y) = (f64::from(self.fs(rs1)), f64::from(self.fs(fs2)));
                                self.fcc = cmp_fcc(x, y);
                            }
                            0x052 => {
                                let (x, y) = (self.fd(rs1), self.fd(fs2));
                                self.fcc = cmp_fcc(x, y);
                            }
                            _ => return Err(bad()),
                        }
                    }
                    0x38 => {
                        // jmpl: rd = pc, jump to rs1 + operand2.
                        self.stats.branches += 1;
                        let target = a.wrapping_add(operand2);
                        self.set(rd, pc);
                        *nnext = target;
                    }
                    0x3c => {
                        // save: compute in the old window, then shift.
                        let nsp = a.wrapping_add(operand2);
                        if self.p == 0 {
                            return Err(Trap::WindowOverflow);
                        }
                        self.p -= 1;
                        self.set(rd, nsp);
                    }
                    0x3d => {
                        // restore.
                        let val = a.wrapping_add(operand2);
                        if self.p + 2 >= WINDOWS {
                            return Err(Trap::WindowOverflow);
                        }
                        self.p += 1;
                        self.set(rd, val);
                    }
                    _ => return Err(bad()),
                }
                let _ = npc;
            }
            _ => {
                // Memory.
                let op3 = ((word >> 19) & 0x3f) as u8;
                let rs1 = ((word >> 14) & 31) as u8;
                let addr = self.mem_addr(rs1, word);
                match op3 {
                    0x00 => {
                        self.stats.loads += 1;
                        self.touch(addr, 4);
                        let v = self.ld32(addr)?;
                        self.set(rd, v);
                    }
                    0x01 | 0x09 => {
                        self.stats.loads += 1;
                        self.touch(addr, 1);
                        let b = *self.mem.get(addr as usize).ok_or(Trap::BadAccess(addr))?;
                        let v = if op3 == 0x09 {
                            b as i8 as i32 as u32
                        } else {
                            u32::from(b)
                        };
                        self.set(rd, v);
                    }
                    0x02 | 0x0a => {
                        self.stats.loads += 1;
                        self.touch(addr, 2);
                        if addr & 1 != 0 {
                            return Err(Trap::Unaligned(addr));
                        }
                        let b = self
                            .mem
                            .get(addr as usize..addr as usize + 2)
                            .ok_or(Trap::BadAccess(addr))?;
                        let h = u16::from_le_bytes(b.try_into().unwrap());
                        let v = if op3 == 0x0a {
                            h as i16 as i32 as u32
                        } else {
                            u32::from(h)
                        };
                        self.set(rd, v);
                    }
                    0x04 => {
                        self.stats.stores += 1;
                        self.touch(addr, 4);
                        let v = self.get(rd);
                        self.st32(addr, v)?;
                    }
                    0x05 => {
                        self.stats.stores += 1;
                        self.touch(addr, 1);
                        let v = self.get(rd);
                        *self
                            .mem
                            .get_mut(addr as usize)
                            .ok_or(Trap::BadAccess(addr))? = v as u8;
                    }
                    0x06 => {
                        self.stats.stores += 1;
                        self.touch(addr, 2);
                        if addr & 1 != 0 {
                            return Err(Trap::Unaligned(addr));
                        }
                        let v = self.get(rd);
                        self.mem
                            .get_mut(addr as usize..addr as usize + 2)
                            .ok_or(Trap::BadAccess(addr))?
                            .copy_from_slice(&(v as u16).to_le_bytes());
                    }
                    0x20 => {
                        self.stats.loads += 1;
                        self.touch(addr, 4);
                        self.fregs[rd as usize] = self.ld32(addr)?;
                    }
                    0x24 => {
                        self.stats.stores += 1;
                        self.touch(addr, 4);
                        let v = self.fregs[rd as usize];
                        self.st32(addr, v)?;
                    }
                    _ => return Err(bad()),
                }
            }
        }
        Ok(())
    }

    fn fpop1(&mut self, opf: u16, rd: u8, _fs1: u8, fs2: u8) -> Option<()> {
        // Binary ops take fs1/fs2; unary ones use fs2 only.
        let fs1 = _fs1;
        match opf {
            0x001 => self.fregs[rd as usize] = self.fregs[fs2 as usize],
            0x005 => self.fregs[rd as usize] = self.fregs[fs2 as usize] ^ 0x8000_0000,
            0x009 => self.fregs[rd as usize] = self.fregs[fs2 as usize] & 0x7fff_ffff,
            0x029 => {
                let v = self.fs(fs2).sqrt();
                self.fregs[rd as usize] = v.to_bits();
            }
            0x02a => {
                let v = self.fd(fs2).sqrt();
                self.set_fd(rd, v);
            }
            0x041 | 0x045 | 0x049 | 0x04d => {
                let (x, y) = (self.fs(fs1), self.fs(fs2));
                let r = match opf {
                    0x041 => x + y,
                    0x045 => x - y,
                    0x049 => x * y,
                    _ => x / y,
                };
                self.fregs[rd as usize] = r.to_bits();
            }
            0x042 | 0x046 | 0x04a | 0x04e => {
                let (x, y) = (self.fd(fs1), self.fd(fs2));
                let r = match opf {
                    0x042 => x + y,
                    0x046 => x - y,
                    0x04a => x * y,
                    _ => x / y,
                };
                self.set_fd(rd, r);
            }
            0x0c4 => {
                let v = self.fregs[fs2 as usize] as i32;
                self.fregs[rd as usize] = (v as f32).to_bits();
            }
            0x0c8 => {
                let v = self.fregs[fs2 as usize] as i32;
                self.set_fd(rd, f64::from(v));
            }
            0x0c9 => {
                let v = f64::from(self.fs(fs2));
                self.set_fd(rd, v);
            }
            0x0c6 => {
                let v = self.fd(fs2) as f32;
                self.fregs[rd as usize] = v.to_bits();
            }
            0x0d1 => {
                let v = self.fs(fs2) as i32;
                self.fregs[rd as usize] = v as u32;
            }
            0x0d2 => {
                let v = self.fd(fs2) as i32;
                self.fregs[rd as usize] = v as u32;
            }
            _ => return None,
        }
        Some(())
    }
}

fn cmp_fcc(x: f64, y: f64) -> u8 {
    if x.is_nan() || y.is_nan() {
        3
    } else if x == y {
        0
    } else if x < y {
        1
    } else {
        2
    }
}

/// Disassembles one instruction word (debugging aid — the paper calls
/// the missing symbolic debugger VCODE's most critical drawback, §6.2).
pub fn disasm(word: u32) -> String {
    let op = word >> 30;
    let rd = (word >> 25) & 31;
    let rs1 = (word >> 14) & 31;
    let imm = word & (1 << 13) != 0;
    let simm = ((word & 0x1fff) as i32) << 19 >> 19;
    let rs2 = word & 31;
    let operand = if imm {
        format!("{simm}")
    } else {
        format!("%r{rs2}")
    };
    match op {
        0 => {
            let op2 = (word >> 22) & 7;
            let disp = ((word & 0x3f_ffff) as i32) << 10 >> 10;
            match op2 {
                4 if word == 0x0100_0000 => "nop".to_owned(),
                4 => format!("sethi %hi({:#x}), %r{rd}", (word & 0x3f_ffff) << 10),
                2 => format!("b{} {disp}", icc_name(((word >> 25) & 0xf) as u8)),
                6 => format!("fb<{}> {disp}", (word >> 25) & 0xf),
                _ => format!(".word {word:#010x}"),
            }
        }
        1 => format!("call {}", (word as i32) << 2 >> 2),
        2 => {
            let op3 = (word >> 19) & 0x3f;
            match op3 {
                0x00 => format!("add %r{rs1}, {operand}, %r{rd}"),
                0x01 => format!("and %r{rs1}, {operand}, %r{rd}"),
                0x02 => format!("or %r{rs1}, {operand}, %r{rd}"),
                0x03 => format!("xor %r{rs1}, {operand}, %r{rd}"),
                0x04 => format!("sub %r{rs1}, {operand}, %r{rd}"),
                0x07 => format!("xnor %r{rs1}, {operand}, %r{rd}"),
                0x08 => format!("addx %r{rs1}, {operand}, %r{rd}"),
                0x0a => format!("umul %r{rs1}, {operand}, %r{rd}"),
                0x0b => format!("smul %r{rs1}, {operand}, %r{rd}"),
                0x0e => format!("udiv %r{rs1}, {operand}, %r{rd}"),
                0x0f => format!("sdiv %r{rs1}, {operand}, %r{rd}"),
                0x14 => format!("subcc %r{rs1}, {operand}, %r{rd}"),
                0x25 => format!("sll %r{rs1}, {operand}, %r{rd}"),
                0x26 => format!("srl %r{rs1}, {operand}, %r{rd}"),
                0x27 => format!("sra %r{rs1}, {operand}, %r{rd}"),
                0x28 => format!("rd %y, %r{rd}"),
                0x30 => format!("wr %r{rs1}, {operand}, %y"),
                0x34 => format!("fpop1.{:#x} %f{rs1}, %f{rs2}, %f{rd}", (word >> 5) & 0x1ff),
                0x35 => format!("fcmp.{:#x} %f{rs1}, %f{rs2}", (word >> 5) & 0x1ff),
                0x38 => format!("jmpl %r{rs1}+{operand}, %r{rd}"),
                0x3c => format!("save %r{rs1}, {operand}, %r{rd}"),
                0x3d => format!("restore %r{rs1}, {operand}, %r{rd}"),
                _ => format!(".word {word:#010x}"),
            }
        }
        _ => {
            let op3 = (word >> 19) & 0x3f;
            let name = match op3 {
                0x00 => "ld",
                0x01 => "ldub",
                0x02 => "lduh",
                0x09 => "ldsb",
                0x0a => "ldsh",
                0x04 => "st",
                0x05 => "stb",
                0x06 => "sth",
                0x20 => "ldf",
                0x24 => "stf",
                _ => return format!(".word {word:#010x}"),
            };
            format!("{name} [%r{rs1}+{operand}], %r{rd}")
        }
    }
}

fn icc_name(c: u8) -> &'static str {
    match c {
        8 => "a",
        0 => "n",
        1 => "e",
        9 => "ne",
        3 => "l",
        11 => "ge",
        2 => "le",
        10 => "g",
        5 => "cs",
        13 => "cc",
        4 => "leu",
        12 => "gu",
        _ => "?",
    }
}

/// [`vcode::InsnDecoder`] over the simulator's SPARC V8 decode tables,
/// for the differential machine-code checker (`vcode::cross_check`).
///
/// Control transfers are `bicc`/`fbcc` (pc-relative disp22), `call`
/// (pc-relative disp30) and `jmpl` (register target, no static
/// destination).
#[derive(Debug, Clone, Copy, Default)]
pub struct Decoder;

impl vcode::InsnDecoder for Decoder {
    fn decode(&self, code: &[u8], at: usize) -> Option<vcode::DecodedInsn> {
        let word = u32::from_le_bytes(code.get(at..at + 4)?.try_into().ok()?);
        if disasm(word).starts_with(".word") {
            return None;
        }
        let op = word >> 30;
        let op2 = (word >> 22) & 7;
        let op3 = (word >> 19) & 0x3f;
        let (control, target) = match op {
            0 if matches!(op2, 2 | 6) => {
                let disp = i64::from(((word & 0x3f_ffff) as i32) << 10 >> 10) << 2;
                (true, Some(at as i64 + disp))
            }
            1 => {
                let disp = i64::from((word as i32) << 2 >> 2) << 2;
                (true, Some(at as i64 + disp))
            }
            2 if op3 == 0x38 => (true, None),
            _ => (false, None),
        };
        Some(vcode::DecodedInsn {
            len: 4,
            control,
            target,
        })
    }
}

/// Disassembles a whole code buffer.
pub fn disasm_all(code: &[u8]) -> String {
    code.chunks_exact(4)
        .enumerate()
        .map(|(i, w)| {
            let word = u32::from_le_bytes(w.try_into().unwrap());
            format!("{:4x}:  {}\n", i * 4, disasm(word))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Hand-assembled: save %sp,-168,%sp; add %i0,1,%i0; jmpl %i7+8,%g0;
    // restore.
    fn plus1_code() -> Vec<u8> {
        let words = [
            (2u32 << 30)
                | (14 << 25)
                | (0x3c << 19)
                | (14 << 14)
                | (1 << 13)
                | ((-168i32 as u32) & 0x1fff),
            (2 << 30) | (24 << 25) | (24 << 14) | (1 << 13) | 1,
            (2 << 30) | (0x38 << 19) | (31 << 14) | (1 << 13) | 8,
            (2 << 30) | (0x3d << 19),
        ];
        words.iter().flat_map(|w| w.to_le_bytes()).collect()
    }

    #[test]
    fn windows_and_return() {
        let mut m = Machine::new(1 << 20);
        let entry = m.load_code(&plus1_code()).unwrap();
        assert_eq!(m.call(entry, &[41], 100).unwrap(), 42);
        assert_eq!(m.stats().insns_retired, 4);
    }

    #[test]
    fn host_memory_apis_return_typed_errors() {
        let mut m = Machine::new(1 << 20);
        assert!(matches!(
            m.write(u32::MAX - 3, &[1, 2, 3, 4]),
            Err(MemError::OutOfRange { .. })
        ));
        assert!(matches!(
            m.read(1 << 20, 1),
            Err(MemError::OutOfRange { .. })
        ));
        let huge = vec![0u8; (1 << 20) + 1];
        assert!(matches!(
            m.load_code(&huge),
            Err(MemError::OutOfRange { .. })
        ));
        assert!(matches!(
            m.alloc(1 << 20, 8),
            Err(MemError::OutOfMemory { .. })
        ));
        assert!(matches!(
            m.alloc(usize::MAX - 4, 8),
            Err(MemError::OutOfMemory { .. })
        ));
        let entry = m.load_code(&plus1_code()).unwrap();
        assert_eq!(m.call(entry, &[1], 100).unwrap(), 2);
    }

    #[test]
    fn stats_trace_and_delay_slot_fills() {
        use std::sync::{Arc, Mutex};
        let mut m = Machine::new(1 << 20);
        let entry = m.load_code(&plus1_code()).unwrap();
        let log: Arc<Mutex<Vec<TraceRecord>>> = Arc::default();
        let log2 = Arc::clone(&log);
        m.set_trace(move |r| log2.lock().unwrap().push(r.clone()));
        assert_eq!(m.call(entry, &[41], 100).unwrap(), 42);
        m.clear_trace();
        let log = log.lock().unwrap();
        assert_eq!(log.len(), 4);
        assert_eq!(log[0].pc, u64::from(entry));
        assert!(log[0].disasm.starts_with("save"));
        assert!(log[1].disasm.starts_with("add"));
        // add %i0, 1, %i0 with %i0 = 41: register 24, 41 -> 42.
        assert_eq!(log[1].delta, Some((24, 41, 42)));
        // The `restore` in jmpl's delay slot is a useful fill.
        assert_eq!(m.stats().delay_slot_fills, 1);
        // Trap tallies: run from a PC outside the code.
        assert!(m.run(0, 10).is_err());
        assert_eq!(m.stats().traps.count(vcode::TrapKind::BadPc), 1);
    }

    #[test]
    fn dcache_folds_into_stats() {
        // ld [%i0+0], %i0 ; ret ; restore  (load arg, return it)
        let words = [
            (2u32 << 30)
                | (14 << 25)
                | (0x3c << 19)
                | (14 << 14)
                | (1 << 13)
                | ((-96i32 as u32) & 0x1fff),
            (3 << 30) | (24 << 25) | (24 << 14) | (1 << 13), // ld [%i0+0],%i0
            (2 << 30) | (0x38 << 19) | (31 << 14) | (1 << 13) | 8,
            (2 << 30) | (0x3d << 19),
        ];
        let code: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let mut m = Machine::new(1 << 20);
        m.dcache = Some(Cache::new(1024, 16, 10));
        let entry = m.load_code(&code).unwrap();
        let addr = m.alloc(8, 8).unwrap();
        m.write(addr, &7u32.to_le_bytes()).unwrap();
        assert_eq!(m.call(entry, &[addr], 100).unwrap(), 7);
        assert_eq!(m.call(entry, &[addr], 100).unwrap(), 7);
        let s = m.stats();
        assert_eq!((s.cache_hits, s.cache_misses), (1, 1));
        assert_eq!(s.cycles, s.insns_retired + 10);
        assert_eq!(s.loads, 2);
    }

    #[test]
    fn subcc_flags_and_branches() {
        // subcc %i0, %i1, %g0; bl +3; nop; or %g0,0,%i0; ret; restore
        //                                [taken: or %g0,1,%i0; ret; restore]
        let words = [
            (2u32 << 30)
                | (14 << 25)
                | (0x3c << 19)
                | (14 << 14)
                | (1 << 13)
                | ((-96i32 as u32) & 0x1fff),
            (2 << 30) | (0x14 << 19) | (24 << 14) | 25, // subcc %i0,%i1,%g0
            (2 << 22) | (3 << 25) | 4,                  // bl +4
            0x0100_0000,                                // nop (sethi 0,%g0)
            (2 << 30) | (24 << 25) | (2 << 19) | (1 << 13), // or %g0,0,%i0
            (2 << 30) | (0x38 << 19) | (31 << 14) | (1 << 13) | 8,
            (2 << 30) | (0x3d << 19),
            // taken target (word 6? adjust): or %g0,1,%i0
            (2 << 30) | (24 << 25) | (2 << 19) | (1 << 13) | 1,
            (2 << 30) | (0x38 << 19) | (31 << 14) | (1 << 13) | 8,
            (2 << 30) | (0x3d << 19),
        ];
        // Branch at word 2, disp 4 → word 6? word2 + 4 = word 6... the
        // taken block starts at word 7; fix disp to 5.
        let mut words = words;
        words[2] = (2 << 22) | (3 << 25) | 5;
        let code: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let mut m = Machine::new(1 << 20);
        let entry = m.load_code(&code).unwrap();
        assert_eq!(m.call(entry, &[1, 2], 100).unwrap(), 1, "1 < 2");
        assert_eq!(m.call(entry, &[2, 1], 100).unwrap(), 0, "2 >= 1");
        assert_eq!(
            m.call(entry, &[0x8000_0000, 1], 100).unwrap(),
            1,
            "signed compare"
        );
    }

    #[test]
    fn window_overflow_detected() {
        // Infinite save loop.
        let words = [
            (2u32 << 30)
                | (14 << 25)
                | (0x3c << 19)
                | (14 << 14)
                | (1 << 13)
                | ((-96i32 as u32) & 0x1fff),
            (1 << 30) | ((-1i32 as u32) & 0x3fff_ffff), // call self-4? loop via branch:
        ];
        // Simpler: two saves then branch back to the first save.
        let words = [
            words[0],
            (8 << 25) | (2 << 22) | ((-1i32 as u32) & 0x3f_ffff), // ba -1
            0x0100_0000,
        ];
        let code: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let mut m = Machine::new(1 << 20);
        let entry = m.load_code(&code).unwrap();
        assert_eq!(m.run(entry, 100_000), Err(Trap::WindowOverflow));
    }
}
