//! An Alpha (21064-era) instruction-set simulator.
//!
//! Executes code from the `vcode-alpha` backend. Besides the base ISA
//! (no byte/word memory ops — `ldq_u` and the ext/ins/msk byte zappers
//! instead), it provides the *division support routines* at magic
//! addresses: the backend emits `jsr t9, (at)` to them because the
//! hardware has no integer divide (paper §5.2), and they follow the
//! special convention of preserving every caller-saved register.

use crate::{host_range, merge_stats, Cache, MemError};
use std::fmt;
use vcode::obs::{ExecStats, TraceRecord};

/// Base address code is loaded at.
pub const CODE_BASE: u64 = 0x1_0000;
/// Return-address sentinel.
pub const HALT: u64 = 0xffff_fff0;
/// Division support routines live at `0xd000 + 8k` (below the code).
pub const DIV_BASE: u64 = 0xd000;

/// Cycles charged per division-routine call (a software divide loop of
/// the era ran on the order of dozens of instructions).
pub const DIV_COST: u64 = 40;

/// Abnormal stop.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Trap {
    /// PC outside loaded code.
    BadPc(u64),
    /// Bad memory access.
    BadAccess(u64),
    /// Misaligned access.
    Unaligned(u64),
    /// Unknown encoding.
    BadInsn {
        /// PC.
        pc: u64,
        /// Instruction word.
        word: u32,
    },
    /// Step limit exceeded.
    StepLimit,
}

impl From<Trap> for vcode::Trap {
    fn from(t: Trap) -> vcode::Trap {
        use vcode::TrapKind;
        let backend = "alpha";
        match t {
            Trap::BadPc(pc) => vcode::Trap::at(TrapKind::BadPc, pc, backend),
            Trap::BadAccess(a) => vcode::Trap::at(TrapKind::BadAccess, a, backend),
            Trap::Unaligned(a) => vcode::Trap::at(TrapKind::Unaligned, a, backend),
            Trap::BadInsn { pc, .. } => vcode::Trap::at(TrapKind::IllegalInsn, pc, backend),
            Trap::StepLimit => vcode::Trap::new(TrapKind::FuelExhausted, backend),
        }
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::BadPc(pc) => write!(f, "pc {pc:#x} outside code"),
            Trap::BadAccess(a) => write!(f, "bad access at {a:#x}"),
            Trap::Unaligned(a) => write!(f, "unaligned access at {a:#x}"),
            Trap::BadInsn { pc, word } => write!(f, "bad instruction {word:#010x} at {pc:#x}"),
            Trap::StepLimit => write!(f, "step limit exceeded"),
        }
    }
}

impl std::error::Error for Trap {}

/// The simulated machine.
pub struct Machine {
    /// Integer registers (`$31` reads as zero).
    pub regs: [u64; 32],
    /// FP registers as raw T-format (f64) bits; `$f31` reads as zero.
    pub fregs: [u64; 32],
    mem: Vec<u8>,
    code_end: u64,
    data_brk: u64,
    stats: ExecStats,
    /// Division-routine invocations (Alpha-specific; the routines'
    /// instruction cost is charged into `stats` as [`DIV_COST`] retired
    /// instructions per call).
    pub div_calls: u64,
    /// Optional data-cache model; hits/misses/stalls fold into
    /// [`stats`](Self::stats).
    pub dcache: Option<Cache>,
    trace: Option<crate::TraceSink>,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("alpha::Machine")
            .field("stats", &self.stats)
            .field("div_calls", &self.div_calls)
            .finish()
    }
}

impl Machine {
    /// Creates a machine with `mem_size` bytes of memory.
    pub fn new(mem_size: usize) -> Machine {
        assert!(mem_size >= 128 * 1024);
        Machine {
            regs: [0; 32],
            fregs: [0; 32],
            mem: vec![0; mem_size],
            code_end: CODE_BASE,
            data_brk: (mem_size / 2) as u64,
            stats: ExecStats::default(),
            div_calls: 0,
            dcache: None,
            trace: None,
        }
    }

    /// Loads code, returning the entry address.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the image does not fit in simulated
    /// memory.
    pub fn load_code(&mut self, code: &[u8]) -> Result<u64, MemError> {
        let at = (self.code_end as usize).div_ceil(16) * 16;
        let end = at
            .checked_add(code.len())
            .filter(|&e| e <= self.mem.len())
            .ok_or(MemError::OutOfRange {
                addr: at as u64,
                len: code.len(),
                size: self.mem.len(),
            })?;
        self.mem[at..end].copy_from_slice(code);
        self.code_end = end as u64;
        Ok(at as u64)
    }

    /// Allocates simulated data memory.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfMemory`] when the request exhausts (or
    /// arithmetically overflows) the heap region.
    pub fn alloc(&mut self, size: usize, align: usize) -> Result<u64, MemError> {
        let align = align.max(1);
        let enomem = MemError::OutOfMemory {
            requested: size,
            align,
        };
        let at = (self.data_brk as usize)
            .checked_next_multiple_of(align)
            .ok_or(enomem)?;
        let brk = at
            .checked_add(size)
            .filter(|&b| b < self.mem.len().saturating_sub(64 * 1024))
            .ok_or(enomem)?;
        self.data_brk = brk as u64;
        Ok(at as u64)
    }

    /// Writes into simulated memory.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the range is out of bounds.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), MemError> {
        host_range(&self.mem, addr, data.len())?;
        self.mem[addr as usize..addr as usize + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads back.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the range is out of bounds.
    pub fn read(&self, addr: u64, len: usize) -> Result<&[u8], MemError> {
        host_range(&self.mem, addr, len)?;
        Ok(&self.mem[addr as usize..addr as usize + len])
    }

    /// Unified execution statistics (shared across all three simulators).
    /// Alpha has no delay slots, so `delay_slot_fills` is always zero.
    pub fn stats(&self) -> ExecStats {
        merge_stats(&self.stats, self.dcache.as_ref())
    }

    /// Total simulated cycles: one per retired instruction (division
    /// routines charge [`DIV_COST`]) plus cache stalls.
    pub fn cycles(&self) -> u64 {
        self.stats().cycles
    }

    /// Zeroes all execution counters (including cache hit/miss totals
    /// and `div_calls`).
    pub fn reset_stats(&mut self) {
        self.stats = ExecStats::default();
        self.div_calls = 0;
        if let Some(c) = &mut self.dcache {
            c.hits = 0;
            c.misses = 0;
        }
    }

    /// Installs a per-instruction trace callback (the §6.2 debugger
    /// stand-in): each executed instruction streams a
    /// [`TraceRecord`] with its disassembly and first register delta.
    pub fn set_trace(&mut self, f: impl FnMut(&TraceRecord) + Send + 'static) {
        self.trace = Some(Box::new(f));
    }

    /// Removes the trace callback.
    pub fn clear_trace(&mut self) {
        self.trace = None;
    }

    fn touch(&mut self, addr: u64, len: u64) {
        if let Some(c) = &mut self.dcache {
            c.access_span(addr, len);
        }
    }

    /// Calls the function at `entry` with up to six integer arguments,
    /// returning `$v0`.
    ///
    /// # Errors
    ///
    /// Any [`Trap`].
    pub fn call(&mut self, entry: u64, args: &[u64], max_steps: u64) -> Result<u64, Trap> {
        assert!(args.len() <= 6);
        for (i, &v) in args.iter().enumerate() {
            self.regs[16 + i] = v;
        }
        self.run(entry, max_steps)?;
        Ok(self.regs[0])
    }

    /// Calls with doubles in `$f16`..., returning `$f0`.
    ///
    /// # Errors
    ///
    /// Any [`Trap`].
    pub fn call_f64(&mut self, entry: u64, args: &[f64], max_steps: u64) -> Result<f64, Trap> {
        assert!(args.len() <= 4);
        for (i, &v) in args.iter().enumerate() {
            self.fregs[16 + i] = v.to_bits();
        }
        self.run(entry, max_steps)?;
        Ok(f64::from_bits(self.fregs[0]))
    }

    /// Runs until the return to [`HALT`].
    ///
    /// # Errors
    ///
    /// Any [`Trap`] raised during execution (also tallied in
    /// [`stats`](Self::stats)).
    pub fn run(&mut self, entry: u64, max_steps: u64) -> Result<(), Trap> {
        let mut tracer = self.trace.take();
        let r = self.run_loop(entry, max_steps, tracer.as_mut());
        self.trace = tracer;
        if let Err(t) = &r {
            self.stats.traps.record(vcode::Trap::from(t.clone()).kind);
        }
        r
    }

    fn run_loop(
        &mut self,
        entry: u64,
        max_steps: u64,
        mut tracer: Option<&mut crate::TraceSink>,
    ) -> Result<(), Trap> {
        self.regs[26] = HALT;
        self.regs[30] = (self.mem.len() - 256) as u64;
        let mut pc = entry;
        let mut steps = 0u64;
        while pc != HALT {
            if steps >= max_steps {
                return Err(Trap::StepLimit);
            }
            steps += 1;
            // Division support (paper §5.2's runtime routines): args in
            // t10/t11, result in t12/pv, return through t9. Preserves
            // everything else.
            if (DIV_BASE..DIV_BASE + 0x40).contains(&pc) {
                self.div_calls += 1;
                self.stats.insns_retired += DIV_COST;
                let a = self.regs[24];
                let b = self.regs[25];
                let idx = (pc - DIV_BASE) / 8;
                self.regs[27] = div_routine(idx, a, b);
                pc = self.regs[23];
                continue;
            }
            if pc < CODE_BASE || pc >= self.code_end || pc & 3 != 0 {
                return Err(Trap::BadPc(pc));
            }
            let word =
                u32::from_le_bytes(self.mem[pc as usize..pc as usize + 4].try_into().unwrap());
            let before = tracer.as_ref().map(|_| self.regs);
            let next = self.step(pc, word)?;
            if let (Some(t), Some(before)) = (tracer.as_mut(), before) {
                let delta = before
                    .iter()
                    .zip(self.regs.iter())
                    .enumerate()
                    .find(|(_, (o, n))| o != n)
                    .map(|(i, (&o, &n))| (i as u8, o, n));
                t(&TraceRecord {
                    pc,
                    disasm: disasm(word),
                    delta,
                });
            }
            pc = next;
        }
        Ok(())
    }

    #[inline]
    fn get(&self, r: u8) -> u64 {
        if r == 31 {
            0
        } else {
            self.regs[r as usize]
        }
    }

    #[inline]
    fn set(&mut self, r: u8, v: u64) {
        if r != 31 {
            self.regs[r as usize] = v;
        }
    }

    fn fget(&self, r: u8) -> u64 {
        if r == 31 {
            0
        } else {
            self.fregs[r as usize]
        }
    }

    fn fset(&mut self, r: u8, v: u64) {
        if r != 31 {
            self.fregs[r as usize] = v;
        }
    }

    fn ldq(&self, addr: u64) -> Result<u64, Trap> {
        if addr & 7 != 0 {
            return Err(Trap::Unaligned(addr));
        }
        let a = addr as usize;
        let b = self.mem.get(a..a + 8).ok_or(Trap::BadAccess(addr))?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn stq(&mut self, addr: u64, v: u64) -> Result<(), Trap> {
        if addr & 7 != 0 {
            return Err(Trap::Unaligned(addr));
        }
        let a = addr as usize;
        self.mem
            .get_mut(a..a + 8)
            .ok_or(Trap::BadAccess(addr))?
            .copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn ldl(&self, addr: u64) -> Result<u64, Trap> {
        if addr & 3 != 0 {
            return Err(Trap::Unaligned(addr));
        }
        let a = addr as usize;
        let b = self.mem.get(a..a + 4).ok_or(Trap::BadAccess(addr))?;
        Ok(u32::from_le_bytes(b.try_into().unwrap()) as i32 as i64 as u64)
    }

    fn stl(&mut self, addr: u64, v: u32) -> Result<(), Trap> {
        if addr & 3 != 0 {
            return Err(Trap::Unaligned(addr));
        }
        let a = addr as usize;
        self.mem
            .get_mut(a..a + 4)
            .ok_or(Trap::BadAccess(addr))?
            .copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn step(&mut self, pc: u64, word: u32) -> Result<u64, Trap> {
        self.stats.insns_retired += 1;
        let opcode = (word >> 26) as u8;
        let ra = ((word >> 21) & 31) as u8;
        let rb = ((word >> 16) & 31) as u8;
        let disp16 = word as u16 as i16;
        let bad = || Trap::BadInsn { pc, word };
        let mut next = pc + 4;
        match opcode {
            0x08 => {
                // lda
                let v = self.get(rb).wrapping_add(disp16 as i64 as u64);
                self.set(ra, v);
            }
            0x09 => {
                let v = self.get(rb).wrapping_add(((disp16 as i64) << 16) as u64);
                self.set(ra, v);
            }
            0x0b => {
                // ldq_u
                self.stats.loads += 1;
                let addr = self.get(rb).wrapping_add(disp16 as i64 as u64) & !7;
                self.touch(addr, 8);
                let v = self.ldq(addr)?;
                self.set(ra, v);
            }
            0x0f => {
                // stq_u
                self.stats.stores += 1;
                let addr = self.get(rb).wrapping_add(disp16 as i64 as u64) & !7;
                self.touch(addr, 8);
                let v = self.get(ra);
                self.stq(addr, v)?;
            }
            0x28 => {
                self.stats.loads += 1;
                let addr = self.get(rb).wrapping_add(disp16 as i64 as u64);
                self.touch(addr, 4);
                let v = self.ldl(addr)?;
                self.set(ra, v);
            }
            0x29 => {
                self.stats.loads += 1;
                let addr = self.get(rb).wrapping_add(disp16 as i64 as u64);
                self.touch(addr, 8);
                let v = self.ldq(addr)?;
                self.set(ra, v);
            }
            0x2c => {
                self.stats.stores += 1;
                let addr = self.get(rb).wrapping_add(disp16 as i64 as u64);
                self.touch(addr, 4);
                let v = self.get(ra);
                self.stl(addr, v as u32)?;
            }
            0x2d => {
                self.stats.stores += 1;
                let addr = self.get(rb).wrapping_add(disp16 as i64 as u64);
                self.touch(addr, 8);
                let v = self.get(ra);
                self.stq(addr, v)?;
            }
            0x22 => {
                // lds: load S-format (f32), widen to T-format bits.
                self.stats.loads += 1;
                let addr = self.get(rb).wrapping_add(disp16 as i64 as u64);
                self.touch(addr, 4);
                if addr & 3 != 0 {
                    return Err(Trap::Unaligned(addr));
                }
                let a = addr as usize;
                let b4 = self.mem.get(a..a + 4).ok_or(Trap::BadAccess(addr))?;
                let s = f32::from_bits(u32::from_le_bytes(b4.try_into().unwrap()));
                self.fset(ra, f64::from(s).to_bits());
            }
            0x26 => {
                // sts
                self.stats.stores += 1;
                let addr = self.get(rb).wrapping_add(disp16 as i64 as u64);
                self.touch(addr, 4);
                let s = f64::from_bits(self.fget(ra)) as f32;
                self.stl(addr, s.to_bits())?;
            }
            0x23 => {
                self.stats.loads += 1;
                let addr = self.get(rb).wrapping_add(disp16 as i64 as u64);
                self.touch(addr, 8);
                let v = self.ldq(addr)?;
                self.fset(ra, v);
            }
            0x27 => {
                self.stats.stores += 1;
                let addr = self.get(rb).wrapping_add(disp16 as i64 as u64);
                self.touch(addr, 8);
                let v = self.fget(ra);
                self.stq(addr, v)?;
            }
            0x10..=0x13 => {
                let func = ((word >> 5) & 0x7f) as u8;
                let a = self.get(ra);
                let b = if word & (1 << 12) != 0 {
                    u64::from((word >> 13) & 0xff)
                } else {
                    self.get(rb)
                };
                let rc = (word & 31) as u8;
                let v = match (opcode, func) {
                    (0x10, 0x00) => (a as i32).wrapping_add(b as i32) as i64 as u64,
                    (0x10, 0x09) => (a as i32).wrapping_sub(b as i32) as i64 as u64,
                    (0x10, 0x20) => a.wrapping_add(b),
                    (0x10, 0x29) => a.wrapping_sub(b),
                    (0x10, 0x1d) => u64::from(a < b),
                    (0x10, 0x2d) => u64::from(a == b),
                    (0x10, 0x3d) => u64::from(a <= b),
                    (0x10, 0x4d) => u64::from((a as i64) < (b as i64)),
                    (0x10, 0x6d) => u64::from((a as i64) <= (b as i64)),
                    (0x11, 0x00) => a & b,
                    (0x11, 0x08) => a & !b,
                    (0x11, 0x20) => a | b,
                    (0x11, 0x28) => a | !b,
                    (0x11, 0x40) => a ^ b,
                    (0x11, 0x48) => !(a ^ b),
                    (0x12, 0x39) => a.wrapping_shl(b as u32 & 63),
                    (0x12, 0x34) => a.wrapping_shr(b as u32 & 63),
                    (0x12, 0x3c) => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
                    (0x12, 0x31) => {
                        // zapnot: keep bytes whose mask bit is set.
                        let mut mask = 0u64;
                        for k in 0..8 {
                            if b & (1 << k) != 0 {
                                mask |= 0xffu64 << (k * 8);
                            }
                        }
                        a & mask
                    }
                    (0x12, 0x06) => (a >> ((b & 7) * 8)) & 0xff,
                    (0x12, 0x16) => (a >> ((b & 7) * 8)) & 0xffff,
                    (0x12, 0x0b) => (a & 0xff) << ((b & 7) * 8),
                    (0x12, 0x1b) => (a & 0xffff) << ((b & 7) * 8),
                    (0x12, 0x02) => a & !(0xffu64 << ((b & 7) * 8)),
                    (0x12, 0x12) => a & !(0xffffu64 << ((b & 7) * 8)),
                    (0x13, 0x00) => (a as i32).wrapping_mul(b as i32) as i64 as u64,
                    (0x13, 0x20) => a.wrapping_mul(b),
                    _ => return Err(bad()),
                };
                self.set(rc, v);
            }
            0x16 => {
                let func = ((word >> 5) & 0x7ff) as u16;
                let fa = f64::from_bits(self.fget(ra));
                let fb = f64::from_bits(self.fget(rb));
                let rc = (word & 31) as u8;
                let v: u64 = match func {
                    0x080 => f64::from((fa as f32) + (fb as f32)).to_bits(),
                    0x081 => f64::from((fa as f32) - (fb as f32)).to_bits(),
                    0x082 => f64::from((fa as f32) * (fb as f32)).to_bits(),
                    0x083 => f64::from((fa as f32) / (fb as f32)).to_bits(),
                    0x0a0 => (fa + fb).to_bits(),
                    0x0a1 => (fa - fb).to_bits(),
                    0x0a2 => (fa * fb).to_bits(),
                    0x0a3 => (fa / fb).to_bits(),
                    0x0a5 => {
                        if fa == fb {
                            2.0f64.to_bits()
                        } else {
                            0
                        }
                    }
                    0x0a6 => {
                        if fa < fb {
                            2.0f64.to_bits()
                        } else {
                            0
                        }
                    }
                    0x0a7 => {
                        if fa <= fb {
                            2.0f64.to_bits()
                        } else {
                            0
                        }
                    }
                    0x02f => (fb as i64) as u64, // cvttq/c (truncate)
                    0x0bc => f64::from(self.fget(rb) as i64 as f64 as f32).to_bits(),
                    0x0be => (self.fget(rb) as i64 as f64).to_bits(),
                    0x2ac => f64::from(fb as f32).to_bits(),
                    _ => return Err(bad()),
                };
                self.fset(rc, v);
            }
            0x17 => {
                let func = ((word >> 5) & 0x7ff) as u16;
                let rc = (word & 31) as u8;
                let fa = self.fget(ra);
                let fb = self.fget(rb);
                let v = match func {
                    0x020 => (fa & (1 << 63)) | (fb & !(1 << 63)),
                    0x021 => (!fa & (1 << 63)) | (fb & !(1 << 63)),
                    0x022 => (fa & 0xfff0_0000_0000_0000) | (fb & 0x000f_ffff_ffff_ffff),
                    _ => return Err(bad()),
                };
                self.fset(rc, v);
            }
            0x1a => {
                self.stats.branches += 1;
                let target = self.get(rb) & !3;
                self.set(ra, pc + 4);
                next = target;
            }
            0x30 | 0x34 => {
                self.stats.branches += 1;
                let disp = ((word & 0x1f_ffff) as i32) << 11 >> 11;
                self.set(ra, pc + 4);
                next = pc
                    .wrapping_add(4)
                    .wrapping_add((i64::from(disp) * 4) as u64);
            }
            0x39 | 0x3d | 0x3a | 0x3b | 0x3e | 0x3f => {
                self.stats.branches += 1;
                let v = self.get(ra) as i64;
                let taken = match opcode {
                    0x39 => v == 0,
                    0x3d => v != 0,
                    0x3a => v < 0,
                    0x3b => v <= 0,
                    0x3e => v >= 0,
                    _ => v > 0,
                };
                if taken {
                    let disp = ((word & 0x1f_ffff) as i32) << 11 >> 11;
                    next = pc
                        .wrapping_add(4)
                        .wrapping_add((i64::from(disp) * 4) as u64);
                }
            }
            0x31 | 0x35 | 0x32 | 0x33 | 0x36 | 0x37 => {
                self.stats.branches += 1;
                let v = f64::from_bits(self.fget(ra));
                let taken = match opcode {
                    0x31 => v == 0.0,
                    0x35 => v != 0.0,
                    0x32 => v < 0.0,
                    0x33 => v <= 0.0,
                    0x36 => v >= 0.0,
                    _ => v > 0.0,
                };
                if taken {
                    let disp = ((word & 0x1f_ffff) as i32) << 11 >> 11;
                    next = pc
                        .wrapping_add(4)
                        .wrapping_add((i64::from(disp) * 4) as u64);
                }
            }
            _ => return Err(bad()),
        }
        Ok(next)
    }
}

fn div_routine(idx: u64, a: u64, b: u64) -> u64 {
    match idx {
        0 => {
            // divl
            let (x, y) = (a as i32, b as i32);
            if y == 0 || (x == i32::MIN && y == -1) {
                0
            } else {
                x.wrapping_div(y) as i64 as u64
            }
        }
        1 => {
            let (x, y) = (a as u32, b as u32);
            x.checked_div(y).map_or(0, |q| i64::from(q as i32) as u64)
        }
        2 => {
            let (x, y) = (a as i32, b as i32);
            if y == 0 || (x == i32::MIN && y == -1) {
                0
            } else {
                x.wrapping_rem(y) as i64 as u64
            }
        }
        3 => {
            let (x, y) = (a as u32, b as u32);
            if y == 0 {
                0
            } else {
                i64::from((x % y) as i32) as u64
            }
        }
        4 => {
            let (x, y) = (a as i64, b as i64);
            if y == 0 || (x == i64::MIN && y == -1) {
                0
            } else {
                x.wrapping_div(y) as u64
            }
        }
        5 => a.checked_div(b).unwrap_or(0),
        6 => {
            let (x, y) = (a as i64, b as i64);
            if y == 0 || (x == i64::MIN && y == -1) {
                0
            } else {
                x.wrapping_rem(y) as u64
            }
        }
        _ => {
            if b == 0 {
                0
            } else {
                a % b
            }
        }
    }
}

/// Disassembles one instruction word (debugging aid, §6.2).
pub fn disasm(word: u32) -> String {
    let opcode = (word >> 26) as u8;
    let ra = (word >> 21) & 31;
    let rb = (word >> 16) & 31;
    let disp16 = word as u16 as i16;
    let mem_name = |n: &str| format!("{n} ${ra}, {disp16}(${rb})");
    match opcode {
        0x08 => mem_name("lda"),
        0x09 => mem_name("ldah"),
        0x0b => mem_name("ldq_u"),
        0x0f => mem_name("stq_u"),
        0x22 => mem_name("lds"),
        0x23 => mem_name("ldt"),
        0x26 => mem_name("sts"),
        0x27 => mem_name("stt"),
        0x28 => mem_name("ldl"),
        0x29 => mem_name("ldq"),
        0x2c => mem_name("stl"),
        0x2d => mem_name("stq"),
        0x10..=0x13 => {
            let func = (word >> 5) & 0x7f;
            let rc = word & 31;
            let name = match (opcode, func) {
                (0x10, 0x00) => "addl",
                (0x10, 0x09) => "subl",
                (0x10, 0x20) => "addq",
                (0x10, 0x29) => "subq",
                (0x10, 0x1d) => "cmpult",
                (0x10, 0x2d) => "cmpeq",
                (0x10, 0x3d) => "cmpule",
                (0x10, 0x4d) => "cmplt",
                (0x10, 0x6d) => "cmple",
                (0x11, 0x00) => "and",
                (0x11, 0x20) => "bis",
                (0x11, 0x28) => "ornot",
                (0x11, 0x40) => "xor",
                (0x12, 0x39) => "sll",
                (0x12, 0x34) => "srl",
                (0x12, 0x3c) => "sra",
                (0x12, 0x31) => "zapnot",
                (0x12, 0x06) => "extbl",
                (0x12, 0x16) => "extwl",
                (0x12, 0x0b) => "insbl",
                (0x12, 0x1b) => "inswl",
                (0x12, 0x02) => "mskbl",
                (0x12, 0x12) => "mskwl",
                (0x13, 0x00) => "mull",
                (0x13, 0x20) => "mulq",
                _ => return format!(".word {word:#010x}"),
            };
            if word == (0x11 << 26) | (31 << 21) | (31 << 16) | (0x20 << 5) | 31 {
                return "nop".to_owned();
            }
            if word & (1 << 12) != 0 {
                format!("{name} ${ra}, {}, ${rc}", (word >> 13) & 0xff)
            } else {
                format!("{name} ${ra}, ${rb}, ${rc}")
            }
        }
        0x16 => format!(
            "fpop.{:#x} $f{ra}, $f{rb}, $f{}",
            (word >> 5) & 0x7ff,
            word & 31
        ),
        0x17 => format!(
            "cpys.{:#x} $f{ra}, $f{rb}, $f{}",
            (word >> 5) & 0x7ff,
            word & 31
        ),
        0x1a => {
            let kind = match (word >> 14) & 3 {
                0 => "jmp",
                1 => "jsr",
                2 => "ret",
                _ => "jsr_co",
            };
            format!("{kind} ${ra}, (${rb})")
        }
        0x30 => format!("br ${ra}, {}", ((word & 0x1f_ffff) as i32) << 11 >> 11),
        0x34 => format!("bsr ${ra}, {}", ((word & 0x1f_ffff) as i32) << 11 >> 11),
        0x39 | 0x3d | 0x3a | 0x3b | 0x3e | 0x3f | 0x31 | 0x35 | 0x32 | 0x33 | 0x36 | 0x37 => {
            let name = match opcode {
                0x39 => "beq",
                0x3d => "bne",
                0x3a => "blt",
                0x3b => "ble",
                0x3e => "bge",
                0x3f => "bgt",
                0x31 => "fbeq",
                0x35 => "fbne",
                0x32 => "fblt",
                0x33 => "fble",
                0x36 => "fbge",
                _ => "fbgt",
            };
            format!("{name} ${ra}, {}", ((word & 0x1f_ffff) as i32) << 11 >> 11)
        }
        _ => format!(".word {word:#010x}"),
    }
}

/// [`vcode::InsnDecoder`] over the simulator's Alpha decode tables, for
/// the differential machine-code checker (`vcode::cross_check`).
///
/// Control transfers are the conditional branch family and `br`/`bsr`
/// (pc-relative disp21) plus the opcode-0x1a jump group (`jmp`/`jsr`/
/// `ret`, register targets with no static destination).
#[derive(Debug, Clone, Copy, Default)]
pub struct Decoder;

impl vcode::InsnDecoder for Decoder {
    fn decode(&self, code: &[u8], at: usize) -> Option<vcode::DecodedInsn> {
        let word = u32::from_le_bytes(code.get(at..at + 4)?.try_into().ok()?);
        if disasm(word).starts_with(".word") {
            return None;
        }
        let opcode = (word >> 26) as u8;
        let (control, target) = match opcode {
            0x1a => (true, None),
            0x30..=0x37 | 0x39..=0x3b | 0x3d..=0x3f => {
                let disp = i64::from(((word & 0x1f_ffff) as i32) << 11 >> 11) << 2;
                (true, Some(at as i64 + 4 + disp))
            }
            _ => (false, None),
        };
        Some(vcode::DecodedInsn {
            len: 4,
            control,
            target,
        })
    }
}

/// Disassembles a whole code buffer.
pub fn disasm_all(code: &[u8]) -> String {
    code.chunks_exact(4)
        .enumerate()
        .map(|(i, w)| {
            let word = u32::from_le_bytes(w.try_into().unwrap());
            format!("{:4x}:  {}\n", i * 4, disasm(word))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // addl a0, 1, v0 (literal); ret (ra)
    fn plus1_code() -> Vec<u8> {
        let words = [
            ((0x10u32 << 26) | (16 << 21) | (1 << 13) | (1 << 12)),
            (0x1au32 << 26) | (31 << 21) | (26 << 16) | (2 << 14),
        ];
        words.iter().flat_map(|w| w.to_le_bytes()).collect()
    }

    #[test]
    fn runs_plus1() {
        let mut m = Machine::new(1 << 20);
        let entry = m.load_code(&plus1_code()).unwrap();
        assert_eq!(m.call(entry, &[41], 100).unwrap(), 42);
        assert_eq!(m.call(entry, &[u64::from(u32::MAX)], 100).unwrap(), 0);
    }

    #[test]
    fn ldq_u_and_extbl() {
        // a0 = addr: ldq_u t0, 0(a0); extbl v0, t0?? extbl ra=t0 rb=a0
        // rc=v0; ret.
        let words = [
            (0x0bu32 << 26) | (1 << 21) | (16 << 16),
            ((0x12u32 << 26) | (1 << 21) | (16 << 16) | (0x06 << 5)),
            (0x1au32 << 26) | (31 << 21) | (26 << 16) | (2 << 14),
        ];
        let code: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let mut m = Machine::new(1 << 20);
        let entry = m.load_code(&code).unwrap();
        let addr = m.alloc(16, 8).unwrap();
        m.write(addr, &[0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88])
            .unwrap();
        assert_eq!(m.call(entry, &[addr + 3], 100).unwrap(), 0x44);
        assert_eq!(m.call(entry, &[addr + 6], 100).unwrap(), 0x77);
    }

    #[test]
    fn division_magic_addresses() {
        // Call divl directly: t10 = -20, t11 = 3, jsr t9, (a0).
        let words = [
            (0x1au32 << 26) | (23 << 21) | (16 << 16) | (1 << 14), // jsr t9,(a0)
            // return here: mov pv → v0; ret
            ((0x11u32 << 26) | (31 << 21) | (27 << 16) | (0x20 << 5)),
            (0x1au32 << 26) | (31 << 21) | (26 << 16) | (2 << 14),
        ];
        let code: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let mut m = Machine::new(1 << 20);
        let entry = m.load_code(&code).unwrap();
        m.regs[24] = (-20i64) as u64;
        m.regs[25] = 3;
        let r = m.call(entry, &[DIV_BASE], 100).unwrap();
        assert_eq!(r as i64, -6);
        assert_eq!(m.div_calls, 1);
        assert!(m.stats().insns_retired >= DIV_COST);
    }

    #[test]
    fn branches_and_literals() {
        // beq a0, +1; lda v0, 1($31); ret; [target] lda v0, 2($31); ret
        let words = [
            (0x39u32 << 26) | (16 << 21) | 2,
            (0x08u32 << 26) | (31 << 16) | 1,
            (0x1au32 << 26) | (31 << 21) | (26 << 16) | (2 << 14),
            (0x08u32 << 26) | (31 << 16) | 2,
            (0x1au32 << 26) | (31 << 21) | (26 << 16) | (2 << 14),
        ];
        let code: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let mut m = Machine::new(1 << 20);
        let entry = m.load_code(&code).unwrap();
        assert_eq!(m.call(entry, &[0], 100).unwrap(), 2);
        assert_eq!(m.call(entry, &[5], 100).unwrap(), 1);
    }

    #[test]
    fn bad_instruction_and_step_limit() {
        let words = [0x0000_0000u32]; // call_pal halt — undecoded
        let code: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let mut m = Machine::new(1 << 20);
        let entry = m.load_code(&code).unwrap();
        assert!(matches!(m.call(entry, &[], 10), Err(Trap::BadInsn { .. })));
        // br self = infinite loop.
        let words = [(0x30u32 << 26) | (31 << 21) | ((-1i32 as u32) & 0x1f_ffff)];
        let code: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let entry = m.load_code(&code).unwrap();
        assert_eq!(m.call(entry, &[], 100), Err(Trap::StepLimit));
        // Both failures landed in the unified trap tally.
        let s = m.stats();
        assert_eq!(s.traps.count(vcode::TrapKind::IllegalInsn), 1);
        assert_eq!(s.traps.count(vcode::TrapKind::FuelExhausted), 1);
    }

    #[test]
    fn host_memory_apis_return_typed_errors() {
        let mut m = Machine::new(1 << 20);
        assert!(matches!(
            m.write(u64::MAX - 3, &[1, 2, 3, 4]),
            Err(MemError::OutOfRange { .. })
        ));
        assert!(matches!(
            m.read(1 << 20, 1),
            Err(MemError::OutOfRange { .. })
        ));
        let huge = vec![0u8; (1 << 20) + 1];
        assert!(matches!(
            m.load_code(&huge),
            Err(MemError::OutOfRange { .. })
        ));
        assert!(matches!(
            m.alloc(1 << 20, 8),
            Err(MemError::OutOfMemory { .. })
        ));
        assert!(matches!(
            m.alloc(usize::MAX - 4, 8),
            Err(MemError::OutOfMemory { .. })
        ));
        let entry = m.load_code(&plus1_code()).unwrap();
        assert_eq!(m.call(entry, &[1], 100).unwrap(), 2);
    }

    #[test]
    fn trace_and_dcache_stats() {
        use std::sync::{Arc, Mutex};
        // ldq v0, 0(a0); ret
        let words = [
            (0x29u32 << 26) | (16 << 16),
            (0x1au32 << 26) | (31 << 21) | (26 << 16) | (2 << 14),
        ];
        let code: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let mut m = Machine::new(1 << 20);
        m.dcache = Some(Cache::new(1024, 16, 10));
        let entry = m.load_code(&code).unwrap();
        let addr = m.alloc(16, 8).unwrap();
        m.write(addr, &7u64.to_le_bytes()).unwrap();
        let log: Arc<Mutex<Vec<TraceRecord>>> = Arc::default();
        let log2 = Arc::clone(&log);
        m.set_trace(move |r| log2.lock().unwrap().push(r.clone()));
        assert_eq!(m.call(entry, &[addr], 100).unwrap(), 7);
        m.clear_trace();
        assert_eq!(m.call(entry, &[addr], 100).unwrap(), 7);
        let log = log.lock().unwrap();
        assert_eq!(log.len(), 2, "only the traced call streams records");
        assert!(log[0].disasm.starts_with("ldq"));
        assert_eq!(log[0].delta, Some((0, 0, 7)), "$v0: 0 -> 7");
        let s = m.stats();
        assert_eq!((s.cache_hits, s.cache_misses), (1, 1));
        assert_eq!(s.cycles, s.insns_retired + 10);
        assert_eq!(s.delay_slot_fills, 0, "alpha has no delay slots");
    }
}
