//! A MIPS-I instruction-set simulator.
//!
//! Executes the binary code emitted by the `vcode-mips` backend, standing
//! in for the paper's DECstation hardware (see DESIGN.md's substitution
//! table). The simulator is deliberately strict: unknown encodings,
//! out-of-range memory accesses and (optionally) MIPS-I load-delay
//! violations are hard errors, so it doubles as the checker for the
//! auto-generated instruction-mapping regression tests (paper §3.3, §6.1).
//!
//! Delay-slot semantics are modeled exactly: a taken branch executes the
//! following instruction before transferring control, and `jal`/`bal`
//! link to the instruction after the delay slot.

use crate::cache::Cache;
use crate::{host_range, merge_stats, MemError};
use std::fmt;
use vcode::obs::{ExecStats, TraceRecord};

/// Base address code is loaded at.
pub const CODE_BASE: u32 = 0x0000_1000;
/// Return-address sentinel that stops execution.
pub const HALT: u32 = 0xffff_fff0;

/// Why the simulator stopped abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Trap {
    /// PC left the loaded code region.
    BadPc(u32),
    /// Memory access outside the machine's memory.
    BadAccess(u32),
    /// Unaligned word or halfword access.
    Unaligned(u32),
    /// Encoding the decoder does not recognize.
    BadInsn {
        /// Program counter of the instruction.
        pc: u32,
        /// The word.
        word: u32,
    },
    /// Ran more than the step limit (runaway loop).
    StepLimit,
    /// The instruction after a load read the loaded register (MIPS-I
    /// load-delay violation; only raised in strict mode).
    LoadDelayViolation {
        /// Program counter of the offending instruction.
        pc: u32,
        /// The register still in its load shadow.
        reg: u8,
    },
}

impl From<Trap> for vcode::Trap {
    fn from(t: Trap) -> vcode::Trap {
        use vcode::TrapKind;
        let backend = "mips";
        match t {
            Trap::BadPc(pc) => vcode::Trap::at(TrapKind::BadPc, u64::from(pc), backend),
            Trap::BadAccess(a) => vcode::Trap::at(TrapKind::BadAccess, u64::from(a), backend),
            Trap::Unaligned(a) => vcode::Trap::at(TrapKind::Unaligned, u64::from(a), backend),
            Trap::BadInsn { pc, .. } => {
                vcode::Trap::at(TrapKind::IllegalInsn, u64::from(pc), backend)
            }
            Trap::StepLimit => vcode::Trap::new(TrapKind::FuelExhausted, backend),
            Trap::LoadDelayViolation { pc, .. } => {
                vcode::Trap::at(TrapKind::ScheduleHazard, u64::from(pc), backend)
            }
        }
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::BadPc(pc) => write!(f, "pc {pc:#x} outside code"),
            Trap::BadAccess(a) => write!(f, "bad memory access at {a:#x}"),
            Trap::Unaligned(a) => write!(f, "unaligned access at {a:#x}"),
            Trap::BadInsn { pc, word } => write!(f, "bad instruction {word:#010x} at {pc:#x}"),
            Trap::StepLimit => write!(f, "step limit exceeded"),
            Trap::LoadDelayViolation { pc, reg } => {
                write!(f, "load-delay violation at {pc:#x} on ${reg}")
            }
        }
    }
}

impl std::error::Error for Trap {}

/// The simulated machine.
pub struct Machine {
    /// General-purpose registers (`$0` is forced to zero).
    pub regs: [u32; 32],
    /// Floating-point registers (raw bits; doubles are even/odd pairs,
    /// even = low word, little-endian pairing).
    pub fregs: [u32; 32],
    hi: u32,
    lo: u32,
    fcc: bool,
    mem: Vec<u8>,
    code_end: u32,
    data_brk: u32,
    /// Live execution counters (the shared observability type; cache
    /// and cycle fields are merged in by [`stats`](Self::stats)).
    stats: ExecStats,
    /// Optional data-cache model; every load/store address is run
    /// through it when attached.
    pub dcache: Option<Cache>,
    /// Raise [`Trap::LoadDelayViolation`] when generated code uses a
    /// loaded value in the load shadow (validates `raw_load` clients).
    pub strict_load_delay: bool,
    load_shadow: Option<u8>,
    trace: Option<crate::TraceSink>,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("mips::Machine")
            .field("mem_bytes", &self.mem.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Machine {
    /// Creates a machine with `mem_size` bytes of memory (power of two
    /// recommended; at least 64 KiB).
    pub fn new(mem_size: usize) -> Machine {
        assert!(mem_size >= 64 * 1024);
        Machine {
            regs: [0; 32],
            fregs: [0; 32],
            hi: 0,
            lo: 0,
            fcc: false,
            mem: vec![0; mem_size],
            code_end: CODE_BASE,
            data_brk: (mem_size / 2) as u32,
            stats: ExecStats::default(),
            dcache: None,
            strict_load_delay: false,
            load_shadow: None,
            trace: None,
        }
    }

    /// Loads machine code, returning its entry address. Multiple loads
    /// append (so generated functions can call one another by absolute
    /// address).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] when the code does not fit in simulated
    /// memory.
    pub fn load_code(&mut self, code: &[u8]) -> Result<u32, MemError> {
        let at = (self.code_end as usize).div_ceil(8) * 8;
        let end = at
            .checked_add(code.len())
            .filter(|&e| e <= self.mem.len() && u32::try_from(e).is_ok())
            .ok_or(MemError::OutOfRange {
                addr: at as u64,
                len: code.len(),
                size: self.mem.len(),
            })?;
        self.mem[at..end].copy_from_slice(code);
        self.code_end = end as u32;
        Ok(at as u32)
    }

    /// Allocates `size` bytes of simulated data memory.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfMemory`] when the request exhausts (or
    /// arithmetically overflows) the simulated heap; 64 KiB are always
    /// kept in reserve for the stack.
    pub fn alloc(&mut self, size: usize, align: usize) -> Result<u32, MemError> {
        let align = align.max(1);
        let enomem = MemError::OutOfMemory {
            requested: size,
            align,
        };
        let at = (self.data_brk as usize)
            .checked_next_multiple_of(align)
            .ok_or(enomem)?;
        let brk = at
            .checked_add(size)
            .filter(|&b| b < self.mem.len().saturating_sub(64 * 1024))
            .ok_or(enomem)?;
        self.data_brk = brk as u32;
        Ok(at as u32)
    }

    /// Copies bytes into simulated memory.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] when the range falls outside memory.
    pub fn write(&mut self, addr: u32, data: &[u8]) -> Result<(), MemError> {
        host_range(&self.mem, u64::from(addr), data.len())?;
        self.mem[addr as usize..addr as usize + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads bytes back out of simulated memory.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] when the range falls outside memory.
    pub fn read(&self, addr: u32, len: usize) -> Result<&[u8], MemError> {
        host_range(&self.mem, u64::from(addr), len)?;
        Ok(&self.mem[addr as usize..addr as usize + len])
    }

    /// Total cycles under the simple model: one per instruction plus
    /// data-cache stalls (when a cache is attached).
    pub fn cycles(&self) -> u64 {
        self.stats.insns_retired + self.dcache.as_ref().map_or(0, |c| c.stall_cycles())
    }

    /// The unified execution counters: live instruction/branch/trap
    /// tallies merged with the attached data cache's hit/miss/stall
    /// totals, `cycles` = instructions retired + cache stalls.
    pub fn stats(&self) -> ExecStats {
        merge_stats(&self.stats, self.dcache.as_ref())
    }

    /// Resets every execution counter (and the cache counters, keeping
    /// cache contents) — for measuring a region rather than a lifetime.
    pub fn reset_stats(&mut self) {
        self.stats = ExecStats::default();
        if let Some(c) = &mut self.dcache {
            c.hits = 0;
            c.misses = 0;
        }
    }

    /// Installs a per-instruction trace callback (the opt-in §6.2
    /// debugger stand-in): before control transfers, each executed
    /// instruction is streamed as disassembly plus the first register
    /// delta it caused. Costs nothing when unset.
    pub fn set_trace(&mut self, f: impl FnMut(&TraceRecord) + Send + 'static) {
        self.trace = Some(Box::new(f));
    }

    /// Removes the trace callback.
    pub fn clear_trace(&mut self) {
        self.trace = None;
    }

    fn lw_mem(&mut self, addr: u32) -> Result<u32, Trap> {
        if addr & 3 != 0 {
            return Err(Trap::Unaligned(addr));
        }
        let a = addr as usize;
        let b = self.mem.get(a..a + 4).ok_or(Trap::BadAccess(addr))?;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn sw_mem(&mut self, addr: u32, v: u32) -> Result<(), Trap> {
        if addr & 3 != 0 {
            return Err(Trap::Unaligned(addr));
        }
        let a = addr as usize;
        self.mem
            .get_mut(a..a + 4)
            .ok_or(Trap::BadAccess(addr))?
            .copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn touch(&mut self, addr: u32, len: u32) {
        if let Some(c) = &mut self.dcache {
            c.access_span(u64::from(addr), u64::from(len));
        }
    }

    /// Calls the function at `entry` with up to four integer arguments in
    /// `$a0`–`$a3`, returning `$v0`.
    ///
    /// # Errors
    ///
    /// Any [`Trap`] raised during execution.
    pub fn call(&mut self, entry: u32, args: &[u32], max_steps: u64) -> Result<u32, Trap> {
        assert!(args.len() <= 4);
        for (i, &v) in args.iter().enumerate() {
            self.regs[4 + i] = v;
        }
        self.run(entry, max_steps)?;
        Ok(self.regs[2])
    }

    /// Calls with double-precision arguments in `$f12`/`$f14`, returning
    /// the double in `$f0`/`$f1`.
    ///
    /// # Errors
    ///
    /// Any [`Trap`] raised during execution.
    pub fn call_f64(&mut self, entry: u32, args: &[f64], max_steps: u64) -> Result<f64, Trap> {
        assert!(args.len() <= 2);
        for (i, &v) in args.iter().enumerate() {
            let bits = v.to_bits();
            self.fregs[12 + i * 2] = bits as u32;
            self.fregs[12 + i * 2 + 1] = (bits >> 32) as u32;
        }
        self.run(entry, max_steps)?;
        Ok(f64::from_bits(
            (self.fregs[0] as u64) | ((self.fregs[1] as u64) << 32),
        ))
    }

    /// Runs from `entry` until the return to [`HALT`].
    ///
    /// # Errors
    ///
    /// Any [`Trap`] raised during execution (also tallied in
    /// [`stats`](Self::stats)).
    pub fn run(&mut self, entry: u32, max_steps: u64) -> Result<(), Trap> {
        let mut tracer = self.trace.take();
        let r = self.run_loop(entry, max_steps, tracer.as_mut());
        self.trace = tracer;
        if let Err(t) = &r {
            self.stats.traps.record(vcode::Trap::from(t.clone()).kind);
        }
        r
    }

    fn run_loop(
        &mut self,
        entry: u32,
        max_steps: u64,
        mut tracer: Option<&mut crate::TraceSink>,
    ) -> Result<(), Trap> {
        self.regs[31] = HALT;
        self.regs[29] = (self.mem.len() - 64) as u32; // stack top
        self.load_shadow = None;
        let mut pc = entry;
        let mut npc = entry.wrapping_add(4);
        let mut steps = 0u64;
        let mut in_taken_slot = false;
        while pc != HALT {
            if steps >= max_steps {
                return Err(Trap::StepLimit);
            }
            steps += 1;
            if pc < CODE_BASE || pc >= self.code_end || pc & 3 != 0 {
                return Err(Trap::BadPc(pc));
            }
            let word =
                u32::from_le_bytes(self.mem[pc as usize..pc as usize + 4].try_into().unwrap());
            // A non-nop executing in the slot of a taken transfer is a
            // filled delay slot (the §5.3 scheduling payoff).
            if in_taken_slot && word != 0 {
                self.stats.delay_slot_fills += 1;
            }
            let next = npc;
            let mut nnext = npc.wrapping_add(4);
            let before = tracer.as_ref().map(|_| self.regs);
            self.step(pc, word, npc, &mut nnext)?;
            if let (Some(t), Some(before)) = (tracer.as_mut(), before) {
                let delta = before
                    .iter()
                    .zip(self.regs.iter())
                    .enumerate()
                    .find(|(_, (o, n))| o != n)
                    .map(|(i, (&o, &n))| (i as u8, u64::from(o), u64::from(n)));
                t(&TraceRecord {
                    pc: u64::from(pc),
                    disasm: disasm(word),
                    delta,
                });
            }
            in_taken_slot = nnext != npc.wrapping_add(4);
            pc = next;
            npc = nnext;
        }
        Ok(())
    }

    #[inline]
    fn set(&mut self, r: u8, v: u32) {
        if r != 0 {
            self.regs[r as usize] = v;
        }
    }

    #[inline]
    fn get(&mut self, pc: u32, r: u8) -> Result<u32, Trap> {
        if self.strict_load_delay {
            if let Some(shadow) = self.load_shadow {
                if shadow == r && r != 0 {
                    return Err(Trap::LoadDelayViolation { pc, reg: r });
                }
            }
        }
        Ok(self.regs[r as usize])
    }

    fn fd(&self, f: u8) -> f64 {
        f64::from_bits(
            (self.fregs[f as usize] as u64) | ((self.fregs[f as usize + 1] as u64) << 32),
        )
    }

    fn set_fd(&mut self, f: u8, v: f64) {
        let bits = v.to_bits();
        self.fregs[f as usize] = bits as u32;
        self.fregs[f as usize + 1] = (bits >> 32) as u32;
    }

    fn fs(&self, f: u8) -> f32 {
        f32::from_bits(self.fregs[f as usize])
    }

    fn set_fs(&mut self, f: u8, v: f32) {
        self.fregs[f as usize] = v.to_bits();
    }

    #[allow(clippy::too_many_lines)]
    fn step(&mut self, pc: u32, word: u32, npc: u32, nnext: &mut u32) -> Result<(), Trap> {
        self.stats.insns_retired += 1;
        let op = (word >> 26) as u8;
        let rs = ((word >> 21) & 31) as u8;
        let rt = ((word >> 16) & 31) as u8;
        let rd = ((word >> 11) & 31) as u8;
        let shamt = ((word >> 6) & 31) as u8;
        let funct = (word & 63) as u8;
        let imm = word as u16;
        let simm = imm as i16 as i32;
        let bad = || Trap::BadInsn { pc, word };
        // The load shadow only covers the very next instruction.
        let shadow = self.load_shadow.take();
        let mut new_shadow: Option<u8> = None;
        self.load_shadow = shadow; // visible to get() during this insn
        match op {
            0x00 => {
                // SPECIAL
                let a = self.get(pc, rs)?;
                let b = self.get(pc, rt)?;
                match funct {
                    0x00 => self.set(rd, b << shamt),
                    0x02 => self.set(rd, b >> shamt),
                    0x03 => self.set(rd, ((b as i32) >> shamt) as u32),
                    0x04 => self.set(rd, b.wrapping_shl(a & 31)),
                    0x06 => self.set(rd, b.wrapping_shr(a & 31)),
                    0x07 => self.set(rd, ((b as i32).wrapping_shr(a & 31)) as u32),
                    0x08 => {
                        self.stats.branches += 1;
                        *nnext = a;
                    }
                    0x09 => {
                        self.stats.branches += 1;
                        self.set(rd, npc.wrapping_add(4));
                        *nnext = a;
                    }
                    0x10 => self.set(rd, self.hi),
                    0x12 => self.set(rd, self.lo),
                    0x18 => {
                        let p = (a as i32 as i64) * (b as i32 as i64);
                        self.lo = p as u32;
                        self.hi = (p >> 32) as u32;
                    }
                    0x19 => {
                        let p = (a as u64) * (b as u64);
                        self.lo = p as u32;
                        self.hi = (p >> 32) as u32;
                    }
                    0x1a => {
                        let (x, y) = (a as i32, b as i32);
                        if y == 0 || (x == i32::MIN && y == -1) {
                            self.lo = 0;
                            self.hi = x as u32;
                        } else {
                            self.lo = x.wrapping_div(y) as u32;
                            self.hi = x.wrapping_rem(y) as u32;
                        }
                    }
                    0x1b => {
                        self.lo = a.checked_div(b).unwrap_or(0);
                        self.hi = a.checked_rem(b).unwrap_or(a);
                    }
                    0x21 => self.set(rd, a.wrapping_add(b)),
                    0x23 => self.set(rd, a.wrapping_sub(b)),
                    0x24 => self.set(rd, a & b),
                    0x25 => self.set(rd, a | b),
                    0x26 => self.set(rd, a ^ b),
                    0x27 => self.set(rd, !(a | b)),
                    0x2a => self.set(rd, ((a as i32) < (b as i32)) as u32),
                    0x2b => self.set(rd, (a < b) as u32),
                    _ => return Err(bad()),
                }
            }
            0x01 => {
                // REGIMM: bltz/bgez/bal
                let a = self.get(pc, rs)? as i32;
                self.stats.branches += 1;
                let taken = match rt {
                    0x00 => a < 0,
                    0x01 => a >= 0,
                    0x11 => {
                        // bgezal (bal when rs = $0)
                        self.set(31, npc.wrapping_add(4));
                        a >= 0
                    }
                    _ => return Err(bad()),
                };
                if taken {
                    *nnext = npc.wrapping_add((simm << 2) as u32);
                }
            }
            0x04..=0x07 => {
                let a = self.get(pc, rs)?;
                let b = self.get(pc, rt)?;
                self.stats.branches += 1;
                let taken = match op {
                    0x04 => a == b,
                    0x05 => a != b,
                    0x06 => (a as i32) <= 0,
                    _ => (a as i32) > 0,
                };
                if taken {
                    *nnext = npc.wrapping_add((simm << 2) as u32);
                }
            }
            0x09 => {
                let a = self.get(pc, rs)?;
                self.set(rt, a.wrapping_add(simm as u32));
            }
            0x0a => {
                let a = self.get(pc, rs)?;
                self.set(rt, ((a as i32) < simm) as u32);
            }
            0x0b => {
                let a = self.get(pc, rs)?;
                self.set(rt, (a < simm as u32) as u32);
            }
            0x0c => {
                let a = self.get(pc, rs)?;
                self.set(rt, a & u32::from(imm));
            }
            0x0d => {
                let a = self.get(pc, rs)?;
                self.set(rt, a | u32::from(imm));
            }
            0x0e => {
                let a = self.get(pc, rs)?;
                self.set(rt, a ^ u32::from(imm));
            }
            0x0f => self.set(rt, u32::from(imm) << 16),
            0x20 | 0x21 | 0x23 | 0x24 | 0x25 => {
                // Loads.
                let base = self.get(pc, rs)?;
                let addr = base.wrapping_add(simm as u32);
                self.stats.loads += 1;
                self.touch(
                    addr,
                    match op {
                        0x20 | 0x24 => 1,
                        0x21 | 0x25 => 2,
                        _ => 4,
                    },
                );
                let v = match op {
                    0x20 => {
                        let b = *self.mem.get(addr as usize).ok_or(Trap::BadAccess(addr))?;
                        b as i8 as i32 as u32
                    }
                    0x24 => {
                        let b = *self.mem.get(addr as usize).ok_or(Trap::BadAccess(addr))?;
                        u32::from(b)
                    }
                    0x21 | 0x25 => {
                        if addr & 1 != 0 {
                            return Err(Trap::Unaligned(addr));
                        }
                        let b = self
                            .mem
                            .get(addr as usize..addr as usize + 2)
                            .ok_or(Trap::BadAccess(addr))?;
                        let h = u16::from_le_bytes(b.try_into().unwrap());
                        if op == 0x21 {
                            h as i16 as i32 as u32
                        } else {
                            u32::from(h)
                        }
                    }
                    _ => self.lw_mem(addr)?,
                };
                self.set(rt, v);
                new_shadow = Some(rt);
            }
            0x28 => {
                let base = self.get(pc, rs)?;
                let v = self.get(pc, rt)?;
                let addr = base.wrapping_add(simm as u32);
                self.stats.stores += 1;
                self.touch(addr, 1);
                *self
                    .mem
                    .get_mut(addr as usize)
                    .ok_or(Trap::BadAccess(addr))? = v as u8;
            }
            0x29 => {
                let base = self.get(pc, rs)?;
                let v = self.get(pc, rt)?;
                let addr = base.wrapping_add(simm as u32);
                if addr & 1 != 0 {
                    return Err(Trap::Unaligned(addr));
                }
                self.stats.stores += 1;
                self.touch(addr, 2);
                self.mem
                    .get_mut(addr as usize..addr as usize + 2)
                    .ok_or(Trap::BadAccess(addr))?
                    .copy_from_slice(&(v as u16).to_le_bytes());
            }
            0x2b => {
                let base = self.get(pc, rs)?;
                let v = self.get(pc, rt)?;
                let addr = base.wrapping_add(simm as u32);
                self.stats.stores += 1;
                self.touch(addr, 4);
                self.sw_mem(addr, v)?;
            }
            0x31 => {
                // lwc1
                let base = self.get(pc, rs)?;
                let addr = base.wrapping_add(simm as u32);
                self.stats.loads += 1;
                self.touch(addr, 4);
                self.fregs[rt as usize] = self.lw_mem(addr)?;
            }
            0x39 => {
                // swc1
                let base = self.get(pc, rs)?;
                let addr = base.wrapping_add(simm as u32);
                self.stats.stores += 1;
                self.touch(addr, 4);
                self.sw_mem(addr, self.fregs[rt as usize])?;
            }
            0x11 => {
                // COP1
                match rs {
                    0x00 => {
                        // mfc1 rt, fs
                        self.set(rt, self.fregs[rd as usize]);
                        new_shadow = Some(rt);
                    }
                    0x04 => {
                        // mtc1 rt, fs
                        let v = self.get(pc, rt)?;
                        self.fregs[rd as usize] = v;
                    }
                    0x08 => {
                        // bc1f/bc1t
                        self.stats.branches += 1;
                        let want = rt & 1 == 1;
                        if self.fcc == want {
                            *nnext = npc.wrapping_add((simm << 2) as u32);
                        }
                    }
                    16 | 17 => {
                        let dfmt = rs == 17;
                        let (fs, ft, fdr) = (rd, rt, shamt);
                        match funct {
                            0..=3 => {
                                if dfmt {
                                    let (x, y) = (self.fd(fs), self.fd(ft));
                                    let r = match funct {
                                        0 => x + y,
                                        1 => x - y,
                                        2 => x * y,
                                        _ => x / y,
                                    };
                                    self.set_fd(fdr, r);
                                } else {
                                    let (x, y) = (self.fs(fs), self.fs(ft));
                                    let r = match funct {
                                        0 => x + y,
                                        1 => x - y,
                                        2 => x * y,
                                        _ => x / y,
                                    };
                                    self.set_fs(fdr, r);
                                }
                            }
                            5 => {
                                if dfmt {
                                    let v = self.fd(fs).abs();
                                    self.set_fd(fdr, v);
                                } else {
                                    let v = self.fs(fs).abs();
                                    self.set_fs(fdr, v);
                                }
                            }
                            6 => {
                                if dfmt {
                                    let v = self.fd(fs);
                                    self.set_fd(fdr, v);
                                } else {
                                    self.fregs[fdr as usize] = self.fregs[fs as usize];
                                }
                            }
                            7 => {
                                if dfmt {
                                    let v = -self.fd(fs);
                                    self.set_fd(fdr, v);
                                } else {
                                    let v = -self.fs(fs);
                                    self.set_fs(fdr, v);
                                }
                            }
                            13 => {
                                // trunc.w.fmt
                                let v = if dfmt {
                                    self.fd(fs) as i32
                                } else {
                                    self.fs(fs) as i32
                                };
                                self.fregs[fdr as usize] = v as u32;
                            }
                            32 => {
                                // cvt.s.fmt
                                let v = if dfmt {
                                    self.fd(fs) as f32
                                } else {
                                    return Err(bad());
                                };
                                self.set_fs(fdr, v);
                            }
                            33 => {
                                // cvt.d.s
                                if dfmt {
                                    return Err(bad());
                                }
                                let v = f64::from(self.fs(fs));
                                self.set_fd(fdr, v);
                            }
                            0x32 | 0x3c | 0x3e => {
                                let (x, y) = if dfmt {
                                    (self.fd(fs), self.fd(ft))
                                } else {
                                    (f64::from(self.fs(fs)), f64::from(self.fs(ft)))
                                };
                                self.fcc = match funct {
                                    0x32 => x == y,
                                    0x3c => x < y,
                                    _ => x <= y,
                                };
                            }
                            _ => return Err(bad()),
                        }
                    }
                    20 => {
                        // fmt = W: cvt.s.w / cvt.d.w
                        let (fs, fdr) = (rd, shamt);
                        let v = self.fregs[fs as usize] as i32;
                        match funct {
                            32 => self.set_fs(fdr, v as f32),
                            33 => self.set_fd(fdr, f64::from(v)),
                            _ => return Err(bad()),
                        }
                    }
                    _ => return Err(bad()),
                }
            }
            _ => return Err(bad()),
        }
        self.load_shadow = new_shadow;
        Ok(())
    }
}

/// Disassembles one instruction word (debugging aid; the paper lists the
/// lack of a symbolic debugger as VCODE's most critical drawback, §6.2 —
/// the simulator's decoder gives us one nearly for free).
pub fn disasm(word: u32) -> String {
    let op = (word >> 26) as u8;
    let rs = (word >> 21) & 31;
    let rt = (word >> 16) & 31;
    let rd = (word >> 11) & 31;
    let shamt = (word >> 6) & 31;
    let funct = (word & 63) as u8;
    let simm = word as u16 as i16;
    match op {
        0x00 => match funct {
            0x00 if word == 0 => "nop".to_owned(),
            0x00 => format!("sll ${rd}, ${rt}, {shamt}"),
            0x02 => format!("srl ${rd}, ${rt}, {shamt}"),
            0x03 => format!("sra ${rd}, ${rt}, {shamt}"),
            0x04 => format!("sllv ${rd}, ${rt}, ${rs}"),
            0x06 => format!("srlv ${rd}, ${rt}, ${rs}"),
            0x07 => format!("srav ${rd}, ${rt}, ${rs}"),
            0x08 => format!("jr ${rs}"),
            0x09 => format!("jalr ${rd}, ${rs}"),
            0x10 => format!("mfhi ${rd}"),
            0x12 => format!("mflo ${rd}"),
            0x18 => format!("mult ${rs}, ${rt}"),
            0x19 => format!("multu ${rs}, ${rt}"),
            0x1a => format!("div ${rs}, ${rt}"),
            0x1b => format!("divu ${rs}, ${rt}"),
            0x21 => format!("addu ${rd}, ${rs}, ${rt}"),
            0x23 => format!("subu ${rd}, ${rs}, ${rt}"),
            0x24 => format!("and ${rd}, ${rs}, ${rt}"),
            0x25 => format!("or ${rd}, ${rs}, ${rt}"),
            0x26 => format!("xor ${rd}, ${rs}, ${rt}"),
            0x27 => format!("nor ${rd}, ${rs}, ${rt}"),
            0x2a => format!("slt ${rd}, ${rs}, ${rt}"),
            0x2b => format!("sltu ${rd}, ${rs}, ${rt}"),
            _ => format!(".word {word:#010x}"),
        },
        0x01 => match rt {
            0 => format!("bltz ${rs}, {simm}"),
            1 => format!("bgez ${rs}, {simm}"),
            0x11 => format!("bal {simm}"),
            _ => format!(".word {word:#010x}"),
        },
        0x04 => format!("beq ${rs}, ${rt}, {simm}"),
        0x05 => format!("bne ${rs}, ${rt}, {simm}"),
        0x06 => format!("blez ${rs}, {simm}"),
        0x07 => format!("bgtz ${rs}, {simm}"),
        0x09 => format!("addiu ${rt}, ${rs}, {simm}"),
        0x0a => format!("slti ${rt}, ${rs}, {simm}"),
        0x0b => format!("sltiu ${rt}, ${rs}, {simm}"),
        0x0c => format!("andi ${rt}, ${rs}, {:#x}", word & 0xffff),
        0x0d => format!("ori ${rt}, ${rs}, {:#x}", word & 0xffff),
        0x0e => format!("xori ${rt}, ${rs}, {:#x}", word & 0xffff),
        0x0f => format!("lui ${rt}, {:#x}", word & 0xffff),
        0x20 => format!("lb ${rt}, {simm}(${rs})"),
        0x21 => format!("lh ${rt}, {simm}(${rs})"),
        0x23 => format!("lw ${rt}, {simm}(${rs})"),
        0x24 => format!("lbu ${rt}, {simm}(${rs})"),
        0x25 => format!("lhu ${rt}, {simm}(${rs})"),
        0x28 => format!("sb ${rt}, {simm}(${rs})"),
        0x29 => format!("sh ${rt}, {simm}(${rs})"),
        0x2b => format!("sw ${rt}, {simm}(${rs})"),
        0x31 => format!("lwc1 $f{rt}, {simm}(${rs})"),
        0x39 => format!("swc1 $f{rt}, {simm}(${rs})"),
        0x11 => format!("cop1 {word:#010x}"),
        _ => format!(".word {word:#010x}"),
    }
}

/// [`vcode::InsnDecoder`] over the simulator's MIPS-I decode tables, for
/// the differential machine-code checker (`vcode::cross_check`).
///
/// A word is decodable exactly when [`disasm`] recognizes it; control
/// transfers are the conditional branches (pc-relative, reported with
/// their resolved target), `bc1t`/`bc1f`, and `jr`/`jalr` (register
/// targets, no static destination).
#[derive(Debug, Clone, Copy, Default)]
pub struct Decoder;

impl vcode::InsnDecoder for Decoder {
    fn decode(&self, code: &[u8], at: usize) -> Option<vcode::DecodedInsn> {
        let word = u32::from_le_bytes(code.get(at..at + 4)?.try_into().ok()?);
        if disasm(word).starts_with(".word") {
            return None;
        }
        let op = (word >> 26) as u8;
        let rs = (word >> 21) & 31;
        let rt = (word >> 16) & 31;
        let funct = (word & 63) as u8;
        let branch_target = || {
            let disp = i64::from(word as u16 as i16) << 2;
            Some(at as i64 + 4 + disp)
        };
        let (control, target) = match op {
            0x01 if matches!(rt, 0 | 1 | 0x11) => (true, branch_target()),
            0x04..=0x07 => (true, branch_target()),
            0x11 if rs == 8 => (true, branch_target()),
            0x00 if matches!(funct, 0x08 | 0x09) => (true, None),
            _ => (false, None),
        };
        Some(vcode::DecodedInsn {
            len: 4,
            control,
            target,
        })
    }
}

/// Disassembles a code buffer, one line per word.
pub fn disasm_all(code: &[u8]) -> String {
    code.chunks_exact(4)
        .enumerate()
        .map(|(i, w)| {
            let word = u32::from_le_bytes(w.try_into().unwrap());
            format!("{:4x}:  {}\n", i * 4, disasm(word))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-assembled: addiu a0, a0, 1; or v0, a0, $0; jr ra; nop.
    const PLUS1: [u32; 4] = [0x2484_0001, 0x0080_1025, 0x03e0_0008, 0x0000_0000];

    fn code_bytes(words: &[u32]) -> Vec<u8> {
        words.iter().flat_map(|w| w.to_le_bytes()).collect()
    }

    #[test]
    fn runs_hand_assembled_plus1() {
        let mut m = Machine::new(1 << 20);
        let entry = m.load_code(&code_bytes(&PLUS1)).unwrap();
        assert_eq!(m.call(entry, &[41], 100).unwrap(), 42);
        assert_eq!(m.stats().insns_retired, 4, "jr's delay slot nop executes");
    }

    #[test]
    fn delay_slot_executes_before_branch_target() {
        // beq $0,$0,+2 (to the jr); addiu v0,$0,7 (delay slot: executes!);
        // addiu v0,v0,100 (skipped); jr ra; nop
        let code = [
            0x1000_0002u32, // beq $0, $0, +2
            0x2402_0007,    // addiu v0, $0, 7
            0x2442_0064,    // addiu v0, v0, 100 (skipped)
            0x03e0_0008,    // jr ra
            0x0000_0000,
        ];
        let mut m = Machine::new(1 << 20);
        let entry = m.load_code(&code_bytes(&code)).unwrap();
        assert_eq!(m.call(entry, &[], 100).unwrap(), 7);
    }

    #[test]
    fn bal_links_past_delay_slot() {
        // bal +2; nop; jr ra (return to HALT); [target] addiu v0,$0,9; jr ra; nop
        let code = [
            0x0411_0002u32, // bal +2
            0x0000_0000,    // delay
            0x03e0_0008,    // jr ra  -- after call returns here? No: ra was
            0x2402_0009,    // addiu v0, $0, 9   <- bal target
            0x03e0_0008,    // jr ra (ra = insn after bal's delay = insn 2)
            0x0000_0000,
        ];
        // Call sequence: bal sets ra to insn 2 (jr ra with original HALT
        // clobbered? No: bal overwrites $ra). Insn 2 jr $ra jumps to
        // ra=insn2... careful: bal set ra=insn2, so insn4's jr ra returns
        // to insn2, and insn2's jr ra jumps to ra=insn2 — infinite loop.
        // Instead check the link register value directly.
        let mut m = Machine::new(1 << 20);
        let entry = m.load_code(&code_bytes(&code)).unwrap();
        let _ = m.run(entry, 20);
        assert_eq!(m.regs[31], entry + 8, "bal links to after its delay slot");
        assert_eq!(m.regs[2], 9, "fell through to the target block");
    }

    #[test]
    fn memory_and_traps() {
        // lw v0, 0(a0); nop; jr ra; nop
        let code = [0x8c82_0000u32, 0, 0x03e0_0008, 0];
        let mut m = Machine::new(1 << 20);
        let entry = m.load_code(&code_bytes(&code)).unwrap();
        let addr = m.alloc(8, 8).unwrap();
        m.write(addr, &0xdead_beefu32.to_le_bytes()).unwrap();
        assert_eq!(m.call(entry, &[addr], 100).unwrap(), 0xdead_beef);
        // Unaligned.
        assert_eq!(
            m.call(entry, &[addr + 1], 100),
            Err(Trap::Unaligned(addr + 1))
        );
        // Out of range.
        assert!(matches!(
            m.call(entry, &[0xfff_fff0], 100),
            Err(Trap::BadAccess(_))
        ));
    }

    #[test]
    fn strict_load_delay_catches_violations() {
        // lw v0, 0(a0); addu v0, v0, v0 (uses v0 in the shadow!)
        let code = [0x8c82_0000u32, 0x0042_1021, 0x03e0_0008, 0];
        let mut m = Machine::new(1 << 20);
        m.strict_load_delay = true;
        let entry = m.load_code(&code_bytes(&code)).unwrap();
        let addr = m.alloc(8, 8).unwrap();
        assert!(matches!(
            m.call(entry, &[addr], 100),
            Err(Trap::LoadDelayViolation { .. })
        ));
        // With a nop between, fine.
        let code = [0x8c82_0000u32, 0, 0x0042_1021, 0x03e0_0008, 0];
        let entry = m.load_code(&code_bytes(&code)).unwrap();
        assert_eq!(m.call(entry, &[addr], 100).unwrap(), 0);
    }

    #[test]
    fn step_limit_stops_runaway() {
        // beq $0,$0,-1: infinite loop.
        let code = [0x1000_ffffu32, 0];
        let mut m = Machine::new(1 << 20);
        let entry = m.load_code(&code_bytes(&code)).unwrap();
        assert_eq!(m.call(entry, &[], 1000), Err(Trap::StepLimit));
    }

    #[test]
    fn bad_instruction_traps() {
        let code = [0xffff_ffffu32];
        let mut m = Machine::new(1 << 20);
        let entry = m.load_code(&code_bytes(&code)).unwrap();
        assert!(matches!(m.call(entry, &[], 10), Err(Trap::BadInsn { .. })));
    }

    #[test]
    fn disasm_smoke() {
        assert_eq!(disasm(0x2484_0001), "addiu $4, $4, 1");
        assert_eq!(disasm(0x03e0_0008), "jr $31");
        assert_eq!(disasm(0), "nop");
        assert!(disasm_all(&code_bytes(&PLUS1)).contains("addiu"));
    }

    #[test]
    fn dcache_counts_and_flush() {
        let code = [0x8c82_0000u32, 0, 0x03e0_0008, 0];
        let mut m = Machine::new(1 << 20);
        m.dcache = Some(Cache::new(1024, 16, 10));
        let entry = m.load_code(&code_bytes(&code)).unwrap();
        let addr = m.alloc(8, 16).unwrap();
        m.call(entry, &[addr], 100).unwrap();
        assert_eq!(m.dcache.as_ref().unwrap().misses, 1);
        m.call(entry, &[addr], 100).unwrap();
        assert_eq!(m.dcache.as_ref().unwrap().hits, 1);
        let base = m.stats().insns_retired;
        assert_eq!(m.cycles(), base + 10);
        let s = m.stats();
        assert_eq!((s.cache_hits, s.cache_misses), (1, 1));
        assert_eq!(s.cycles, m.cycles());
        assert_eq!(s.cache_stall_cycles, 10);
    }

    #[test]
    fn host_memory_apis_return_typed_errors() {
        let mut m = Machine::new(1 << 20);
        // Out-of-range write/read.
        assert!(matches!(
            m.write(u32::MAX - 3, &[1, 2, 3, 4]),
            Err(MemError::OutOfRange { .. })
        ));
        assert!(matches!(
            m.read(1 << 20, 1),
            Err(MemError::OutOfRange { .. })
        ));
        // Oversized code image.
        let huge = vec![0u8; (1 << 20) + 1];
        assert!(matches!(
            m.load_code(&huge),
            Err(MemError::OutOfRange { .. })
        ));
        // Heap exhaustion and `at + size` overflow are both typed.
        assert!(matches!(
            m.alloc(1 << 20, 8),
            Err(MemError::OutOfMemory { .. })
        ));
        assert!(matches!(
            m.alloc(usize::MAX - 4, 8),
            Err(MemError::OutOfMemory { .. })
        ));
        // The machine is still usable afterwards.
        let entry = m.load_code(&code_bytes(&PLUS1)).unwrap();
        assert_eq!(m.call(entry, &[1], 100).unwrap(), 2);
    }

    #[test]
    fn traps_are_tallied_in_stats() {
        let code = [0x8c82_0000u32, 0, 0x03e0_0008, 0]; // lw v0, 0(a0)
        let mut m = Machine::new(1 << 20);
        let entry = m.load_code(&code_bytes(&code)).unwrap();
        assert!(m.call(entry, &[0xfff_fff0], 100).is_err());
        assert!(m.call(entry, &[1], 100).is_err()); // unaligned
        let s = m.stats();
        assert_eq!(s.traps.count(vcode::TrapKind::BadAccess), 1);
        assert_eq!(s.traps.count(vcode::TrapKind::Unaligned), 1);
        assert_eq!(s.traps.total(), 2);
    }

    #[test]
    fn trace_streams_disasm_and_register_deltas() {
        use std::sync::{Arc, Mutex};
        let mut m = Machine::new(1 << 20);
        let entry = m.load_code(&code_bytes(&PLUS1)).unwrap();
        let log: Arc<Mutex<Vec<TraceRecord>>> = Arc::default();
        let log2 = Arc::clone(&log);
        m.set_trace(move |r| log2.lock().unwrap().push(r.clone()));
        assert_eq!(m.call(entry, &[41], 100).unwrap(), 42);
        m.clear_trace();
        let log = log.lock().unwrap();
        assert_eq!(log.len(), 4, "one record per executed instruction");
        assert_eq!(log[0].pc, u64::from(entry));
        assert!(log[0].disasm.starts_with("addiu"));
        // addiu $a0, $a0, 1 with a0 = 41: delta is (reg 4, 41 -> 42).
        assert_eq!(log[0].delta, Some((4, 41, 42)));
        assert!(log[3].disasm.contains("nop"));
        assert_eq!(log[3].delta, None);
    }

    #[test]
    fn taken_branch_slots_count_as_fills_when_useful() {
        // beq $0,$0,+2 with a useful delay slot, then a jr with a nop
        // slot: exactly one filled slot.
        let code = [
            0x1000_0002u32, // beq $0, $0, +2 (taken)
            0x2402_0007,    // addiu v0, $0, 7 (useful fill)
            0x2442_0064,    // skipped
            0x03e0_0008,    // jr ra
            0x0000_0000,    // nop slot: not a fill
        ];
        let mut m = Machine::new(1 << 20);
        let entry = m.load_code(&code_bytes(&code)).unwrap();
        assert_eq!(m.call(entry, &[], 100).unwrap(), 7);
        assert_eq!(m.stats().delay_slot_fills, 1);
    }
}
