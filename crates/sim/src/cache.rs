//! A simple direct-mapped cache model.
//!
//! The ASH experiment (paper Table 4) contrasts cached and uncached
//! memory pipelines: "touching memory multiple times stresses the weak
//! link in modern workstations, the memory subsystem" (§4.3). This model
//! supplies the cycle accounting for the simulated reproduction of that
//! contrast: hits cost one cycle, misses add a configurable penalty.

/// A direct-mapped cache with configurable geometry.
#[derive(Debug, Clone)]
pub struct Cache {
    line_shift: u32,
    tags: Vec<Option<u64>>,
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
    /// Extra cycles charged per miss.
    pub miss_penalty: u64,
}

impl Cache {
    /// Creates a cache of `size` bytes with `line` bytes per line (both
    /// powers of two).
    ///
    /// # Panics
    ///
    /// Panics if `size` or `line` is not a power of two or `line > size`.
    pub fn new(size: usize, line: usize, miss_penalty: u64) -> Cache {
        assert!(size.is_power_of_two() && line.is_power_of_two() && line <= size);
        Cache {
            line_shift: line.trailing_zeros(),
            tags: vec![None; size / line],
            hits: 0,
            misses: 0,
            miss_penalty,
        }
    }

    /// The DECstation 5000/200's 64 KiB direct-mapped data cache with
    /// 16-byte lines (penalty ~15 cycles to memory).
    pub fn dec5000() -> Cache {
        Cache::new(64 * 1024, 16, 15)
    }

    /// The DECstation 3100's 64 KiB cache with 4-byte lines and a slower
    /// memory system.
    pub fn dec3100() -> Cache {
        Cache::new(64 * 1024, 4, 6)
    }

    /// Records an access to `addr`; returns `true` on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let idx = (line as usize) % self.tags.len();
        if self.tags[idx] == Some(line) {
            self.hits += 1;
            true
        } else {
            self.tags[idx] = Some(line);
            self.misses += 1;
            false
        }
    }

    /// Invalidates every line (the experiment's "uncached"/flushed rows).
    pub fn flush(&mut self) {
        self.tags.fill(None);
    }

    /// Total extra cycles charged for misses so far.
    pub fn stall_cycles(&self) -> u64 {
        self.misses * self.miss_penalty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_accesses_hit_within_a_line() {
        let mut c = Cache::new(1024, 16, 10);
        assert!(!c.access(0));
        assert!(c.access(4));
        assert!(c.access(15));
        assert!(!c.access(16));
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 2);
        assert_eq!(c.stall_cycles(), 20);
    }

    #[test]
    fn conflicting_lines_evict() {
        let mut c = Cache::new(64, 16, 1); // 4 lines
        assert!(!c.access(0));
        assert!(!c.access(64)); // same index, different tag
        assert!(!c.access(0)); // evicted
    }

    #[test]
    fn flush_invalidates() {
        let mut c = Cache::new(64, 16, 1);
        c.access(0);
        assert!(c.access(0));
        c.flush();
        assert!(!c.access(0));
    }

    #[test]
    #[should_panic]
    fn bad_geometry_panics() {
        let _ = Cache::new(100, 16, 1);
    }
}
