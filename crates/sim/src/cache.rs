//! A simple direct-mapped cache model.
//!
//! The ASH experiment (paper Table 4) contrasts cached and uncached
//! memory pipelines: "touching memory multiple times stresses the weak
//! link in modern workstations, the memory subsystem" (§4.3). This model
//! supplies the cycle accounting for the simulated reproduction of that
//! contrast: hits cost one cycle, misses add a configurable penalty.

/// A direct-mapped cache with configurable geometry.
#[derive(Debug, Clone)]
pub struct Cache {
    line_shift: u32,
    tags: Vec<Option<u64>>,
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
    /// Extra cycles charged per miss.
    pub miss_penalty: u64,
}

impl Cache {
    /// Creates a cache of `size` bytes with `line` bytes per line (both
    /// powers of two).
    ///
    /// # Panics
    ///
    /// Panics if `size` or `line` is not a power of two or `line > size`.
    pub fn new(size: usize, line: usize, miss_penalty: u64) -> Cache {
        assert!(size.is_power_of_two() && line.is_power_of_two() && line <= size);
        Cache {
            line_shift: line.trailing_zeros(),
            tags: vec![None; size / line],
            hits: 0,
            misses: 0,
            miss_penalty,
        }
    }

    /// The DECstation 5000/200's 64 KiB direct-mapped data cache with
    /// 16-byte lines (penalty ~15 cycles to memory).
    pub fn dec5000() -> Cache {
        Cache::new(64 * 1024, 16, 15)
    }

    /// The DECstation 3100's 64 KiB cache with 4-byte lines and a slower
    /// memory system.
    pub fn dec3100() -> Cache {
        Cache::new(64 * 1024, 4, 6)
    }

    /// Records an access to `addr`; returns `true` on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.access_line(addr >> self.line_shift)
    }

    /// Records a `len`-byte access starting at `addr`, charging one
    /// hit/miss **per cache line actually touched**. A width-unaware
    /// model either misses the second line of a straddling access or —
    /// when the simulator compensates by touching both ends — double
    /// counts accesses that stay within one line; charging per distinct
    /// line is the accounting real hardware performs.
    pub fn access_span(&mut self, addr: u64, len: u64) {
        let first = addr >> self.line_shift;
        let last = (addr + len.max(1) - 1) >> self.line_shift;
        for line in first..=last {
            self.access_line(line);
        }
    }

    fn access_line(&mut self, line: u64) -> bool {
        let idx = (line as usize) % self.tags.len();
        if self.tags[idx] == Some(line) {
            self.hits += 1;
            true
        } else {
            self.tags[idx] = Some(line);
            self.misses += 1;
            false
        }
    }

    /// Invalidates every line (the experiment's "uncached"/flushed rows).
    pub fn flush(&mut self) {
        self.tags.fill(None);
    }

    /// Total extra cycles charged for misses so far.
    pub fn stall_cycles(&self) -> u64 {
        self.misses * self.miss_penalty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_accesses_hit_within_a_line() {
        let mut c = Cache::new(1024, 16, 10);
        assert!(!c.access(0));
        assert!(c.access(4));
        assert!(c.access(15));
        assert!(!c.access(16));
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 2);
        assert_eq!(c.stall_cycles(), 20);
    }

    #[test]
    fn conflicting_lines_evict() {
        let mut c = Cache::new(64, 16, 1); // 4 lines
        assert!(!c.access(0));
        assert!(!c.access(64)); // same index, different tag
        assert!(!c.access(0)); // evicted
    }

    #[test]
    fn flush_invalidates() {
        let mut c = Cache::new(64, 16, 1);
        c.access(0);
        assert!(c.access(0));
        c.flush();
        assert!(!c.access(0));
    }

    #[test]
    fn straddling_spans_charge_each_line_once() {
        // 4-byte lines (DEC3100 geometry, small): an 8-byte access at
        // offset 2 touches three lines; the same access repeated hits
        // all three. Totals are pinned — the regression this guards is
        // the width-unaware single-charge (or the double-charge when a
        // straddle is compensated per end).
        let mut c = Cache::new(64, 4, 6);
        c.access_span(2, 8); // lines 0,1,2 -> 3 misses
        assert_eq!((c.hits, c.misses), (0, 3));
        c.access_span(2, 8); // same lines -> 3 hits
        assert_eq!((c.hits, c.misses), (3, 3));
        c.access_span(3, 1); // within line 0 -> exactly one hit
        assert_eq!((c.hits, c.misses), (4, 3));
        c.access_span(12, 4); // aligned single line -> one miss
        assert_eq!((c.hits, c.misses), (4, 4));
        assert_eq!(c.stall_cycles(), 24);
    }

    #[test]
    #[should_panic]
    fn bad_geometry_panics() {
        let _ = Cache::new(100, 16, 1);
    }
}
