//! # vcode-sim — instruction-set simulators for vcode targets
//!
//! The paper evaluated VCODE on MIPS (DECstation), SPARC and Alpha
//! hardware. This crate supplies the substitute substrate (see
//! DESIGN.md): ISA-level simulators that execute the exact binary code
//! the `vcode-mips`, `vcode-sparc` and `vcode-alpha` backends emit,
//! with instruction counting, an optional data-cache model, and strict
//! checking (alignment, delay-slot hazards, unknown encodings) so the
//! simulators double as verifiers for the instruction-mapping
//! regression tests (paper §3.3, §6.1).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alpha;
pub mod cache;
pub mod engine;
pub mod mips;
pub mod sparc;

pub use cache::Cache;

/// A typed failure from the host-facing machine-memory APIs
/// (`load_code` / `alloc` / `write` / `read`).
///
/// Guest accesses already trap in a typed way (`Trap::BadAccess`); these
/// errors give the *host* side the same discipline — out-of-range or
/// oversized requests return an error instead of panicking, mirroring
/// the typed-ENOMEM convention of the native executable-memory pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// The `[addr, addr + len)` range does not fit in simulated memory.
    OutOfRange {
        /// Start of the requested range.
        addr: u64,
        /// Length of the requested range in bytes.
        len: usize,
        /// Total simulated memory size in bytes.
        size: usize,
    },
    /// An allocation request exhausted (or arithmetically overflowed)
    /// the simulated heap.
    OutOfMemory {
        /// Requested size in bytes.
        requested: usize,
        /// Requested alignment in bytes.
        align: usize,
    },
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::OutOfRange { addr, len, size } => write!(
                f,
                "address range {addr:#x}..{:#x} outside simulated memory of {size:#x} bytes",
                addr + *len as u64
            ),
            MemError::OutOfMemory { requested, align } => write!(
                f,
                "sim heap exhausted: cannot allocate {requested} bytes (align {align})"
            ),
        }
    }
}

impl std::error::Error for MemError {}

/// The per-instruction trace callback installed via `Machine::set_trace`
/// on any of the simulators.
pub type TraceSink = Box<dyn FnMut(&vcode::TraceRecord) + Send>;

/// Bounds-checks a host-facing `[addr, addr + len)` range against `mem`.
pub(crate) fn host_range(mem: &[u8], addr: u64, len: usize) -> Result<(), MemError> {
    let ok = usize::try_from(addr)
        .ok()
        .and_then(|a| a.checked_add(len))
        .is_some_and(|end| end <= mem.len());
    if ok {
        Ok(())
    } else {
        Err(MemError::OutOfRange {
            addr,
            len,
            size: mem.len(),
        })
    }
}

/// Merges a machine's live counters with its data cache's totals into
/// the unified [`vcode::ExecStats`] shape all three simulators expose.
pub(crate) fn merge_stats(live: &vcode::ExecStats, dcache: Option<&Cache>) -> vcode::ExecStats {
    let mut s = *live;
    if let Some(c) = dcache {
        s.cache_hits = c.hits;
        s.cache_misses = c.misses;
        s.cache_stall_cycles = c.stall_cycles();
    }
    s.cycles = s.insns_retired + s.cache_stall_cycles;
    s
}
