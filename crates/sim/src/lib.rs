//! # vcode-sim — instruction-set simulators for vcode targets
//!
//! The paper evaluated VCODE on MIPS (DECstation), SPARC and Alpha
//! hardware. This crate supplies the substitute substrate (see
//! DESIGN.md): ISA-level simulators that execute the exact binary code
//! the `vcode-mips`, `vcode-sparc` and `vcode-alpha` backends emit,
//! with instruction counting, an optional data-cache model, and strict
//! checking (alignment, delay-slot hazards, unknown encodings) so the
//! simulators double as verifiers for the instruction-mapping
//! regression tests (paper §3.3, §6.1).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alpha;
pub mod cache;
pub mod mips;
pub mod sparc;

pub use cache::Cache;
