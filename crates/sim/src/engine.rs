//! Engine glue: a process-wide [`SimExecutor`] that runs the byte images
//! produced by the RISC backend adapters on the matching simulator.
//!
//! The core `vcode::engine` layer is deliberately ignorant of the
//! simulators (backend crates must not depend on `vcode-sim`, and this
//! crate must not depend on the backends). [`install`] closes the loop at
//! runtime: it registers one [`SimRunner`] for each simulated ISA — and
//! each ISA's differential decoder with the persistent cache, so stored
//! artifacts for simulated targets can be revalidated on load — after
//! which `Lambda::call` on a MIPS/SPARC/Alpha [`CodeImage`] loads the
//! code into a fresh machine and executes it.
//!
//! Each successful call also reports the machine's simulated cycle
//! count through [`vcode::obs::note_exec_cycles`], feeding the tiering
//! policy's cycle-weighted heat mode.

use vcode::engine::{self, EngineError, SimExecutor, TargetId};

/// Guest memory given to each one-shot machine (2 MiB: code + stack).
const MEM_SIZE: usize = 1 << 21;

/// Runs engine code images on the `vcode-sim` machines.
///
/// Each call builds a fresh machine, so executions are isolated and the
/// runner itself is stateless (and trivially `Send + Sync`).
#[derive(Debug, Clone, Copy, Default)]
pub struct SimRunner;

impl SimRunner {
    fn run_mips(code: &[u8], args: &[i32], fuel: u64) -> Result<i64, EngineError> {
        let mut m = crate::mips::Machine::new(MEM_SIZE);
        let entry = m
            .load_code(code)
            .map_err(|e| EngineError::Exec(format!("mips load: {e}")))?;
        let args: Vec<u32> = args.iter().map(|&v| v as u32).collect();
        let r = m
            .call(entry, &args, fuel)
            .map_err(|t| EngineError::Exec(format!("mips trap: {t}")))?;
        vcode::obs::note_exec_cycles(m.cycles());
        Ok(i64::from(r as i32))
    }

    fn run_sparc(code: &[u8], args: &[i32], fuel: u64) -> Result<i64, EngineError> {
        let mut m = crate::sparc::Machine::new(MEM_SIZE);
        let entry = m
            .load_code(code)
            .map_err(|e| EngineError::Exec(format!("sparc load: {e}")))?;
        let args: Vec<u32> = args.iter().map(|&v| v as u32).collect();
        let r = m
            .call(entry, &args, fuel)
            .map_err(|t| EngineError::Exec(format!("sparc trap: {t}")))?;
        vcode::obs::note_exec_cycles(m.cycles());
        Ok(i64::from(r as i32))
    }

    fn run_alpha(code: &[u8], args: &[i32], fuel: u64) -> Result<i64, EngineError> {
        let mut m = crate::alpha::Machine::new(MEM_SIZE);
        let entry = m
            .load_code(code)
            .map_err(|e| EngineError::Exec(format!("alpha load: {e}")))?;
        // Alpha is 64-bit: i32 args travel sign-extended, matching the
        // canonical-form convention of the backend's `Ty::I` ops.
        let args: Vec<u64> = args.iter().map(|&v| i64::from(v) as u64).collect();
        let r = m
            .call(entry, &args, fuel)
            .map_err(|t| EngineError::Exec(format!("alpha trap: {t}")))?;
        vcode::obs::note_exec_cycles(m.cycles());
        Ok(i64::from(r as u32 as i32))
    }
}

impl SimExecutor for SimRunner {
    fn run(
        &self,
        target: TargetId,
        code: &[u8],
        args: &[i32],
        fuel: u64,
    ) -> Result<i64, EngineError> {
        match target {
            TargetId::Mips => Self::run_mips(code, args, fuel),
            TargetId::Sparc => Self::run_sparc(code, args, fuel),
            TargetId::Alpha => Self::run_alpha(code, args, fuel),
            TargetId::X64 => Err(EngineError::Exec(
                "x64 executes natively, not on a simulator".into(),
            )),
        }
    }
}

/// Installs a [`SimRunner`] as the executor for all three simulated ISAs
/// and registers each ISA's differential decoder with the persistent
/// cache (artifact revalidation needs an independent decode path).
/// Idempotent; call once near startup (or from each test that executes
/// simulated lambdas).
pub fn install() {
    let runner = std::sync::Arc::new(SimRunner);
    engine::set_executor(TargetId::Mips, runner.clone());
    engine::set_executor(TargetId::Sparc, runner.clone());
    engine::set_executor(TargetId::Alpha, runner);
    vcode::persist::set_decoder(TargetId::Mips, std::sync::Arc::new(crate::mips::Decoder));
    vcode::persist::set_decoder(TargetId::Sparc, std::sync::Arc::new(crate::sparc::Decoder));
    vcode::persist::set_decoder(TargetId::Alpha, std::sync::Arc::new(crate::alpha::Decoder));
}
