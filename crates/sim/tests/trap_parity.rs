//! Cross-simulator trap parity: the same client-level misuse —
//! out-of-bounds access, misaligned access, runaway loop — must
//! classify identically on MIPS, SPARC, and Alpha once each simulator's
//! machine-specific trap is converted into the unified
//! [`vcode::TrapKind`] taxonomy.

use vcode::target::Leaf;
use vcode::{Assembler, RegClass, Target, Trap, TrapKind};

/// The faulting programs, expressed target-independently.
#[derive(Debug, Clone, Copy)]
enum Fault {
    /// Load from a 4 KiB-aligned address far outside simulated memory.
    OutOfBounds,
    /// Load a word from address 2 (in bounds, misaligned).
    Misaligned,
    /// Branch-to-self, run under a small step budget.
    RunawayLoop,
}

fn emit<T: Target>(a: &mut Assembler<'_, T>, fault: Fault) {
    let r = a.getreg(RegClass::Temp).expect("reg");
    match fault {
        Fault::OutOfBounds => {
            a.seti(r, 0x0100_0000);
            a.ldii(r, r, 0);
        }
        Fault::Misaligned => {
            a.seti(r, 2);
            a.ldii(r, r, 0);
        }
        Fault::RunawayLoop => {
            let top = a.genlabel();
            a.label(top);
            a.jmp(top);
        }
    }
    a.reti(r);
}

fn gen<T: Target>(fault: Fault) -> Vec<u8> {
    let mut mem = vec![0u8; 8192];
    let mut a = Assembler::<T>::lambda(&mut mem, "%i", Leaf::Yes).expect("lambda");
    emit(&mut a, fault);
    let len = a.end().expect("end").len;
    mem.truncate(len);
    mem
}

/// Runs the faulting program on all three simulators and returns the
/// unified traps.
fn run_all(fault: Fault) -> [Trap; 3] {
    const MEM: usize = 1 << 21;
    let steps = match fault {
        Fault::RunawayLoop => 10_000,
        _ => 1_000_000,
    };
    let mut mips = vcode_sim::mips::Machine::new(MEM);
    let e = mips.load_code(&gen::<vcode_mips::Mips>(fault)).unwrap();
    let mt: Trap = mips
        .call(e, &[0], steps)
        .expect_err("mips must trap")
        .into();
    let mut sparc = vcode_sim::sparc::Machine::new(MEM);
    let e = sparc.load_code(&gen::<vcode_sparc::Sparc>(fault)).unwrap();
    let st: Trap = sparc
        .call(e, &[0], steps)
        .expect_err("sparc must trap")
        .into();
    let mut alpha = vcode_sim::alpha::Machine::new(MEM);
    let e = alpha.load_code(&gen::<vcode_alpha::Alpha>(fault)).unwrap();
    let at: Trap = alpha
        .call(e, &[0], steps)
        .expect_err("alpha must trap")
        .into();
    [mt, st, at]
}

#[test]
fn out_of_bounds_access_is_bad_access_everywhere() {
    for t in run_all(Fault::OutOfBounds) {
        assert_eq!(t.kind, TrapKind::BadAccess, "{t}");
        assert_eq!(t.addr, Some(0x0100_0000), "{t}");
    }
}

#[test]
fn misaligned_access_is_unaligned_everywhere() {
    for t in run_all(Fault::Misaligned) {
        assert_eq!(t.kind, TrapKind::Unaligned, "{t}");
        assert_eq!(t.addr, Some(2), "{t}");
    }
}

#[test]
fn runaway_loop_is_fuel_exhausted_everywhere() {
    for t in run_all(Fault::RunawayLoop) {
        assert_eq!(t.kind, TrapKind::FuelExhausted, "{t}");
    }
}

#[test]
fn backend_names_distinguish_reporters() {
    let names: Vec<&str> = run_all(Fault::OutOfBounds)
        .iter()
        .map(|t| t.backend)
        .collect();
    assert_eq!(names, ["mips", "sparc", "alpha"]);
}
