//! Cross tests: generate MIPS code with the `vcode-mips` backend, run it
//! on the simulator, compare against the core's reference semantics —
//! the paper's automatically generated regression tests for instruction
//! mappings and calling conventions (§3.3, §6.1).

use vcode::regress::{self};
use vcode::target::{JumpTarget, Leaf, Target};
use vcode::{Assembler, Reg, RegClass, Sig, Ty};
use vcode_mips::Mips;
use vcode_sim::mips::{disasm_all, Machine};

const STEPS: u64 = 1_000_000;

fn generate(sig: &str, leaf: Leaf, f: impl FnOnce(&mut Assembler<'_, Mips>)) -> Vec<u8> {
    let mut mem = vec![0u8; 16 * 1024];
    let mut a = Assembler::<Mips>::lambda(&mut mem, sig, leaf).unwrap();
    f(&mut a);
    let fin = a.end().unwrap();
    mem.truncate(fin.len);
    mem
}

fn ret_typed(a: &mut Assembler<'_, Mips>, ty: Ty, r: Reg) {
    match ty {
        Ty::I => a.reti(r),
        Ty::U => a.retu(r),
        Ty::L => a.retl(r),
        Ty::Ul => a.retul(r),
        Ty::P => a.retp(r),
        _ => panic!("int type expected"),
    }
}

#[test]
fn figure1_plus1_runs_in_simulation() {
    let code = generate("%i", Leaf::Yes, |a| {
        let x = a.arg(0);
        a.addii(x, x, 1);
        a.reti(x);
    });
    let mut m = Machine::new(1 << 20);
    m.strict_load_delay = true;
    let entry = m.load_code(&code).unwrap();
    assert_eq!(m.call(entry, &[41], STEPS).unwrap(), 42);
    assert_eq!(m.call(entry, &[u32::MAX], STEPS).unwrap(), 0);
}

#[test]
fn regression_binops() {
    let cases = regress::binop_cases(32, 2, 0xfeed);
    let mut m = Machine::new(1 << 22);
    m.strict_load_delay = true;
    let entries: Vec<(u32, &regress::BinCase)> = cases
        .iter()
        .map(|c| {
            let code = generate("%i%i", Leaf::Yes, |a| {
                let (x, y) = (a.arg(0), a.arg(1));
                Mips::emit_binop(a.raw(), c.op, c.ty, x, x, y);
                ret_typed(a, c.ty, x);
            });
            (m.load_code(&code).unwrap(), c)
        })
        .collect();
    for (entry, c) in entries {
        let got = m.call(entry, &[c.a as u32, c.b as u32], STEPS).unwrap();
        assert_eq!(
            regress::canon(c.ty, got as u64, 32),
            c.expect,
            "{:?}.{:?}({:#x}, {:#x})",
            c.op,
            c.ty,
            c.a,
            c.b
        );
    }
}

#[test]
fn regression_binop_immediates() {
    let cases: Vec<_> = regress::binop_cases(32, 1, 3)
        .into_iter()
        .step_by(3)
        .collect();
    let mut m = Machine::new(1 << 22);
    m.strict_load_delay = true;
    for c in cases {
        let code = generate("%i", Leaf::Yes, |a| {
            let x = a.arg(0);
            let d = a.getreg(RegClass::Temp).unwrap();
            Mips::emit_binop_imm(a.raw(), c.op, c.ty, d, x, c.b as i32 as i64);
            ret_typed(a, c.ty, d);
        });
        let entry = m.load_code(&code).unwrap();
        let got = m.call(entry, &[c.a as u32], STEPS).unwrap();
        assert_eq!(
            regress::canon(c.ty, got as u64, 32),
            c.expect,
            "{:?}.{:?}({:#x}, imm {:#x})\n{}",
            c.op,
            c.ty,
            c.a,
            c.b,
            disasm_all(&code)
        );
    }
}

#[test]
fn regression_unops() {
    let mut m = Machine::new(1 << 22);
    m.strict_load_delay = true;
    for c in regress::unop_cases(32) {
        let code = generate("%i", Leaf::Yes, |a| {
            let x = a.arg(0);
            let d = a.getreg(RegClass::Temp).unwrap();
            Mips::emit_unop(a.raw(), c.op, c.ty, d, x);
            ret_typed(a, c.ty, d);
        });
        let entry = m.load_code(&code).unwrap();
        let got = m.call(entry, &[c.a as u32], STEPS).unwrap();
        assert_eq!(
            regress::canon(c.ty, got as u64, 32),
            c.expect,
            "{:?}.{:?}({:#x})",
            c.op,
            c.ty,
            c.a
        );
    }
}

#[test]
fn regression_branches() {
    let cases: Vec<_> = regress::branch_cases(32).into_iter().step_by(5).collect();
    let mut m = Machine::new(1 << 22);
    m.strict_load_delay = true;
    for c in cases {
        let code = generate("%i%i", Leaf::Yes, |a| {
            let (x, y) = (a.arg(0), a.arg(1));
            let taken = a.genlabel();
            let r = a.getreg(RegClass::Temp).unwrap();
            Mips::emit_branch(a.raw(), c.cond, c.ty, x, vcode::BrOperand::R(y), taken);
            a.seti(r, 0);
            a.reti(r);
            a.label(taken);
            a.seti(r, 1);
            a.reti(r);
        });
        let entry = m.load_code(&code).unwrap();
        let got = m.call(entry, &[c.a as u32, c.b as u32], STEPS).unwrap();
        assert_eq!(
            got != 0,
            c.taken,
            "{:?}.{:?}({:#x}, {:#x})",
            c.cond,
            c.ty,
            c.a,
            c.b
        );
    }
}

#[test]
fn regression_branch_immediates_including_zero_specials() {
    let mut m = Machine::new(1 << 22);
    m.strict_load_delay = true;
    for cond in [
        vcode::Cond::Lt,
        vcode::Cond::Le,
        vcode::Cond::Gt,
        vcode::Cond::Ge,
        vcode::Cond::Eq,
        vcode::Cond::Ne,
    ] {
        for ty in [Ty::I, Ty::U] {
            for imm in [0i64, 1, -1, 10, 0x7fff, 0x8000, 0x12345678] {
                for aval in [0u32, 1, 9, 10, 11, 0x8000_0000, 0xffff_ffff] {
                    let code = generate("%i", Leaf::Yes, |a| {
                        let x = a.arg(0);
                        let taken = a.genlabel();
                        let r = a.getreg(RegClass::Temp).unwrap();
                        Mips::emit_branch(a.raw(), cond, ty, x, vcode::BrOperand::I(imm), taken);
                        a.seti(r, 0);
                        a.reti(r);
                        a.label(taken);
                        a.seti(r, 1);
                        a.reti(r);
                    });
                    let entry = m.load_code(&code).unwrap();
                    let got = m.call(entry, &[aval], STEPS).unwrap();
                    let expect = regress::eval_cond(
                        cond,
                        ty,
                        aval as u64,
                        regress::canon(ty, imm as u64, 32),
                        32,
                    );
                    assert_eq!(
                        got != 0,
                        expect,
                        "{cond:?}.{ty:?}({aval:#x}, imm {imm:#x})\n{}",
                        disasm_all(&code)
                    );
                }
            }
        }
    }
}

#[test]
fn memory_all_widths_in_simulation() {
    let code = generate("%p%p", Leaf::Yes, |a| {
        let (src, dst) = (a.arg(0), a.arg(1));
        let t = a.getreg(RegClass::Temp).unwrap();
        a.ldci(t, src, 0);
        a.stci(t, dst, 0);
        a.lduci(t, src, 1);
        a.stuci(t, dst, 1);
        a.ldsi(t, src, 2);
        a.stsi(t, dst, 2);
        a.ldusi(t, src, 4);
        a.stusi(t, dst, 4);
        a.ldii(t, src, 8);
        a.stii(t, dst, 8);
        a.retv();
    });
    let mut m = Machine::new(1 << 20);
    m.strict_load_delay = true;
    let entry = m.load_code(&code).unwrap();
    let src = m.alloc(16, 8).unwrap();
    let dst = m.alloc(16, 8).unwrap();
    let data: Vec<u8> = (0..16).map(|i| 0xf0u8.wrapping_add(i)).collect();
    m.write(src, &data).unwrap();
    m.call(entry, &[src, dst], STEPS).unwrap();
    assert_eq!(m.read(dst, 6).unwrap(), m.read(src, 6).unwrap());
    assert_eq!(
        m.read(dst, 12).unwrap()[8..12],
        m.read(src, 12).unwrap()[8..12]
    );
}

#[test]
fn sum_loop_and_counts() {
    let code = generate("%i", Leaf::Yes, |a| {
        let n = a.arg(0);
        let sum = a.getreg(RegClass::Temp).unwrap();
        let i = a.getreg(RegClass::Temp).unwrap();
        a.seti(sum, 0);
        a.seti(i, 0);
        let top = a.genlabel();
        let done = a.genlabel();
        a.label(top);
        a.bgei(i, n, done);
        a.addi(sum, sum, i);
        a.addii(i, i, 1);
        a.jmp(top);
        a.label(done);
        a.reti(sum);
    });
    let mut m = Machine::new(1 << 20);
    let entry = m.load_code(&code).unwrap();
    assert_eq!(m.call(entry, &[100], STEPS).unwrap(), 4950);
    assert!(
        m.stats().insns_retired > 600,
        "loop body executed 100 times"
    );
    assert!(m.stats().branches >= 200);
}

#[test]
fn scheduled_delay_slots_run_correctly() {
    // Count down from n to 0 with the decrement in the delay slot.
    let code = generate("%i", Leaf::Yes, |a| {
        let n = a.arg(0);
        let top = a.genlabel();
        a.label(top);
        a.schedule_delay(|a| a.bgtii(n, 0, top), |a| a.subii(n, n, 1));
        a.reti(n);
    });
    let mut m = Machine::new(1 << 20);
    let entry = m.load_code(&code).unwrap();
    // The delay-slot decrement executes even on the final, not-taken
    // iteration, so the loop exits with n == -1... unless the branch is
    // checked before the decrement. Semantics: bgt tests n, the slot
    // decrements; loop exits when n-before-decrement <= 0, i.e. final
    // n == n_exit - 1 == -1.
    assert_eq!(m.call(entry, &[5], STEPS).unwrap() as i32, -1);
}

#[test]
fn double_precision_arithmetic_in_simulation() {
    let code = generate("%d%d", Leaf::Yes, |a| {
        let (x, y) = (a.arg(0), a.arg(1));
        let t = a.getreg_f(RegClass::Temp).unwrap();
        a.muld(t, x, y);
        a.addd(t, t, x);
        a.retd(t);
    });
    let mut m = Machine::new(1 << 20);
    let entry = m.load_code(&code).unwrap();
    assert_eq!(m.call_f64(entry, &[3.0, 4.0], STEPS).unwrap(), 15.0);
    assert_eq!(m.call_f64(entry, &[-1.5, 2.0], STEPS).unwrap(), -4.5);
}

#[test]
fn double_constants_and_conversions() {
    let code = generate("%i", Leaf::Yes, |a| {
        let x = a.arg(0);
        let f = a.getreg_f(RegClass::Temp).unwrap();
        let h = a.getreg_f(RegClass::Temp).unwrap();
        a.cvi2d(f, x);
        a.setd(h, 0.5);
        a.muld(f, f, h);
        let r = a.getreg(RegClass::Temp).unwrap();
        a.cvd2i(r, f);
        a.reti(r);
    });
    let mut m = Machine::new(1 << 20);
    m.strict_load_delay = true;
    let entry = m.load_code(&code).unwrap();
    assert_eq!(m.call(entry, &[10], STEPS).unwrap(), 5);
    assert_eq!(m.call(entry, &[(-9i32) as u32], STEPS).unwrap() as i32, -4);
}

#[test]
fn unsigned_to_double_adjusts_high_bit() {
    let code = generate("%u", Leaf::Yes, |a| {
        let x = a.arg(0);
        let f = a.getreg_f(RegClass::Temp).unwrap();
        a.cvu2d(f, x);
        a.retd(f);
    });
    let mut m = Machine::new(1 << 20);
    let entry = m.load_code(&code).unwrap();
    m.regs[4] = 0xffff_ffff;
    m.run(entry, STEPS).unwrap();
    let got = f64::from_bits((m.fregs[0] as u64) | ((m.fregs[1] as u64) << 32));
    assert_eq!(got, 4294967295.0);
    m.regs[4] = 7;
    m.run(entry, STEPS).unwrap();
    let got = f64::from_bits((m.fregs[0] as u64) | ((m.fregs[1] as u64) << 32));
    assert_eq!(got, 7.0);
}

#[test]
fn float_branches_in_simulation() {
    let code = generate("%d%d", Leaf::Yes, |a| {
        let (x, y) = (a.arg(0), a.arg(1));
        let yes = a.genlabel();
        let r = a.getreg(RegClass::Temp).unwrap();
        a.bltd(x, y, yes);
        a.seti(r, 0);
        a.reti(r);
        a.label(yes);
        a.seti(r, 1);
        a.reti(r);
    });
    let mut m = Machine::new(1 << 20);
    let entry = m.load_code(&code).unwrap();
    m.fregs[12] = 0;
    m.fregs[13] = 0x3ff0_0000; // 1.0
    m.fregs[14] = 0;
    m.fregs[15] = 0x4000_0000; // 2.0
    m.run(entry, STEPS).unwrap();
    assert_eq!(m.regs[2], 1, "1.0 < 2.0");
}

#[test]
fn generated_function_calls_another_generated_function() {
    let mut m = Machine::new(1 << 20);
    // Callee: double(x) = x + x.
    let callee = generate("%i", Leaf::Yes, |a| {
        let x = a.arg(0);
        a.addi(x, x, x);
        a.reti(x);
    });
    let callee_entry = m.load_code(&callee).unwrap();
    // Caller: calls callee twice via the marshaling interface.
    let caller = generate("%i", Leaf::No, |a| {
        let x = a.arg(0);
        let sig = Sig::parse("%i:%i").unwrap();
        let mut cf = a.call_begin(&sig);
        a.call_arg(&mut cf, 0, Ty::I, x);
        let r = a.getreg(RegClass::Temp).unwrap();
        a.call_end(cf, JumpTarget::Abs(callee_entry as u64), Some(r));
        let mut cf = a.call_begin(&sig);
        a.call_arg(&mut cf, 0, Ty::I, r);
        a.call_end(cf, JumpTarget::Abs(callee_entry as u64), Some(r));
        a.reti(r);
    });
    let caller_entry = m.load_code(&caller).unwrap();
    assert_eq!(m.call(caller_entry, &[5], STEPS).unwrap(), 20);
}

#[test]
fn persistent_registers_across_simulated_calls() {
    let mut m = Machine::new(1 << 20);
    // A callee that deliberately trashes every temporary register.
    let clobber = generate("", Leaf::Yes, |a| {
        for t in 8u8..16 {
            a.seti(Reg::int(t), -1);
        }
        a.retv();
    });
    let clobber_entry = m.load_code(&clobber).unwrap();
    let caller = generate("%i", Leaf::No, |a| {
        let x = a.arg(0);
        let keep = a.getreg(RegClass::Persistent).unwrap();
        a.movi(keep, x);
        let sig = Sig::parse("").unwrap();
        let cf = a.call_begin(&sig);
        a.call_end(cf, JumpTarget::Abs(clobber_entry as u64), None);
        a.reti(keep);
    });
    let entry = m.load_code(&caller).unwrap();
    assert_eq!(m.call(entry, &[1234], STEPS).unwrap(), 1234);
}

#[test]
fn strict_mode_accepts_all_generated_loads() {
    // The backend's conservative load padding must satisfy the
    // simulator's strict MIPS-I hazard checking.
    let code = generate("%p", Leaf::Yes, |a| {
        let p = a.arg(0);
        let t = a.getreg(RegClass::Temp).unwrap();
        a.ldii(t, p, 0);
        a.addii(t, t, 1); // immediately uses the loaded value
        a.reti(t);
    });
    let mut m = Machine::new(1 << 20);
    m.strict_load_delay = true;
    let entry = m.load_code(&code).unwrap();
    let addr = m.alloc(8, 8).unwrap();
    m.write(addr, &41u32.to_le_bytes()).unwrap();
    assert_eq!(m.call(entry, &[addr], STEPS).unwrap(), 42);
}

#[test]
fn raw_load_with_too_small_distance_gets_nops() {
    let code = generate("%p", Leaf::Yes, |a| {
        let p = a.arg(0);
        let t = a.getreg(RegClass::Temp).unwrap();
        // Claim zero distance: core inserts the required nop itself.
        a.raw_load(|a| a.ldii(t, p, 0), 0);
        a.addii(t, t, 1);
        a.reti(t);
    });
    let mut m = Machine::new(1 << 20);
    m.strict_load_delay = true;
    let entry = m.load_code(&code).unwrap();
    let addr = m.alloc(8, 8).unwrap();
    m.write(addr, &9u32.to_le_bytes()).unwrap();
    assert_eq!(m.call(entry, &[addr], STEPS).unwrap(), 10);
}

#[test]
fn locals_and_frame_in_simulation() {
    let code = generate("%i%i", Leaf::Yes, |a| {
        let (x, y) = (a.arg(0), a.arg(1));
        let sx = a.local(Ty::I);
        let sy = a.local(Ty::I);
        a.st_slot(sx, x);
        a.st_slot(sy, y);
        let t = a.getreg(RegClass::Temp).unwrap();
        let u = a.getreg(RegClass::Temp).unwrap();
        a.ld_slot(t, sx);
        a.ld_slot(u, sy);
        a.muli(t, t, u);
        a.reti(t);
    });
    let mut m = Machine::new(1 << 20);
    m.strict_load_delay = true;
    let entry = m.load_code(&code).unwrap();
    assert_eq!(m.call(entry, &[6, 7], STEPS).unwrap(), 42);
}

#[test]
fn trap_when_branch_misses_delay_handling() {
    // Sanity: the Machine really executes what the backend produced —
    // disassemble and ensure delay slots are present after branches.
    let code = generate("%i", Leaf::Yes, |a| {
        let x = a.arg(0);
        let l = a.genlabel();
        a.beqii(x, 0, l);
        a.addii(x, x, 10);
        a.label(l);
        a.reti(x);
    });
    let text = disasm_all(&code);
    let lines: Vec<&str> = text.lines().collect();
    let beq_idx = lines.iter().position(|l| l.contains("beq")).unwrap();
    assert!(
        lines[beq_idx + 1].contains("nop"),
        "delay slot after beq:\n{text}"
    );
}
