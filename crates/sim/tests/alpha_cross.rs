//! Cross tests: vcode-alpha generated code executed on the Alpha
//! simulator, checked against the core's reference semantics — including
//! the paper's synthesized byte operations and software division.

use vcode::regress::{self};
use vcode::target::{JumpTarget, Leaf, Target};
use vcode::{Assembler, Reg, RegClass, Sig, Ty};
use vcode_alpha::Alpha;
use vcode_sim::alpha::Machine;

const STEPS: u64 = 1_000_000;

fn generate(sig: &str, leaf: Leaf, f: impl FnOnce(&mut Assembler<'_, Alpha>)) -> Vec<u8> {
    let mut mem = vec![0u8; 16 * 1024];
    let mut a = Assembler::<Alpha>::lambda(&mut mem, sig, leaf).unwrap();
    f(&mut a);
    let fin = a.end().unwrap();
    mem.truncate(fin.len);
    mem
}

fn ret_typed(a: &mut Assembler<'_, Alpha>, ty: Ty, r: Reg) {
    match ty {
        Ty::I => a.reti(r),
        Ty::U => a.retu(r),
        Ty::L => a.retl(r),
        Ty::Ul => a.retul(r),
        Ty::P => a.retp(r),
        _ => panic!("int type expected"),
    }
}

#[test]
fn figure1_plus1() {
    let code = generate("%i", Leaf::Yes, |a| {
        let x = a.arg(0);
        a.addii(x, x, 1);
        a.reti(x);
    });
    let mut m = Machine::new(1 << 20);
    let entry = m.load_code(&code).unwrap();
    assert_eq!(m.call(entry, &[41], STEPS).unwrap(), 42);
    assert_eq!(
        m.call(entry, &[i64::from(i32::MAX) as u64], STEPS).unwrap() as i64,
        i64::from(i32::MIN),
        "32-bit wraparound stays canonical (sign-extended)"
    );
}

#[test]
fn regression_binops_64bit_machine() {
    let cases = regress::binop_cases(64, 2, 0xa1fa);
    let mut m = Machine::new(1 << 23);
    for c in &cases {
        let code = generate("%l%l", Leaf::Yes, |a| {
            let (x, y) = (a.arg(0), a.arg(1));
            let d = a.getreg(RegClass::Temp).unwrap();
            // 32-bit operands arrive canonical (sign-extended).
            if matches!(c.ty, Ty::I | Ty::U) {
                Alpha::emit_cvt(a.raw(), Ty::L, Ty::I, x, x);
                Alpha::emit_cvt(a.raw(), Ty::L, Ty::I, y, y);
            }
            Alpha::emit_binop(a.raw(), c.op, c.ty, d, x, y);
            ret_typed(a, c.ty, d);
        });
        let entry = m.load_code(&code).unwrap();
        let got = m.call(entry, &[c.a, c.b], STEPS).unwrap();
        assert_eq!(
            regress::canon(c.ty, got, 64),
            regress::canon(c.ty, c.expect, 64),
            "{:?}.{:?}({:#x}, {:#x}) got {got:#x}",
            c.op,
            c.ty,
            c.a,
            c.b
        );
    }
}

#[test]
fn regression_binop_immediates() {
    let cases: Vec<_> = regress::binop_cases(64, 1, 0x77)
        .into_iter()
        .step_by(5)
        .collect();
    let mut m = Machine::new(1 << 23);
    for c in cases {
        let code = generate("%l", Leaf::Yes, |a| {
            let x = a.arg(0);
            let d = a.getreg(RegClass::Temp).unwrap();
            if matches!(c.ty, Ty::I | Ty::U) {
                Alpha::emit_cvt(a.raw(), Ty::L, Ty::I, x, x);
            }
            Alpha::emit_binop_imm(a.raw(), c.op, c.ty, d, x, c.b as i64);
            ret_typed(a, c.ty, d);
        });
        let entry = m.load_code(&code).unwrap();
        let got = m.call(entry, &[c.a], STEPS).unwrap();
        assert_eq!(
            regress::canon(c.ty, got, 64),
            regress::canon(c.ty, c.expect, 64),
            "{:?}.{:?}({:#x}, imm {:#x}) got {got:#x}",
            c.op,
            c.ty,
            c.a,
            c.b
        );
    }
}

#[test]
fn regression_unops() {
    let mut m = Machine::new(1 << 22);
    for c in regress::unop_cases(64) {
        let code = generate("%l", Leaf::Yes, |a| {
            let x = a.arg(0);
            let d = a.getreg(RegClass::Temp).unwrap();
            if matches!(c.ty, Ty::I | Ty::U) {
                Alpha::emit_cvt(a.raw(), Ty::L, Ty::I, x, x);
            }
            Alpha::emit_unop(a.raw(), c.op, c.ty, d, x);
            ret_typed(a, c.ty, d);
        });
        let entry = m.load_code(&code).unwrap();
        let got = m.call(entry, &[c.a], STEPS).unwrap();
        assert_eq!(
            regress::canon(c.ty, got, 64),
            regress::canon(c.ty, c.expect, 64),
            "{:?}.{:?}({:#x})",
            c.op,
            c.ty,
            c.a
        );
    }
}

#[test]
fn regression_branches() {
    let cases: Vec<_> = regress::branch_cases(64).into_iter().step_by(7).collect();
    let mut m = Machine::new(1 << 23);
    for c in cases {
        let code = generate("%l%l", Leaf::Yes, |a| {
            let (x, y) = (a.arg(0), a.arg(1));
            if matches!(c.ty, Ty::I | Ty::U) {
                Alpha::emit_cvt(a.raw(), Ty::L, Ty::I, x, x);
                Alpha::emit_cvt(a.raw(), Ty::L, Ty::I, y, y);
            }
            let taken = a.genlabel();
            let r = a.getreg(RegClass::Temp).unwrap();
            Alpha::emit_branch(a.raw(), c.cond, c.ty, x, vcode::BrOperand::R(y), taken);
            a.seti(r, 0);
            a.reti(r);
            a.label(taken);
            a.seti(r, 1);
            a.reti(r);
        });
        let entry = m.load_code(&code).unwrap();
        let got = m.call(entry, &[c.a, c.b], STEPS).unwrap();
        assert_eq!(
            got != 0,
            c.taken,
            "{:?}.{:?}({:#x}, {:#x})",
            c.cond,
            c.ty,
            c.a,
            c.b
        );
    }
}

#[test]
fn synthesized_byte_and_halfword_memory() {
    // The paper's §6.2 case: every sub-word width, read and write, at
    // every alignment within a quadword.
    let code = generate("%p%p", Leaf::Yes, |a| {
        let (src, dst) = (a.arg(0), a.arg(1));
        let t = a.getreg(RegClass::Temp).unwrap();
        for off in 0..8 {
            a.lduci(t, src, off);
            a.stuci(t, dst, off);
        }
        a.ldci(t, src, 3);
        a.stii(t, dst, 8); // sign-extended byte as a word
        a.ldsi(t, src, 2);
        a.stii(t, dst, 12);
        a.ldusi(t, src, 4);
        a.stusi(t, dst, 16);
        a.retv();
    });
    let mut m = Machine::new(1 << 20);
    let entry = m.load_code(&code).unwrap();
    let src = m.alloc(16, 8).unwrap();
    let dst = m.alloc(24, 8).unwrap();
    m.write(src, &[0x11, 0x92, 0x83, 0xf4, 0xbe, 0xef, 0x77, 0x08])
        .unwrap();
    m.call(entry, &[src, dst], STEPS).unwrap();
    assert_eq!(m.read(dst, 8).unwrap(), m.read(src, 8).unwrap());
    let w = i32::from_le_bytes(m.read(dst + 8, 4).unwrap().try_into().unwrap());
    assert_eq!(w, 0xf4u8 as i8 as i32, "signed byte");
    let h = i32::from_le_bytes(m.read(dst + 12, 4).unwrap().try_into().unwrap());
    assert_eq!(h, 0xf483u16 as i16 as i32, "signed halfword");
    let uh = u32::from_le_bytes(m.read(dst + 16, 4).unwrap().try_into().unwrap());
    assert_eq!(uh, 0xefbe, "unsigned halfword");
}

#[test]
fn division_through_runtime_support() {
    let mut m = Machine::new(1 << 20);
    for (x, y) in [(100i64, 7i64), (-100, 7), (100, -7), (1, 1), (0, 5)] {
        let code = generate("%l%l", Leaf::Yes, |a| {
            let (a0, a1) = (a.arg(0), a.arg(1));
            let q = a.getreg(RegClass::Temp).unwrap();
            let r = a.getreg(RegClass::Temp).unwrap();
            a.divl(q, a0, a1);
            a.modl(r, a0, a1);
            // pack: q * 1000 + r (small cases only)
            a.mulli(q, q, 1000);
            a.addl(q, q, r);
            a.retl(q);
        });
        let entry = m.load_code(&code).unwrap();
        let got = m.call(entry, &[x as u64, y as u64], STEPS).unwrap() as i64;
        assert_eq!(got, (x / y) * 1000 + x % y, "{x} / {y}");
    }
    assert!(m.div_calls >= 10);
}

#[test]
fn leaf_functions_stay_leaves_despite_division() {
    // Paper §5.2: emulation routines preserve caller-saved registers, so
    // a leaf function may divide without ceasing to be a leaf.
    let code = generate("%i%i%i", Leaf::Yes, |a| {
        let (x, y, z) = (a.arg(0), a.arg(1), a.arg(2));
        let t = a.getreg(RegClass::Temp).unwrap();
        a.movi(t, z); // live across the division
        a.divi(x, x, y);
        a.addi(x, x, t);
        a.reti(x);
    });
    let mut m = Machine::new(1 << 20);
    let entry = m.load_code(&code).unwrap();
    assert_eq!(m.call(entry, &[100, 5, 7], STEPS).unwrap(), 27);
}

#[test]
fn doubles_and_conversions() {
    let code = generate("%d%d", Leaf::Yes, |a| {
        let (x, y) = (a.arg(0), a.arg(1));
        let t = a.getreg_f(RegClass::Temp).unwrap();
        a.muld(t, x, y);
        a.addd(t, t, x);
        a.retd(t);
    });
    let mut m = Machine::new(1 << 20);
    let entry = m.load_code(&code).unwrap();
    assert_eq!(m.call_f64(entry, &[3.0, 4.0], STEPS).unwrap(), 15.0);

    let code = generate("%l", Leaf::Yes, |a| {
        let x = a.arg(0);
        let f = a.getreg_f(RegClass::Temp).unwrap();
        let h = a.getreg_f(RegClass::Temp).unwrap();
        a.cvl2d(f, x);
        a.setd(h, 0.5);
        a.muld(f, f, h);
        let r = a.getreg(RegClass::Temp).unwrap();
        a.cvd2l(r, f);
        a.retl(r);
    });
    let entry = m.load_code(&code).unwrap();
    assert_eq!(m.call(entry, &[10], STEPS).unwrap(), 5);
    assert_eq!(m.call(entry, &[(-9i64) as u64], STEPS).unwrap() as i64, -4);
}

#[test]
fn float_branches() {
    let code = generate("%d%d", Leaf::Yes, |a| {
        let (x, y) = (a.arg(0), a.arg(1));
        let yes = a.genlabel();
        let r = a.getreg(RegClass::Temp).unwrap();
        a.bltd(x, y, yes);
        a.seti(r, 0);
        a.reti(r);
        a.label(yes);
        a.seti(r, 1);
        a.reti(r);
    });
    let mut m = Machine::new(1 << 20);
    let entry = m.load_code(&code).unwrap();
    m.fregs[16] = 1.0f64.to_bits();
    m.fregs[17] = 2.0f64.to_bits();
    m.run(entry, STEPS).unwrap();
    assert_eq!(m.regs[0], 1);
    m.fregs[16] = 2.0f64.to_bits();
    m.fregs[17] = 1.0f64.to_bits();
    m.run(entry, STEPS).unwrap();
    assert_eq!(m.regs[0], 0);
}

#[test]
fn calls_and_persistence() {
    let mut m = Machine::new(1 << 20);
    let clobber = generate("", Leaf::Yes, |a| {
        for t in 1u8..9 {
            a.setl(Reg::int(t), -1);
        }
        a.retv();
    });
    let clobber_entry = m.load_code(&clobber).unwrap();
    let caller = generate("%l", Leaf::No, |a| {
        let x = a.arg(0);
        let keep = a.getreg(RegClass::Persistent).unwrap();
        a.movl(keep, x);
        let sig = Sig::parse("").unwrap();
        let cf = a.call_begin(&sig);
        a.call_end(cf, JumpTarget::Abs(clobber_entry), None);
        a.retl(keep);
    });
    let entry = m.load_code(&caller).unwrap();
    assert_eq!(
        m.call(entry, &[0xfeed_beef_cafe], STEPS).unwrap(),
        0xfeed_beef_cafe
    );
}

#[test]
fn marshaled_call_with_mixed_args() {
    let mut m = Machine::new(1 << 20);
    let callee = generate("%l%d%l", Leaf::Yes, |a| {
        let (x, d, y) = (a.arg(0), a.arg(1), a.arg(2));
        let t = a.getreg(RegClass::Temp).unwrap();
        a.cvd2l(t, d);
        a.addl(t, t, x);
        a.addl(t, t, y);
        a.retl(t);
    });
    let callee_entry = m.load_code(&callee).unwrap();
    let caller = generate("%l", Leaf::No, |a| {
        let x = a.arg(0);
        let d = a.getreg_f(RegClass::Temp).unwrap();
        a.setd(d, 10.0);
        let hundred = a.getreg(RegClass::Temp).unwrap();
        a.setl(hundred, 100);
        let sig = Sig::parse("%l%d%l:%l").unwrap();
        let mut cf = a.call_begin(&sig);
        a.call_arg(&mut cf, 0, Ty::L, x);
        a.call_arg(&mut cf, 1, Ty::D, d);
        a.call_arg(&mut cf, 2, Ty::L, hundred);
        let r = a.getreg(RegClass::Temp).unwrap();
        a.call_end(cf, JumpTarget::Abs(callee_entry), Some(r));
        a.retl(r);
    });
    let entry = m.load_code(&caller).unwrap();
    assert_eq!(m.call(entry, &[5], STEPS).unwrap(), 115);
}

#[test]
fn loops_and_large_immediates() {
    let code = generate("%l", Leaf::Yes, |a| {
        let n = a.arg(0);
        let sum = a.getreg(RegClass::Temp).unwrap();
        let i = a.getreg(RegClass::Temp).unwrap();
        a.setl(sum, 0);
        a.setl(i, 0);
        let top = a.genlabel();
        let done = a.genlabel();
        a.label(top);
        a.bgel(i, n, done);
        a.addl(sum, sum, i);
        a.addli(i, i, 1);
        a.jmp(top);
        a.label(done);
        // Add a constant that needs the full 64-bit materialization.
        a.addli(sum, sum, 0x1234_5678_9abc_def0);
        a.retl(sum);
    });
    let mut m = Machine::new(1 << 20);
    let entry = m.load_code(&code).unwrap();
    assert_eq!(
        m.call(entry, &[100], STEPS).unwrap(),
        4950u64.wrapping_add(0x1234_5678_9abc_def0)
    );
}

#[test]
fn float_constants_and_single_precision() {
    let code = generate("%f%f", Leaf::Yes, |a| {
        let (x, y) = (a.arg(0), a.arg(1));
        let t = a.getreg_f(RegClass::Temp).unwrap();
        a.mulf(t, x, y);
        let half = a.getreg_f(RegClass::Temp).unwrap();
        a.setf(half, 0.5);
        a.addf(t, t, half);
        a.retf(t);
    });
    let mut m = Machine::new(1 << 20);
    let entry = m.load_code(&code).unwrap();
    m.fregs[16] = f64::from(3.0f32).to_bits();
    m.fregs[17] = f64::from(4.0f32).to_bits();
    m.run(entry, STEPS).unwrap();
    assert_eq!(f64::from_bits(m.fregs[0]), 12.5);
}

#[test]
fn disassembler_names_generated_instructions() {
    let code = generate("%p%i", Leaf::Yes, |a| {
        let (p, v) = (a.arg(0), a.arg(1));
        a.stuci(v, p, 3);
        a.addii(v, v, 1);
        a.reti(v);
    });
    let text = vcode_sim::alpha::disasm_all(&code);
    for needle in [
        "lda", "ldq_u", "insbl", "mskbl", "bis", "stq_u", "addl", "ret",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
}
