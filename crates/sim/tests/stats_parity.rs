//! Cross-simulator stats parity: for a straight-line program every
//! emitted word executes exactly once, so the dynamic
//! `stats().insns_retired` must equal the static decoded count from
//! `disasm_all` — on every simulator, for the same target-independent
//! source. Divergence means a simulator is over- or under-counting
//! retirement (or the disassembler dropped a word), exactly the class
//! of drift a shared [`vcode::ExecStats`] surface exists to catch.
//!
//! The trap half mirrors the PR 1 trap-parity fixtures: the same
//! client-level misuse must not only *classify* identically (that suite)
//! but also be *tallied* identically in `stats().traps`.

use vcode::target::Leaf;
use vcode::{Assembler, RegClass, Target, TrapKind};

/// Straight-line corpus: no control flow except the return, so
/// executed count == emitted count on a delay-slot machine too (the
/// slot instruction is emitted and executed like any other).
#[derive(Debug, Clone, Copy)]
enum Program {
    /// Register-only arithmetic chain.
    Arith,
    /// Word stores then loads through the pointer argument.
    Memory,
}

fn emit<T: Target>(a: &mut Assembler<'_, T>, p: Program) {
    match p {
        Program::Arith => {
            let (x, y) = (a.arg(0), a.arg(1));
            let t = a.getreg(RegClass::Temp).expect("reg");
            a.addi(t, x, y);
            a.subii(t, t, 3);
            a.xori(t, t, x);
            a.andii(t, t, 0xff);
            a.reti(t);
        }
        Program::Memory => {
            let p = a.arg(0);
            let t = a.getreg(RegClass::Temp).expect("reg");
            a.seti(t, 0x1234);
            a.stii(t, p, 0);
            a.ldii(t, p, 0);
            a.stii(t, p, 4);
            a.ldii(t, p, 4);
            a.reti(t);
        }
    }
}

fn gen<T: Target>(p: Program) -> Vec<u8> {
    let sig = match p {
        Program::Arith => "%i%i",
        Program::Memory => "%p",
    };
    let mut mem = vec![0u8; 8192];
    let mut a = Assembler::<T>::lambda(&mut mem, sig, Leaf::Yes).expect("lambda");
    emit(&mut a, p);
    let len = a.end().expect("end").len;
    mem.truncate(len);
    mem
}

fn words(ws: &[u32]) -> Vec<u8> {
    ws.iter().flat_map(|w| w.to_le_bytes()).collect()
}

/// Hand-built straight-line `add two args and return` per ISA: no
/// branch skips anything, so `stats().insns_retired` must equal both
/// `code.len() / 4` and the `disasm_all` line count exactly.
#[test]
fn retired_count_matches_decoded_count_on_every_simulator() {
    // addiu $4,$4,1; move $2,$4; jr $31; nop
    let mips = words(&[0x2484_0001, 0x0080_1025, 0x03e0_0008, 0]);
    // save %sp,-96,%sp; add %i0,%i1,%i0; ret; restore
    let sparc = words(&[
        (2u32 << 30)
            | (14 << 25)
            | (0x3c << 19)
            | (14 << 14)
            | (1 << 13)
            | ((-96i32 as u32) & 0x1fff),
        (2 << 30) | (24 << 25) | (24 << 14) | 25,
        (2 << 30) | (0x38 << 19) | (31 << 14) | (1 << 13) | 8,
        (2 << 30) | (0x3d << 19),
    ]);
    // addq a0,a1,v0; ret
    let alpha = words(&[
        (0x10u32 << 26) | (16 << 21) | (17 << 16) | (0x20 << 5),
        (0x1a << 26) | (31 << 21) | (26 << 16) | (2 << 14),
    ]);

    macro_rules! check {
        ($simmod:ident, $code:expr, $args:expr, $want:expr) => {{
            let code = $code;
            let decoded = vcode_sim::$simmod::disasm_all(&code).lines().count() as u64;
            assert_eq!(
                decoded,
                (code.len() / 4) as u64,
                "{}: disassembler must decode every word",
                stringify!($simmod)
            );
            let mut m = vcode_sim::$simmod::Machine::new(1 << 20);
            let entry = m.load_code(&code).unwrap();
            assert_eq!(m.call(entry, &$args, 1_000).unwrap(), $want);
            let s = m.stats();
            assert_eq!(
                s.insns_retired,
                decoded,
                "{}: dynamic retirement must equal static decoded count",
                stringify!($simmod)
            );
            assert_eq!(s.traps.total(), 0, stringify!($simmod));
            // No cache attached: cycles are pure retirement.
            assert_eq!(s.cycles, s.insns_retired, stringify!($simmod));
        }};
    }
    check!(mips, mips, [41u32], 42);
    check!(sparc, sparc, [40u32, 2], 42);
    check!(alpha, alpha, [40u64, 2], 42);
}

/// The same target-independent corpus compiled by the real `Assembler`
/// for each ISA: the prologue's spill area is branched over, so the
/// static count is an upper bound — here the parity claim is between
/// the retirement counter and the per-instruction *trace* stream, with
/// every traced word cross-checked against the static disassembly.
#[test]
fn trace_stream_agrees_with_retirement_and_disassembly() {
    use std::sync::{Arc, Mutex};

    macro_rules! check {
        ($simmod:ident, $target:ty, $prog:expr) => {{
            let prog = $prog;
            let code = gen::<$target>(prog);
            let listing = vcode_sim::$simmod::disasm_all(&code);
            assert_eq!(
                listing.lines().count(),
                code.len() / 4,
                "{} {prog:?}: disassembler must decode every word",
                stringify!($simmod)
            );
            let mut m = vcode_sim::$simmod::Machine::new(1 << 20);
            let entry = m.load_code(&code).unwrap();
            let log = Arc::new(Mutex::new(Vec::new()));
            let sink = Arc::clone(&log);
            m.set_trace(move |r: &vcode::TraceRecord| {
                sink.lock().unwrap().push(r.clone());
            });
            let args = match prog {
                Program::Arith => [40, 2],
                Program::Memory => {
                    let p = m.alloc(64, 8).unwrap();
                    [p, 0]
                }
            };
            m.call(entry, &args, 10_000).unwrap();
            let s = m.stats();
            let log = log.lock().unwrap();
            assert_eq!(
                s.insns_retired,
                log.len() as u64,
                "{} {prog:?}: every retired insn produces one trace record",
                stringify!($simmod)
            );
            for r in log.iter() {
                assert!(
                    listing.contains(r.disasm.as_str()),
                    "{} {prog:?}: traced `{}` missing from static disassembly",
                    stringify!($simmod),
                    r.disasm
                );
            }
            assert_eq!(s.traps.total(), 0, "{} {prog:?}", stringify!($simmod));
            if matches!(prog, Program::Memory) {
                assert_eq!(s.loads, 2, "{}: two word loads", stringify!($simmod));
                assert_eq!(s.stores, 2, "{}: two word stores", stringify!($simmod));
            }
        }};
    }
    for prog in [Program::Arith, Program::Memory] {
        check!(mips, vcode_mips::Mips, prog);
        check!(sparc, vcode_sparc::Sparc, prog);
        check!(alpha, vcode_alpha::Alpha, prog);
    }
}

/// The trap-parity fixtures, re-checked at the counter level: one
/// faulting run tallies exactly one trap of the unified kind, on every
/// simulator.
#[test]
fn trap_tallies_agree_with_trap_parity_fixtures() {
    // Out-of-bounds load => one BadAccess everywhere.
    fn oob<T: Target>() -> Vec<u8> {
        let mut mem = vec![0u8; 8192];
        let mut a = Assembler::<T>::lambda(&mut mem, "%i", Leaf::Yes).expect("lambda");
        let r = a.getreg(RegClass::Temp).expect("reg");
        a.seti(r, 0x0100_0000);
        a.ldii(r, r, 0);
        a.reti(r);
        let len = a.end().expect("end").len;
        mem.truncate(len);
        mem
    }
    // Branch-to-self under a small budget => one FuelExhausted.
    fn runaway<T: Target>() -> Vec<u8> {
        let mut mem = vec![0u8; 8192];
        let mut a = Assembler::<T>::lambda(&mut mem, "%i", Leaf::Yes).expect("lambda");
        let top = a.genlabel();
        a.label(top);
        a.jmp(top);
        a.retv();
        let len = a.end().expect("end").len;
        mem.truncate(len);
        mem
    }

    macro_rules! check {
        ($simmod:ident, $target:ty) => {{
            let mut m = vcode_sim::$simmod::Machine::new(1 << 20);
            let e = m.load_code(&oob::<$target>()).unwrap();
            m.call(e, &[0], 10_000).expect_err("must trap");
            let s = m.stats();
            assert_eq!(
                s.traps.count(TrapKind::BadAccess),
                1,
                "{}: one BadAccess tallied",
                stringify!($simmod)
            );
            assert_eq!(s.traps.total(), 1, stringify!($simmod));

            let mut m = vcode_sim::$simmod::Machine::new(1 << 20);
            let e = m.load_code(&runaway::<$target>()).unwrap();
            m.call(e, &[0], 5_000).expect_err("must exhaust");
            let s = m.stats();
            assert_eq!(
                s.traps.count(TrapKind::FuelExhausted),
                1,
                "{}: one FuelExhausted tallied",
                stringify!($simmod)
            );
            assert_eq!(s.traps.total(), 1, stringify!($simmod));
            assert!(
                s.insns_retired >= 4_000,
                "{}: loop ran",
                stringify!($simmod)
            );
        }};
    }
    check!(mips, vcode_mips::Mips);
    check!(sparc, vcode_sparc::Sparc);
    check!(alpha, vcode_alpha::Alpha);
}
