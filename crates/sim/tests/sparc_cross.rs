//! Cross tests: vcode-sparc generated code executed on the SPARC
//! simulator, checked against the core's reference semantics.

use vcode::regress::{self};
use vcode::target::{JumpTarget, Leaf, Target};
use vcode::{Assembler, Reg, RegClass, Sig, Ty};
use vcode_sim::sparc::Machine;
use vcode_sparc::Sparc;

const STEPS: u64 = 1_000_000;

fn generate(sig: &str, leaf: Leaf, f: impl FnOnce(&mut Assembler<'_, Sparc>)) -> Vec<u8> {
    let mut mem = vec![0u8; 16 * 1024];
    let mut a = Assembler::<Sparc>::lambda(&mut mem, sig, leaf).unwrap();
    f(&mut a);
    let fin = a.end().unwrap();
    mem.truncate(fin.len);
    mem
}

fn ret_typed(a: &mut Assembler<'_, Sparc>, ty: Ty, r: Reg) {
    match ty {
        Ty::I => a.reti(r),
        Ty::U => a.retu(r),
        Ty::L => a.retl(r),
        Ty::Ul => a.retul(r),
        Ty::P => a.retp(r),
        _ => panic!("int type expected"),
    }
}

#[test]
fn figure1_plus1() {
    let code = generate("%i", Leaf::Yes, |a| {
        let x = a.arg(0);
        a.addii(x, x, 1);
        a.reti(x);
    });
    let mut m = Machine::new(1 << 20);
    let entry = m.load_code(&code).unwrap();
    assert_eq!(m.call(entry, &[41], STEPS).unwrap(), 42);
}

#[test]
fn regression_binops() {
    let cases = regress::binop_cases(32, 2, 0xace);
    let mut m = Machine::new(1 << 22);
    for c in &cases {
        let code = generate("%i%i", Leaf::Yes, |a| {
            let (x, y) = (a.arg(0), a.arg(1));
            let d = a.getreg(RegClass::Temp).unwrap();
            Sparc::emit_binop(a.raw(), c.op, c.ty, d, x, y);
            ret_typed(a, c.ty, d);
        });
        let entry = m.load_code(&code).unwrap();
        let got = m.call(entry, &[c.a as u32, c.b as u32], STEPS).unwrap();
        assert_eq!(
            regress::canon(c.ty, u64::from(got), 32),
            c.expect,
            "{:?}.{:?}({:#x}, {:#x})",
            c.op,
            c.ty,
            c.a,
            c.b
        );
    }
}

#[test]
fn regression_binop_immediates() {
    let cases: Vec<_> = regress::binop_cases(32, 1, 5)
        .into_iter()
        .step_by(4)
        .collect();
    let mut m = Machine::new(1 << 22);
    for c in cases {
        let code = generate("%i", Leaf::Yes, |a| {
            let x = a.arg(0);
            let d = a.getreg(RegClass::Temp).unwrap();
            Sparc::emit_binop_imm(a.raw(), c.op, c.ty, d, x, c.b as i32 as i64);
            ret_typed(a, c.ty, d);
        });
        let entry = m.load_code(&code).unwrap();
        let got = m.call(entry, &[c.a as u32], STEPS).unwrap();
        assert_eq!(
            regress::canon(c.ty, u64::from(got), 32),
            c.expect,
            "{:?}.{:?}({:#x}, imm {:#x})",
            c.op,
            c.ty,
            c.a,
            c.b
        );
    }
}

#[test]
fn regression_unops() {
    let mut m = Machine::new(1 << 22);
    for c in regress::unop_cases(32) {
        let code = generate("%i", Leaf::Yes, |a| {
            let x = a.arg(0);
            let d = a.getreg(RegClass::Temp).unwrap();
            Sparc::emit_unop(a.raw(), c.op, c.ty, d, x);
            ret_typed(a, c.ty, d);
        });
        let entry = m.load_code(&code).unwrap();
        let got = m.call(entry, &[c.a as u32], STEPS).unwrap();
        assert_eq!(
            regress::canon(c.ty, u64::from(got), 32),
            c.expect,
            "{:?}.{:?}({:#x})",
            c.op,
            c.ty,
            c.a
        );
    }
}

#[test]
fn regression_branches() {
    let cases: Vec<_> = regress::branch_cases(32).into_iter().step_by(7).collect();
    let mut m = Machine::new(1 << 22);
    for c in cases {
        let code = generate("%i%i", Leaf::Yes, |a| {
            let (x, y) = (a.arg(0), a.arg(1));
            let taken = a.genlabel();
            let r = a.getreg(RegClass::Temp).unwrap();
            Sparc::emit_branch(a.raw(), c.cond, c.ty, x, vcode::BrOperand::R(y), taken);
            a.seti(r, 0);
            a.reti(r);
            a.label(taken);
            a.seti(r, 1);
            a.reti(r);
        });
        let entry = m.load_code(&code).unwrap();
        let got = m.call(entry, &[c.a as u32, c.b as u32], STEPS).unwrap();
        assert_eq!(
            got != 0,
            c.taken,
            "{:?}.{:?}({:#x}, {:#x})",
            c.cond,
            c.ty,
            c.a,
            c.b
        );
    }
}

#[test]
fn memory_and_loop() {
    // Sum n ints from an array.
    let code = generate("%p%i", Leaf::Yes, |a| {
        let (p, n) = (a.arg(0), a.arg(1));
        let sum = a.getreg(RegClass::Temp).unwrap();
        let i = a.getreg(RegClass::Temp).unwrap();
        let t = a.getreg(RegClass::Temp).unwrap();
        a.seti(sum, 0);
        a.seti(i, 0);
        let top = a.genlabel();
        let done = a.genlabel();
        a.label(top);
        a.bgei(i, n, done);
        a.lshii(t, i, 2);
        a.ldi(t, p, t);
        a.addi(sum, sum, t);
        a.addii(i, i, 1);
        a.jmp(top);
        a.label(done);
        a.reti(sum);
    });
    let mut m = Machine::new(1 << 20);
    let entry = m.load_code(&code).unwrap();
    let addr = m.alloc(64, 8).unwrap();
    for k in 0..10u32 {
        m.write(addr + 4 * k, &(k * 3).to_le_bytes()).unwrap();
    }
    assert_eq!(m.call(entry, &[addr, 10], STEPS).unwrap(), 135);
}

#[test]
fn subword_memory() {
    let code = generate("%p%p", Leaf::Yes, |a| {
        let (src, dst) = (a.arg(0), a.arg(1));
        let t = a.getreg(RegClass::Temp).unwrap();
        a.ldci(t, src, 0);
        a.stci(t, dst, 0);
        a.lduci(t, src, 1);
        a.stuci(t, dst, 1);
        a.ldsi(t, src, 2);
        a.stsi(t, dst, 2);
        a.ldusi(t, src, 4);
        a.stusi(t, dst, 4);
        a.retv();
    });
    let mut m = Machine::new(1 << 20);
    let entry = m.load_code(&code).unwrap();
    let src = m.alloc(8, 8).unwrap();
    let dst = m.alloc(8, 8).unwrap();
    m.write(src, &[0x80, 0xff, 0x12, 0x92, 0xbe, 0xef, 0, 0])
        .unwrap();
    m.call(entry, &[src, dst], STEPS).unwrap();
    assert_eq!(m.read(dst, 6).unwrap(), m.read(src, 6).unwrap());
}

#[test]
fn doubles_and_conversions() {
    let code = generate("%d%d", Leaf::Yes, |a| {
        let (x, y) = (a.arg(0), a.arg(1));
        let t = a.getreg_f(RegClass::Temp).unwrap();
        a.muld(t, x, y);
        a.addd(t, t, x);
        a.retd(t);
    });
    let mut m = Machine::new(1 << 20);
    let entry = m.load_code(&code).unwrap();
    assert_eq!(m.call_f64(entry, &[3.0, 4.0], STEPS).unwrap(), 15.0);

    let code = generate("%i", Leaf::Yes, |a| {
        let x = a.arg(0);
        let f = a.getreg_f(RegClass::Temp).unwrap();
        let h = a.getreg_f(RegClass::Temp).unwrap();
        a.cvi2d(f, x);
        a.setd(h, 0.5);
        a.muld(f, f, h);
        let r = a.getreg(RegClass::Temp).unwrap();
        a.cvd2i(r, f);
        a.reti(r);
    });
    let entry = m.load_code(&code).unwrap();
    assert_eq!(m.call(entry, &[10], STEPS).unwrap(), 5);
    assert_eq!(m.call(entry, &[(-9i32) as u32], STEPS).unwrap() as i32, -4);
}

#[test]
fn float_branches() {
    let code = generate("%d%d", Leaf::Yes, |a| {
        let (x, y) = (a.arg(0), a.arg(1));
        let yes = a.genlabel();
        let r = a.getreg(RegClass::Temp).unwrap();
        a.bltd(x, y, yes);
        a.seti(r, 0);
        a.reti(r);
        a.label(yes);
        a.seti(r, 1);
        a.reti(r);
    });
    let mut m = Machine::new(1 << 20);
    let entry = m.load_code(&code).unwrap();
    m.call_f64(entry, &[1.0, 2.0], STEPS).unwrap();
    // %i0 of the halted frame holds the int result.
    m.call(entry, &[], STEPS).unwrap(); // smoke: runs to completion
    let mut m = Machine::new(1 << 20);
    let entry = m.load_code(&code).unwrap();
    let b = v(&mut m, entry, 1.0, 2.0);
    assert_eq!(b, 1);
    let b = v(&mut m, entry, 2.0, 1.0);
    assert_eq!(b, 0);
    fn v(m: &mut Machine, entry: u32, x: f64, y: f64) -> u32 {
        let bx = x.to_bits();
        let by = y.to_bits();
        m.fregs[2] = bx as u32;
        m.fregs[3] = (bx >> 32) as u32;
        m.fregs[4] = by as u32;
        m.fregs[5] = (by >> 32) as u32;
        m.call(entry, &[], STEPS).unwrap()
    }
}

#[test]
fn generated_calls_and_window_persistence() {
    let mut m = Machine::new(1 << 20);
    // Callee trashes every %o temp.
    let clobber = generate("", Leaf::Yes, |a| {
        for t in 8u8..14 {
            a.seti(Reg::int(t), -1);
        }
        a.retv();
    });
    let clobber_entry = m.load_code(&clobber).unwrap();
    let caller = generate("%i", Leaf::No, |a| {
        let x = a.arg(0);
        // Window-local register: preserved with zero save cost.
        let keep = a.getreg(RegClass::Persistent).unwrap();
        assert_eq!(keep.num(), 16, "%l0");
        a.movi(keep, x);
        let sig = Sig::parse("").unwrap();
        let cf = a.call_begin(&sig);
        a.call_end(cf, JumpTarget::Abs(u64::from(clobber_entry)), None);
        a.reti(keep);
    });
    let entry = m.load_code(&caller).unwrap();
    assert_eq!(m.call(entry, &[777], STEPS).unwrap(), 777);
}

#[test]
fn marshaled_call_with_args() {
    let mut m = Machine::new(1 << 20);
    let callee = generate("%i%i", Leaf::Yes, |a| {
        let (x, y) = (a.arg(0), a.arg(1));
        a.muli(x, x, y);
        a.reti(x);
    });
    let callee_entry = m.load_code(&callee).unwrap();
    let caller = generate("%i", Leaf::No, |a| {
        let x = a.arg(0);
        let sig = Sig::parse("%i%i:%i").unwrap();
        let mut cf = a.call_begin(&sig);
        a.call_arg(&mut cf, 0, Ty::I, x);
        let seven = a.getreg(RegClass::Temp).unwrap();
        a.seti(seven, 7);
        a.call_arg(&mut cf, 1, Ty::I, seven);
        let r = a.getreg(RegClass::Temp).unwrap();
        a.call_end(cf, JumpTarget::Abs(u64::from(callee_entry)), Some(r));
        a.addii(r, r, 1);
        a.reti(r);
    });
    let entry = m.load_code(&caller).unwrap();
    assert_eq!(m.call(entry, &[6], STEPS).unwrap(), 43);
}

#[test]
fn recursion_through_windows() {
    // fact(n) via self-call: windows nest and unwind.
    let mut mem = vec![0u8; 16 * 1024];
    let mut m = Machine::new(1 << 20);
    // Two-pass: generate once at a dummy base to learn nothing — instead
    // generate the self-call against the known load address: load_code
    // appends at a deterministic offset.
    let entry_guess = {
        let probe = generate("%l", Leaf::Yes, |a| a.retv());
        let mut mprobe = Machine::new(1 << 20);
        mprobe.load_code(&probe).unwrap()
    };
    let mut a = Assembler::<Sparc>::lambda(&mut mem, "%i", Leaf::No).unwrap();
    let n = a.arg(0);
    let base = a.genlabel();
    let keep = a.getreg(RegClass::Persistent).unwrap();
    a.movi(keep, n);
    a.bleii(n, 1, base);
    let t = a.getreg(RegClass::Temp).unwrap();
    a.subii(t, n, 1);
    let sig = Sig::parse("%i:%i").unwrap();
    let mut cf = a.call_begin(&sig);
    a.call_arg(&mut cf, 0, Ty::I, t);
    let res = a.getreg(RegClass::Temp).unwrap();
    a.call_end(cf, JumpTarget::Abs(u64::from(entry_guess)), Some(res));
    a.muli(keep, keep, res);
    a.reti(keep);
    a.label(base);
    let one = a.getreg(RegClass::Temp).unwrap();
    a.seti(one, 1);
    a.reti(one);
    let fin = a.end().unwrap();
    mem.truncate(fin.len);
    let entry = m.load_code(&mem).unwrap();
    assert_eq!(entry, entry_guess, "deterministic load address");
    assert_eq!(m.call(entry, &[6], STEPS).unwrap(), 720);
    assert_eq!(m.call(entry, &[12], STEPS).unwrap(), 479001600);
}

#[test]
fn sqrt_extension_native() {
    let code = generate("%d", Leaf::Yes, |a| {
        let x = a.arg(0);
        let t = a.getreg_f(RegClass::Temp).unwrap();
        a.sqrtd(x, x, t);
        a.retd(x);
    });
    let mut m = Machine::new(1 << 20);
    let entry = m.load_code(&code).unwrap();
    assert_eq!(m.call_f64(entry, &[9.0], STEPS).unwrap(), 3.0);
}

#[test]
fn disassembler_names_generated_instructions() {
    let code = generate("%i%i", Leaf::Yes, |a| {
        let (x, y) = (a.arg(0), a.arg(1));
        a.addi(x, x, y);
        a.divi(x, x, y);
        a.reti(x);
    });
    let text = vcode_sim::sparc::disasm_all(&code);
    for needle in ["save", "add", "wr", "sdiv", "jmpl", "restore"] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
}
