//! Model programs for vcode's concurrency protocols.
//!
//! Each function in [`programs`] is a small, bounded concurrent program
//! written against the *production* types (`vcode::rcu::Rcu`,
//! `vcode::cache::LambdaCache`) or a faithful protocol mirror
//! (tier-latch, quarantine gate), with its core invariant expressed as
//! an in-program `assert!`. Running one under
//! [`Explorer::exhaustive`]/[`Explorer::random`] explores its
//! interleavings deterministically; any assertion failure, deadlock or
//! livelock comes back as a [`Violation`] carrying a replayable
//! schedule.
//!
//! The checker's teeth are proven mutation-style (see
//! `tests/models.rs`): weakening the RCU publication barrier
//! ([`Injection::RcuRelaxedPublication`]) and dropping the cache's
//! build-completion notify ([`Injection::DropCacheNotify`]) must each
//! be *caught* by the explorer, with a schedule that replays.

pub use vcode::vsync::model::{
    parse_schedule, render_schedule, Choice, Explorer, Options, Report, Violation,
};
pub use vcode::vsync::Injection;

/// The model programs. Every function is a complete, self-contained
/// concurrent program meant to run under the [`Explorer`]; invariants
/// are in-program assertions.
pub mod programs {
    use vcode::cache::{CacheError, CacheKey, LambdaCache};
    use vcode::rcu::Rcu;
    use vcode::vsync::{
        self, Arc, AtomicBool, AtomicU64, Condvar, Duration, Instant, Mutex, OnceLock, Ordering,
    };
    use vcode::TargetId;

    fn key(h: u64) -> CacheKey {
        CacheKey::from_client_hash(TargetId::Mips, h)
    }

    /// **No use-after-retire.** A reader enters a read-side critical
    /// section and holds the guard across another facade op (as
    /// `DpfReader::classify_batch` does) while the writer publishes a
    /// new generation and reclaims. The `ReadGuard` deref trips the
    /// freed-canary assertion if reclaim ever frees a generation a
    /// live reader still holds — which requires the SeqCst announce
    /// barrier ([`Injection::RcuRelaxedPublication`] breaks it).
    pub fn rcu_no_use_after_retire() {
        let rcu: Arc<Rcu<u64>> = Arc::new(Rcu::new(0));
        let slot = rcu.register_slot();
        let touch = Arc::new(AtomicU64::new(0));
        let reader = {
            let rcu = Arc::clone(&rcu);
            let touch = Arc::clone(&touch);
            vsync::thread::spawn(move || {
                let g = rcu.enter(&slot);
                // A facade op with the guard held: the read-side
                // critical section spans a schedule point, like the
                // real classifier's per-batch counter bump.
                touch.fetch_add(1, Ordering::Relaxed);
                *g
            })
        };
        rcu.publish(1);
        let v = reader.join().expect("reader panicked");
        assert!(v <= 1, "reader saw a value never published: {v}");
    }

    /// **Removed ids are unmatchable after `remove` returns.** Models
    /// `DpfService::remove`: the writer publishes a generation without
    /// the filter (here: `false`), then sets a "remove returned" flag.
    /// Any reader that observes the flag and *then* enters must see the
    /// new generation.
    pub fn rcu_removed_id_unmatchable() {
        let rcu: Arc<Rcu<bool>> = Arc::new(Rcu::new(true));
        let slot = rcu.register_slot();
        let removed = Arc::new(AtomicBool::new(false));
        let reader = {
            let rcu = Arc::clone(&rcu);
            let removed = Arc::clone(&removed);
            vsync::thread::spawn(move || {
                if removed.load(Ordering::SeqCst) {
                    let g = rcu.enter(&slot);
                    assert!(!*g, "removed id still matchable after remove returned");
                }
            })
        };
        rcu.publish(false); // remove the filter
        removed.store(true, Ordering::SeqCst); // "remove() has returned"
        rcu.reclaim();
        reader.join().expect("reader panicked");
    }

    /// **Exactly one build per key.** Two threads race
    /// `get_or_insert_with` on the same key; the Building-slot protocol
    /// must elect exactly one builder and hand both callers the same
    /// value.
    pub fn cache_exactly_one_build() {
        let cache: Arc<LambdaCache<u64>> = Arc::new(LambdaCache::new(4));
        let built = Arc::new(AtomicU64::new(0));
        let racer = {
            let cache = Arc::clone(&cache);
            let built = Arc::clone(&built);
            vsync::thread::spawn(move || {
                *cache
                    .get_or_insert_with(key(0xBEEF), || {
                        built.fetch_add(1, Ordering::SeqCst);
                        Ok::<_, ()>(Arc::new(7u64))
                    })
                    .expect("infallible builder")
            })
        };
        let a = *cache
            .get_or_insert_with(key(0xBEEF), || {
                built.fetch_add(1, Ordering::SeqCst);
                Ok::<_, ()>(Arc::new(7u64))
            })
            .expect("infallible builder");
        let b = racer.join().expect("racer panicked");
        assert_eq!((a, b), (7, 7), "waiter saw a value the builder never made");
        assert_eq!(
            built.load(Ordering::SeqCst),
            1,
            "the Building slot admitted more than one builder for one key"
        );
    }

    /// **`CacheError::Stalled` via the virtual clock.** One thread
    /// claims the build slot and hangs (a 50 ms model sleep); a second
    /// thread, gated to arrive only after the claim, waits with a
    /// 10 ms bound. The virtual clock fires the shorter deadline
    /// first, so the waiter must come back with `Stalled` — in every
    /// interleaving — while the hung builder still completes once its
    /// sleep expires.
    pub fn cache_stalled_path() {
        let cache: Arc<LambdaCache<u64>> = Arc::new(LambdaCache::new(4));
        let claimed = Arc::new((Mutex::new(false), Condvar::new()));
        let builder = {
            let cache = Arc::clone(&cache);
            let claimed = Arc::clone(&claimed);
            vsync::thread::spawn(move || {
                cache
                    .get_or_insert_with(key(0xD00D), || {
                        // Announce the claim, then hang: the slot stays
                        // Building for 50 virtual ms.
                        let (m, cv) = &*claimed;
                        *m.lock().unwrap_or_else(|e| e.into_inner()) = true;
                        cv.notify_all();
                        vsync::thread::sleep(Duration::from_millis(50));
                        Ok::<_, ()>(Arc::new(1u64))
                    })
                    .expect("infallible builder")
            })
        };
        {
            let (m, cv) = &*claimed;
            let mut g = m.lock().unwrap_or_else(|e| e.into_inner());
            while !*g {
                g = cv.wait(g).unwrap_or_else(|e| e.into_inner());
            }
        }
        let r = cache.get_or_build(
            key(0xD00D),
            || Ok::<_, ()>(Arc::new(2u64)),
            Duration::from_millis(10),
        );
        assert!(
            matches!(r, Err(CacheError::Stalled { .. })),
            "bounded waiter did not surface the stall: {r:?}"
        );
        assert_eq!(*builder.join().expect("builder panicked"), 1);
    }

    /// **Waiters wake by notify, not by timeout.** Two threads race one
    /// key; whichever loses waits on the Building slot's condvar. The
    /// builder never blocks, so the virtual clock must never advance:
    /// each caller asserts its wait took less than the stall window.
    /// Dropping the completion notify ([`Injection::DropCacheNotify`])
    /// leaves the loser parked until its timeout — a virtual-clock jump
    /// this assertion converts into a caught violation.
    pub fn cache_notify_wakes_waiters() {
        const STALL: Duration = Duration::from_millis(100);
        let cache: Arc<LambdaCache<u64>> = Arc::new(LambdaCache::new(4).with_stall_timeout(STALL));
        let step = Arc::new(AtomicU64::new(0));
        let call = |cache: &LambdaCache<u64>, step: &AtomicU64| {
            let before = Instant::now();
            let v = *cache
                .get_or_insert_with(key(0xF00D), || {
                    step.fetch_add(1, Ordering::Relaxed);
                    Ok::<_, ()>(Arc::new(3u64))
                })
                .expect("infallible builder");
            assert!(
                before.elapsed() < STALL,
                "waiter only woke via the stall timeout: the build-completion notify was lost"
            );
            v
        };
        let racer = {
            let cache = Arc::clone(&cache);
            let step = Arc::clone(&step);
            vsync::thread::spawn(move || call(&cache, &step))
        };
        let a = call(&cache, &step);
        let b = racer.join().expect("racer panicked");
        assert_eq!((a, b), (3, 3));
    }

    /// **No torn tier-up swap, and the latch fires once.** Mirrors
    /// `TieredLambda`: a shared heat counter plus a `OnceLock` latch
    /// holding a two-field payload whose halves must always agree.
    /// Every caller re-checks the latch before bumping heat; the caller
    /// that crosses the threshold installs tier 2.
    pub fn tier_latch_no_torn_swap() {
        let calls = Arc::new(AtomicU64::new(0));
        let tier2: Arc<OnceLock<Arc<(u64, u64)>>> = Arc::new(OnceLock::new());
        let builds = Arc::new(AtomicU64::new(0));
        let body = |calls: &AtomicU64, tier2: &OnceLock<Arc<(u64, u64)>>, builds: &AtomicU64| {
            for _ in 0..2 {
                if let Some(t) = tier2.get() {
                    assert_eq!(t.0, t.1, "torn tier-2 swap: payload halves disagree");
                }
                let c = calls.fetch_add(1, Ordering::SeqCst) + 1;
                if c == 2 {
                    tier2.get_or_init(|| {
                        builds.fetch_add(1, Ordering::SeqCst);
                        Arc::new((42, 42))
                    });
                }
            }
        };
        let racer = {
            let calls = Arc::clone(&calls);
            let tier2 = Arc::clone(&tier2);
            let builds = Arc::clone(&builds);
            vsync::thread::spawn(move || body(&calls, &tier2, &builds))
        };
        body(&calls, &tier2, &builds);
        racer.join().expect("racer panicked");
        let t = tier2.get().expect("threshold crossed but latch empty");
        assert_eq!(t.0, t.1);
        assert_eq!(
            builds.load(Ordering::SeqCst),
            1,
            "tier-2 built more than once"
        );
    }

    /// **At most one post-quarantine probe.** Mirrors the
    /// `CompileService::submit` gate: a quarantine record checked under
    /// its mutex (probing flag, expiry), then a build-slot claim — the
    /// check-then-act gap between releasing the quarantine lock and
    /// claiming the slot is exactly where a second probe could sneak
    /// in, and the slot CAS is what must stop it.
    pub fn quarantine_single_probe() {
        struct Gate {
            /// (probe in flight, backoff expiry in virtual ms).
            q: Mutex<(bool, u64)>,
            /// The cache's Building-slot claim (`Probe::Claimed`).
            slot: AtomicBool,
            probes: AtomicU64,
        }
        let g = Arc::new(Gate {
            q: Mutex::new((false, 0)), // backoff already expired
            slot: AtomicBool::new(false),
            probes: AtomicU64::new(0),
        });
        let submit = |g: &Gate| {
            {
                let q = g.q.lock().unwrap_or_else(|e| e.into_inner());
                if q.0 {
                    return; // Submit::InFlight
                }
                if 0 < q.1 {
                    return; // Submit::Quarantined
                }
            }
            // Backoff expired: admit at most one probe via the slot CAS.
            if g.slot
                .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                g.q.lock().unwrap_or_else(|e| e.into_inner()).0 = true;
                g.probes.fetch_add(1, Ordering::SeqCst);
            }
        };
        let t1 = {
            let g = Arc::clone(&g);
            vsync::thread::spawn(move || submit(&g))
        };
        let t2 = {
            let g = Arc::clone(&g);
            vsync::thread::spawn(move || submit(&g))
        };
        submit(&g);
        t1.join().expect("submitter panicked");
        t2.join().expect("submitter panicked");
        assert_eq!(
            g.probes.load(Ordering::SeqCst),
            1,
            "quarantine gate admitted a second probe during one backoff window"
        );
    }

    /// **Persistent-cache single writer, never-torn reads.** Two
    /// threads race to persist the same artifact fingerprint through
    /// the production [`StoreSlots`](vcode::persist::StoreSlots)
    /// protocol (exists-check → claim → re-check → publish), with the
    /// filesystem modeled as one publication cell whose swap is atomic
    /// — exactly the guarantee `rename(2)` gives the real `DiskTier`.
    /// Invariants: racing persisters publish **exactly one** artifact,
    /// and a concurrent reader never observes a torn (incomplete or
    /// mixed-byte) file. [`Injection::PersistClaimRace`] hands the
    /// claim out without recording it, so both writers win the slot
    /// and the double publication is caught.
    pub fn persist_single_writer() {
        use vcode::persist::StoreSlots;
        let slots = Arc::new(StoreSlots::new());
        // The "artifact file": swapped whole, as rename publishes it.
        let file: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
        let publishes = Arc::new(AtomicU64::new(0));
        let persister = |payload: u8| {
            let slots = Arc::clone(&slots);
            let file = Arc::clone(&file);
            let publishes = Arc::clone(&publishes);
            move || {
                // DiskTier::store's protocol, in miniature.
                if file.lock().unwrap().is_some() {
                    return;
                }
                let Some(_ticket) = slots.try_claim(0xFEED) else {
                    return;
                };
                if file.lock().unwrap().is_some() {
                    return;
                }
                // Stage the full image privately (the temp file), then
                // publish in one atomic swap (the rename).
                let staged = vec![payload; 8];
                publishes.fetch_add(1, Ordering::SeqCst);
                *file.lock().unwrap() = Some(staged);
            }
        };
        let w1 = vsync::thread::spawn(persister(0xAA));
        let w2 = vsync::thread::spawn(persister(0xBB));
        let reader = {
            let file = Arc::clone(&file);
            vsync::thread::spawn(move || {
                for _ in 0..2 {
                    if let Some(b) = file.lock().unwrap().as_ref() {
                        assert_eq!(b.len(), 8, "reader observed a torn artifact");
                        assert!(
                            b.iter().all(|&x| x == b[0]),
                            "reader observed a mixed-writer artifact"
                        );
                    }
                }
            })
        };
        w1.join().expect("writer 1 panicked");
        w2.join().expect("writer 2 panicked");
        reader.join().expect("reader panicked");
        assert_eq!(
            publishes.load(Ordering::SeqCst),
            1,
            "racing persisters must publish exactly one artifact"
        );
        assert!(
            file.lock().unwrap().is_some(),
            "the winning claim must actually publish"
        );
    }

    /// All model programs, by name — the seeded smoke run, the
    /// exhaustive CI sweep and the bench interleaving counts iterate
    /// this table.
    pub fn all() -> &'static [(&'static str, fn())] {
        &[
            ("rcu_no_use_after_retire", rcu_no_use_after_retire),
            ("rcu_removed_id_unmatchable", rcu_removed_id_unmatchable),
            ("cache_exactly_one_build", cache_exactly_one_build),
            ("cache_stalled_path", cache_stalled_path),
            ("cache_notify_wakes_waiters", cache_notify_wakes_waiters),
            ("tier_latch_no_torn_swap", tier_latch_no_torn_swap),
            ("quarantine_single_probe", quarantine_single_probe),
            ("persist_single_writer", persist_single_writer),
        ]
    }
}
