//! Explorer runs over the model programs: quick seeded smoke, the
//! `CacheError::Stalled` virtual-clock regression, the mutation
//! (checker-teeth) tests, and the full exhaustive sweeps behind
//! `--ignored` (run by the dedicated `scripts/ci.sh` stage).

use mcheck::{programs, Explorer, Injection, Options};

fn injected(i: Injection) -> Explorer {
    Explorer::with_options(Options {
        injections: vec![i],
        ..Options::default()
    })
}

/// Every model program, a few hundred seeded random schedules each:
/// the fast always-on sanity pass (the 10k-schedule tier-1 smoke lives
/// in the workspace root's `tests/mcheck_smoke.rs`).
#[test]
fn seeded_random_sanity_all_programs() {
    for (i, (name, f)) in programs::all().iter().enumerate() {
        let report = Explorer::new().random(0x5EED ^ (i as u64), 200, f);
        if let Some(v) = report.violation {
            panic!("model program {name} violated under random schedules:\n{v}");
        }
    }
}

/// Satellite regression: the `LambdaCache` bounded Building-slot wait
/// runs on the facade's virtual clock, so the `CacheError::Stalled`
/// path is deterministic under the model scheduler — the program
/// asserts `Stalled` in *every* interleaving.
#[test]
fn cache_stalled_path_is_deterministic_on_virtual_clock() {
    let report = Explorer::new().exhaustive(50_000, programs::cache_stalled_path);
    assert!(report.executions > 0);
    report.assert_ok();
}

/// Checker teeth, mutation 1: weakening the RCU reader-announce
/// barrier from SeqCst to Relaxed must be caught (the writer's slot
/// scan misses the buffered announce and reclaims a generation a live
/// reader holds), and the reported schedule must replay to the same
/// violation. Seeded random walks find this one: the violating
/// interleaving flips an *early* schedule decision, which tail-first
/// DFS only reaches deep into the tree (the walks are deterministic,
/// so this test is too).
#[test]
fn mutation_relaxed_rcu_publication_is_caught() {
    let explorer = injected(Injection::RcuRelaxedPublication);
    let report = (1..=8)
        .map(|seed| explorer.random(seed, 2_000, programs::rcu_no_use_after_retire))
        .find(|r| r.violation.is_some())
        .expect("no random walk seed 1..=8 caught the Relaxed-announce mutation");
    let v = report.expect_violation("RCU use-after-retire under a Relaxed announce");
    assert!(
        v.message.contains("use-after-retire"),
        "unexpected violation: {v}"
    );
    // The trace is replayable: the same schedule, same injection, same
    // program reproduces the same violation deterministically.
    let replay = explorer.replay(&v.schedule, programs::rcu_no_use_after_retire);
    let rv = replay.expect_violation("replay of the recorded schedule");
    assert_eq!(rv.message, v.message);
}

/// Checker teeth, mutation 2: dropping the cache's build-completion
/// notify must be caught (the losing racer only wakes via its stall
/// timeout, observed as a virtual-clock jump), with a replayable
/// schedule.
#[test]
fn mutation_dropped_cache_notify_is_caught() {
    let explorer = injected(Injection::DropCacheNotify);
    let report = explorer.exhaustive(100_000, programs::cache_notify_wakes_waiters);
    let v = report.expect_violation("lost wakeup under a dropped notify");
    assert!(
        v.message.contains("notify was lost"),
        "unexpected violation: {v}"
    );
    let replay = explorer.replay(&v.schedule, programs::cache_notify_wakes_waiters);
    let rv = replay.expect_violation("replay of the recorded schedule");
    assert_eq!(rv.message, v.message);
}

/// Sanity: on trunk (no injection) the two mutation targets are clean
/// under bounded DFS *and* under the exact random walks that catch the
/// mutations — the violations come from the weakenings, not the
/// programs.
#[test]
fn mutation_targets_are_clean_on_trunk() {
    Explorer::new()
        .exhaustive(30_000, programs::rcu_no_use_after_retire)
        .assert_ok();
    for seed in 1..=8 {
        Explorer::new()
            .random(seed, 2_000, programs::rcu_no_use_after_retire)
            .assert_ok();
    }
    Explorer::new()
        .exhaustive(30_000, programs::cache_notify_wakes_waiters)
        .assert_ok();
}

/// Checker teeth, mutation 3: handing out a persistence claim without
/// recording it ([`Injection::PersistClaimRace`]) lets both racing
/// writers win the single-writer slot and publish — the model must
/// catch the double publication, and the schedule must replay.
#[test]
fn mutation_persist_claim_race_is_caught() {
    let explorer = injected(Injection::PersistClaimRace);
    let report = explorer.exhaustive(100_000, programs::persist_single_writer);
    let v = report.expect_violation("double publication under an unrecorded claim");
    assert!(
        v.message.contains("exactly one artifact"),
        "unexpected violation: {v}"
    );
    let replay = explorer.replay(&v.schedule, programs::persist_single_writer);
    let rv = replay.expect_violation("replay of the recorded schedule");
    assert_eq!(rv.message, v.message);
}

/// The persistence protocol is clean on trunk under the same bounded
/// DFS that catches its mutation.
#[test]
fn persist_single_writer_is_clean_on_trunk() {
    Explorer::new()
        .exhaustive(100_000, programs::persist_single_writer)
        .assert_ok();
}

// -- full exhaustive sweeps (scripts/ci.sh runs these via --ignored) --

fn sweep(name: &str, f: fn()) {
    let report = Explorer::new().exhaustive(400_000, f);
    println!(
        "{name}: {} interleavings explored, {} steps, complete={}",
        report.executions, report.steps, report.complete
    );
    if let Some(v) = report.violation {
        panic!("model program {name} violated:\n{v}");
    }
}

#[test]
#[ignore = "full exhaustive sweep; run via scripts/ci.sh (cargo test -p mcheck -- --ignored)"]
fn exhaustive_rcu_models() {
    sweep("rcu_no_use_after_retire", programs::rcu_no_use_after_retire);
    sweep(
        "rcu_removed_id_unmatchable",
        programs::rcu_removed_id_unmatchable,
    );
}

#[test]
#[ignore = "full exhaustive sweep; run via scripts/ci.sh (cargo test -p mcheck -- --ignored)"]
fn exhaustive_cache_models() {
    sweep("cache_exactly_one_build", programs::cache_exactly_one_build);
    sweep("cache_stalled_path", programs::cache_stalled_path);
    sweep(
        "cache_notify_wakes_waiters",
        programs::cache_notify_wakes_waiters,
    );
}

#[test]
#[ignore = "full exhaustive sweep; run via scripts/ci.sh (cargo test -p mcheck -- --ignored)"]
fn exhaustive_tier_and_quarantine_models() {
    sweep("tier_latch_no_torn_swap", programs::tier_latch_no_torn_swap);
    sweep("quarantine_single_probe", programs::quarantine_single_probe);
}

#[test]
#[ignore = "full exhaustive sweep; run via scripts/ci.sh (cargo test -p mcheck -- --ignored)"]
fn exhaustive_persist_models() {
    sweep("persist_single_writer", programs::persist_single_writer);
}
