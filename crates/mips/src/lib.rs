//! # vcode-mips — MIPS-I backend for vcode
//!
//! The paper's primary platform: the DECstation's R3000 (MIPS-I,
//! little-endian). This port covers the full VCODE core including the
//! machine's quirks the paper discusses:
//!
//! - **branch delay slots** — every branch is followed by a slot
//!   instruction; the backend fills it with `nop` unless the client
//!   schedules it via `schedule_delay` (paper §5.3);
//! - **load delay** — the word after a load may not use the result on
//!   MIPS-I; loads are padded with a `nop` unless the client promises
//!   distance via `raw_load`;
//! - **16-bit immediates** — constants that don't fit are synthesized
//!   with `lui`/`ori` through the assembler temporary `$at` (paper §1's
//!   "boundary conditions" made safe);
//! - **HI/LO multiply/divide** — `mult`/`div` plus `mflo`/`mfhi`.
//!
//! Generated code is executed by the `vcode-sim` crate's MIPS simulator.
//!
//! ## Conventions
//!
//! 32-bit word: `l`, `ul` and `p` fold to `i`/`u` (paper Table 1).
//! Arguments: up to four integers in `$a0`–`$a3`, up to two
//! floats/doubles in `$f12`/`$f14`. Scratch: `$at`, `$v1`, `$t8`, `$t9`,
//! `$f0`–`$f3`. Doubles live in even/odd FP register pairs (MIPS-I).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod encode;

use encode::{fcmp, r, FMT_D, FMT_S, FMT_W};
use vcode::asm::Asm;
use vcode::label::{Fixup, FixupTarget, Label};
use vcode::op::{BinOp, Cond, Imm, UnOp};
use vcode::reg::{Reg, RegDesc, RegFile};
use vcode::target::{BrOperand, CallFrame, JumpTarget, Leaf, Off, StackSlot, Target};
use vcode::ty::{Sig, Ty};
use vcode::{Bank, Error};

/// The MIPS-I target.
#[derive(Debug, Clone, Copy)]
pub enum Mips {}

/// Primary integer scratch (`$at`, the assembler temporary).
const AT: u8 = r::AT;
/// Secondary integer scratch (`$v1`).
const V1: u8 = r::V1;
/// Call-target scratch (`$t9`).
const T9: u8 = r::T9;
/// Floating-point scratch pair (`$f2`/`$f3`).
const F_SCRATCH: u8 = 2;

static INT_REGS: [RegDesc; 25] = vcode::regdescs![int:
    8, CallerSaved, "t0";
    9, CallerSaved, "t1";
    10, CallerSaved, "t2";
    11, CallerSaved, "t3";
    12, CallerSaved, "t4";
    13, CallerSaved, "t5";
    14, CallerSaved, "t6";
    15, CallerSaved, "t7";
    7, Arg(3), "a3";
    6, Arg(2), "a2";
    5, Arg(1), "a1";
    4, Arg(0), "a0";
    16, CalleeSaved, "s0";
    17, CalleeSaved, "s1";
    18, CalleeSaved, "s2";
    19, CalleeSaved, "s3";
    20, CalleeSaved, "s4";
    21, CalleeSaved, "s5";
    22, CalleeSaved, "s6";
    23, CalleeSaved, "s7";
    1, Reserved, "at";
    2, Reserved, "v0";
    3, Reserved, "v1";
    24, Reserved, "t8";
    25, Reserved, "t9";
];

static FLT_REGS: [RegDesc; 16] = vcode::regdescs![flt:
    4, CallerSaved, "f4";
    6, CallerSaved, "f6";
    8, CallerSaved, "f8";
    10, CallerSaved, "f10";
    16, CallerSaved, "f16";
    18, CallerSaved, "f18";
    14, Arg(1), "f14";
    12, Arg(0), "f12";
    20, CalleeSaved, "f20";
    22, CalleeSaved, "f22";
    24, CalleeSaved, "f24";
    26, CalleeSaved, "f26";
    28, CalleeSaved, "f28";
    30, CalleeSaved, "f30";
    0, Reserved, "f0";
    2, Reserved, "f2";
];

static REGFILE: RegFile = RegFile {
    int: &INT_REGS,
    flt: &FLT_REGS,
    hard_temps: &[Reg::int(8), Reg::int(9), Reg::int(10), Reg::int(11)],
    hard_saved: &[Reg::int(16), Reg::int(17), Reg::int(18), Reg::int(19)],
    sp: Reg::int(r::SP),
    fp: Reg::int(r::FP),
    zero: Some(Reg::int(r::ZERO)),
};

/// Stack save-area layout (sp-relative): `ra` at 0, `$s0`–`$s7` at
/// 4..36, FP pairs 8-aligned at 40..88. Locals start at 88.
const RA_SLOT: i32 = 0;
const S_SLOTS: i32 = 4;
const F_SLOTS: i32 = 40;
const SAVE_AREA: i32 = 88;
/// Callee-saved FP pairs in save-slot order.
const F_CALLEE: [u8; 6] = [20, 22, 24, 26, 28, 30];

/// Fixup kind: patch the low 16 bits with the branch word displacement.
const FIX_BR16: u8 = 0;

fn is_flt(ty: Ty) -> bool {
    ty.is_float()
}

impl Mips {
    /// Emits one branch instruction whose displacement will be patched,
    /// plus the delay-slot `nop` unless the client is scheduling it.
    fn branch(a: &mut Asm<'_>, l: Label, emit: impl FnOnce(&mut Asm<'_>)) {
        a.fixup_here(FixupTarget::Label(l), FIX_BR16);
        emit(a);
        if !a.manual_delay {
            encode::nop(&mut a.buf);
        }
    }

    /// Branch-always (`beq $0, $0`) with delay handling.
    fn goto(a: &mut Asm<'_>, l: Label) {
        Self::branch(a, l, |a| encode::beq(&mut a.buf, r::ZERO, r::ZERO, 0));
    }

    /// Pads the MIPS-I load delay unless a `raw_load` is in progress.
    fn load_delay(a: &mut Asm<'_>) {
        if !a.raw_load {
            encode::nop(&mut a.buf);
        }
    }

    /// Resolves a VCODE memory operand to `(base, imm16)` using `$at`
    /// when the offset is a register or does not fit 16 bits.
    fn mem(a: &mut Asm<'_>, base: Reg, off: Off) -> (u8, i16) {
        match off {
            Off::I(d) => match i16::try_from(d) {
                Ok(d16) => (base.num(), d16),
                Err(_) => {
                    encode::li(&mut a.buf, AT, d as u32);
                    encode::addu(&mut a.buf, AT, base.num(), AT);
                    (AT, 0)
                }
            },
            Off::R(idx) => {
                encode::addu(&mut a.buf, AT, base.num(), idx.num());
                (AT, 0)
            }
        }
    }

    /// Loads a raw 32-bit pattern into an FP register via `$at`.
    fn load_fp_bits(a: &mut Asm<'_>, fd: u8, bits: u32) {
        if bits == 0 {
            encode::mtc1(&mut a.buf, r::ZERO, fd);
        } else {
            encode::li(&mut a.buf, AT, bits);
            encode::mtc1(&mut a.buf, AT, fd);
        }
    }

    fn fmt(ty: Ty) -> u8 {
        if ty == Ty::D {
            FMT_D
        } else {
            FMT_S
        }
    }
}

/// Immediate-form fallback: the constant does not fit the immediate
/// field, so it is synthesized in `$at` (paper §1's "boundary conditions"
/// handled centrally). Out of line so the hot arms of `emit_binop_imm`
/// fold into each `*ii` call site.
#[inline(never)]
fn binop_imm_slow(a: &mut Asm<'_>, op: BinOp, ty: Ty, rd: Reg, rs: Reg, imm32: i32) {
    encode::li(&mut a.buf, AT, imm32 as u32);
    Mips::emit_binop(a, op, ty, rd, rs, Reg::int(AT));
}

impl Target for Mips {
    const NAME: &'static str = "mips";
    const WORD_BITS: u32 = 32;
    const BRANCH_DELAY_SLOTS: u32 = 1;
    const LOAD_DELAY_CYCLES: u32 = 1;
    // ra + 8 s-regs + 6 FP pairs (2 swc1 each) = 21 reserved instructions.
    const MAX_SAVE_BYTES: usize = (1 + 8 + 12) * 4;
    const CHECKS: vcode::TargetChecks = vcode::TargetChecks {
        word_bits: Self::WORD_BITS,
        insn_align: 4,
        branch_delay_slots: Self::BRANCH_DELAY_SLOTS,
        load_delay_cycles: Self::LOAD_DELAY_CYCLES,
        // $at (instruction synthesis), $v0/$v1 (return), $t8/$t9
        // (scratch for large immediates and indirect calls).
        reserved_int: &[1, 2, 3, 24, 25],
        // $f0 (return) and $f2 (synthesis scratch).
        reserved_flt: &[0, 2],
    };

    fn regfile() -> &'static RegFile {
        &REGFILE
    }

    fn begin(a: &mut Asm<'_>, sig: &Sig, _leaf: Leaf) -> Result<Vec<Reg>, Error> {
        // addiu sp, sp, -FRAME; imm16 patched at `end`.
        a.ts.frame_fix = a.buf.len();
        encode::addiu(&mut a.buf, r::SP, r::SP, 0);
        let start = a.buf.reserve(Self::MAX_SAVE_BYTES, 0);
        a.ts.save_area = (start, a.buf.len());
        let mut args = Vec::with_capacity(sig.args().len());
        let (mut ni, mut nf) = (0u8, 0u8);
        for &ty in sig.args() {
            if is_flt(ty) {
                if nf >= 2 {
                    return Err(Error::TooManyArgs {
                        requested: sig.args().len(),
                        max: 2,
                    });
                }
                let reg = Reg::flt(12 + nf * 2);
                a.ra.take(reg);
                args.push(reg);
                nf += 1;
            } else {
                if ni >= 4 {
                    return Err(Error::TooManyArgs {
                        requested: sig.args().len(),
                        max: 4,
                    });
                }
                let reg = Reg::int(4 + ni);
                a.ra.take(reg);
                args.push(reg);
                ni += 1;
            }
        }
        Ok(args)
    }

    fn local(a: &mut Asm<'_>, ty: Ty) -> StackSlot {
        let size = ty.size_bytes(32);
        let start = a.locals_bytes.div_ceil(size) * size;
        a.locals_bytes = start + size;
        StackSlot {
            base: Reg::int(r::SP),
            off: SAVE_AREA + start as i32,
            ty,
        }
    }

    #[inline]
    fn emit_ret(a: &mut Asm<'_>, val: Option<(Ty, Reg)>) {
        match val {
            Some((Ty::F, v)) => encode::fp_mov(&mut a.buf, FMT_S, 0, v.num()),
            Some((Ty::D, v)) => encode::fp_mov(&mut a.buf, FMT_D, 0, v.num()),
            Some((_, v)) => encode::or(&mut a.buf, r::V0, v.num(), r::ZERO),
            None => {}
        }
        a.ret_sites.push(a.buf.len());
        let l = a.epilogue;
        Self::goto(a, l);
    }

    fn end(a: &mut Asm<'_>) -> Result<(), Error> {
        let used_s = a.ra.callee_used(Bank::Int);
        let used_f = a.ra.callee_used(Bank::Flt);
        let leaf = matches!(a.leaf, Leaf::Yes);
        // Fill the reserved prologue save area (paper §5.2): saves are
        // only known now.
        let (start, end) = a.ts.save_area;
        let mut at = start;
        let mut put = |a: &mut Asm<'_>, word: u32| {
            a.buf.patch_u32(at, word);
            at += 4;
        };
        if !leaf {
            put(a, encode::itype(0x2b, r::SP, r::RA, RA_SLOT as u16)); // sw ra
        }
        for (k, s) in (16u8..24).enumerate() {
            if used_s & (1 << s) != 0 {
                let off = (S_SLOTS + 4 * k as i32) as u16;
                put(a, encode::itype(0x2b, r::SP, s, off));
            }
        }
        for (j, &f) in F_CALLEE.iter().enumerate() {
            if used_f & (1 << f) != 0 {
                let off = F_SLOTS + 8 * j as i32;
                put(a, encode::itype(0x39, r::SP, f, off as u16));
                put(a, encode::itype(0x39, r::SP, f + 1, (off + 4) as u16));
            }
        }
        // Skip the unused tail of the reserved area (zero-filled = nops)
        // with a branch-always so calls don't execute a run of nops. The
        // branch's delay slot is the first skipped nop.
        let rest_words = (end - at) / 4;
        if rest_words >= 3 {
            let disp = (rest_words - 2) as u16; // from the delay slot to `end`
            a.buf
                .patch_u32(at, encode::itype(0x04, r::ZERO, r::ZERO, disp));
        }
        // Backpatch the activation-record size.
        let frame = (SAVE_AREA as usize + a.locals_bytes).div_ceil(8) * 8;
        let old = a.buf.read_u32(a.ts.frame_fix);
        a.buf.patch_u32(
            a.ts.frame_fix,
            (old & 0xffff_0000) | ((-(frame as i32)) as u16 as u32),
        );
        // Deferred epilogue.
        let here = a.buf.len();
        a.labels.bind(a.epilogue, here);
        if !leaf {
            encode::lw(&mut a.buf, r::RA, r::SP, RA_SLOT as i16);
        }
        for (k, s) in (16u8..24).enumerate() {
            if used_s & (1 << s) != 0 {
                encode::lw(&mut a.buf, s, r::SP, (S_SLOTS + 4 * k as i32) as i16);
            }
        }
        for (j, &f) in F_CALLEE.iter().enumerate() {
            if used_f & (1 << f) != 0 {
                let off = (F_SLOTS + 8 * j as i32) as i16;
                encode::lwc1(&mut a.buf, f, r::SP, off);
                encode::lwc1(&mut a.buf, f + 1, r::SP, off + 4);
            }
        }
        encode::addiu(&mut a.buf, r::SP, r::SP, frame as i16);
        encode::jr(&mut a.buf, r::RA);
        encode::nop(&mut a.buf); // branch delay
        Ok(())
    }

    #[inline]
    fn patch(a: &mut Asm<'_>, fixup: Fixup, dest: usize) {
        // Branch displacement is in words, relative to the delay slot.
        let disp = (dest as i64 - (fixup.at as i64 + 4)) / 4;
        if i16::try_from(disp).is_err() {
            a.record_err(Error::BranchOutOfRange { at: fixup.at, dest });
            return;
        }
        let old = a.buf.read_u32(fixup.at);
        a.buf
            .patch_u32(fixup.at, (old & 0xffff_0000) | (disp as u16 as u32));
    }

    #[inline(always)]
    fn emit_binop(a: &mut Asm<'_>, op: BinOp, ty: Ty, rd: Reg, rs1: Reg, rs2: Reg) {
        if is_flt(ty) {
            let funct = match op {
                BinOp::Add => 0,
                BinOp::Sub => 1,
                BinOp::Mul => 2,
                BinOp::Div => 3,
                _ => {
                    a.record_err(Error::BadOperands("float binop"));
                    return;
                }
            };
            encode::fp_arith(
                &mut a.buf,
                Self::fmt(ty),
                funct,
                rd.num(),
                rs1.num(),
                rs2.num(),
            );
            return;
        }
        let (rd, rs1, rs2) = (rd.num(), rs1.num(), rs2.num());
        let signed = ty.is_signed();
        match op {
            BinOp::Add => encode::addu(&mut a.buf, rd, rs1, rs2),
            BinOp::Sub => encode::subu(&mut a.buf, rd, rs1, rs2),
            BinOp::And => encode::and(&mut a.buf, rd, rs1, rs2),
            BinOp::Or => encode::or(&mut a.buf, rd, rs1, rs2),
            BinOp::Xor => encode::xor(&mut a.buf, rd, rs1, rs2),
            BinOp::Mul => {
                if signed {
                    encode::mult(&mut a.buf, rs1, rs2);
                } else {
                    encode::multu(&mut a.buf, rs1, rs2);
                }
                encode::mflo(&mut a.buf, rd);
            }
            BinOp::Div | BinOp::Mod => {
                if signed {
                    encode::div(&mut a.buf, rs1, rs2);
                } else {
                    encode::divu(&mut a.buf, rs1, rs2);
                }
                if op == BinOp::Div {
                    encode::mflo(&mut a.buf, rd);
                } else {
                    encode::mfhi(&mut a.buf, rd);
                }
            }
            BinOp::Lsh => encode::sllv(&mut a.buf, rd, rs1, rs2),
            BinOp::Rsh if signed => encode::srav(&mut a.buf, rd, rs1, rs2),
            BinOp::Rsh => encode::srlv(&mut a.buf, rd, rs1, rs2),
        }
    }

    #[inline(always)]
    fn emit_binop_imm(a: &mut Asm<'_>, op: BinOp, ty: Ty, rd: Reg, rs: Reg, imm: i64) {
        let imm32 = imm as i32;
        match op {
            BinOp::Add if i16::try_from(imm32).is_ok() => {
                encode::addiu(&mut a.buf, rd.num(), rs.num(), imm32 as i16);
                return;
            }
            BinOp::Sub if i16::try_from(-(imm32 as i64)).is_ok() => {
                encode::addiu(&mut a.buf, rd.num(), rs.num(), -imm32 as i16);
                return;
            }
            BinOp::And
                if u16::try_from(imm32 as u32)
                    .map(|_| imm32 >= 0)
                    .unwrap_or(false) =>
            {
                encode::andi(&mut a.buf, rd.num(), rs.num(), imm32 as u16);
                return;
            }
            BinOp::Or
                if u16::try_from(imm32 as u32)
                    .map(|_| imm32 >= 0)
                    .unwrap_or(false) =>
            {
                encode::ori(&mut a.buf, rd.num(), rs.num(), imm32 as u16);
                return;
            }
            BinOp::Xor
                if u16::try_from(imm32 as u32)
                    .map(|_| imm32 >= 0)
                    .unwrap_or(false) =>
            {
                encode::xori(&mut a.buf, rd.num(), rs.num(), imm32 as u16);
                return;
            }
            BinOp::Lsh => {
                encode::sll(&mut a.buf, rd.num(), rs.num(), imm32 as u8 & 31);
                return;
            }
            BinOp::Rsh if ty.is_signed() => {
                encode::sra(&mut a.buf, rd.num(), rs.num(), imm32 as u8 & 31);
                return;
            }
            BinOp::Rsh => {
                encode::srl(&mut a.buf, rd.num(), rs.num(), imm32 as u8 & 31);
                return;
            }
            _ => {}
        }
        binop_imm_slow(a, op, ty, rd, rs, imm32);
    }

    #[inline]
    fn emit_unop(a: &mut Asm<'_>, op: UnOp, ty: Ty, rd: Reg, rs: Reg) {
        match (op, is_flt(ty)) {
            (UnOp::Mov, true) => {
                if rd != rs {
                    encode::fp_mov(&mut a.buf, Self::fmt(ty), rd.num(), rs.num());
                }
            }
            (UnOp::Mov, false) => {
                if rd != rs {
                    encode::or(&mut a.buf, rd.num(), rs.num(), r::ZERO);
                }
            }
            (UnOp::Neg, true) => encode::fp_neg(&mut a.buf, Self::fmt(ty), rd.num(), rs.num()),
            (UnOp::Neg, false) => encode::subu(&mut a.buf, rd.num(), r::ZERO, rs.num()),
            (UnOp::Com, _) => encode::nor(&mut a.buf, rd.num(), rs.num(), r::ZERO),
            (UnOp::Not, _) => encode::sltiu(&mut a.buf, rd.num(), rs.num(), 1),
        }
    }

    #[inline]
    fn emit_set(a: &mut Asm<'_>, ty: Ty, rd: Reg, imm: Imm) {
        match imm {
            Imm::Int(v) => encode::li(&mut a.buf, rd.num(), v as u32),
            // No PC-relative addressing on MIPS-I: float constants are
            // synthesized inline through `$at`/`mtc1` rather than loaded
            // from a pool (see DESIGN.md).
            Imm::F32(v) => Self::load_fp_bits(a, rd.num(), v.to_bits()),
            Imm::F64(v) => {
                let bits = v.to_bits();
                // Little-endian pair: even register holds the low word.
                Self::load_fp_bits(a, rd.num(), bits as u32);
                Self::load_fp_bits(a, rd.num() + 1, (bits >> 32) as u32);
            }
        }
        let _ = ty;
    }

    #[inline]
    fn emit_cvt(a: &mut Asm<'_>, from: Ty, to: Ty, rd: Reg, rs: Reg) {
        match (from.is_float(), to.is_float()) {
            // On a 32-bit machine the integer family is one register
            // class: conversions are moves (paper Table 1: "some of these
            // types may not be distinct").
            (false, false) => {
                if rd != rs {
                    encode::or(&mut a.buf, rd.num(), rs.num(), r::ZERO);
                }
            }
            (false, true) => {
                encode::mtc1(&mut a.buf, rs.num(), rd.num());
                if to == Ty::D {
                    encode::cvt_d(&mut a.buf, FMT_W, rd.num(), rd.num());
                } else {
                    encode::cvt_s(&mut a.buf, FMT_W, rd.num(), rd.num());
                }
                if from == Ty::U || from == Ty::Ul {
                    // Unsigned source: the value was converted as signed;
                    // add 2^32 when the sign bit was set.
                    let skip = a.labels.fresh();
                    a.fixup_here(FixupTarget::Label(skip), FIX_BR16);
                    encode::bgez(&mut a.buf, rs.num(), 0);
                    encode::nop(&mut a.buf);
                    // 2^32 as a double: high word 0x41F00000, low 0.
                    Self::load_fp_bits(a, F_SCRATCH, 0);
                    Self::load_fp_bits(a, F_SCRATCH + 1, 0x41f0_0000);
                    encode::fp_arith(&mut a.buf, FMT_D, 0, rd.num(), rd.num(), F_SCRATCH);
                    let here = a.buf.len();
                    a.labels.bind(skip, here);
                }
            }
            (true, false) => {
                encode::trunc_w(&mut a.buf, Self::fmt(from), F_SCRATCH, rs.num());
                encode::mfc1(&mut a.buf, rd.num(), F_SCRATCH);
                Self::load_delay(a);
            }
            (true, true) => {
                if from == Ty::F && to == Ty::D {
                    encode::cvt_d(&mut a.buf, FMT_S, rd.num(), rs.num());
                } else if from == Ty::D && to == Ty::F {
                    encode::cvt_s(&mut a.buf, FMT_D, rd.num(), rs.num());
                } else if rd != rs {
                    encode::fp_mov(&mut a.buf, Self::fmt(from), rd.num(), rs.num());
                }
            }
        }
    }

    #[inline]
    fn emit_ld(a: &mut Asm<'_>, ty: Ty, rd: Reg, base: Reg, off: Off) {
        let (b, o) = Self::mem(a, base, off);
        match ty {
            Ty::C => encode::lb(&mut a.buf, rd.num(), b, o),
            Ty::Uc => encode::lbu(&mut a.buf, rd.num(), b, o),
            Ty::S => encode::lh(&mut a.buf, rd.num(), b, o),
            Ty::Us => encode::lhu(&mut a.buf, rd.num(), b, o),
            Ty::I | Ty::U | Ty::L | Ty::Ul | Ty::P => encode::lw(&mut a.buf, rd.num(), b, o),
            Ty::F => encode::lwc1(&mut a.buf, rd.num(), b, o),
            Ty::D => {
                encode::lwc1(&mut a.buf, rd.num(), b, o);
                encode::lwc1(&mut a.buf, rd.num() + 1, b, o + 4);
            }
            Ty::V => {
                a.record_err(Error::BadOperands("load of void"));
                return;
            }
        }
        Self::load_delay(a);
    }

    #[inline]
    fn emit_st(a: &mut Asm<'_>, ty: Ty, src: Reg, base: Reg, off: Off) {
        let (b, o) = Self::mem(a, base, off);
        match ty {
            Ty::C | Ty::Uc => encode::sb(&mut a.buf, src.num(), b, o),
            Ty::S | Ty::Us => encode::sh(&mut a.buf, src.num(), b, o),
            Ty::I | Ty::U | Ty::L | Ty::Ul | Ty::P => encode::sw(&mut a.buf, src.num(), b, o),
            Ty::F => encode::swc1(&mut a.buf, src.num(), b, o),
            Ty::D => {
                encode::swc1(&mut a.buf, src.num(), b, o);
                encode::swc1(&mut a.buf, src.num() + 1, b, o + 4);
            }
            Ty::V => a.record_err(Error::BadOperands("store of void")),
        }
    }

    #[inline]
    fn emit_branch(a: &mut Asm<'_>, cond: Cond, ty: Ty, rs1: Reg, rs2: BrOperand, l: Label) {
        if is_flt(ty) {
            let BrOperand::R(rs2) = rs2 else {
                a.record_err(Error::BadOperands("float branch immediate"));
                return;
            };
            let fmt = Self::fmt(ty);
            let (code, x, y, on_true) = match cond {
                Cond::Lt => (fcmp::LT, rs1.num(), rs2.num(), true),
                Cond::Le => (fcmp::LE, rs1.num(), rs2.num(), true),
                Cond::Gt => (fcmp::LT, rs2.num(), rs1.num(), true),
                Cond::Ge => (fcmp::LE, rs2.num(), rs1.num(), true),
                Cond::Eq => (fcmp::EQ, rs1.num(), rs2.num(), true),
                Cond::Ne => (fcmp::EQ, rs1.num(), rs2.num(), false),
            };
            encode::fp_cmp(&mut a.buf, fmt, code, x, y);
            // MIPS-I: one instruction between c.cond and bc1.
            encode::nop(&mut a.buf);
            Self::branch(a, l, |a| encode::bc1(&mut a.buf, on_true, 0));
            return;
        }
        let signed = ty.is_signed();
        let r1 = rs1.num();
        // Compare-against-zero special cases use the native one-instruction
        // branches.
        if let BrOperand::I(0) = rs2 {
            match (cond, signed) {
                (Cond::Eq, _) => {
                    return Self::branch(a, l, |a| encode::beq(&mut a.buf, r1, r::ZERO, 0))
                }
                (Cond::Ne, _) => {
                    return Self::branch(a, l, |a| encode::bne(&mut a.buf, r1, r::ZERO, 0))
                }
                (Cond::Lt, true) => return Self::branch(a, l, |a| encode::bltz(&mut a.buf, r1, 0)),
                (Cond::Ge, true) => return Self::branch(a, l, |a| encode::bgez(&mut a.buf, r1, 0)),
                (Cond::Le, true) => return Self::branch(a, l, |a| encode::blez(&mut a.buf, r1, 0)),
                (Cond::Gt, true) => return Self::branch(a, l, |a| encode::bgtz(&mut a.buf, r1, 0)),
                _ => {}
            }
        }
        // General case: materialize the second operand if immediate, then
        // slt/sltu + beq/bne against zero (or beq/bne directly).
        let r2 = match rs2 {
            BrOperand::R(r2) => r2.num(),
            BrOperand::I(imm) => {
                // slti covers lt/ge with a fitting immediate.
                if matches!(cond, Cond::Lt | Cond::Ge) {
                    if let Ok(i16v) = i16::try_from(imm) {
                        if signed {
                            encode::slti(&mut a.buf, AT, r1, i16v);
                        } else {
                            encode::sltiu(&mut a.buf, AT, r1, i16v);
                        }
                        let on_ne = cond == Cond::Lt;
                        return Self::branch(a, l, |a| {
                            if on_ne {
                                encode::bne(&mut a.buf, AT, r::ZERO, 0);
                            } else {
                                encode::beq(&mut a.buf, AT, r::ZERO, 0);
                            }
                        });
                    }
                }
                encode::li(&mut a.buf, V1, imm as u32);
                V1
            }
        };
        match cond {
            Cond::Eq => Self::branch(a, l, |a| encode::beq(&mut a.buf, r1, r2, 0)),
            Cond::Ne => Self::branch(a, l, |a| encode::bne(&mut a.buf, r1, r2, 0)),
            Cond::Lt | Cond::Le | Cond::Gt | Cond::Ge => {
                let (x, y, on_ne) = match cond {
                    Cond::Lt => (r1, r2, true),
                    Cond::Ge => (r1, r2, false),
                    Cond::Gt => (r2, r1, true),
                    _ => (r2, r1, false), // Le
                };
                if signed {
                    encode::slt(&mut a.buf, AT, x, y);
                } else {
                    encode::sltu(&mut a.buf, AT, x, y);
                }
                Self::branch(a, l, |a| {
                    if on_ne {
                        encode::bne(&mut a.buf, AT, r::ZERO, 0);
                    } else {
                        encode::beq(&mut a.buf, AT, r::ZERO, 0);
                    }
                });
            }
        }
    }

    #[inline]
    fn emit_jump(a: &mut Asm<'_>, t: JumpTarget) {
        match t {
            JumpTarget::Label(l) => Self::goto(a, l),
            JumpTarget::Reg(rs) => {
                encode::jr(&mut a.buf, rs.num());
                if !a.manual_delay {
                    encode::nop(&mut a.buf);
                }
            }
            JumpTarget::Abs(addr) => {
                encode::li(&mut a.buf, AT, addr as u32);
                encode::jr(&mut a.buf, AT);
                encode::nop(&mut a.buf);
            }
        }
    }

    #[inline]
    fn emit_jal(a: &mut Asm<'_>, t: JumpTarget) {
        match t {
            JumpTarget::Label(l) => {
                Self::branch(a, l, |a| encode::bal(&mut a.buf, 0));
            }
            JumpTarget::Reg(rs) => {
                encode::jalr(&mut a.buf, r::RA, rs.num());
                encode::nop(&mut a.buf);
            }
            JumpTarget::Abs(addr) => {
                encode::li(&mut a.buf, AT, addr as u32);
                encode::jalr(&mut a.buf, r::RA, AT);
                encode::nop(&mut a.buf);
            }
        }
    }

    #[inline]
    fn emit_nop(a: &mut Asm<'_>) {
        encode::nop(&mut a.buf);
    }

    fn call_begin(a: &mut Asm<'_>, sig: &Sig) -> CallFrame {
        let _ = a;
        CallFrame {
            sig: sig.clone(),
            stack_bytes: 0,
            next_int: 0,
            next_flt: 0,
            misc: 0,
        }
    }

    /// Note: staging adjusts `$sp`, which local slots are relative to —
    /// clients must not access locals between `call_arg` and `call_end`
    /// (evaluate arguments into registers first, as the experimental
    /// clients do).
    fn call_arg(a: &mut Asm<'_>, cf: &mut CallFrame, idx: usize, ty: Ty, src: Reg) {
        let _ = idx;
        // Stage on the stack (order-independent shuffle; see the x86-64
        // backend for the rationale).
        encode::addiu(&mut a.buf, r::SP, r::SP, -8);
        if is_flt(ty) {
            cf.next_flt += 1;
            if cf.next_flt > 2 {
                a.record_err(Error::TooManyArgs {
                    requested: cf.next_flt as usize,
                    max: 2,
                });
                return;
            }
            encode::swc1(&mut a.buf, src.num(), r::SP, 0);
            if ty == Ty::D {
                encode::swc1(&mut a.buf, src.num() + 1, r::SP, 4);
            }
        } else {
            cf.next_int += 1;
            if cf.next_int > 4 {
                a.record_err(Error::TooManyArgs {
                    requested: cf.next_int as usize,
                    max: 4,
                });
                return;
            }
            encode::sw(&mut a.buf, src.num(), r::SP, 0);
        }
        cf.stack_bytes += 8;
    }

    fn call_end(a: &mut Asm<'_>, cf: CallFrame, target: JumpTarget, ret: Option<(Ty, Reg)>) {
        // Secure a register target before the pops clobber argument
        // registers.
        let target = match target {
            JumpTarget::Reg(rs) => {
                encode::or(&mut a.buf, T9, rs.num(), r::ZERO);
                JumpTarget::Reg(Reg::int(T9))
            }
            t => t,
        };
        let mut int_slot = 0u8;
        let mut flt_slot = 0u8;
        let placements: Vec<(Ty, u8)> = cf
            .sig
            .args()
            .iter()
            .map(|&ty| {
                if is_flt(ty) {
                    let s = flt_slot;
                    flt_slot += 1;
                    (ty, s)
                } else {
                    let s = int_slot;
                    int_slot += 1;
                    (ty, s)
                }
            })
            .collect();
        for &(ty, slot) in placements.iter().rev() {
            if is_flt(ty) {
                let f = 12 + slot * 2;
                encode::lwc1(&mut a.buf, f, r::SP, 0);
                if ty == Ty::D {
                    encode::lwc1(&mut a.buf, f + 1, r::SP, 4);
                }
            } else {
                encode::lw(&mut a.buf, 4 + slot, r::SP, 0);
            }
            encode::addiu(&mut a.buf, r::SP, r::SP, 8);
        }
        match target {
            JumpTarget::Label(l) => Self::branch(a, l, |a| encode::bal(&mut a.buf, 0)),
            JumpTarget::Reg(rs) => {
                encode::jalr(&mut a.buf, r::RA, rs.num());
                encode::nop(&mut a.buf);
            }
            JumpTarget::Abs(addr) => {
                encode::li(&mut a.buf, AT, addr as u32);
                encode::jalr(&mut a.buf, r::RA, AT);
                encode::nop(&mut a.buf);
            }
        }
        if let Some((ty, rd)) = ret {
            match ty {
                Ty::F => encode::fp_mov(&mut a.buf, FMT_S, rd.num(), 0),
                Ty::D => encode::fp_mov(&mut a.buf, FMT_D, rd.num(), 0),
                _ => encode::or(&mut a.buf, rd.num(), r::V0, r::ZERO),
            }
        }
    }

    #[inline]
    fn emit_ext_unop(a: &mut Asm<'_>, op: vcode::ext::ExtUnOp, ty: Ty, rd: Reg, rs: Reg) -> bool {
        // MIPS-I has a hardware square root on some implementations; we
        // expose abs.fmt (funct 5) as the one native extension.
        if op == vcode::ext::ExtUnOp::Abs && is_flt(ty) {
            a.buf
                .put_u32(encode::cop1(Self::fmt(ty), 0, rs.num(), rd.num(), 5));
            return true;
        }
        false
    }
}

vcode::code_backend!(
    /// Runtime-selectable engine adapter for the MIPS target: replays a
    /// recorded [`vcode::engine::Program`] through `Assembler<Mips>` and
    /// returns the finished image as a simulator-executable
    /// [`vcode::engine::CodeImage`].
    MipsBackend,
    Mips,
    vcode::engine::TargetId::Mips
);

#[cfg(test)]
mod tests {
    use super::*;
    use vcode::{Assembler, RegClass};

    fn words(mem: &[u8], n: usize) -> Vec<u32> {
        (0..n)
            .map(|i| u32::from_le_bytes(mem[i * 4..i * 4 + 4].try_into().unwrap()))
            .collect()
    }

    #[test]
    fn plus1_generates_figure_1_shape() {
        let mut mem = vec![0u8; 512];
        let mut a = Assembler::<Mips>::lambda(&mut mem, "%i", Leaf::Yes).unwrap();
        let x = a.arg(0);
        assert_eq!(x, Reg::int(4), "first int arg in $a0");
        a.addii(x, x, 1);
        a.reti(x);
        let fin = a.end().unwrap();
        let w = words(&mem, fin.len / 4);
        // Word 0: addiu sp, sp, -frame (88 rounded).
        assert_eq!(w[0] >> 16, 0x27bd, "addiu sp, sp");
        assert_eq!((w[0] & 0xffff) as i16, -88);
        // After the 21 reserved words: addiu a0, a0, 1.
        assert_eq!(w[22], 0x2484_0001);
        // Then move to v0 and branch to the epilogue.
        assert_eq!(w[23], encode::rtype(4, 0, 2, 0, 0x25), "or v0, a0, zero");
        // Epilogue tail: jr ra; nop.
        assert_eq!(w[w.len() - 2], 0x03e0_0008);
        assert_eq!(w[w.len() - 1], 0);
    }

    #[test]
    fn leaf_prologue_skips_unused_save_area() {
        let mut mem = vec![0u8; 512];
        let mut a = Assembler::<Mips>::lambda(&mut mem, "", Leaf::Yes).unwrap();
        a.retv();
        let _ = a.end().unwrap();
        let w = words(&mem, 22);
        // A leaf with no saves branches over the whole reserved area
        // (21 words): beq $0,$0,+19 lands on word 22, and the delay slot
        // (word 2) is a nop.
        assert_eq!(
            w[1],
            encode::itype(0x04, r::ZERO, r::ZERO, 19),
            "skip branch"
        );
        assert_eq!(w[2], 0, "delay slot is a nop");
    }

    #[test]
    fn non_leaf_saves_ra() {
        let mut mem = vec![0u8; 512];
        let mut a = Assembler::<Mips>::lambda(&mut mem, "", Leaf::No).unwrap();
        a.retv();
        let _ = a.end().unwrap();
        let w = words(&mem, 2);
        assert_eq!(w[1], encode::itype(0x2b, r::SP, r::RA, 0), "sw ra, 0(sp)");
    }

    #[test]
    fn branch_displacement_links() {
        let mut mem = vec![0u8; 512];
        let mut a = Assembler::<Mips>::lambda(&mut mem, "%i", Leaf::Yes).unwrap();
        let x = a.arg(0);
        let l = a.genlabel();
        a.beqii(x, 0, l); // beq a0, $0 + delay nop
        a.addii(x, x, 1);
        a.label(l);
        a.reti(x);
        a.end().unwrap();
        let w = words(&mem, 32);
        // Word 22 is the beq; target is word 25; disp = 25 - 23 = 2.
        assert_eq!(w[22] >> 16, (0x04 << 10) | (4 << 5), "beq a0, zero");
        assert_eq!(w[22] & 0xffff, 2);
        assert_eq!(w[23], 0, "delay slot nop");
    }

    #[test]
    fn schedule_delay_fills_branch_slot() {
        let mut mem = vec![0u8; 512];
        let mut a = Assembler::<Mips>::lambda(&mut mem, "%i", Leaf::Yes).unwrap();
        let x = a.arg(0);
        let l = a.genlabel();
        a.label(l);
        a.schedule_delay(|a| a.bneii(x, 0, l), |a| a.subii(x, x, 1));
        a.reti(x);
        a.end().unwrap();
        let w = words(&mem, 32);
        // bne followed immediately by the scheduled subii, not a nop.
        assert_eq!(w[22] >> 26, 0x05, "bne");
        assert_eq!(w[23], 0x2484_ffff, "addiu a0, a0, -1 in the delay slot");
    }

    #[test]
    fn loads_are_padded_unless_raw() {
        let mut mem = vec![0u8; 512];
        let mut a = Assembler::<Mips>::lambda(&mut mem, "%p", Leaf::Yes).unwrap();
        let p = a.arg(0);
        let t = a.getreg(RegClass::Temp).unwrap();
        a.ldii(t, p, 0);
        let n_padded = a.code_len();
        a.raw_load(|a| a.ldii(t, p, 4), 1);
        let n_raw = a.code_len();
        assert_eq!(n_padded - 88, 8, "lw + nop after the 88-byte prologue");
        assert_eq!(n_raw - n_padded, 4, "raw load is just the lw");
        a.reti(t);
        a.end().unwrap();
    }

    #[test]
    fn big_immediates_synthesized_via_at() {
        let mut mem = vec![0u8; 512];
        let mut a = Assembler::<Mips>::lambda(&mut mem, "%i", Leaf::Yes).unwrap();
        let x = a.arg(0);
        let before = a.code_len();
        a.addii(x, x, 0x12345678);
        // lui + ori + addu = 3 instructions.
        assert_eq!(a.code_len() - before, 12);
        a.reti(x);
        a.end().unwrap();
    }

    #[test]
    fn double_set_loads_both_halves() {
        let mut mem = vec![0u8; 512];
        let mut a = Assembler::<Mips>::lambda(&mut mem, "", Leaf::Yes).unwrap();
        let f = a.getreg_f(RegClass::Temp).unwrap();
        assert_eq!(f.num() % 2, 0, "doubles use even registers");
        a.setd(f, 1.0);
        a.retd(f);
        a.end().unwrap();
        // 1.0f64 = 0x3FF0000000000000: low word 0 (mtc1 zero), high word
        // 0x3FF00000 (lui + mtc1).
        let w = words(&mem, 30);
        assert_eq!(
            w[22],
            encode::cop1(4, r::ZERO, f.num(), 0, 0),
            "mtc1 zero, low"
        );
    }

    #[test]
    fn branch_out_of_range_is_detected() {
        let mut mem = vec![0u8; 1 << 20];
        let mut a = Assembler::<Mips>::lambda(&mut mem, "%i", Leaf::Yes).unwrap();
        let x = a.arg(0);
        let l = a.genlabel();
        a.beqii(x, 0, l);
        for _ in 0..40_000 {
            a.nop();
        }
        a.label(l);
        a.reti(x);
        match a.end() {
            Err(Error::BranchOutOfRange { .. }) => {}
            other => panic!("expected BranchOutOfRange, got {other:?}"),
        }
    }
}
