//! MIPS-I instruction encoders.
//!
//! One function per machine instruction, in the style of the paper's
//! Figure 2 `_addu` macro: compute the 32-bit word and store it at the
//! instruction pointer.

use vcode::buf::CodeBuffer;

/// Conventional register numbers.
pub mod r {
    #![allow(missing_docs)]
    pub const ZERO: u8 = 0;
    pub const AT: u8 = 1;
    pub const V0: u8 = 2;
    pub const V1: u8 = 3;
    pub const A0: u8 = 4;
    pub const A1: u8 = 5;
    pub const A2: u8 = 6;
    pub const A3: u8 = 7;
    pub const T0: u8 = 8;
    pub const T8: u8 = 24;
    pub const T9: u8 = 25;
    pub const S0: u8 = 16;
    pub const GP: u8 = 28;
    pub const SP: u8 = 29;
    pub const FP: u8 = 30;
    pub const RA: u8 = 31;
}

/// R-type: `op=0 rs rt rd shamt funct`.
#[inline]
pub fn rtype(rs: u8, rt: u8, rd: u8, shamt: u8, funct: u8) -> u32 {
    (u32::from(rs) << 21)
        | (u32::from(rt) << 16)
        | (u32::from(rd) << 11)
        | (u32::from(shamt) << 6)
        | u32::from(funct)
}

/// I-type: `op rs rt imm16`.
#[inline]
pub fn itype(op: u8, rs: u8, rt: u8, imm: u16) -> u32 {
    (u32::from(op) << 26) | (u32::from(rs) << 21) | (u32::from(rt) << 16) | u32::from(imm)
}

/// COP1 (floating-point) register form: `0x11 fmt ft fs fd funct`.
#[inline]
pub fn cop1(fmt: u8, ft: u8, fs: u8, fd: u8, funct: u8) -> u32 {
    (0x11u32 << 26)
        | (u32::from(fmt) << 21)
        | (u32::from(ft) << 16)
        | (u32::from(fs) << 11)
        | (u32::from(fd) << 6)
        | u32::from(funct)
}

/// Single-precision format code.
pub const FMT_S: u8 = 16;
/// Double-precision format code.
pub const FMT_D: u8 = 17;
/// Fixed-point word format code.
pub const FMT_W: u8 = 20;

macro_rules! r3 {
    ($($(#[$m:meta])* $name:ident => $funct:expr;)*) => { $(
        $(#[$m])*
        #[inline]
        pub fn $name(b: &mut CodeBuffer<'_>, rd: u8, rs: u8, rt: u8) {
            b.put_u32(rtype(rs, rt, rd, 0, $funct));
        }
    )* }
}

r3! {
    /// `addu rd, rs, rt`.
    addu => 0x21;
    /// `subu rd, rs, rt`.
    subu => 0x23;
    /// `and rd, rs, rt`.
    and => 0x24;
    /// `or rd, rs, rt`.
    or => 0x25;
    /// `xor rd, rs, rt`.
    xor => 0x26;
    /// `nor rd, rs, rt`.
    nor => 0x27;
    /// `slt rd, rs, rt`.
    slt => 0x2a;
    /// `sltu rd, rs, rt`.
    sltu => 0x2b;
}

/// `sllv rd, rt, rs` — shift `rt` left by low 5 bits of `rs`.
#[inline]
pub fn sllv(b: &mut CodeBuffer<'_>, rd: u8, rt: u8, rs: u8) {
    b.put_u32(rtype(rs, rt, rd, 0, 0x04));
}

/// `srlv rd, rt, rs`.
#[inline]
pub fn srlv(b: &mut CodeBuffer<'_>, rd: u8, rt: u8, rs: u8) {
    b.put_u32(rtype(rs, rt, rd, 0, 0x06));
}

/// `srav rd, rt, rs`.
#[inline]
pub fn srav(b: &mut CodeBuffer<'_>, rd: u8, rt: u8, rs: u8) {
    b.put_u32(rtype(rs, rt, rd, 0, 0x07));
}

/// `sll rd, rt, shamt`.
#[inline]
pub fn sll(b: &mut CodeBuffer<'_>, rd: u8, rt: u8, shamt: u8) {
    b.put_u32(rtype(0, rt, rd, shamt, 0x00));
}

/// `srl rd, rt, shamt`.
#[inline]
pub fn srl(b: &mut CodeBuffer<'_>, rd: u8, rt: u8, shamt: u8) {
    b.put_u32(rtype(0, rt, rd, shamt, 0x02));
}

/// `sra rd, rt, shamt`.
#[inline]
pub fn sra(b: &mut CodeBuffer<'_>, rd: u8, rt: u8, shamt: u8) {
    b.put_u32(rtype(0, rt, rd, shamt, 0x03));
}

/// `mult rs, rt` (HI:LO = rs * rt, signed).
#[inline]
pub fn mult(b: &mut CodeBuffer<'_>, rs: u8, rt: u8) {
    b.put_u32(rtype(rs, rt, 0, 0, 0x18));
}

/// `multu rs, rt`.
#[inline]
pub fn multu(b: &mut CodeBuffer<'_>, rs: u8, rt: u8) {
    b.put_u32(rtype(rs, rt, 0, 0, 0x19));
}

/// `div rs, rt` (LO = quotient, HI = remainder, signed).
#[inline]
pub fn div(b: &mut CodeBuffer<'_>, rs: u8, rt: u8) {
    b.put_u32(rtype(rs, rt, 0, 0, 0x1a));
}

/// `divu rs, rt`.
#[inline]
pub fn divu(b: &mut CodeBuffer<'_>, rs: u8, rt: u8) {
    b.put_u32(rtype(rs, rt, 0, 0, 0x1b));
}

/// `mflo rd`.
#[inline]
pub fn mflo(b: &mut CodeBuffer<'_>, rd: u8) {
    b.put_u32(rtype(0, 0, rd, 0, 0x12));
}

/// `mfhi rd`.
#[inline]
pub fn mfhi(b: &mut CodeBuffer<'_>, rd: u8) {
    b.put_u32(rtype(0, 0, rd, 0, 0x10));
}

/// `jr rs`.
#[inline]
pub fn jr(b: &mut CodeBuffer<'_>, rs: u8) {
    b.put_u32(rtype(rs, 0, 0, 0, 0x08));
}

/// `jalr rd, rs` (link register is `rd`, conventionally `$ra`).
#[inline]
pub fn jalr(b: &mut CodeBuffer<'_>, rd: u8, rs: u8) {
    b.put_u32(rtype(rs, 0, rd, 0, 0x09));
}

/// `addiu rt, rs, imm` (imm sign-extended; no overflow trap).
#[inline]
pub fn addiu(b: &mut CodeBuffer<'_>, rt: u8, rs: u8, imm: i16) {
    b.put_u32(itype(0x09, rs, rt, imm as u16));
}

/// `andi rt, rs, imm` (imm zero-extended).
#[inline]
pub fn andi(b: &mut CodeBuffer<'_>, rt: u8, rs: u8, imm: u16) {
    b.put_u32(itype(0x0c, rs, rt, imm));
}

/// `ori rt, rs, imm`.
#[inline]
pub fn ori(b: &mut CodeBuffer<'_>, rt: u8, rs: u8, imm: u16) {
    b.put_u32(itype(0x0d, rs, rt, imm));
}

/// `xori rt, rs, imm`.
#[inline]
pub fn xori(b: &mut CodeBuffer<'_>, rt: u8, rs: u8, imm: u16) {
    b.put_u32(itype(0x0e, rs, rt, imm));
}

/// `lui rt, imm`.
#[inline]
pub fn lui(b: &mut CodeBuffer<'_>, rt: u8, imm: u16) {
    b.put_u32(itype(0x0f, 0, rt, imm));
}

/// `slti rt, rs, imm`.
#[inline]
pub fn slti(b: &mut CodeBuffer<'_>, rt: u8, rs: u8, imm: i16) {
    b.put_u32(itype(0x0a, rs, rt, imm as u16));
}

/// `sltiu rt, rs, imm`.
#[inline]
pub fn sltiu(b: &mut CodeBuffer<'_>, rt: u8, rs: u8, imm: i16) {
    b.put_u32(itype(0x0b, rs, rt, imm as u16));
}

/// `beq rs, rt, disp` (word displacement from the delay slot).
#[inline]
pub fn beq(b: &mut CodeBuffer<'_>, rs: u8, rt: u8, disp: i16) {
    b.put_u32(itype(0x04, rs, rt, disp as u16));
}

/// `bne rs, rt, disp`.
#[inline]
pub fn bne(b: &mut CodeBuffer<'_>, rs: u8, rt: u8, disp: i16) {
    b.put_u32(itype(0x05, rs, rt, disp as u16));
}

/// `bltz rs, disp` (REGIMM rt=0).
#[inline]
pub fn bltz(b: &mut CodeBuffer<'_>, rs: u8, disp: i16) {
    b.put_u32(itype(0x01, rs, 0, disp as u16));
}

/// `bgez rs, disp` (REGIMM rt=1).
#[inline]
pub fn bgez(b: &mut CodeBuffer<'_>, rs: u8, disp: i16) {
    b.put_u32(itype(0x01, rs, 1, disp as u16));
}

/// `bal disp` (`bgezal $zero` — position-independent call).
#[inline]
pub fn bal(b: &mut CodeBuffer<'_>, disp: i16) {
    b.put_u32(itype(0x01, 0, 0x11, disp as u16));
}

/// `blez rs, disp`.
#[inline]
pub fn blez(b: &mut CodeBuffer<'_>, rs: u8, disp: i16) {
    b.put_u32(itype(0x06, rs, 0, disp as u16));
}

/// `bgtz rs, disp`.
#[inline]
pub fn bgtz(b: &mut CodeBuffer<'_>, rs: u8, disp: i16) {
    b.put_u32(itype(0x07, rs, 0, disp as u16));
}

macro_rules! memop {
    ($($(#[$m:meta])* $name:ident => $op:expr;)*) => { $(
        $(#[$m])*
        #[inline]
        pub fn $name(b: &mut CodeBuffer<'_>, rt: u8, base: u8, off: i16) {
            b.put_u32(itype($op, base, rt, off as u16));
        }
    )* }
}

memop! {
    /// `lb rt, off(base)`.
    lb => 0x20;
    /// `lh rt, off(base)`.
    lh => 0x21;
    /// `lw rt, off(base)`.
    lw => 0x23;
    /// `lbu rt, off(base)`.
    lbu => 0x24;
    /// `lhu rt, off(base)`.
    lhu => 0x25;
    /// `sb rt, off(base)`.
    sb => 0x28;
    /// `sh rt, off(base)`.
    sh => 0x29;
    /// `sw rt, off(base)`.
    sw => 0x2b;
    /// `lwc1 ft, off(base)`.
    lwc1 => 0x31;
    /// `swc1 ft, off(base)`.
    swc1 => 0x39;
}

/// `nop` (`sll $0, $0, 0`).
#[inline]
pub fn nop(b: &mut CodeBuffer<'_>) {
    b.put_u32(0);
}

/// FP arithmetic: `add/sub/mul/div.fmt fd, fs, ft` (funct 0..3).
#[inline]
pub fn fp_arith(b: &mut CodeBuffer<'_>, fmt: u8, funct: u8, fd: u8, fs: u8, ft: u8) {
    b.put_u32(cop1(fmt, ft, fs, fd, funct));
}

/// `mov.fmt fd, fs`.
#[inline]
pub fn fp_mov(b: &mut CodeBuffer<'_>, fmt: u8, fd: u8, fs: u8) {
    b.put_u32(cop1(fmt, 0, fs, fd, 6));
}

/// `neg.fmt fd, fs`.
#[inline]
pub fn fp_neg(b: &mut CodeBuffer<'_>, fmt: u8, fd: u8, fs: u8) {
    b.put_u32(cop1(fmt, 0, fs, fd, 7));
}

/// `cvt.s.fmt fd, fs`.
#[inline]
pub fn cvt_s(b: &mut CodeBuffer<'_>, from_fmt: u8, fd: u8, fs: u8) {
    b.put_u32(cop1(from_fmt, 0, fs, fd, 32));
}

/// `cvt.d.fmt fd, fs`.
#[inline]
pub fn cvt_d(b: &mut CodeBuffer<'_>, from_fmt: u8, fd: u8, fs: u8) {
    b.put_u32(cop1(from_fmt, 0, fs, fd, 33));
}

/// `trunc.w.fmt fd, fs` (round toward zero — C semantics).
#[inline]
pub fn trunc_w(b: &mut CodeBuffer<'_>, from_fmt: u8, fd: u8, fs: u8) {
    b.put_u32(cop1(from_fmt, 0, fs, fd, 13));
}

/// Compare codes for `c.cond.fmt`.
pub mod fcmp {
    #![allow(missing_docs)]
    pub const EQ: u8 = 0x32;
    pub const LT: u8 = 0x3c;
    pub const LE: u8 = 0x3e;
}

/// `c.cond.fmt fs, ft` — sets the FP condition flag.
#[inline]
pub fn fp_cmp(b: &mut CodeBuffer<'_>, fmt: u8, cond: u8, fs: u8, ft: u8) {
    b.put_u32(cop1(fmt, ft, fs, 0, cond));
}

/// `bc1t disp` / `bc1f disp`.
#[inline]
pub fn bc1(b: &mut CodeBuffer<'_>, on_true: bool, disp: i16) {
    b.put_u32((0x11u32 << 26) | (8 << 21) | (u32::from(on_true) << 16) | (disp as u16 as u32));
}

/// `mtc1 rt, fs` (GPR → FPR, bits unchanged).
#[inline]
pub fn mtc1(b: &mut CodeBuffer<'_>, rt: u8, fs: u8) {
    b.put_u32(cop1(4, rt, fs, 0, 0));
}

/// `mfc1 rt, fs` (FPR → GPR).
#[inline]
pub fn mfc1(b: &mut CodeBuffer<'_>, rt: u8, fs: u8) {
    b.put_u32(cop1(0, rt, fs, 0, 0));
}

/// Loads a 32-bit constant into `rt` using the shortest sequence
/// (1 or 2 instructions), the classic `lui`/`ori` idiom.
#[inline]
pub fn li(b: &mut CodeBuffer<'_>, rt: u8, v: u32) {
    let hi = (v >> 16) as u16;
    let lo = v as u16;
    if i16::try_from(v as i32).is_ok() {
        addiu(b, rt, r::ZERO, v as i32 as i16);
    } else if hi == 0 {
        ori(b, rt, r::ZERO, lo);
    } else if lo == 0 {
        lui(b, rt, hi);
    } else {
        lui(b, rt, hi);
        ori(b, rt, rt, lo);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(f: impl FnOnce(&mut CodeBuffer<'_>)) -> u32 {
        let mut mem = [0u8; 32];
        let mut b = CodeBuffer::new(&mut mem);
        f(&mut b);
        b.read_u32(0)
    }

    #[test]
    fn addu_matches_figure_2() {
        // Figure 2: (src1 << 21) | (src2 << 16) | (dst << 11) | 0x21
        let w = one(|b| addu(b, 2, 4, 5));
        assert_eq!(w, (4 << 21) | (5 << 16) | (2 << 11) | 0x21);
    }

    #[test]
    fn addiu_encodes_sign_extended_imm() {
        let w = one(|b| addiu(b, r::A0, r::A0, 1));
        // addiu a0, a0, 1 = 0x24840001
        assert_eq!(w, 0x2484_0001);
        let w = one(|b| addiu(b, r::SP, r::SP, -32));
        assert_eq!(w, 0x27bd_ffe0);
    }

    #[test]
    fn jr_ra_is_canonical() {
        assert_eq!(one(|b| jr(b, r::RA)), 0x03e0_0008);
    }

    #[test]
    fn memory_ops() {
        // lw t0, 4(sp)
        assert_eq!(one(|b| lw(b, r::T0, r::SP, 4)), 0x8fa8_0004);
        // sw ra, 0(sp)
        assert_eq!(one(|b| sw(b, r::RA, r::SP, 0)), 0xafbf_0000);
    }

    #[test]
    fn li_chooses_shortest() {
        let mut mem = [0u8; 32];
        let mut b = CodeBuffer::new(&mut mem);
        li(&mut b, r::T0, 5);
        assert_eq!(b.len(), 4, "small positive: one addiu");
        let mut mem = [0u8; 32];
        let mut b = CodeBuffer::new(&mut mem);
        li(&mut b, r::T0, 0xffff_8000);
        assert_eq!(b.len(), 4, "sign-extendable: one addiu");
        let mut mem = [0u8; 32];
        let mut b = CodeBuffer::new(&mut mem);
        li(&mut b, r::T0, 0x12345);
        assert_eq!(b.len(), 8, "general case: lui + ori");
        let mut mem = [0u8; 32];
        let mut b = CodeBuffer::new(&mut mem);
        li(&mut b, r::T0, 0x8000);
        assert_eq!(b.len(), 4, "fits ori zero-extended");
    }

    #[test]
    fn fp_forms() {
        // add.d f0, f2, f4 : cop1 fmt=17 ft=4 fs=2 fd=0 funct=0
        let w = one(|b| fp_arith(b, FMT_D, 0, 0, 2, 4));
        assert_eq!(w, (0x11 << 26) | (17 << 21) | (4 << 16) | (2 << 11));
        // mtc1 t0, f2
        let w = one(|b| mtc1(b, r::T0, 2));
        assert_eq!(w, (0x11 << 26) | (4 << 21) | (8 << 16) | (2 << 11));
    }
}
