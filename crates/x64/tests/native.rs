//! End-to-end tests: generate code with the x86-64 backend and execute it
//! natively. This is the paper's auto-generated regression suite (§3.3,
//! §6.1) applied to the x86-64 port.

use vcode::regress::{self, BinCase, BranchCase, UnCase};
use vcode::target::{JumpTarget, Leaf, Target};
use vcode::{Assembler, BinOp, Cond, Reg, RegClass, Sig, Ty};
use vcode_x64::{ExecCode, ExecMem, X64};

/// Builds one function into a fresh mapping and finalizes it.
fn build(sig: &str, f: impl FnOnce(&mut Assembler<'_, X64>)) -> ExecCode {
    let mut mem = ExecMem::new(4096).unwrap();
    let mut a = Assembler::<X64>::lambda(mem.as_mut_slice(), sig, Leaf::Yes).unwrap();
    f(&mut a);
    a.end().unwrap();
    mem.finalize().unwrap()
}

fn build_nonleaf(sig: &str, f: impl FnOnce(&mut Assembler<'_, X64>)) -> ExecCode {
    let mut mem = ExecMem::new(4096).unwrap();
    let mut a = Assembler::<X64>::lambda(mem.as_mut_slice(), sig, Leaf::No).unwrap();
    f(&mut a);
    a.end().unwrap();
    mem.finalize().unwrap()
}

fn ret_typed(a: &mut Assembler<'_, X64>, ty: Ty, r: Reg) {
    match ty {
        Ty::I => a.reti(r),
        Ty::U => a.retu(r),
        Ty::L => a.retl(r),
        Ty::Ul => a.retul(r),
        Ty::P => a.retp(r),
        _ => panic!("int type expected"),
    }
}

/// Generates many small functions into one mapping, returning their entry
/// offsets (one page per function would be wasteful for thousands of
/// regression cases).
struct Farm {
    mem: Option<ExecMem>,
    code: Option<ExecCode>,
    off: usize,
    chunk: usize,
}

impl Farm {
    fn new(count: usize, chunk: usize) -> Farm {
        Farm {
            mem: Some(ExecMem::new(count * chunk).unwrap()),
            code: None,
            off: 0,
            chunk,
        }
    }

    fn add(&mut self, sig: &str, f: impl FnOnce(&mut Assembler<'_, X64>)) -> usize {
        let mem = self.mem.as_mut().unwrap();
        let off = self.off;
        let slice = &mut mem.as_mut_slice()[off..off + self.chunk];
        let mut a = Assembler::<X64>::lambda(slice, sig, Leaf::Yes).unwrap();
        f(&mut a);
        let fin = a.end().unwrap();
        assert!(fin.len <= self.chunk);
        self.off += self.chunk;
        off
    }

    fn finalize(&mut self) {
        self.code = Some(self.mem.take().unwrap().finalize().unwrap());
    }

    /// # Safety
    /// `off` must be an offset returned by [`Farm::emit`] for a
    /// two-argument lambda, after [`Farm::finalize`].
    unsafe fn call2(&self, off: usize, a: u64, b: u64) -> u64 {
        let f: extern "C" fn(u64, u64) -> u64 =
            // SAFETY: per the contract above, `off` is the entry of a
            // finalized two-argument function in this farm's mapping.
            unsafe { std::mem::transmute(self.code.as_ref().unwrap().addr() + off as u64) };
        f(a, b)
    }

    /// # Safety
    /// `off` must be an offset returned by [`Farm::emit`] for a
    /// one-argument lambda, after [`Farm::finalize`].
    unsafe fn call1(&self, off: usize, a: u64) -> u64 {
        let f: extern "C" fn(u64) -> u64 =
            // SAFETY: per the contract above, `off` is the entry of a
            // finalized one-argument function in this farm's mapping.
            unsafe { std::mem::transmute(self.code.as_ref().unwrap().addr() + off as u64) };
        f(a)
    }
}

#[test]
fn figure1_plus1() {
    let code = build("%i", |a| {
        let x = a.arg(0);
        a.addii(x, x, 1);
        a.reti(x);
    });
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let plus1: extern "C" fn(i32) -> i32 = unsafe { code.as_fn() };
    assert_eq!(plus1(41), 42);
    assert_eq!(plus1(-1), 0);
    assert_eq!(plus1(i32::MAX), i32::MIN);
}

#[test]
fn regression_binops_register_forms() {
    let cases = regress::binop_cases(64, 2, 0xdead_beef);
    let mut farm = Farm::new(cases.len(), 96);
    let offs: Vec<usize> = cases
        .iter()
        .map(|c| {
            farm.add("%l%l", |a| {
                let (x, y) = (a.arg(0), a.arg(1));
                X64::emit_binop(a.raw(), c.op, c.ty, x, x, y);
                ret_typed(a, c.ty, x);
            })
        })
        .collect();
    farm.finalize();
    for (c, off) in cases.iter().zip(offs) {
        // SAFETY: the farm offset points at a complete emitted function of this arity.
        let got = unsafe { farm.call2(off, c.a, c.b) };
        assert_eq!(
            got, c.expect,
            "{:?}.{:?}({:#x}, {:#x})",
            c.op, c.ty, c.a, c.b
        );
    }
}

#[test]
fn regression_binops_immediate_forms() {
    let cases: Vec<BinCase> = regress::binop_cases(64, 0, 1)
        .into_iter()
        .step_by(3)
        .collect();
    let mut farm = Farm::new(cases.len(), 96);
    let offs: Vec<usize> = cases
        .iter()
        .map(|c| {
            farm.add("%l", |a| {
                let x = a.arg(0);
                X64::emit_binop_imm(a.raw(), c.op, c.ty, x, x, c.b as i64);
                ret_typed(a, c.ty, x);
            })
        })
        .collect();
    farm.finalize();
    for (c, off) in cases.iter().zip(offs) {
        // SAFETY: the farm offset points at a complete emitted function of this arity.
        let got = unsafe { farm.call1(off, c.a) };
        assert_eq!(
            got, c.expect,
            "{:?}.{:?}({:#x}, imm {:#x})",
            c.op, c.ty, c.a, c.b
        );
    }
}

#[test]
fn regression_binops_distinct_destination() {
    // rd != rs1 != rs2 exercises the three-operand resolution paths.
    let cases: Vec<BinCase> = regress::binop_cases(64, 1, 7)
        .into_iter()
        .step_by(5)
        .collect();
    let mut farm = Farm::new(cases.len(), 96);
    let offs: Vec<usize> = cases
        .iter()
        .map(|c| {
            farm.add("%l%l", |a| {
                let (x, y) = (a.arg(0), a.arg(1));
                let d = a.getreg(RegClass::Temp).unwrap();
                X64::emit_binop(a.raw(), c.op, c.ty, d, x, y);
                ret_typed(a, c.ty, d);
            })
        })
        .collect();
    farm.finalize();
    for (c, off) in cases.iter().zip(offs) {
        // SAFETY: the farm offset points at a complete emitted function of this arity.
        let got = unsafe { farm.call2(off, c.a, c.b) };
        assert_eq!(
            got, c.expect,
            "{:?}.{:?}({:#x}, {:#x}) rd!=rs",
            c.op, c.ty, c.a, c.b
        );
    }
}

#[test]
fn regression_binops_rd_equals_rs2() {
    let cases: Vec<BinCase> = regress::binop_cases(64, 1, 9)
        .into_iter()
        .step_by(7)
        .collect();
    let mut farm = Farm::new(cases.len(), 96);
    let offs: Vec<usize> = cases
        .iter()
        .map(|c| {
            farm.add("%l%l", |a| {
                let (x, y) = (a.arg(0), a.arg(1));
                X64::emit_binop(a.raw(), c.op, c.ty, y, x, y);
                ret_typed(a, c.ty, y);
            })
        })
        .collect();
    farm.finalize();
    for (c, off) in cases.iter().zip(offs) {
        // SAFETY: the farm offset points at a complete emitted function of this arity.
        let got = unsafe { farm.call2(off, c.a, c.b) };
        assert_eq!(
            got, c.expect,
            "{:?}.{:?}({:#x}, {:#x}) rd==rs2",
            c.op, c.ty, c.a, c.b
        );
    }
}

#[test]
fn regression_unops() {
    let cases: Vec<UnCase> = regress::unop_cases(64);
    let mut farm = Farm::new(cases.len(), 96);
    let offs: Vec<usize> = cases
        .iter()
        .map(|c| {
            farm.add("%l", |a| {
                let x = a.arg(0);
                let d = a.getreg(RegClass::Temp).unwrap();
                X64::emit_unop(a.raw(), c.op, c.ty, d, x);
                ret_typed(a, c.ty, d);
            })
        })
        .collect();
    farm.finalize();
    for (c, off) in cases.iter().zip(offs) {
        // SAFETY: the farm offset points at a complete emitted function of this arity.
        let got = unsafe { farm.call1(off, c.a) };
        let got = regress::canon(c.ty, got, 64);
        assert_eq!(got, c.expect, "{:?}.{:?}({:#x})", c.op, c.ty, c.a);
    }
}

#[test]
fn regression_branches() {
    let cases: Vec<BranchCase> = regress::branch_cases(64).into_iter().step_by(3).collect();
    let mut farm = Farm::new(cases.len(), 128);
    let offs: Vec<usize> = cases
        .iter()
        .map(|c| {
            farm.add("%l%l", |a| {
                let (x, y) = (a.arg(0), a.arg(1));
                let taken = a.genlabel();
                let r = a.getreg(RegClass::Temp).unwrap();
                X64::emit_branch(a.raw(), c.cond, c.ty, x, vcode::BrOperand::R(y), taken);
                a.seti(r, 0);
                a.reti(r);
                a.label(taken);
                a.seti(r, 1);
                a.reti(r);
            })
        })
        .collect();
    farm.finalize();
    for (c, off) in cases.iter().zip(offs) {
        // SAFETY: the farm offset points at a complete emitted function of this arity.
        let got = unsafe { farm.call2(off, c.a, c.b) };
        assert_eq!(
            got != 0,
            c.taken,
            "{:?}.{:?}({:#x}, {:#x})",
            c.cond,
            c.ty,
            c.a,
            c.b
        );
    }
}

type DoubleBinCase = (BinOp, fn(f64, f64) -> f64);
type DoubleCondCase = (Cond, fn(f64, f64) -> bool);

#[test]
fn float_arithmetic_double() {
    let ops: [DoubleBinCase; 4] = [
        (BinOp::Add, |x, y| x + y),
        (BinOp::Sub, |x, y| x - y),
        (BinOp::Mul, |x, y| x * y),
        (BinOp::Div, |x, y| x / y),
    ];
    for (op, f) in ops {
        let code = build("%d%d", |a| {
            let (x, y) = (a.arg(0), a.arg(1));
            X64::emit_binop(a.raw(), op, Ty::D, x, x, y);
            a.retd(x);
        });
        // SAFETY: the buffer holds a complete emitted function matching this signature.
        let g: extern "C" fn(f64, f64) -> f64 = unsafe { code.as_fn() };
        for (x, y) in [(1.5, 2.25), (-3.0, 0.5), (1e100, 1e-100), (0.0, 7.0)] {
            assert_eq!(g(x, y), f(x, y), "{op:?}({x}, {y})");
        }
    }
}

#[test]
fn float_arithmetic_single() {
    let code = build("%f%f", |a| {
        let (x, y) = (a.arg(0), a.arg(1));
        let t = a.getreg_f(RegClass::Temp).unwrap();
        a.mulf(t, x, y);
        a.addf(t, t, x);
        a.retf(t);
    });
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let g: extern "C" fn(f32, f32) -> f32 = unsafe { code.as_fn() };
    assert_eq!(g(3.0, 4.0), 15.0);
    assert_eq!(g(-1.5, 2.0), -4.5);
}

#[test]
fn float_negation_and_mov() {
    let code = build("%d", |a| {
        let x = a.arg(0);
        let t = a.getreg_f(RegClass::Temp).unwrap();
        a.negd(t, x);
        a.retd(t);
    });
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let g: extern "C" fn(f64) -> f64 = unsafe { code.as_fn() };
    assert_eq!(g(2.5), -2.5);
    assert_eq!(g(-0.0), 0.0);
    assert_eq!(g(f64::INFINITY), f64::NEG_INFINITY);
}

#[test]
fn float_constants_from_literal_pool() {
    let code = build("", |a| {
        let t = a.getreg_f(RegClass::Temp).unwrap();
        let u = a.getreg_f(RegClass::Temp).unwrap();
        a.setd(t, 1.25);
        a.setd(u, 2.5);
        a.addd(t, t, u);
        a.retd(t);
    });
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let g: extern "C" fn() -> f64 = unsafe { code.as_fn() };
    assert_eq!(g(), 3.75);
}

#[test]
fn float_branches() {
    let conds: [DoubleCondCase; 6] = [
        (Cond::Lt, |x, y| x < y),
        (Cond::Le, |x, y| x <= y),
        (Cond::Gt, |x, y| x > y),
        (Cond::Ge, |x, y| x >= y),
        (Cond::Eq, |x, y| x == y),
        (Cond::Ne, |x, y| x != y),
    ];
    for (cond, expect) in conds {
        let code = build("%d%d", |a| {
            let (x, y) = (a.arg(0), a.arg(1));
            let taken = a.genlabel();
            let r = a.getreg(RegClass::Temp).unwrap();
            X64::emit_branch(a.raw(), cond, Ty::D, x, vcode::BrOperand::R(y), taken);
            a.seti(r, 0);
            a.reti(r);
            a.label(taken);
            a.seti(r, 1);
            a.reti(r);
        });
        // SAFETY: the buffer holds a complete emitted function matching this signature.
        let g: extern "C" fn(f64, f64) -> i32 = unsafe { code.as_fn() };
        for (x, y) in [(1.0, 2.0), (2.0, 1.0), (3.0, 3.0), (-1.0, 1.0)] {
            assert_eq!(g(x, y) != 0, expect(x, y), "{cond:?}({x}, {y})");
        }
    }
}

#[test]
fn conversions() {
    let code = build("%i", |a| {
        let x = a.arg(0);
        let f = a.getreg_f(RegClass::Temp).unwrap();
        a.cvi2d(f, x);
        let half = a.getreg_f(RegClass::Temp).unwrap();
        a.setd(half, 0.5);
        a.muld(f, f, half);
        let r = a.getreg(RegClass::Temp).unwrap();
        a.cvd2i(r, f);
        a.reti(r);
    });
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let g: extern "C" fn(i32) -> i32 = unsafe { code.as_fn() };
    assert_eq!(g(10), 5);
    assert_eq!(g(-9), -4, "C truncation toward zero");
    assert_eq!(g(7), 3);
}

#[test]
fn conversion_widths() {
    // i -> l sign-extends; u -> ul zero-extends.
    let code = build("%i", |a| {
        let x = a.arg(0);
        let l = a.getreg(RegClass::Temp).unwrap();
        a.cvi2l(l, x);
        a.retl(l);
    });
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let g: extern "C" fn(i32) -> i64 = unsafe { code.as_fn() };
    assert_eq!(g(-5), -5i64);
    let code = build("%u", |a| {
        let x = a.arg(0);
        let l = a.getreg(RegClass::Temp).unwrap();
        a.cvu2ul(l, x);
        a.retul(l);
    });
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let g: extern "C" fn(u32) -> u64 = unsafe { code.as_fn() };
    assert_eq!(g(0xffff_ffff), 0xffff_ffffu64);
}

#[test]
fn memory_loads_and_stores_all_widths() {
    // Copies a record field-by-field with typed loads/stores:
    // struct { i8, u8, i16, u16, i32, u32, i64, f32, f64 } at fixed offsets.
    let code = build("%p%p", |a| {
        let (src, dst) = (a.arg(0), a.arg(1));
        let t = a.getreg(RegClass::Temp).unwrap();
        let f = a.getreg_f(RegClass::Temp).unwrap();
        a.ldci(t, src, 0);
        a.stci(t, dst, 0);
        a.lduci(t, src, 1);
        a.stuci(t, dst, 1);
        a.ldsi(t, src, 2);
        a.stsi(t, dst, 2);
        a.ldusi(t, src, 4);
        a.stusi(t, dst, 4);
        a.ldii(t, src, 8);
        a.stii(t, dst, 8);
        a.ldui(t, src, 12);
        a.stui(t, dst, 12);
        a.ldli(t, src, 16);
        a.stli(t, dst, 16);
        a.ldfi(f, src, 24);
        a.stfi(f, dst, 24);
        a.lddi(f, src, 32);
        a.stdi(f, dst, 32);
        a.retv();
    });
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let g: extern "C" fn(*const u8, *mut u8) = unsafe { code.as_fn() };
    let mut src = [0u8; 40];
    src[0] = 0x80;
    src[1] = 0xff;
    src[2..4].copy_from_slice(&(-2i16).to_le_bytes());
    src[4..6].copy_from_slice(&0xbeefu16.to_le_bytes());
    src[8..12].copy_from_slice(&(-100i32).to_le_bytes());
    src[12..16].copy_from_slice(&0xdead_beefu32.to_le_bytes());
    src[16..24].copy_from_slice(&(-1i64).to_le_bytes());
    src[24..28].copy_from_slice(&1.5f32.to_le_bytes());
    src[32..40].copy_from_slice(&(-2.5f64).to_le_bytes());
    let mut dst = [0u8; 40];
    g(src.as_ptr(), dst.as_mut_ptr());
    assert_eq!(src[..6], dst[..6]);
    assert_eq!(src[8..], dst[8..]);
}

#[test]
fn sign_extension_of_sub_word_loads() {
    let code = build("%p", |a| {
        let p = a.arg(0);
        let t = a.getreg(RegClass::Temp).unwrap();
        a.ldci(t, p, 0); // signed char
        a.reti(t);
    });
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let g: extern "C" fn(*const u8) -> i32 = unsafe { code.as_fn() };
    let v = [0x80u8];
    assert_eq!(g(v.as_ptr()), -128);
    let code = build("%p", |a| {
        let p = a.arg(0);
        let t = a.getreg(RegClass::Temp).unwrap();
        a.lduci(t, p, 0); // unsigned char
        a.reti(t);
    });
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let g: extern "C" fn(*const u8) -> i32 = unsafe { code.as_fn() };
    assert_eq!(g(v.as_ptr()), 128);
}

#[test]
fn register_indexed_addressing() {
    let code = build("%p%l", |a| {
        let (p, i) = (a.arg(0), a.arg(1));
        let t = a.getreg(RegClass::Temp).unwrap();
        a.lduc(t, p, i);
        a.reti(t);
    });
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let g: extern "C" fn(*const u8, i64) -> i32 = unsafe { code.as_fn() };
    let v = [10u8, 20, 30, 40];
    assert_eq!(g(v.as_ptr(), 0), 10);
    assert_eq!(g(v.as_ptr(), 3), 40);
}

#[test]
fn locals_round_trip() {
    let code = build("%i%i", |a| {
        let (x, y) = (a.arg(0), a.arg(1));
        let sx = a.local(Ty::I);
        let sy = a.local(Ty::I);
        a.st_slot(sx, x);
        a.st_slot(sy, y);
        let t = a.getreg(RegClass::Temp).unwrap();
        let u = a.getreg(RegClass::Temp).unwrap();
        a.ld_slot(t, sx);
        a.ld_slot(u, sy);
        a.subi(t, t, u);
        a.reti(t);
    });
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let g: extern "C" fn(i32, i32) -> i32 = unsafe { code.as_fn() };
    assert_eq!(g(10, 3), 7);
}

#[test]
fn loops_with_backward_branches() {
    // sum 0..n
    let code = build("%i", |a| {
        let n = a.arg(0);
        let sum = a.getreg(RegClass::Temp).unwrap();
        let i = a.getreg(RegClass::Temp).unwrap();
        a.seti(sum, 0);
        a.seti(i, 0);
        let top = a.genlabel();
        let done = a.genlabel();
        a.label(top);
        a.bgei(i, n, done);
        a.addi(sum, sum, i);
        a.addii(i, i, 1);
        a.jmp(top);
        a.label(done);
        a.reti(sum);
    });
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let g: extern "C" fn(i32) -> i32 = unsafe { code.as_fn() };
    assert_eq!(g(10), 45);
    assert_eq!(g(0), 0);
    assert_eq!(g(1000), 499500);
}

extern "C" fn mixed_callee(a: i64, b: f64, c: i64) -> i64 {
    a + (b * 10.0) as i64 + c * 100
}

#[test]
fn dynamically_constructed_call_with_mixed_args() {
    // The paper's marshaling scenario: build a call whose argument list
    // is data at generation time.
    let code = build_nonleaf("%l%d%l", |a| {
        let (x, f, y) = (a.arg(0), a.arg(1), a.arg(2));
        let sig = Sig::parse("%l%d%l:%l").unwrap();
        let mut cf = a.call_begin(&sig);
        a.call_arg(&mut cf, 0, Ty::L, x);
        a.call_arg(&mut cf, 1, Ty::D, f);
        a.call_arg(&mut cf, 2, Ty::L, y);
        let r = a.getreg(RegClass::Temp).unwrap();
        a.call_end(
            cf,
            JumpTarget::Abs(mixed_callee as extern "C" fn(i64, f64, i64) -> i64 as usize as u64),
            Some(r),
        );
        a.retl(r);
    });
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let g: extern "C" fn(i64, f64, i64) -> i64 = unsafe { code.as_fn() };
    assert_eq!(g(1, 2.5, 3), mixed_callee(1, 2.5, 3));
    assert_eq!(g(7, 0.0, 0), 7);
}

extern "C" fn six_args(a: i64, b: i64, c: i64, d: i64, e: i64, f: i64) -> i64 {
    a + 2 * b + 3 * c + 4 * d + 5 * e + 6 * f
}

#[test]
fn call_with_six_integer_args() {
    let code = build_nonleaf("%l%l", |a| {
        let (x, y) = (a.arg(0), a.arg(1));
        let sig = Sig::parse("%l%l%l%l%l%l:%l").unwrap();
        let mut cf = a.call_begin(&sig);
        for i in 0..6 {
            a.call_arg(&mut cf, i, Ty::L, if i % 2 == 0 { x } else { y });
        }
        let r = a.getreg(RegClass::Temp).unwrap();
        a.call_end(
            cf,
            JumpTarget::Abs(
                six_args as extern "C" fn(i64, i64, i64, i64, i64, i64) -> i64 as usize as u64,
            ),
            Some(r),
        );
        a.retl(r);
    });
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let g: extern "C" fn(i64, i64) -> i64 = unsafe { code.as_fn() };
    assert_eq!(g(1, 10), six_args(1, 10, 1, 10, 1, 10));
}

#[test]
fn recursive_call_to_own_entry() {
    // fact(n) = n <= 1 ? 1 : n * fact(n - 1), calling the function's own
    // absolute entry address (known because the client owns the storage).
    let mut mem = ExecMem::new(4096).unwrap();
    let entry = mem.addr();
    let mut a = Assembler::<X64>::lambda(mem.as_mut_slice(), "%l", Leaf::No).unwrap();
    let n = a.arg(0);
    let base = a.genlabel();
    let r = a.getreg(RegClass::Persistent).unwrap();
    a.movl(r, n);
    a.bleli(n, 1, base);
    let t = a.getreg(RegClass::Temp).unwrap();
    a.subli(t, n, 1);
    let sig = Sig::parse("%l:%l").unwrap();
    let mut cf = a.call_begin(&sig);
    a.call_arg(&mut cf, 0, Ty::L, t);
    let res = a.getreg(RegClass::Temp).unwrap();
    a.call_end(cf, JumpTarget::Abs(entry), Some(res));
    a.mull(r, r, res);
    a.retl(r);
    a.label(base);
    let one = a.getreg(RegClass::Temp).unwrap();
    a.setl(one, 1);
    a.retl(one);
    a.end().unwrap();
    let code = mem.finalize().unwrap();
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let fact: extern "C" fn(i64) -> i64 = unsafe { code.as_fn() };
    assert_eq!(fact(1), 1);
    assert_eq!(fact(5), 120);
    assert_eq!(fact(12), 479001600);
}

#[test]
fn persistent_register_survives_call() {
    extern "C" fn clobberer() -> i64 {
        // Touches plenty of caller-saved registers.
        std::hint::black_box((0..32).map(|i| i * 3).sum())
    }
    let code = build_nonleaf("%l", |a| {
        let x = a.arg(0);
        let keep = a.getreg(RegClass::Persistent).unwrap();
        a.movl(keep, x);
        let sig = Sig::parse(":%l").unwrap();
        let cf = a.call_begin(&sig);
        let junk = a.getreg(RegClass::Temp).unwrap();
        a.call_end(
            cf,
            JumpTarget::Abs(clobberer as extern "C" fn() -> i64 as usize as u64),
            Some(junk),
        );
        a.retl(keep);
    });
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let g: extern "C" fn(i64) -> i64 = unsafe { code.as_fn() };
    assert_eq!(g(0x1234_5678_9abc), 0x1234_5678_9abc);
}

#[test]
fn hard_coded_register_names() {
    // Paper §5.3: clients trade allocation flexibility for ~2x faster
    // generation by using hard-coded names.
    let code = build("%i", |a| {
        let x = a.arg(0);
        let t0 = a.hard_temp(2); // r8 — arg regs 0/1 hold live args
        let t1 = a.hard_temp(3); // r9
        a.movi(t0, x);
        a.addii(t1, t0, 5);
        a.muli(t0, t0, t1);
        a.reti(t0);
    });
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let g: extern "C" fn(i32) -> i32 = unsafe { code.as_fn() };
    assert_eq!(g(3), 24);
}

#[test]
fn extension_sqrt_native_and_bswap() {
    let code = build("%d", |a| {
        let x = a.arg(0);
        let t = a.getreg_f(RegClass::Temp).unwrap();
        a.sqrtd(x, x, t);
        a.retd(x);
    });
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let g: extern "C" fn(f64) -> f64 = unsafe { code.as_fn() };
    assert_eq!(g(9.0), 3.0);
    assert_eq!(g(2.0), 2.0f64.sqrt());

    let code = build("%u", |a| {
        let x = a.arg(0);
        let d = a.getreg(RegClass::Temp).unwrap();
        let (t1, t2) = (a.hard_temp(2), a.hard_temp(3));
        a.bswapu(d, x, t1, t2);
        a.retu(d);
    });
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let g: extern "C" fn(u32) -> u32 = unsafe { code.as_fn() };
    assert_eq!(g(0x1234_5678), 0x7856_3412);
    assert_eq!(g(0xdead_beef), 0xefbe_adde);

    let code = build("%u", |a| {
        let x = a.arg(0);
        let d = a.getreg(RegClass::Temp).unwrap();
        let t = a.hard_temp(2);
        a.bswapus(d, x, t);
        a.retu(d);
    });
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let g: extern "C" fn(u32) -> u32 = unsafe { code.as_fn() };
    assert_eq!(g(0x0000_1234), 0x0000_3412);
}

#[test]
fn strength_reduced_multiply_matches_plain() {
    for c in [
        -17, -8, -1, 0, 1, 2, 3, 5, 7, 8, 10, 12, 15, 16, 24, 63, 97, 255,
    ] {
        let code = build("%i", |a| {
            let x = a.arg(0);
            let d = a.getreg(RegClass::Temp).unwrap();
            let t = a.getreg(RegClass::Temp).unwrap();
            a.muli_const(d, x, c, t);
            a.reti(d);
        });
        // SAFETY: the buffer holds a complete emitted function matching this signature.
        let g: extern "C" fn(i32) -> i32 = unsafe { code.as_fn() };
        for x in [-100, -1, 0, 1, 3, 1000, 123456] {
            assert_eq!(g(x), x.wrapping_mul(c), "{x} * {c}");
        }
    }
}

#[test]
fn strength_reduced_divide_matches_plain() {
    for c in [-16, -4, -2, -1, 1, 2, 4, 8, 32, 3, 10] {
        let code = build("%i", |a| {
            let x = a.arg(0);
            let d = a.getreg(RegClass::Temp).unwrap();
            let t = a.getreg(RegClass::Temp).unwrap();
            a.divi_const(d, x, c, t);
            a.reti(d);
        });
        // SAFETY: the buffer holds a complete emitted function matching this signature.
        let g: extern "C" fn(i32) -> i32 = unsafe { code.as_fn() };
        for x in [-100, -17, -1, 0, 1, 17, 100, 12345] {
            assert_eq!(g(x), x / c, "{x} / {c}");
        }
    }
}

#[test]
fn indirect_jump_through_register() {
    // A computed goto, the backbone of DPF's indirect dispatch: the
    // argument is the absolute address of the block to run.
    let mut mem = ExecMem::new(4096).unwrap();
    let mut a = Assembler::<X64>::lambda(mem.as_mut_slice(), "%p", Leaf::Yes).unwrap();
    let target = a.arg(0);
    // `rsi` (hard temp 1) holds the result so the block offset below is
    // a fixed, REX-free `mov esi, imm32` we can locate byte-exactly.
    let r = a.hard_temp(1);
    a.jmp_reg(target);
    a.seti(r, 100);
    a.reti(r);
    a.seti(r, 200);
    a.reti(r);
    a.end().unwrap();
    let image: Vec<u8> = mem.as_mut_slice().to_vec();
    let needle = {
        let mut v = vec![0xbeu8]; // mov esi, 200
        v.extend_from_slice(&200u32.to_le_bytes());
        v
    };
    let pos = image
        .windows(needle.len())
        .position(|w| w == needle)
        .expect("found the seti 200 block");
    let code = mem.finalize().unwrap();
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let g: extern "C" fn(u64) -> i32 = unsafe { code.as_fn() };
    assert_eq!(g(code.addr() + pos as u64), 200);
}

#[test]
fn release_arg_recycles_register() {
    let code = build("%i%i", |a| {
        let (x, y) = (a.arg(0), a.arg(1));
        let t = a.getreg(RegClass::Temp).unwrap();
        a.addi(t, x, y);
        a.release_arg(0);
        let z = a.getreg(RegClass::Temp).unwrap();
        a.seti(z, 2);
        a.muli(t, t, z);
        a.reti(t);
    });
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let g: extern "C" fn(i32, i32) -> i32 = unsafe { code.as_fn() };
    assert_eq!(g(3, 4), 14);
}

#[test]
fn void_return() {
    let code = build("%p", |a| {
        let p = a.arg(0);
        let t = a.getreg(RegClass::Temp).unwrap();
        a.seti(t, 99);
        a.stii(t, p, 0);
        a.retv();
    });
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let g: extern "C" fn(*mut i32) = unsafe { code.as_fn() };
    let mut out = 0i32;
    g(&mut out);
    assert_eq!(out, 99);
}

#[test]
fn many_functions_in_one_buffer() {
    let mut farm = Farm::new(64, 96);
    let offs: Vec<usize> = (0..64)
        .map(|k| {
            farm.add("%l", |a| {
                let x = a.arg(0);
                a.addli(x, x, k as i64);
                a.retl(x);
            })
        })
        .collect();
    farm.finalize();
    for (k, off) in offs.iter().enumerate() {
        // SAFETY: the farm offset points at a complete emitted function of this arity.
        assert_eq!(unsafe { farm.call1(*off, 1000) }, 1000 + k as u64);
    }
}

#[test]
fn interrupt_handler_reclassification() {
    // Paper §5.3: "in an interrupt handler all registers are live.
    // Therefore, for correctness, VCODE must treat all registers as
    // callee-saved." A function that reclassifies the caller-saved
    // temporaries and then clobbers them must preserve them for its
    // caller.
    use vcode::RegKind;
    let mut mem = ExecMem::new(4096).unwrap();
    let mut a = Assembler::<X64>::lambda(mem.as_mut_slice(), "", Leaf::Yes).unwrap();
    for n in [10u8, 8, 9] {
        a.set_register_class(Reg::int(n), RegKind::CalleeSaved);
    }
    // Allocate and trash what are normally scratch temporaries.
    for _ in 0..3 {
        let t = a.getreg(RegClass::Temp).unwrap();
        a.setl(t, -1);
    }
    a.retv();
    a.end().unwrap();
    let handler = mem.finalize().unwrap();

    // The caller keeps live values in those same registers across the
    // call (legal only because the handler now saves them).
    let code = build_nonleaf("%l", |a| {
        let x = a.arg(0);
        let (t0, t1, t2) = (Reg::int(10), Reg::int(8), Reg::int(9));
        a.movl(t0, x);
        a.addli(t1, x, 1);
        a.addli(t2, x, 2);
        let sig = Sig::parse("").unwrap();
        let cf = a.call_begin(&sig);
        a.call_end(cf, JumpTarget::Abs(handler.addr()), None);
        a.addl(t0, t0, t1);
        a.addl(t0, t0, t2);
        a.retl(t0);
    });
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let g: extern "C" fn(i64) -> i64 = unsafe { code.as_fn() };
    assert_eq!(g(100), 100 + 101 + 102);
}
