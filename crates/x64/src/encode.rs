//! x86-64 instruction encoders.
//!
//! These are the machine-instruction emitters a retarget constructs first
//! (paper §3.3 step 1): small functions that append one encoded
//! instruction to the in-place [`CodeBuffer`]. The VCODE-to-machine
//! mapping in [`crate::X64`] is built on top of them.
//!
//! Register operands are raw hardware numbers (`rax`=0 ... `r15`=15,
//! `xmm0`=0 ... `xmm15`=15).
//!
//! Every emitter pays exactly one capacity check: it reserves a
//! [`MAX_INSN`]-byte window ([`CodeBuffer::window`]) and then batches the
//! prefix/REX/opcode/modrm/SIB/immediate bytes as unchecked stores. The
//! longest instruction emitted here is `movabs` (10 bytes) or a
//! prefix+REX+2-byte-opcode+modrm+SIB+disp32 memory form (10 bytes), so a
//! 16-byte reservation is conservatively safe.

use vcode::buf::{CodeBuffer, Win};

/// Conservative upper bound on the byte length of a single instruction
/// emitted by this module (hardware max is 15; our longest form is 10).
/// The extra slack also satisfies [`Win::word`]'s 8-byte store.
pub const MAX_INSN: usize = 16;

/// A packed little-endian instruction head (prefix/REX/opcode/modrm/SIB,
/// at most 8 bytes) assembled in a register and committed with a single
/// [`Win::word`] store. `push_if` keeps optional bytes (prefixes, REX)
/// branch-free: a suppressed byte ORs in as zero and leaves the cursor
/// in place for the next byte.
#[derive(Clone, Copy)]
struct InsnWord {
    word: u64,
    n: usize,
}

impl InsnWord {
    #[inline]
    fn new() -> InsnWord {
        InsnWord { word: 0, n: 0 }
    }

    #[inline]
    fn push(&mut self, b: u8) {
        self.word |= (b as u64) << (8 * self.n);
        self.n += 1;
    }

    #[inline]
    fn push_if(&mut self, b: u8, cond: bool) {
        self.word |= ((b as u64) * (cond as u64)) << (8 * self.n);
        self.n += cond as usize;
    }

    /// Builds a head whose REX byte sits at byte 0 and whose remaining
    /// bytes (`tail`, `tail_len` of them, little-endian) occupy
    /// compile-time-constant positions, then drops the REX with a single
    /// conditional shift when it encodes nothing. This keeps the hot
    /// register-register emitters free of data-dependent shift chains:
    /// every byte lands at a constant position and exactly one shift
    /// depends on whether the REX survives.
    #[inline(always)]
    fn headed(rex: u8, force: bool, tail: u64, tail_len: usize) -> InsnWord {
        let keep = (rex != 0x40 || force) as u32;
        InsnWord {
            word: (tail << 8 | rex as u64) >> (8 * (1 - keep)),
            n: tail_len + keep as usize,
        }
    }

    /// Prepends a mandatory prefix byte (0x66 / SSE scalar prefixes) in
    /// front of the head built so far.
    #[inline(always)]
    fn prepend(&mut self, b: u8) {
        self.word = self.word << 8 | b as u64;
        self.n += 1;
    }

    /// Flushes the packed word: one capacity check, one 8-byte store.
    #[inline(always)]
    fn commit(self, buf: &mut CodeBuffer<'_>) {
        buf.put_word(self.word, self.n);
    }

    /// Flushes into an already-reserved window (emitters that append a
    /// trailer or take a fixup offset after the head).
    #[inline(always)]
    fn commit_win(self, w: &mut Win<'_, '_>) {
        w.word(self.word, self.n);
    }
}

/// Hardware register numbers, for readability at call sites.
pub mod r {
    #![allow(missing_docs)]
    pub const RAX: u8 = 0;
    pub const RCX: u8 = 1;
    pub const RDX: u8 = 2;
    pub const RBX: u8 = 3;
    pub const RSP: u8 = 4;
    pub const RBP: u8 = 5;
    pub const RSI: u8 = 6;
    pub const RDI: u8 = 7;
    pub const R8: u8 = 8;
    pub const R9: u8 = 9;
    pub const R10: u8 = 10;
    pub const R11: u8 = 11;
    pub const R12: u8 = 12;
    pub const R13: u8 = 13;
    pub const R14: u8 = 14;
    pub const R15: u8 = 15;
}

/// Condition-code nibbles for `jcc`/`setcc`.
pub mod cc {
    #![allow(missing_docs)]
    pub const B: u8 = 0x2; // below (unsigned <, also ucomis <)
    pub const AE: u8 = 0x3;
    pub const E: u8 = 0x4;
    pub const NE: u8 = 0x5;
    pub const BE: u8 = 0x6;
    pub const A: u8 = 0x7;
    pub const L: u8 = 0xc;
    pub const GE: u8 = 0xd;
    pub const LE: u8 = 0xe;
    pub const G: u8 = 0xf;
}

/// A memory operand: `[base + index + disp]` (index unscaled; VCODE's
/// register offsets are byte offsets).
#[derive(Debug, Clone, Copy)]
pub struct Mem {
    /// Base register.
    pub base: u8,
    /// Optional (unscaled) index register. Must not be `rsp`.
    pub index: Option<u8>,
    /// Displacement.
    pub disp: i32,
}

impl Mem {
    /// `[base + disp]`.
    pub fn bd(base: u8, disp: i32) -> Mem {
        Mem {
            base,
            index: None,
            disp,
        }
    }

    /// `[base + index]`.
    pub fn bi(base: u8, index: u8) -> Mem {
        debug_assert_ne!(index, r::RSP, "rsp cannot be an index register");
        Mem {
            base,
            index: Some(index),
            disp: 0,
        }
    }
}

/// The REX byte for the given operand extensions (0x40 when empty).
#[inline(always)]
fn rex_byte(wide: bool, reg: u8, x: u8, b: u8) -> u8 {
    0x40 | (wide as u8) << 3 | (reg >> 3) << 2 | (x >> 3) << 1 | (b >> 3)
}

/// Pushes the REX byte when it carries information (or is forced).
#[inline]
fn rex(iw: &mut InsnWord, wide: bool, reg: u8, x: u8, b: u8, force: bool) {
    let byte = rex_byte(wide, reg, x, b);
    iw.push_if(byte, byte != 0x40 || force);
}

/// The modrm byte.
#[inline(always)]
fn modrm_byte(md: u8, reg: u8, rm: u8) -> u8 {
    md << 6 | (reg & 7) << 3 | (rm & 7)
}

/// Emits `[prefix] [REX] opcode modrm(reg, rm)` for a register-register
/// form — one reservation, one packed store.
#[inline(always)]
fn op_rr(
    buf: &mut CodeBuffer<'_>,
    prefix: Option<u8>,
    opc: &[u8],
    wide: bool,
    reg: u8,
    rm: u8,
    force_rex: bool,
) {
    let mut tail = 0u64;
    let mut sh = 0;
    for &b in opc {
        tail |= (b as u64) << sh;
        sh += 8;
    }
    tail |= (modrm_byte(0b11, reg, rm) as u64) << sh;
    let mut iw = InsnWord::headed(rex_byte(wide, reg, 0, rm), force_rex, tail, opc.len() + 1);
    if let Some(p) = prefix {
        iw.prepend(p);
    }
    iw.commit(buf);
}

/// Emits `[prefix] [REX] opcode modrm/sib/disp` for a memory form.
#[inline]
fn op_mem(
    buf: &mut CodeBuffer<'_>,
    prefix: Option<u8>,
    opc: &[u8],
    wide: bool,
    reg: u8,
    m: Mem,
    force_rex: bool,
) {
    let mut iw = InsnWord::new();
    iw.push_if(prefix.unwrap_or(0), prefix.is_some());
    let x = m.index.unwrap_or(0);
    rex(&mut iw, wide, reg, x, m.base, force_rex);
    for &b in opc {
        iw.push(b);
    }
    // Pick the shortest displacement encoding. `rbp`/`r13` as base with
    // mod=00 means rip-relative/absolute, so they always need a disp.
    let need_disp = m.disp != 0 || m.base & 7 == 5;
    let md = if !need_disp {
        0b00
    } else if i8::try_from(m.disp).is_ok() {
        0b01
    } else {
        0b10
    };
    match m.index {
        Some(idx) => {
            debug_assert_ne!(idx & 0xf, r::RSP);
            iw.push(modrm_byte(md, reg, 0b100));
            // SIB: scale=1, index, base.
            iw.push((idx & 7) << 3 | (m.base & 7));
        }
        None if m.base & 7 == 4 => {
            // rsp/r12 as base require a SIB byte.
            iw.push(modrm_byte(md, reg, 0b100));
            iw.push(0b10_0100 | (m.base & 7)); // index=100 (none)
        }
        None => iw.push(modrm_byte(md, reg, m.base)),
    }
    // disp8 rides in the packed head; disp32 is its own checked store.
    iw.push_if(m.disp as u8, md == 0b01);
    iw.commit(buf);
    if md == 0b10 {
        buf.put_u32(m.disp as u32);
    }
}

// ---- integer ALU ----

/// Two-operand ALU opcodes in `op r/m, reg` form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alu {
    /// Addition.
    Add = 0x01,
    /// Bitwise or.
    Or = 0x09,
    /// Bitwise and.
    And = 0x21,
    /// Subtraction.
    Sub = 0x29,
    /// Bitwise xor.
    Xor = 0x31,
    /// Comparison (sets flags only).
    Cmp = 0x39,
}

impl Alu {
    /// The `/ext` digit of the immediate form (`81 /ext`).
    pub fn imm_ext(self) -> u8 {
        match self {
            Alu::Add => 0,
            Alu::Or => 1,
            Alu::And => 4,
            Alu::Sub => 5,
            Alu::Xor => 6,
            Alu::Cmp => 7,
        }
    }
}

/// `op rm, reg` (e.g. `add rdi, rsi`).
#[inline(always)]
pub fn alu_rr(buf: &mut CodeBuffer<'_>, op: Alu, w: bool, rm: u8, reg: u8) {
    op_rr(buf, None, &[op as u8], w, reg, rm, false);
}

/// `op rm, imm` — uses the sign-extended-imm8 form when it fits.
#[inline(always)]
pub fn alu_imm(buf: &mut CodeBuffer<'_>, op: Alu, wide: bool, rm: u8, imm: i32) {
    let r = rex_byte(wide, 0, 0, rm);
    let modrm = modrm_byte(0b11, op.imm_ext(), rm) as u64;
    let iw = if let Ok(i8v) = i8::try_from(imm) {
        InsnWord::headed(r, false, 0x83 | modrm << 8 | (i8v as u8 as u64) << 16, 3)
    } else {
        InsnWord::headed(r, false, 0x81 | modrm << 8 | (imm as u32 as u64) << 16, 6)
    };
    iw.commit(buf);
}

/// `mov rm, reg`.
#[inline(always)]
pub fn mov_rr(buf: &mut CodeBuffer<'_>, w: bool, rm: u8, reg: u8) {
    op_rr(buf, None, &[0x89], w, reg, rm, false);
}

/// Loads a 64-bit immediate with the shortest encoding (`mov r32, imm32`
/// zero-extends; `mov r/m64, imm32` sign-extends; otherwise `movabs`).
#[inline]
pub fn mov_ri(buf: &mut CodeBuffer<'_>, rd: u8, imm: i64) {
    if imm >= 0 && imm <= u32::MAX as i64 {
        let tail = (0xb8 + (rd & 7)) as u64 | (imm as u32 as u64) << 8;
        InsnWord::headed(rex_byte(false, 0, 0, rd), false, tail, 5).commit(buf);
    } else if i32::try_from(imm).is_ok() {
        let modrm = modrm_byte(0b11, 0, rd) as u64;
        let tail = 0xc7 | modrm << 8 | (imm as u32 as u64) << 16;
        InsnWord::headed(rex_byte(true, 0, 0, rd), false, tail, 6).commit(buf);
    } else {
        let mut w = buf.window(MAX_INSN);
        let tail = (0xb8 + (rd & 7)) as u64;
        InsnWord::headed(rex_byte(true, 0, 0, rd), false, tail, 1).commit_win(&mut w);
        w.u64(imm as u64);
    }
}

/// `mov r32, imm32` (zero-extends into the 64-bit register).
#[inline(always)]
pub fn mov_ri32(buf: &mut CodeBuffer<'_>, rd: u8, imm: u32) {
    let tail = (0xb8 + (rd & 7)) as u64 | (imm as u64) << 8;
    InsnWord::headed(rex_byte(false, 0, 0, rd), false, tail, 5).commit(buf);
}

/// `imul reg, rm` (two-operand signed multiply; low bits are also the
/// unsigned product).
#[inline(always)]
pub fn imul_rr(buf: &mut CodeBuffer<'_>, w: bool, reg: u8, rm: u8) {
    op_rr(buf, None, &[0x0f, 0xaf], w, reg, rm, false);
}

/// `imul reg, rm, imm32`.
#[inline(always)]
pub fn imul_rri(buf: &mut CodeBuffer<'_>, wide: bool, reg: u8, rm: u8, imm: i32) {
    let modrm = modrm_byte(0b11, reg, rm) as u64;
    let tail = 0x69 | modrm << 8 | (imm as u32 as u64) << 16;
    InsnWord::headed(rex_byte(wide, reg, 0, rm), false, tail, 6).commit(buf);
}

/// Group-3 unary ops: `F7 /ext` — `not`=2, `neg`=3, `mul`=4, `imul`=5,
/// `div`=6, `idiv`=7.
#[inline]
pub fn unary_rm(buf: &mut CodeBuffer<'_>, ext: u8, wide: bool, rm: u8) {
    let tail = 0xf7 | (modrm_byte(0b11, ext, rm) as u64) << 8;
    InsnWord::headed(rex_byte(wide, 0, 0, rm), false, tail, 2).commit(buf);
}

/// Shift by `cl`: `D3 /ext` — `shl`=4, `shr`=5, `sar`=7.
#[inline(always)]
pub fn shift_cl(buf: &mut CodeBuffer<'_>, ext: u8, wide: bool, rm: u8) {
    let tail = 0xd3 | (modrm_byte(0b11, ext, rm) as u64) << 8;
    InsnWord::headed(rex_byte(wide, 0, 0, rm), false, tail, 2).commit(buf);
}

/// Shift by immediate: `C1 /ext ib`.
#[inline(always)]
pub fn shift_imm(buf: &mut CodeBuffer<'_>, ext: u8, wide: bool, rm: u8, imm: u8) {
    let tail = 0xc1 | (modrm_byte(0b11, ext, rm) as u64) << 8 | (imm as u64) << 16;
    InsnWord::headed(rex_byte(wide, 0, 0, rm), false, tail, 3).commit(buf);
}

/// `cdq` (sign-extend `eax` into `edx`).
#[inline]
pub fn cdq(buf: &mut CodeBuffer<'_>) {
    buf.put_u8(0x99);
}

/// `cqo` (sign-extend `rax` into `rdx`).
#[inline]
pub fn cqo(buf: &mut CodeBuffer<'_>) {
    buf.put_array([0x48, 0x99]);
}

/// `movsxd reg64, rm32`.
#[inline]
pub fn movsxd(buf: &mut CodeBuffer<'_>, reg: u8, rm: u8) {
    op_rr(buf, None, &[0x63], true, reg, rm, false);
}

/// `movsx reg32, rm8`.
#[inline]
pub fn movsx8_rr(buf: &mut CodeBuffer<'_>, reg: u8, rm: u8) {
    // sil/dil/bpl/spl need a REX prefix to mean the low byte.
    op_rr(buf, None, &[0x0f, 0xbe], false, reg, rm, rm >= 4);
}

/// `movzx reg32, rm8`.
#[inline]
pub fn movzx8_rr(buf: &mut CodeBuffer<'_>, reg: u8, rm: u8) {
    op_rr(buf, None, &[0x0f, 0xb6], false, reg, rm, rm >= 4);
}

/// `movsx reg32, rm16`.
#[inline]
pub fn movsx16_rr(buf: &mut CodeBuffer<'_>, reg: u8, rm: u8) {
    op_rr(buf, None, &[0x0f, 0xbf], false, reg, rm, false);
}

/// `movzx reg32, rm16`.
#[inline]
pub fn movzx16_rr(buf: &mut CodeBuffer<'_>, reg: u8, rm: u8) {
    op_rr(buf, None, &[0x0f, 0xb7], false, reg, rm, false);
}

// ---- loads/stores ----

/// `mov reg, [mem]` (32- or 64-bit).
#[inline]
pub fn load(buf: &mut CodeBuffer<'_>, w: bool, reg: u8, m: Mem) {
    op_mem(buf, None, &[0x8b], w, reg, m, false);
}

/// `movzx reg32, byte [mem]`.
#[inline]
pub fn load8_zx(buf: &mut CodeBuffer<'_>, reg: u8, m: Mem) {
    op_mem(buf, None, &[0x0f, 0xb6], false, reg, m, false);
}

/// `movsx reg32, byte [mem]`.
#[inline]
pub fn load8_sx(buf: &mut CodeBuffer<'_>, reg: u8, m: Mem) {
    op_mem(buf, None, &[0x0f, 0xbe], false, reg, m, false);
}

/// `movzx reg32, word [mem]`.
#[inline]
pub fn load16_zx(buf: &mut CodeBuffer<'_>, reg: u8, m: Mem) {
    op_mem(buf, None, &[0x0f, 0xb7], false, reg, m, false);
}

/// `movsx reg32, word [mem]`.
#[inline]
pub fn load16_sx(buf: &mut CodeBuffer<'_>, reg: u8, m: Mem) {
    op_mem(buf, None, &[0x0f, 0xbf], false, reg, m, false);
}

/// `mov [mem], reg` (32- or 64-bit).
#[inline]
pub fn store(buf: &mut CodeBuffer<'_>, w: bool, reg: u8, m: Mem) {
    op_mem(buf, None, &[0x89], w, reg, m, false);
}

/// `mov [mem], reg16`.
#[inline]
pub fn store16(buf: &mut CodeBuffer<'_>, reg: u8, m: Mem) {
    op_mem(buf, Some(0x66), &[0x89], false, reg, m, false);
}

/// `mov [mem], reg8`.
#[inline]
pub fn store8(buf: &mut CodeBuffer<'_>, reg: u8, m: Mem) {
    op_mem(buf, None, &[0x88], false, reg, m, reg >= 4);
}

/// `lea reg, [mem]`.
#[inline]
pub fn lea(buf: &mut CodeBuffer<'_>, w: bool, reg: u8, m: Mem) {
    op_mem(buf, None, &[0x8d], w, reg, m, false);
}

/// RIP-relative load `mov reg, [rip+disp32]` (w), returning the buffer
/// offset of the disp32 field for fixup. Disp is `dest - (field + 4)`.
#[inline]
pub fn load_rip(buf: &mut CodeBuffer<'_>, wide: bool, reg: u8) -> usize {
    let mut w = buf.window(MAX_INSN);
    let tail = 0x8b | (modrm_byte(0b00, reg, 0b101) as u64) << 8;
    InsnWord::headed(rex_byte(wide, reg, 0, 0), false, tail, 2).commit_win(&mut w);
    let at = w.len();
    w.u32(0);
    at
}

/// RIP-relative SSE load (`movss`/`movsd xmm, [rip+disp32]`), returning
/// the disp32 fixup offset.
#[inline]
pub fn sse_load_rip(buf: &mut CodeBuffer<'_>, prefix: u8, reg: u8) -> usize {
    let mut w = buf.window(MAX_INSN);
    let tail = 0x0f | 0x10 << 8 | (modrm_byte(0b00, reg, 0b101) as u64) << 16;
    let mut iw = InsnWord::headed(rex_byte(false, reg, 0, 0), false, tail, 3);
    iw.prepend(prefix);
    iw.commit_win(&mut w);
    let at = w.len();
    w.u32(0);
    at
}

// ---- control flow ----

/// `jcc rel32`, returning the offset of the rel32 field.
#[inline]
pub fn jcc(buf: &mut CodeBuffer<'_>, cond: u8) -> usize {
    let mut w = buf.window(MAX_INSN);
    w.array([0x0f, 0x80 + cond]);
    let at = w.len();
    w.u32(0);
    at
}

/// `jmp rel32`, returning the offset of the rel32 field.
#[inline]
pub fn jmp_rel(buf: &mut CodeBuffer<'_>) -> usize {
    let mut w = buf.window(MAX_INSN);
    w.u8(0xe9);
    let at = w.len();
    w.u32(0);
    at
}

/// `call rel32`, returning the offset of the rel32 field.
#[inline]
pub fn call_rel(buf: &mut CodeBuffer<'_>) -> usize {
    let mut w = buf.window(MAX_INSN);
    w.u8(0xe8);
    let at = w.len();
    w.u32(0);
    at
}

/// `jmp reg`.
#[inline]
pub fn jmp_rm(buf: &mut CodeBuffer<'_>, rm: u8) {
    let tail = 0xff | (modrm_byte(0b11, 4, rm) as u64) << 8;
    InsnWord::headed(rex_byte(false, 0, 0, rm), false, tail, 2).commit(buf);
}

/// `call reg`.
#[inline]
pub fn call_rm(buf: &mut CodeBuffer<'_>, rm: u8) {
    let tail = 0xff | (modrm_byte(0b11, 2, rm) as u64) << 8;
    InsnWord::headed(rex_byte(false, 0, 0, rm), false, tail, 2).commit(buf);
}

/// `ret`.
#[inline]
pub fn ret(buf: &mut CodeBuffer<'_>) {
    buf.put_u8(0xc3);
}

/// `push reg64`.
#[inline]
pub fn push(buf: &mut CodeBuffer<'_>, reg: u8) {
    let tail = (0x50 + (reg & 7)) as u64;
    InsnWord::headed(rex_byte(false, 0, 0, reg), false, tail, 1).commit(buf);
}

/// `pop reg64`.
#[inline]
pub fn pop(buf: &mut CodeBuffer<'_>, reg: u8) {
    let tail = (0x58 + (reg & 7)) as u64;
    InsnWord::headed(rex_byte(false, 0, 0, reg), false, tail, 1).commit(buf);
}

/// `leave`.
#[inline]
pub fn leave(buf: &mut CodeBuffer<'_>) {
    buf.put_u8(0xc9);
}

/// `nop`.
#[inline]
pub fn nop(buf: &mut CodeBuffer<'_>) {
    buf.put_u8(0x90);
}

/// `setcc rm8` (the register must be zeroed separately).
#[inline]
pub fn setcc(buf: &mut CodeBuffer<'_>, cond: u8, rm: u8) {
    let tail = 0x0f | ((0x90 + cond) as u64) << 8 | (modrm_byte(0b11, 0, rm) as u64) << 16;
    InsnWord::headed(rex_byte(false, 0, 0, rm), rm >= 4, tail, 3).commit(buf);
}

/// `bswap reg` (32- or 64-bit).
#[inline]
pub fn bswap(buf: &mut CodeBuffer<'_>, wide: bool, reg: u8) {
    let tail = 0x0f | ((0xc8 + (reg & 7)) as u64) << 8;
    InsnWord::headed(rex_byte(wide, 0, 0, reg), false, tail, 2).commit(buf);
}

/// `ror reg16, imm8`.
#[inline]
pub fn ror16_imm(buf: &mut CodeBuffer<'_>, rm: u8, imm: u8) {
    let tail = 0xc1 | (modrm_byte(0b11, 1, rm) as u64) << 8 | (imm as u64) << 16;
    let mut iw = InsnWord::headed(rex_byte(false, 0, 0, rm), false, tail, 3);
    iw.prepend(0x66);
    iw.commit(buf);
}

// ---- SSE scalar float ----

/// Mandatory-prefix values for the scalar SSE forms.
pub mod sse {
    #![allow(missing_docs)]
    pub const SS: u8 = 0xf3; // single
    pub const SD: u8 = 0xf2; // double
}

/// `[prefix] 0F op xmm_reg, xmm_rm` (addss/mulsd/sqrtss/movss...).
#[inline]
pub fn sse_rr(buf: &mut CodeBuffer<'_>, prefix: Option<u8>, op: u8, reg: u8, rm: u8) {
    op_rr(buf, prefix, &[0x0f, op], false, reg, rm, false);
}

/// `[prefix] 0F op xmm_reg, [mem]`.
#[inline]
pub fn sse_mem(buf: &mut CodeBuffer<'_>, prefix: Option<u8>, op: u8, reg: u8, m: Mem) {
    op_mem(buf, prefix, &[0x0f, op], false, reg, m, false);
}

/// `cvtsi2ss/sd xmm, reg` (`w` selects the 64-bit integer source).
#[inline]
pub fn cvtsi2(buf: &mut CodeBuffer<'_>, prefix: u8, wide: bool, xmm: u8, gpr: u8) {
    let tail = 0x0f | 0x2a << 8 | (modrm_byte(0b11, xmm, gpr) as u64) << 16;
    let mut iw = InsnWord::headed(rex_byte(wide, xmm, 0, gpr), false, tail, 3);
    iw.prepend(prefix);
    iw.commit(buf);
}

/// `cvttss/sd2si reg, xmm` (truncating; `w` selects 64-bit destination).
#[inline]
pub fn cvtt2si(buf: &mut CodeBuffer<'_>, prefix: u8, wide: bool, gpr: u8, xmm: u8) {
    let tail = 0x0f | 0x2c << 8 | (modrm_byte(0b11, gpr, xmm) as u64) << 16;
    let mut iw = InsnWord::headed(rex_byte(wide, gpr, 0, xmm), false, tail, 3);
    iw.prepend(prefix);
    iw.commit(buf);
}

/// `ucomiss xmm, xmm` (`double`: pass `prefix66 = true`).
#[inline]
pub fn ucomis(buf: &mut CodeBuffer<'_>, prefix66: bool, reg: u8, rm: u8) {
    let p = if prefix66 { Some(0x66) } else { None };
    op_rr(buf, p, &[0x0f, 0x2e], false, reg, rm, false);
}

/// `xorps xmm, xmm` (used for float negation via sign-mask).
#[inline]
pub fn xorps(buf: &mut CodeBuffer<'_>, reg: u8, rm: u8) {
    op_rr(buf, None, &[0x0f, 0x57], false, reg, rm, false);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emit(f: impl FnOnce(&mut CodeBuffer<'_>)) -> Vec<u8> {
        let mut mem = [0u8; 64];
        let mut buf = CodeBuffer::new(&mut mem);
        f(&mut buf);
        buf.as_slice().to_vec()
    }

    #[test]
    fn alu_encodings_match_reference() {
        // add rax, rbx
        assert_eq!(
            emit(|b| alu_rr(b, Alu::Add, true, r::RAX, r::RBX)),
            [0x48, 0x01, 0xd8]
        );
        // sub edi, esi
        assert_eq!(
            emit(|b| alu_rr(b, Alu::Sub, false, r::RDI, r::RSI)),
            [0x29, 0xf7]
        );
        // xor r8, r9
        assert_eq!(
            emit(|b| alu_rr(b, Alu::Xor, true, r::R8, r::R9)),
            [0x4d, 0x31, 0xc8]
        );
        // cmp rdi, 10 (imm8 form)
        assert_eq!(
            emit(|b| alu_imm(b, Alu::Cmp, true, r::RDI, 10)),
            [0x48, 0x83, 0xff, 0x0a]
        );
        // add esi, 0x1000 (imm32 form)
        assert_eq!(
            emit(|b| alu_imm(b, Alu::Add, false, r::RSI, 0x1000)),
            [0x81, 0xc6, 0x00, 0x10, 0x00, 0x00]
        );
    }

    #[test]
    fn mov_encodings() {
        // mov rdi, rsi
        assert_eq!(
            emit(|b| mov_rr(b, true, r::RDI, r::RSI)),
            [0x48, 0x89, 0xf7]
        );
        // mov eax, 42
        assert_eq!(emit(|b| mov_ri(b, r::RAX, 42)), [0xb8, 42, 0, 0, 0]);
        // mov rax, -1 → REX.W C7 sign-extended imm32
        assert_eq!(
            emit(|b| mov_ri(b, r::RAX, -1)),
            [0x48, 0xc7, 0xc0, 0xff, 0xff, 0xff, 0xff]
        );
        // movabs r10, 0x1_0000_0000
        assert_eq!(
            emit(|b| mov_ri(b, r::R10, 0x1_0000_0000)),
            [0x49, 0xba, 0, 0, 0, 0, 1, 0, 0, 0]
        );
    }

    #[test]
    fn mul_div_shift_encodings() {
        // imul rax, rbx
        assert_eq!(
            emit(|b| imul_rr(b, true, r::RAX, r::RBX)),
            [0x48, 0x0f, 0xaf, 0xc3]
        );
        // idiv rdi
        assert_eq!(emit(|b| unary_rm(b, 7, true, r::RDI)), [0x48, 0xf7, 0xff]);
        // shl rsi, cl
        assert_eq!(emit(|b| shift_cl(b, 4, true, r::RSI)), [0x48, 0xd3, 0xe6]);
        // sar edi, 31
        assert_eq!(
            emit(|b| shift_imm(b, 7, false, r::RDI, 31)),
            [0xc1, 0xff, 31]
        );
    }

    #[test]
    fn widening_moves() {
        // movsxd rax, edi
        assert_eq!(emit(|b| movsxd(b, r::RAX, r::RDI)), [0x48, 0x63, 0xc7]);
        // movzx eax, sil — needs REX for sil
        assert_eq!(
            emit(|b| movzx8_rr(b, r::RAX, r::RSI)),
            [0x40, 0x0f, 0xb6, 0xc6]
        );
        // movzx eax, r9w
        assert_eq!(
            emit(|b| movzx16_rr(b, r::RAX, r::R9)),
            [0x41, 0x0f, 0xb7, 0xc1]
        );
    }

    #[test]
    fn memory_operands() {
        // mov rax, [rdi+16]
        assert_eq!(
            emit(|b| load(b, true, r::RAX, Mem::bd(r::RDI, 16))),
            [0x48, 0x8b, 0x47, 0x10]
        );
        // mov eax, [rbp] — rbp base forces a disp8 of 0
        assert_eq!(
            emit(|b| load(b, false, r::RAX, Mem::bd(r::RBP, 0))),
            [0x8b, 0x45, 0x00]
        );
        // mov rax, [rsp+8] — rsp base forces SIB
        assert_eq!(
            emit(|b| load(b, true, r::RAX, Mem::bd(r::RSP, 8))),
            [0x48, 0x8b, 0x44, 0x24, 0x08]
        );
        // mov rax, [r13] — r13 behaves like rbp
        assert_eq!(
            emit(|b| load(b, true, r::RAX, Mem::bd(r::R13, 0))),
            [0x49, 0x8b, 0x45, 0x00]
        );
        // mov rax, [rdi+rsi]
        assert_eq!(
            emit(|b| load(b, true, r::RAX, Mem::bi(r::RDI, r::RSI))),
            [0x48, 0x8b, 0x04, 0x37]
        );
        // mov [rdi+0x200], rax — disp32
        assert_eq!(
            emit(|b| store(b, true, r::RAX, Mem::bd(r::RDI, 0x200))),
            [0x48, 0x89, 0x87, 0x00, 0x02, 0x00, 0x00]
        );
        // mov [rdi], sil — byte store of sil needs bare REX
        assert_eq!(
            emit(|b| store8(b, r::RSI, Mem::bd(r::RDI, 0))),
            [0x40, 0x88, 0x37]
        );
        // mov [rdi], word si
        assert_eq!(
            emit(|b| store16(b, r::RSI, Mem::bd(r::RDI, 0))),
            [0x66, 0x89, 0x37]
        );
    }

    #[test]
    fn control_flow() {
        assert_eq!(
            emit(|b| {
                jmp_rel(b);
            }),
            [0xe9, 0, 0, 0, 0]
        );
        assert_eq!(
            emit(|b| {
                jcc(b, cc::NE);
            }),
            [0x0f, 0x85, 0, 0, 0, 0]
        );
        assert_eq!(emit(|b| call_rm(b, r::R11)), [0x41, 0xff, 0xd3]);
        assert_eq!(emit(|b| jmp_rm(b, r::RAX)), [0xff, 0xe0]);
        assert_eq!(emit(|b| push(b, r::RBP)), [0x55]);
        assert_eq!(emit(|b| push(b, r::R12)), [0x41, 0x54]);
        assert_eq!(emit(|b| pop(b, r::RBP)), [0x5d]);
        assert_eq!(
            emit(|b| {
                leave(b);
                ret(b)
            }),
            [0xc9, 0xc3]
        );
    }

    #[test]
    fn sse_encodings() {
        // addsd xmm0, xmm1
        assert_eq!(
            emit(|b| sse_rr(b, Some(sse::SD), 0x58, 0, 1)),
            [0xf2, 0x0f, 0x58, 0xc1]
        );
        // movss xmm8, xmm1
        assert_eq!(
            emit(|b| sse_rr(b, Some(sse::SS), 0x10, 8, 1)),
            [0xf3, 0x44, 0x0f, 0x10, 0xc1]
        );
        // cvtsi2sd xmm0, rdi
        assert_eq!(
            emit(|b| cvtsi2(b, sse::SD, true, 0, r::RDI)),
            [0xf2, 0x48, 0x0f, 0x2a, 0xc7]
        );
        // cvttsd2si eax, xmm0
        assert_eq!(
            emit(|b| cvtt2si(b, sse::SD, false, r::RAX, 0)),
            [0xf2, 0x0f, 0x2c, 0xc0]
        );
        // ucomisd xmm0, xmm1
        assert_eq!(emit(|b| ucomis(b, true, 0, 1)), [0x66, 0x0f, 0x2e, 0xc1]);
        // xorps xmm0, xmm15
        assert_eq!(emit(|b| xorps(b, 0, 15)), [0x41, 0x0f, 0x57, 0xc7]);
    }

    #[test]
    fn rip_relative_returns_fixup_offset() {
        let mut mem = [0u8; 64];
        let mut buf = CodeBuffer::new(&mut mem);
        nop(&mut buf);
        let at = load_rip(&mut buf, true, r::RAX);
        assert_eq!(at, 1 + 3); // nop + REX/op/modrm
        assert_eq!(buf.len(), at + 4);
        let at2 = sse_load_rip(&mut buf, sse::SD, 2);
        assert_eq!(buf.len(), at2 + 4);
    }

    #[test]
    fn misc_ops() {
        assert_eq!(emit(|b| bswap(b, false, r::RAX)), [0x0f, 0xc8]);
        assert_eq!(emit(|b| bswap(b, true, r::R9)), [0x49, 0x0f, 0xc9]);
        assert_eq!(emit(|b| setcc(b, cc::E, r::RAX)), [0x0f, 0x94, 0xc0]);
        assert_eq!(emit(|b| setcc(b, cc::E, r::RSI)), [0x40, 0x0f, 0x94, 0xc6]);
        assert_eq!(emit(cdq), [0x99]);
        assert_eq!(emit(cqo), [0x48, 0x99]);
        assert_eq!(emit(|b| ror16_imm(b, r::RAX, 8)), [0x66, 0xc1, 0xc8, 0x08]);
        // lea rax, [rdi+rsi]
        assert_eq!(
            emit(|b| lea(b, true, r::RAX, Mem::bi(r::RDI, r::RSI))),
            [0x48, 0x8d, 0x04, 0x37]
        );
    }

    #[test]
    fn emitters_near_exact_capacity_latch_cleanly() {
        // A 3-byte instruction into a 3-byte buffer: fits exactly even
        // though the 16-byte reservation degrades to the checked path.
        let mut mem = [0u8; 3];
        let mut buf = CodeBuffer::new(&mut mem);
        mov_rr(&mut buf, true, r::RDI, r::RSI);
        assert_eq!(buf.as_slice(), [0x48, 0x89, 0xf7]);
        assert!(!buf.overflowed());
        // One more instruction latches overflow, never panics.
        mov_rr(&mut buf, true, r::RDI, r::RSI);
        assert!(buf.overflowed());
    }
}
