//! Guarded execution of generated code: hardware faults become values.
//!
//! A dynamic code generation system executes code that did not exist at
//! build time, so the usual "the compiler was tested, trust the output"
//! argument is weaker: a client bug (or a backend bug) produces machine
//! code whose failure mode is a raw SIGSEGV/SIGILL/SIGFPE that kills the
//! process. [`GuardedCall`] restores the paper's "signals an error"
//! contract (§5.2) at run time: it invokes generated code through a
//! setjmp-style trampoline with POSIX signal handlers installed, and
//! converts a crash into a typed [`NativeTrap`] carrying the signal and
//! faulting address. A wall-clock watchdog (`setitimer`/SIGALRM) bounds
//! runaway loops the same way, per the [`Fuel`] budget.
//!
//! Everything is raw Linux syscalls via the `syscall` instruction — the
//! crate keeps its no-FFI, no-libc style (see `exec.rs`). The recovery
//! path is a hand-written `global_asm!` trampoline:
//!
//! 1. `vcode_guarded_invoke` pushes the callee-saved registers, records
//!    `rsp` and a recovery `rip` in a jump buffer, and calls the entry.
//! 2. The signal handler (running on an alternate stack, so even a
//!    trashed `rsp` is survivable) records the signal and `si_addr`,
//!    then jumps to `vcode_guard_recover`.
//! 3. `vcode_guard_recover` reloads the saved `rsp` and jumps back into
//!    the trampoline's epilogue, which pops the callee-saved registers
//!    and returns as if the generated function had returned.
//!
//! Handlers are installed with `SA_NODEFER`, so abandoning the handler
//! frame (never calling `sigreturn`) leaves no signal blocked. Guarded
//! calls are serialized process-wide by a mutex; a fault on an unrelated
//! thread while a guard is active re-raises with the default disposition
//! so the process still dies with the true signal.

use std::sync::atomic::{AtomicI32, AtomicU64, Ordering};
use std::sync::Mutex;

use vcode::obs::{trap_kind_index, TRAP_KINDS};
use vcode::trap::{Fuel, Trap, TrapKind};
use vcode::ExecStats;

use crate::exec::{pool_stats, ExecCode};

// --- raw syscalls -----------------------------------------------------

const SYS_RT_SIGACTION: i64 = 13;
const SYS_RT_SIGRETURN: i64 = 15;
const SYS_SETITIMER: i64 = 38;
const SYS_GETPID: i64 = 39;
const SYS_SIGALTSTACK: i64 = 131;
const SYS_GETTID: i64 = 186;
const SYS_TGKILL: i64 = 234;

const SIGILL: i32 = 4;
const SIGBUS: i32 = 7;
const SIGFPE: i32 = 8;
const SIGSEGV: i32 = 11;
const SIGALRM: i32 = 14;
/// The signals a guarded call intercepts.
const GUARDED_SIGNALS: [i32; 5] = [SIGILL, SIGBUS, SIGFPE, SIGSEGV, SIGALRM];

const SA_SIGINFO: u64 = 0x4;
const SA_ONSTACK: u64 = 0x0800_0000;
const SA_RESTORER: u64 = 0x0400_0000;
const SA_NODEFER: u64 = 0x4000_0000;

const SIG_DFL: usize = 0;
const ITIMER_REAL: i64 = 0;

/// Raw Linux syscall (x86-64); same contract as `exec::syscall6`.
///
/// # Safety
///
/// The caller must uphold the contract of the specific syscall.
unsafe fn syscall4(n: i64, a: i64, b: i64, c: i64, d: i64) -> i64 {
    let ret: i64;
    // SAFETY: forwarded caller obligation (the syscall's own contract).
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

// --- kernel structs ---------------------------------------------------

/// The kernel's x86-64 `sigaction` layout (not libc's).
#[repr(C)]
#[derive(Clone, Copy)]
struct KernelSigaction {
    handler: usize,
    flags: u64,
    restorer: usize,
    mask: u64,
}

const ZERO_SIGACTION: KernelSigaction = KernelSigaction {
    handler: SIG_DFL,
    flags: 0,
    restorer: 0,
    mask: 0,
};

#[repr(C)]
struct StackT {
    ss_sp: *mut u8,
    ss_flags: i32,
    ss_size: usize,
}

#[repr(C)]
#[derive(Clone, Copy)]
struct Timeval {
    sec: i64,
    usec: i64,
}

#[repr(C)]
#[derive(Clone, Copy)]
struct Itimerval {
    interval: Timeval,
    value: Timeval,
}

const ZERO_ITIMER: Itimerval = Itimerval {
    interval: Timeval { sec: 0, usec: 0 },
    value: Timeval { sec: 0, usec: 0 },
};

// --- trampoline -------------------------------------------------------

// Jump buffer: [0] = rsp at the point the callee-saved registers were
// pushed, [1] = address of the trampoline's epilogue. Written by
// `vcode_guarded_invoke`, consumed by `vcode_guard_recover`. One static
// suffices because guarded calls are serialized by `GUARD_LOCK`.
#[no_mangle]
static mut VCODE_GUARD_JMPBUF: [u64; 2] = [0; 2];

core::arch::global_asm!(
    // u64 vcode_guarded_invoke(entry /*rdi*/, a /*rsi*/, b /*rdx*/,
    //                          c /*rcx*/, d /*r8*/)
    // Calls entry(a, b, c, d) with a recovery point armed.
    ".global vcode_guarded_invoke",
    "vcode_guarded_invoke:",
    "push rbx",
    "push rbp",
    "push r12",
    "push r13",
    "push r14",
    "push r15",
    "mov qword ptr [rip + {jmpbuf}], rsp",
    "lea rax, [rip + 2f]",
    "mov qword ptr [rip + {jmpbuf} + 8], rax",
    "mov rax, rdi", // entry
    "mov rdi, rsi", // arg 0
    "mov rsi, rdx", // arg 1
    "mov rdx, rcx", // arg 2
    "mov rcx, r8",  // arg 3
    "call rax",
    "2:",
    "pop r15",
    "pop r14",
    "pop r13",
    "pop r12",
    "pop rbp",
    "pop rbx",
    "ret",
    // Non-local exit taken by the signal handler: reload the stack
    // pointer saved above and resume at the epilogue, exactly as if the
    // generated function had returned. (The callee-saved registers are
    // restored by the pops — their values live in the saved frame.)
    ".global vcode_guard_recover",
    "vcode_guard_recover:",
    "mov rsp, qword ptr [rip + {jmpbuf}]",
    "mov rax, qword ptr [rip + {jmpbuf} + 8]",
    "jmp rax",
    // Signal-return stub for SA_RESTORER: the kernel needs a userspace
    // trampoline to return from a handler on x86-64 (normally provided
    // by libc, which this crate does not link).
    ".global vcode_sigrestorer",
    "vcode_sigrestorer:",
    "mov rax, {sys_rt_sigreturn}",
    "syscall",
    jmpbuf = sym VCODE_GUARD_JMPBUF,
    sys_rt_sigreturn = const SYS_RT_SIGRETURN,
);

extern "C" {
    fn vcode_guarded_invoke(entry: u64, a: u64, b: u64, c: u64, d: u64) -> u64;
    fn vcode_guard_recover() -> !;
    fn vcode_sigrestorer();
}

// --- handler state ----------------------------------------------------

/// Thread id of the thread currently inside a guarded call; 0 when idle.
static GUARD_TID: AtomicI32 = AtomicI32::new(0);
/// Signal number recorded by the handler (0 = no fault).
static FAULT_SIG: AtomicI32 = AtomicI32::new(0);
/// `si_addr` recorded by the handler.
static FAULT_ADDR: AtomicU64 = AtomicU64::new(0);

/// Serializes guarded calls process-wide: the jump buffer, handler
/// state, and itimer are global resources.
static GUARD_LOCK: Mutex<()> = Mutex::new(());

/// Cumulative per-[`TrapKind`] tallies of guarded-call faults,
/// process-wide — the native half of the unified [`ExecStats`] surface.
static TRAP_TALLIES: [AtomicU64; TRAP_KINDS] = [const { AtomicU64::new(0) }; TRAP_KINDS];
/// Guarded calls started, process-wide.
static GUARDED_CALLS: AtomicU64 = AtomicU64::new(0);

/// Native-side [`ExecStats`]: the cache fields report executable-memory
/// *pool* behaviour (a code cache — see [`crate::pool_stats`]) and
/// `traps` tallies every fault absorbed by a [`GuardedCall`] since
/// process start. Retired-instruction and cycle counters stay zero:
/// hardware performance counters are out of scope, the simulators own
/// those fields.
pub fn exec_stats() -> ExecStats {
    let pool = pool_stats();
    let mut stats = ExecStats {
        cache_hits: pool.hits,
        cache_misses: pool.misses,
        ..ExecStats::default()
    };
    for (i, tally) in TRAP_TALLIES.iter().enumerate() {
        let kind = vcode::obs::TRAP_KIND_TABLE[i];
        stats.traps.set(kind, tally.load(Ordering::Relaxed));
    }
    stats
}

/// Guarded calls started since process start (monotonic).
pub fn guarded_call_count() -> u64 {
    GUARDED_CALLS.load(Ordering::Relaxed)
}

/// The installed signal handler. Runs on the alternate stack.
extern "C" fn guard_handler(sig: i32, info: *mut u8, _ucontext: *mut u8) {
    // SAFETY: trivially valid syscall.
    let tid = unsafe { syscall4(SYS_GETTID, 0, 0, 0, 0) } as i32;
    let guard_tid = GUARD_TID.load(Ordering::SeqCst);
    if guard_tid != 0 && tid != guard_tid {
        if sig == SIGALRM {
            // The watchdog fired on the wrong thread (SIGALRM is
            // process-directed): forward it to the guarded thread.
            // SAFETY: trivially valid syscalls.
            unsafe {
                let pid = syscall4(SYS_GETPID, 0, 0, 0, 0);
                syscall4(SYS_TGKILL, pid, i64::from(guard_tid), i64::from(sig), 0);
            }
            return;
        }
        // A hardware fault on an unrelated thread: not ours to absorb.
        // Restore the default disposition and return; the faulting
        // instruction re-executes and the process dies with the true
        // signal.
        let dfl = ZERO_SIGACTION;
        // SAFETY: installing SIG_DFL with a valid struct.
        unsafe {
            syscall4(
                SYS_RT_SIGACTION,
                i64::from(sig),
                &dfl as *const KernelSigaction as i64,
                0,
                8,
            );
        }
        return;
    }
    if guard_tid == 0 {
        if sig == SIGALRM {
            // Stale watchdog tick after the call finished: ignore.
            return;
        }
        // Fault with no guard armed (e.g. from test-harness code):
        // behave as if we were never installed.
        let dfl = ZERO_SIGACTION;
        // SAFETY: installing SIG_DFL with a valid struct.
        unsafe {
            syscall4(
                SYS_RT_SIGACTION,
                i64::from(sig),
                &dfl as *const KernelSigaction as i64,
                0,
                8,
            );
        }
        return;
    }
    // Ours: record what happened and take the non-local exit. `si_addr`
    // is at offset 16 of the kernel's siginfo_t for the fault signals.
    let addr = if sig == SIGALRM || info.is_null() {
        0
    } else {
        // SAFETY: the kernel passes a valid siginfo_t (SA_SIGINFO).
        unsafe { *(info.add(16) as *const u64) }
    };
    FAULT_ADDR.store(addr, Ordering::SeqCst);
    FAULT_SIG.store(sig, Ordering::SeqCst);
    // SAFETY: the jump buffer was armed by vcode_guarded_invoke on this
    // thread and the frames being abandoned are the generated code's.
    unsafe { vcode_guard_recover() }
}

fn sig_to_kind(sig: i32) -> TrapKind {
    match sig {
        SIGILL => TrapKind::IllegalInsn,
        SIGFPE => TrapKind::ArithFault,
        SIGALRM => TrapKind::FuelExhausted,
        _ => TrapKind::BadAccess, // SIGSEGV, SIGBUS
    }
}

// --- public surface ---------------------------------------------------

/// A typed native execution fault: which signal, where, and the
/// machine-independent [`TrapKind`] it maps to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NativeTrap {
    /// The machine-independent classification.
    pub kind: TrapKind,
    /// The raw signal number (SIGSEGV, SIGILL, SIGFPE, SIGBUS, SIGALRM).
    pub signal: i32,
    /// The faulting address (`si_addr`), when the signal reports one.
    pub addr: Option<u64>,
}

impl std::fmt::Display for NativeTrap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "native trap (signal {}): {}", self.signal, self.kind)?;
        if let Some(a) = self.addr {
            write!(f, " at {a:#x}")?;
        }
        Ok(())
    }
}

impl std::error::Error for NativeTrap {}

impl From<NativeTrap> for Trap {
    fn from(t: NativeTrap) -> Trap {
        Trap {
            kind: t.kind,
            addr: t.addr,
            backend: "x86-64",
        }
    }
}

/// Runs generated code with hardware faults and runaway loops converted
/// into typed [`NativeTrap`]s.
///
/// # Examples
///
/// Catching a wild store through a null pointer:
///
/// ```
/// use vcode::{Assembler, Leaf, TrapKind};
/// use vcode_x64::{ExecMem, GuardedCall, X64};
///
/// let mut mem = ExecMem::new(4096)?;
/// let mut a = Assembler::<X64>::lambda(mem.as_mut_slice(), "%p", Leaf::Yes)?;
/// let p = a.arg(0);
/// a.stii(p, p, 0);   // *(int*)p = p — a store through the argument
/// a.seti(p, 0);
/// a.reti(p);
/// a.end()?;
/// let code = mem.finalize()?;
/// let trap = GuardedCall::new().call1(&code, 0).unwrap_err(); // p = NULL
/// assert_eq!(trap.kind, TrapKind::BadAccess);
/// assert_eq!(trap.addr, Some(0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Scope and caveats
///
/// - Guarded calls are **serialized process-wide**; concurrent callers
///   queue on an internal lock.
/// - Signal dispositions for SIGSEGV/SIGILL/SIGFPE/SIGBUS/SIGALRM are
///   saved on entry and restored on exit; other crates' handlers for
///   those signals are shadowed only for the duration of a call.
/// - Recovery abandons whatever frames the generated code had built.
///   Generated code must not hold process-global resources (locks,
///   open handles) across a potential fault — vcode-generated leaf
///   functions never do.
/// - The watchdog uses wall-clock time ([`Fuel::time`]); the `steps`
///   half of the budget only applies to the simulator backends.
#[derive(Debug, Clone, Copy)]
pub struct GuardedCall {
    fuel: Fuel,
}

impl Default for GuardedCall {
    fn default() -> GuardedCall {
        GuardedCall::new()
    }
}

impl GuardedCall {
    /// A runner with the default [`Fuel`] budget (2 s watchdog).
    pub fn new() -> GuardedCall {
        GuardedCall {
            fuel: Fuel::DEFAULT,
        }
    }

    /// A runner with an explicit budget; only [`Fuel::time`] applies
    /// natively.
    pub fn with_fuel(fuel: Fuel) -> GuardedCall {
        GuardedCall { fuel }
    }

    /// Calls the code as `extern "C" fn() -> u64` under the guard.
    ///
    /// # Errors
    ///
    /// Returns the [`NativeTrap`] if the generated code faulted or
    /// exceeded the time budget.
    pub fn call0(&self, code: &ExecCode) -> Result<u64, NativeTrap> {
        self.invoke(code.addr(), [0, 0, 0, 0])
    }

    /// Calls the code as `extern "C" fn(u64) -> u64` under the guard.
    ///
    /// # Errors
    ///
    /// Returns the [`NativeTrap`] if the generated code faulted or
    /// exceeded the time budget.
    pub fn call1(&self, code: &ExecCode, a: u64) -> Result<u64, NativeTrap> {
        self.invoke(code.addr(), [a, 0, 0, 0])
    }

    /// Calls the code as `extern "C" fn(u64, u64) -> u64` under the
    /// guard.
    ///
    /// # Errors
    ///
    /// Returns the [`NativeTrap`] if the generated code faulted or
    /// exceeded the time budget.
    pub fn call2(&self, code: &ExecCode, a: u64, b: u64) -> Result<u64, NativeTrap> {
        self.invoke(code.addr(), [a, b, 0, 0])
    }

    /// Calls the code as `extern "C" fn(u64, u64, u64) -> u64` under the
    /// guard.
    ///
    /// # Errors
    ///
    /// Returns the [`NativeTrap`] if the generated code faulted or
    /// exceeded the time budget.
    pub fn call3(&self, code: &ExecCode, a: u64, b: u64, c: u64) -> Result<u64, NativeTrap> {
        self.invoke(code.addr(), [a, b, c, 0])
    }

    /// Calls the code as `extern "C" fn(u64, u64, u64, u64) -> u64`
    /// under the guard.
    ///
    /// # Errors
    ///
    /// Returns the [`NativeTrap`] if the generated code faulted or
    /// exceeded the time budget.
    pub fn call4(
        &self,
        code: &ExecCode,
        a: u64,
        b: u64,
        c: u64,
        d: u64,
    ) -> Result<u64, NativeTrap> {
        self.invoke(code.addr(), [a, b, c, d])
    }

    /// Calls an arbitrary entry address under the guard. Prefer the
    /// typed `callN` wrappers; this exists for harnesses that
    /// deliberately execute corrupted or truncated code.
    ///
    /// # Errors
    ///
    /// Returns the [`NativeTrap`] if the code faulted or exceeded the
    /// time budget.
    pub fn call_entry(&self, entry: u64, args: [u64; 4]) -> Result<u64, NativeTrap> {
        self.invoke(entry, args)
    }

    fn invoke(&self, entry: u64, args: [u64; 4]) -> Result<u64, NativeTrap> {
        let _guard = GUARD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        GUARDED_CALLS.fetch_add(1, Ordering::Relaxed);

        // Alternate signal stack, so a generated function that trashed
        // rsp still gets its fault converted. Thread-local because
        // sigaltstack is per-thread.
        thread_local! {
            static ALT_STACK: Box<[u8; 64 * 1024]> = Box::new([0; 64 * 1024]);
        }
        let mut old_altstack = StackT {
            ss_sp: std::ptr::null_mut(),
            ss_flags: 0,
            ss_size: 0,
        };
        ALT_STACK.with(|s| {
            let new = StackT {
                ss_sp: s.as_ptr() as *mut u8,
                ss_flags: 0,
                ss_size: s.len(),
            };
            // SAFETY: both structs are valid; the stack buffer outlives
            // the call (thread-local, and the guard is released before
            // thread exit).
            unsafe {
                syscall4(
                    SYS_SIGALTSTACK,
                    &new as *const StackT as i64,
                    &mut old_altstack as *mut StackT as i64,
                    0,
                    0,
                );
            }
        });

        // Install our handler for every guarded signal, saving the old
        // dispositions.
        let new_action = KernelSigaction {
            handler: guard_handler as extern "C" fn(i32, *mut u8, *mut u8) as usize,
            flags: SA_SIGINFO | SA_ONSTACK | SA_NODEFER | SA_RESTORER,
            restorer: vcode_sigrestorer as unsafe extern "C" fn() as usize,
            mask: 0,
        };
        let mut old_actions = [ZERO_SIGACTION; GUARDED_SIGNALS.len()];
        for (i, &sig) in GUARDED_SIGNALS.iter().enumerate() {
            // SAFETY: valid sigaction structs, sigsetsize = 8.
            unsafe {
                syscall4(
                    SYS_RT_SIGACTION,
                    i64::from(sig),
                    &new_action as *const KernelSigaction as i64,
                    &mut old_actions[i] as *mut KernelSigaction as i64,
                    8,
                );
            }
        }

        FAULT_SIG.store(0, Ordering::SeqCst);
        FAULT_ADDR.store(0, Ordering::SeqCst);
        // SAFETY: trivially valid syscall.
        let tid = unsafe { syscall4(SYS_GETTID, 0, 0, 0, 0) } as i32;
        GUARD_TID.store(tid, Ordering::SeqCst);

        // Arm the watchdog.
        let t = self.fuel.time;
        let arm = Itimerval {
            interval: Timeval { sec: 0, usec: 0 },
            value: Timeval {
                sec: t.as_secs() as i64,
                usec: i64::from(t.subsec_micros()).max(1),
            },
        };
        // SAFETY: valid itimerval.
        unsafe {
            syscall4(
                SYS_SETITIMER,
                ITIMER_REAL,
                &arm as *const Itimerval as i64,
                0,
                0,
            );
        }

        // SAFETY: the entry is executable generated code (or a harness-
        // supplied address whose faults the guard exists to absorb); the
        // trampoline preserves callee-saved state and the handler
        // recovers on fault.
        let ret = unsafe { vcode_guarded_invoke(entry, args[0], args[1], args[2], args[3]) };

        GUARD_TID.store(0, Ordering::SeqCst);
        // Disarm the watchdog and restore dispositions and altstack.
        // SAFETY: valid structs throughout.
        unsafe {
            syscall4(
                SYS_SETITIMER,
                ITIMER_REAL,
                &ZERO_ITIMER as *const Itimerval as i64,
                0,
                0,
            );
            for (i, &sig) in GUARDED_SIGNALS.iter().enumerate() {
                syscall4(
                    SYS_RT_SIGACTION,
                    i64::from(sig),
                    &old_actions[i] as *const KernelSigaction as i64,
                    0,
                    8,
                );
            }
            if !old_altstack.ss_sp.is_null() || old_altstack.ss_flags != 0 {
                syscall4(
                    SYS_SIGALTSTACK,
                    &old_altstack as *const StackT as i64,
                    0,
                    0,
                    0,
                );
            }
        }

        let sig = FAULT_SIG.swap(0, Ordering::SeqCst);
        if sig == 0 {
            Ok(ret)
        } else {
            let addr = FAULT_ADDR.load(Ordering::SeqCst);
            let kind = sig_to_kind(sig);
            TRAP_TALLIES[trap_kind_index(kind)].fetch_add(1, Ordering::Relaxed);
            Err(NativeTrap {
                kind,
                signal: sig,
                addr: if sig == SIGALRM || sig == SIGILL {
                    None
                } else {
                    Some(addr)
                },
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecMem;
    use std::time::Duration;

    fn build(code: &[u8]) -> ExecCode {
        let mut mem = ExecMem::new(code.len().max(1)).unwrap();
        mem.as_mut_slice()[..code.len()].copy_from_slice(code);
        mem.finalize().unwrap()
    }

    #[test]
    fn clean_call_returns_value() {
        // mov rax, rdi; add rax, rsi; ret
        let code = build(&[0x48, 0x89, 0xf8, 0x48, 0x01, 0xf0, 0xc3]);
        let g = GuardedCall::new();
        assert_eq!(g.call2(&code, 40, 2), Ok(42));
        // Reusable: a second call works too.
        assert_eq!(g.call2(&code, 1, 2), Ok(3));
    }

    #[test]
    fn null_store_is_bad_access_at_zero() {
        // mov qword ptr [rdi], 1; ret — called with rdi = 0.
        let code = build(&[0x48, 0xc7, 0x07, 0x01, 0x00, 0x00, 0x00, 0xc3]);
        let trap = GuardedCall::new().call1(&code, 0).unwrap_err();
        assert_eq!(trap.kind, TrapKind::BadAccess);
        assert_eq!(trap.signal, SIGSEGV);
        assert_eq!(trap.addr, Some(0));
    }

    #[test]
    fn wild_store_reports_faulting_address() {
        let wild = 0xdead_b000u64;
        let code = build(&[0x48, 0xc7, 0x07, 0x01, 0x00, 0x00, 0x00, 0xc3]);
        let trap = GuardedCall::new().call1(&code, wild).unwrap_err();
        assert_eq!(trap.kind, TrapKind::BadAccess);
        assert_eq!(trap.addr, Some(wild));
    }

    #[test]
    fn illegal_opcode_is_illegal_insn() {
        // ud2
        let code = build(&[0x0f, 0x0b]);
        let trap = GuardedCall::new().call0(&code).unwrap_err();
        assert_eq!(trap.kind, TrapKind::IllegalInsn);
        assert_eq!(trap.signal, SIGILL);
    }

    #[test]
    fn divide_by_zero_is_arith_fault() {
        // mov rax, rdi; xor edx, edx; div rsi; ret — rsi = 0.
        let code = build(&[0x48, 0x89, 0xf8, 0x31, 0xd2, 0x48, 0xf7, 0xf6, 0xc3]);
        let trap = GuardedCall::new().call2(&code, 10, 0).unwrap_err();
        assert_eq!(trap.kind, TrapKind::ArithFault);
        assert_eq!(trap.signal, SIGFPE);
    }

    #[test]
    fn infinite_loop_exhausts_fuel() {
        // jmp self
        let code = build(&[0xeb, 0xfe]);
        let g = GuardedCall::with_fuel(Fuel::time(Duration::from_millis(50)));
        let trap = g.call0(&code).unwrap_err();
        assert_eq!(trap.kind, TrapKind::FuelExhausted);
        assert_eq!(trap.signal, SIGALRM);
        assert_eq!(trap.addr, None);
    }

    #[test]
    fn runoff_into_guard_page_traps() {
        // No ret: execution falls through the nop sled into the high
        // guard page, which is PROT_NONE — fetched as BadAccess.
        let mut mem = ExecMem::new(16).unwrap();
        let len = mem.len();
        for b in mem.as_mut_slice().iter_mut() {
            *b = 0x90; // nop
        }
        let code = mem.finalize().unwrap();
        let trap = GuardedCall::new().call0(&code).unwrap_err();
        assert_eq!(trap.kind, TrapKind::BadAccess);
        assert_eq!(trap.addr, Some(code.addr() + len as u64));
    }

    #[test]
    fn callee_saved_registers_survive_a_fault() {
        // Clobber every callee-saved register, then fault: xor rbx/rbp/
        // r12-r15, then load from [0].
        let code = build(&[
            0x48, 0x31, 0xdb, // xor rbx, rbx
            0x48, 0x31, 0xed, // xor rbp, rbp
            0x4d, 0x31, 0xe4, // xor r12, r12
            0x4d, 0x31, 0xed, // xor r13, r13
            0x4d, 0x31, 0xf6, // xor r14, r14
            0x4d, 0x31, 0xff, // xor r15, r15
            0x48, 0x8b, 0x04, 0x25, 0x00, 0x00, 0x00, 0x00, // mov rax, [0]
            0xc3,
        ]);
        // The enclosing Rust frame keeps live state in callee-saved
        // registers; if recovery failed to restore them this test (and
        // the harness around it) would corrupt itself.
        let sentinel = vec![1u64, 2, 3, 4];
        let trap = GuardedCall::new().call0(&code).unwrap_err();
        assert_eq!(trap.kind, TrapKind::BadAccess);
        assert_eq!(sentinel, vec![1, 2, 3, 4]);
    }

    #[test]
    fn trashed_stack_pointer_still_recovers() {
        // xor rsp, rsp; push rax — faults with no usable stack; only the
        // alternate signal stack lets the handler run.
        let code = build(&[0x48, 0x31, 0xe4, 0x50, 0xc3]);
        let trap = GuardedCall::new().call0(&code).unwrap_err();
        assert_eq!(trap.kind, TrapKind::BadAccess);
    }

    #[test]
    fn exec_stats_tallies_guarded_faults_and_calls() {
        // Counters are process-wide and other tests in this binary trap
        // concurrently, so assert on deltas of our own contribution.
        let before = exec_stats();
        let calls_before = guarded_call_count();
        let ud2 = build(&[0x0f, 0x0b]);
        let ok = build(&[0x48, 0x89, 0xf8, 0xc3]); // mov rax, rdi; ret
        let g = GuardedCall::new();
        assert_eq!(g.call1(&ok, 9), Ok(9));
        g.call0(&ud2).unwrap_err();
        g.call0(&ud2).unwrap_err();
        let after = exec_stats();
        assert!(guarded_call_count() >= calls_before + 3);
        assert!(
            after.traps.count(TrapKind::IllegalInsn)
                >= before.traps.count(TrapKind::IllegalInsn) + 2
        );
        assert!(after.traps.total() >= before.traps.total() + 2);
        // Pool counters surface as the native "cache": every ExecMem
        // allocation above was a hit or a miss.
        assert!(
            after.cache_hits + after.cache_misses >= before.cache_hits + before.cache_misses + 2
        );
        // Native path never fabricates retired-instruction counts.
        assert_eq!(after.insns_retired, 0);
        assert_eq!(after.cycles, 0);
    }

    #[test]
    fn native_trap_converts_to_unified_trap() {
        let code = build(&[0x0f, 0x0b]); // ud2
        let native = GuardedCall::new().call0(&code).unwrap_err();
        let t: Trap = native.into();
        assert_eq!(t.kind, TrapKind::IllegalInsn);
        assert_eq!(t.backend, "x86-64");
    }
}
