//! Executable memory for natively running generated code.
//!
//! The paper lists "programmer maintenance of cache coherence between
//! instruction and data caches" among the chip-specific chores a dynamic
//! code generation system must hide (§1, `v_end` step 4). On x86-64 the
//! instruction cache snoops stores, so coherence is free; what remains is
//! obtaining memory that may be executed at all. [`ExecMem`] provides it
//! with a **dual mapping**: the same `memfd` pages mapped twice — a
//! read+write *emission view* the assembler writes through, and a
//! read+execute *execution view* (bracketed by guard pages) that
//! [`addr`](ExecMem::addr) and [`ExecMem::finalize`] hand out. No
//! virtual address is ever writable and executable at once (W^X), and no
//! protection ever changes after setup: finalizing is free.
//!
//! The `memfd_create`/`mmap`/`munmap` calls are made directly via the
//! `syscall` instruction so the crate needs no FFI dependency; see
//! DESIGN.md for the rationale.
//!
//! # Pooling
//!
//! Mapping costs microseconds — two orders of magnitude more than
//! generating a small function (the paper's core claim is ~10
//! cycles/instruction). To keep the per-lambda overhead at VCODE scale,
//! dropped mappings are *parked* in a process-wide pool instead of
//! unmapped: the region is **zeroed** through the emission view (so
//! stale code can never run — it is gone — and adopted storage looks
//! exactly like fresh storage) and pushed onto a size-classed free
//! list. [`ExecMem::new`] adopts a parked mapping with *no syscalls at
//! all*, and only maps fresh memory on a pool miss.
//!
//! The dual mapping is what makes the whole steady-state lifecycle
//! (adopt → emit → finalize → execute → park) syscall-free, and that is
//! a multi-core scaling fact, not just a latency one: the classic
//! single-mapping W^X lifecycle `mprotect`s every lambda twice, and
//! every `mprotect` takes the kernel's *process-wide* `mmap_lock` —
//! with parallel generators, that lock (not any lock of ours) is the
//! shared state everything serializes on. Free lists are sharded across
//! a small set of mutexes so concurrent code generators (one assembler
//! per thread) do not serialize on a single lock. Mappings larger than
//! [`MAX_POOL_PAGES`] pages bypass the pool entirely.
//!
//! The hardening trade-offs of dual mapping: a writable alias of live
//! code exists at a second, unpublished address, and parked pages stay
//! fetchable at the execution view (every JIT that dual maps accepts
//! the former; the latter is covered by scrubbing — parking zeroes the
//! region, so stale *code* is gone and a dangling function pointer
//! decodes zeros until it faults, at the first `add [rax], al` store or
//! at the guard page that ends the run). The guard pages themselves are
//! permanent, and live code is never writable at its published address.

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

const SYS_CLOSE: i64 = 3;
const SYS_MMAP: i64 = 9;
const SYS_MUNMAP: i64 = 11;
const SYS_FTRUNCATE: i64 = 77;
const SYS_MEMFD_CREATE: i64 = 319;

const PROT_NONE: i64 = 0;
const PROT_READ: i64 = 1;
const PROT_WRITE: i64 = 2;
const PROT_EXEC: i64 = 4;
const MAP_SHARED: i64 = 0x01;
const MAP_PRIVATE: i64 = 0x02;
const MAP_FIXED: i64 = 0x10;
const MAP_ANONYMOUS: i64 = 0x20;
const MFD_CLOEXEC: i64 = 0x01;

const PAGE: usize = 4096;

/// Largest pooled mapping, in code pages. Requests up to this size are
/// rounded to a power-of-two page count and recycled through the pool;
/// larger ones are mapped and unmapped directly.
pub const MAX_POOL_PAGES: usize = 128;

/// Size classes: 1, 2, 4, ... [`MAX_POOL_PAGES`] pages.
const NUM_CLASSES: usize = MAX_POOL_PAGES.trailing_zeros() as usize + 1;

/// Parked mappings retained per class per shard; beyond this, released
/// mappings are unmapped (the retention cap bounds idle memory).
const RETAIN_PER_CLASS: usize = 8;

/// Free-list shards. Threads are spread across shards round-robin so
/// parallel code generators rarely contend on the same mutex. Sixteen
/// shards keep the expected collision rate low even at 8 generator
/// threads (4 shards measurably flattened the `par_codegen` scaling
/// curve past 2 threads); a shard is one `Mutex` + `NUM_CLASSES`
/// pointers, so the idle cost of the extra shards is negligible.
const SHARDS: usize = 16;

/// Bytes of inaccessible (`PROT_NONE`) padding on each side of the code
/// region. A generated function that runs off either end of its storage
/// — a straight-line escape past `len` or a wild negative branch — hits
/// a guard page and raises SIGSEGV immediately, which
/// [`GuardedCall`](crate::GuardedCall) converts into a typed
/// [`NativeTrap`](crate::NativeTrap) instead of letting the escape
/// corrupt adjacent heap mappings.
pub const GUARD_BYTES: usize = PAGE;

/// Raw Linux syscall (x86-64). Returns the kernel's value; values in
/// `-4095..0` are negated errnos.
///
/// # Safety
///
/// The caller must uphold the contract of the specific syscall.
unsafe fn syscall6(n: i64, a: i64, b: i64, c: i64, d: i64, e: i64, f: i64) -> i64 {
    let ret: i64;
    // SAFETY: forwarded caller obligation (the syscall's own contract).
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

fn check(ret: i64) -> io::Result<i64> {
    if (-4095..0).contains(&ret) {
        Err(io::Error::from_raw_os_error((-ret) as i32))
    } else {
        Ok(ret)
    }
}

/// Unmaps a whole mapping (guards included); errors are ignorable.
///
/// # Safety
///
/// `map`/`total` must describe an entire mapping the caller owns, with
/// no live references into it.
unsafe fn munmap(map: *mut u8, total: usize) {
    // SAFETY: forwarded caller obligation.
    unsafe {
        syscall6(SYS_MUNMAP, map as i64, total as i64, 0, 0, 0, 0);
    }
}

/// Builds one dual-mapped code region of `len` bytes: the same `memfd`
/// pages mapped read+execute inside a `PROT_NONE` scaffold (so the
/// guard pages bracket the execution view) and read+write at an
/// unrelated kernel-chosen address. The fd is closed before returning —
/// the two mappings keep the pages alive — so a region holds no file
/// descriptor for its lifetime, only address space.
///
/// Returns `(map, ptr, rw)`: scaffold start (low guard page), execution
/// entry (`map + GUARD_BYTES`), and the write alias.
fn map_dual(len: usize) -> io::Result<(*mut u8, *mut u8, *mut u8)> {
    let total = len + 2 * GUARD_BYTES;
    // SAFETY: memfd_create reads the NUL-terminated name and touches no
    // other memory. The name is debugging metadata (/proc/…/fd).
    let fd = check(unsafe {
        syscall6(
            SYS_MEMFD_CREATE,
            c"vcode-exec".as_ptr() as i64,
            MFD_CLOEXEC,
            0,
            0,
            0,
            0,
        )
    })?;
    // Everything from here must close the fd on failure.
    let built = (|| {
        // SAFETY: sizing the memfd we just created; memfd pages are
        // zero-filled on first touch.
        check(unsafe { syscall6(SYS_FTRUNCATE, fd, len as i64, 0, 0, 0, 0) })?;
        // SAFETY: fresh anonymous PROT_NONE reservation; the kernel
        // picks the placement. This is the scaffold whose first and
        // last pages stay PROT_NONE forever (the guards).
        let ret = unsafe {
            syscall6(
                SYS_MMAP,
                0,
                total as i64,
                PROT_NONE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        let map = check(ret)? as *mut u8;
        // SAFETY: in-bounds offset of the scaffold.
        let ptr = unsafe { map.add(GUARD_BYTES) };
        // SAFETY: MAP_FIXED inside the scaffold we own replaces its
        // interior with the file-backed execution view; the guards on
        // either side are untouched.
        let exec = unsafe {
            syscall6(
                SYS_MMAP,
                ptr as i64,
                len as i64,
                PROT_READ | PROT_EXEC,
                MAP_SHARED | MAP_FIXED,
                fd,
                0,
            )
        };
        if let Err(e) = check(exec) {
            // SAFETY: unmapping the scaffold we just created.
            unsafe { munmap(map, total) };
            return Err(e);
        }
        // SAFETY: second view of the same pages, kernel-chosen address.
        let rw = unsafe {
            syscall6(
                SYS_MMAP,
                0,
                len as i64,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                fd,
                0,
            )
        };
        match check(rw) {
            Ok(rw) => Ok((map, ptr, rw as *mut u8)),
            Err(e) => {
                // SAFETY: unmapping the scaffold (execution view
                // included) we just created.
                unsafe { munmap(map, total) };
                Err(e)
            }
        }
    })();
    // SAFETY: closing the fd we created; the mappings (if any) keep the
    // pages alive.
    unsafe { syscall6(SYS_CLOSE, fd, 0, 0, 0, 0, 0) };
    built
}

/// Unmaps both views of a dual-mapped region: the scaffold (guards and
/// execution view, `len + 2 * GUARD_BYTES` bytes at `map`) and the
/// write alias (`len` bytes at `rw`).
///
/// # Safety
///
/// `map`/`rw`/`len` must describe a region from [`map_dual`] owned by
/// the caller, with no live references into either view.
unsafe fn unmap_dual(map: *mut u8, rw: *mut u8, len: usize) {
    // SAFETY: forwarded caller obligation.
    unsafe {
        munmap(map, len + 2 * GUARD_BYTES);
        munmap(rw, len);
    }
}

/// A region parked in the pool: both views mapped, the code zeroed
/// (through `rw`), nothing referencing it. `len` is the code-region
/// length (guards excluded).
struct Parked {
    map: *mut u8,
    rw: *mut u8,
    len: usize,
}

// SAFETY: a parked mapping is inert memory owned solely by the pool.
unsafe impl Send for Parked {}

struct Shard {
    classes: [Vec<Parked>; NUM_CLASSES],
}

static POOL: [Mutex<Shard>; SHARDS] = [const {
    Mutex::new(Shard {
        classes: [const { Vec::new() }; NUM_CLASSES],
    })
}; SHARDS];

static POOL_HITS: AtomicU64 = AtomicU64::new(0);
static POOL_MISSES: AtomicU64 = AtomicU64::new(0);
static POOL_PARKED: AtomicU64 = AtomicU64::new(0);
static POOL_EVICTED: AtomicU64 = AtomicU64::new(0);

/// Round-robin shard assignment, one shard per thread for its lifetime.
fn my_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

/// Class index for a pooled page count (1 → 0, 2 → 1, 4 → 2, ...).
fn class_of(pages: usize) -> usize {
    debug_assert!(pages.is_power_of_two() && pages <= MAX_POOL_PAGES);
    pages.trailing_zeros() as usize
}

/// Whether a code region of `len` bytes travels through the pool.
fn pooled(len: usize) -> bool {
    let pages = len / PAGE;
    pages.is_power_of_two() && pages <= MAX_POOL_PAGES
}

/// Tries to adopt a parked region of `len` code bytes from this
/// thread's shard. Parked regions are zeroed with both views live, so a
/// hit costs no syscall: the pop *is* the allocation.
fn pool_take(len: usize) -> Option<(*mut u8, *mut u8, *mut u8)> {
    let class = class_of(len / PAGE);
    let parked = {
        let mut shard = POOL[my_shard()].lock().unwrap_or_else(|e| e.into_inner());
        shard.classes[class].pop()
    }?;
    debug_assert_eq!(parked.len, len);
    // SAFETY: in-bounds offset of a mapping the pool owns.
    let ptr = unsafe { parked.map.add(GUARD_BYTES) };
    Some((parked.map, ptr, parked.rw))
}

/// Parks a region back into the pool, or unmaps it when the class is at
/// its retention cap (or pooling does not apply). Parking zeroes the
/// code through the write alias — the stale code is *gone*, from both
/// views, so a dangling function pointer into the region decodes zeros
/// (`add [rax], al`) and faults rather than running old code — and
/// costs no syscall. Never fails.
///
/// # Safety
///
/// `map`/`rw`/`len` must describe a region from [`map_dual`] owned by
/// the caller, with no live references into either view.
unsafe fn pool_put(map: *mut u8, rw: *mut u8, len: usize) {
    if pooled(len) {
        // SAFETY: the caller owns the region; the write alias is always
        // read+write. Scrub the stale code now so adoption can hand the
        // region out as-is.
        unsafe { rw.write_bytes(0, len) };
        let mut shard = POOL[my_shard()].lock().unwrap_or_else(|e| e.into_inner());
        let class = &mut shard.classes[class_of(len / PAGE)];
        if class.len() < RETAIN_PER_CLASS {
            class.push(Parked { map, rw, len });
            POOL_PARKED.fetch_add(1, Ordering::Relaxed);
            return;
        }
        drop(shard);
        POOL_EVICTED.fetch_add(1, Ordering::Relaxed);
    }
    // SAFETY: forwarded caller obligation.
    unsafe { unmap_dual(map, rw, len) };
}

/// Unmaps every parked mapping in every shard, returning how many were
/// released. Useful for tests and for trimming idle memory; safe to call
/// concurrently with allocation (late arrivals simply repopulate).
pub fn drain_pool() -> usize {
    let mut drained = 0;
    for shard in &POOL {
        let mut shard = shard.lock().unwrap_or_else(|e| e.into_inner());
        for class in &mut shard.classes {
            for parked in class.drain(..) {
                // SAFETY: the pool owns parked regions exclusively.
                unsafe { unmap_dual(parked.map, parked.rw, parked.len) };
                drained += 1;
            }
        }
    }
    drained
}

/// Cumulative pool counters (process-wide, monotonically increasing
/// except `currently_parked`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Allocations served by adopting a parked mapping.
    pub hits: u64,
    /// Allocations that had to `mmap` fresh memory.
    pub misses: u64,
    /// Releases that parked their mapping.
    pub parked: u64,
    /// Releases unmapped because the class was at its retention cap.
    pub evicted: u64,
    /// Mappings sitting in the pool right now.
    pub currently_parked: usize,
}

/// Reads the pool counters.
pub fn pool_stats() -> PoolStats {
    let currently_parked = POOL
        .iter()
        .map(|s| {
            let shard = s.lock().unwrap_or_else(|e| e.into_inner());
            shard.classes.iter().map(Vec::len).sum::<usize>()
        })
        .sum();
    PoolStats {
        hits: POOL_HITS.load(Ordering::Relaxed),
        misses: POOL_MISSES.load(Ordering::Relaxed),
        parked: POOL_PARKED.load(Ordering::Relaxed),
        evicted: POOL_EVICTED.load(Ordering::Relaxed),
        currently_parked,
    }
}

/// A dual-mapped code region that generated code is emitted into:
/// writable through [`as_mut_slice`](Self::as_mut_slice), executable at
/// [`addr`](Self::addr) (two views of the same pages — see the module
/// docs).
///
/// # Examples
///
/// ```
/// use vcode_x64::ExecMem;
/// let mut mem = ExecMem::new(4096)?;
/// mem.as_mut_slice()[0] = 0xb8; // mov eax, 41
/// mem.as_mut_slice()[1..5].copy_from_slice(&41i32.to_le_bytes());
/// mem.as_mut_slice()[5] = 0xc3; // ret
/// let code = mem.finalize()?;
/// let f: extern "C" fn() -> i32 = unsafe { code.as_fn() };
/// assert_eq!(f(), 41);
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct ExecMem {
    /// Start of the scaffold mapping (low guard page).
    map: *mut u8,
    /// Execution view of the code region (`map + GUARD_BYTES`).
    ptr: *mut u8,
    /// Write alias of the same pages (kernel-chosen address).
    rw: *mut u8,
    /// Length of the code region (guards excluded).
    len: usize,
}

impl fmt::Debug for ExecMem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecMem")
            .field("ptr", &self.ptr)
            .field("len", &self.len)
            .finish()
    }
}

impl ExecMem {
    /// Obtains `len` bytes of dual-mapped storage: writable through
    /// [`as_mut_slice`](Self::as_mut_slice), executable at
    /// [`addr`](Self::addr), the execution view bracketed by one
    /// `PROT_NONE` guard page on each side (see [`GUARD_BYTES`]).
    /// [`len`](Self::len) and [`addr`](Self::addr) describe the usable
    /// code region only.
    ///
    /// Requests up to [`MAX_POOL_PAGES`] pages are rounded to a
    /// power-of-two page count and served from the pool when a parked
    /// region of that class is available (see the module docs); larger
    /// requests are rounded to the page size and mapped directly. Either
    /// way the returned storage is zeroed.
    ///
    /// # Errors
    ///
    /// Propagates the `memfd_create`/`ftruncate`/`mmap` failure
    /// (`ENOMEM`, resource limits, ...); a request too large to
    /// represent reports `ENOMEM` without panicking.
    pub fn new(len: usize) -> io::Result<ExecMem> {
        let pages = len.max(1).div_ceil(PAGE);
        let len = if pages <= MAX_POOL_PAGES {
            let len = pages.next_power_of_two() * PAGE;
            if let Some((map, ptr, rw)) = pool_take(len) {
                POOL_HITS.fetch_add(1, Ordering::Relaxed);
                return Ok(ExecMem { map, ptr, rw, len });
            }
            POOL_MISSES.fetch_add(1, Ordering::Relaxed);
            len
        } else {
            pages
                .checked_mul(PAGE)
                .filter(|l| l.checked_add(2 * GUARD_BYTES).is_some())
                .ok_or_else(|| io::Error::from_raw_os_error(12 /* ENOMEM */))?
        };
        let (map, ptr, rw) = map_dual(len)?;
        Ok(ExecMem { map, ptr, rw, len })
    }

    /// Obtains dual-mapped storage pre-filled with `bytes` — the
    /// adoption path for revalidated persistent-cache artifacts, so
    /// deserialized code lands in the same pooled, guarded, pinnable
    /// memory as freshly emitted code. The caller must have revalidated
    /// `bytes` (differential re-decode) before adoption; this function
    /// only places them.
    ///
    /// # Errors
    ///
    /// As [`new`](Self::new).
    pub fn adopt_bytes(bytes: &[u8]) -> io::Result<ExecMem> {
        let mut mem = ExecMem::new(bytes.len())?;
        mem.as_mut_slice()[..bytes.len()].copy_from_slice(bytes);
        Ok(mem)
    }

    /// The writable storage, handed to
    /// [`Assembler::lambda`](vcode::Assembler::lambda) as the client code
    /// pointer. This is the write *alias*: bytes stored here become
    /// visible (and executable) at [`addr`](Self::addr), which is where
    /// all position-dependent references must point.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: we own the region; the write alias is
        // PROT_READ|PROT_WRITE and `len` bytes long.
        unsafe { std::slice::from_raw_parts_mut(self.rw, self.len) }
    }

    /// The code-region length in bytes (guard pages excluded).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the code region holds zero bytes. Mappings are made at
    /// least one page, so this is false for every constructible value —
    /// computed from `len` rather than hard-coded so the two can never
    /// disagree.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The address generated code will execute at (needed when emitting
    /// absolute-address references to the code itself).
    pub fn addr(&self) -> u64 {
        self.ptr as u64
    }

    /// Returns the executable handle (the paper's `v_end` returning "a
    /// pointer to the generated code", cast to the appropriate function
    /// pointer type by the client). The execution view has been
    /// read+execute since setup — finalizing changes no protections and
    /// makes no syscalls; it only retires the write access. The x86-64
    /// instruction cache snoops stores by physical address, so the bytes
    /// written through the alias are fetchable at [`addr`](Self::addr)
    /// with no explicit flush.
    ///
    /// # Errors
    ///
    /// Infallible today; the `Result` is kept so a future target (or a
    /// hardening mode that seals the alias) can fail here without an API
    /// break.
    pub fn finalize(self) -> io::Result<ExecCode> {
        let code = ExecCode {
            map: self.map,
            ptr: self.ptr,
            rw: self.rw,
            len: self.len,
            pins: Arc::new(Mutex::new(PinInner {
                count: 0,
                orphaned: false,
            })),
        };
        std::mem::forget(self);
        Ok(code)
    }
}

impl Drop for ExecMem {
    fn drop(&mut self) {
        // SAFETY: releasing a region we own (both views) with no
        // outstanding references; errors are ignorable here
        // (C-DTOR-FAIL) — `pool_put` degrades to unmapping.
        unsafe { pool_put(self.map, self.rw, self.len) };
    }
}

// SAFETY: the mapping is plain memory; access is through &mut self.
unsafe impl Send for ExecMem {}

/// Finalized, executable code, still bracketed by its `PROT_NONE` guard
/// pages.
///
/// # Drop hazard
///
/// Dropping releases the code (parks its region scrubbed, or unmaps
/// it). The borrow checker cannot see through the `unsafe` cast in
/// [`as_fn`](Self::as_fn): the returned function pointer does **not**
/// borrow `self`, so it is possible to drop the `ExecCode` and then
/// call the pointer. That call runs into zeroed or unmapped memory and
/// faults — under [`GuardedCall`](crate::GuardedCall) it surfaces as a
/// [`NativeTrap`](crate::NativeTrap); on a bare call it is a crash.
/// Keep the `ExecCode` alive for as long as any pointer obtained from it
/// may be invoked (see the `drop_unmaps_code` test) — or take a
/// [`pin`](Self::pin), which keeps the mapping mapped and executable even
/// if the `ExecCode` itself is dropped.
///
/// # Pooling and liveness
///
/// Live code is never *in* the pool: [`pool_put`] only runs from `Drop`
/// (deferred past the last [`CodePin`]), so [`drain_pool`] can only ever
/// release parked, unreferenced mappings — a cached lambda holding its
/// `ExecCode` (or a pin) survives any number of drains.
pub struct ExecCode {
    /// Start of the scaffold mapping (low guard page).
    map: *mut u8,
    /// Entry of the executable region (`map + GUARD_BYTES`).
    ptr: *mut u8,
    /// Write alias of the same pages, never exposed while finalized;
    /// kept mapped so parking stays syscall-free (see the module docs).
    rw: *mut u8,
    /// Length of the executable region (guards excluded).
    len: usize,
    /// Shared pin state; release of the mapping is deferred to the last
    /// pin when any are outstanding at drop.
    pins: Arc<Mutex<PinInner>>,
}

#[derive(Debug)]
struct PinInner {
    /// Outstanding [`CodePin`]s.
    count: usize,
    /// The owning `ExecCode` was dropped while pinned; the last pin to
    /// drop releases the mapping.
    orphaned: bool,
}

/// A liveness pin on an [`ExecCode`] mapping (see [`ExecCode::pin`]).
///
/// While any pin exists the mapping stays mapped and executable: raw
/// function pointers from [`ExecCode::as_fn`] remain callable even if
/// the `ExecCode` is dropped, and the mapping cannot re-enter the pool
/// (so [`drain_pool`] and pool eviction can never free it). The last pin
/// of an orphaned mapping releases it.
#[derive(Debug)]
pub struct CodePin {
    /// Scaffold start, stored as an address (the pin never dereferences).
    map: usize,
    /// Write-alias start, likewise address-only.
    rw: usize,
    /// Entry address of the executable region.
    addr: u64,
    /// Executable-region length (guards excluded).
    len: usize,
    state: Arc<Mutex<PinInner>>,
}

impl CodePin {
    /// Entry address of the pinned code.
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// Length of the pinned executable region.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the pinned region holds zero bytes; false for every
    /// constructible value, computed honestly from `len`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Clone for CodePin {
    fn clone(&self) -> CodePin {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.count += 1;
        drop(st);
        CodePin {
            map: self.map,
            rw: self.rw,
            addr: self.addr,
            len: self.len,
            state: Arc::clone(&self.state),
        }
    }
}

impl Drop for CodePin {
    fn drop(&mut self) {
        let release = {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            st.count -= 1;
            st.count == 0 && st.orphaned
        };
        if release {
            // SAFETY: the owning `ExecCode` is gone (orphaned) and this
            // was the last pin, so nothing references the region.
            unsafe { pool_put(self.map as *mut u8, self.rw as *mut u8, self.len) };
        }
    }
}

impl fmt::Debug for ExecCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecCode")
            .field("ptr", &self.ptr)
            .field("len", &self.len)
            .finish()
    }
}

impl ExecCode {
    /// Entry address of the code.
    pub fn addr(&self) -> u64 {
        self.ptr as u64
    }

    /// Length of the executable region (guard pages excluded).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the executable region holds zero bytes; false for every
    /// constructible value, computed honestly from `len`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The finalized code bytes, read through the execution view (it is
    /// `PROT_READ|PROT_EXEC`, so plain loads are fine). This is what the
    /// persistent cache serializes: adoption of these exact bytes
    /// reproduces the lambda.
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: `ptr` is the start of our own mapped execution view,
        // readable for `len` bytes, and no writes go through the alias
        // after finalization — the region is effectively immutable for
        // the lifetime of this `ExecCode`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Reinterprets the entry point as a function pointer.
    ///
    /// # Safety
    ///
    /// `F` must be a `fn` pointer type whose ABI matches the generated
    /// code (the signature passed to `lambda`, `extern "C"`), and the
    /// code must stay alive while `F` is callable.
    pub unsafe fn as_fn<F: Copy>(&self) -> F {
        assert_eq!(
            std::mem::size_of::<F>(),
            std::mem::size_of::<usize>(),
            "as_fn requires a fn-pointer type"
        );
        // SAFETY: size checked above; validity of the ABI is the
        // caller's obligation.
        unsafe { std::mem::transmute_copy(&self.ptr) }
    }

    /// Calls the code as `extern "C" fn() -> u64`.
    ///
    /// # Safety
    ///
    /// The generated function must take no arguments and return an
    /// integer (or nothing).
    pub unsafe fn call0(&self) -> u64 {
        let f: extern "C" fn() -> u64 = unsafe { self.as_fn() };
        f()
    }

    /// Calls the code as `extern "C" fn(u64) -> u64`.
    ///
    /// # Safety
    ///
    /// The generated function must take one integer argument.
    pub unsafe fn call1(&self, a: u64) -> u64 {
        let f: extern "C" fn(u64) -> u64 = unsafe { self.as_fn() };
        f(a)
    }

    /// Calls the code as `extern "C" fn(u64, u64) -> u64`.
    ///
    /// # Safety
    ///
    /// The generated function must take two integer arguments.
    pub unsafe fn call2(&self, a: u64, b: u64) -> u64 {
        let f: extern "C" fn(u64, u64) -> u64 = unsafe { self.as_fn() };
        f(a, b)
    }

    /// Calls the code as `extern "C" fn(u64, u64, u64) -> u64`.
    ///
    /// # Safety
    ///
    /// The generated function must take three integer arguments.
    pub unsafe fn call3(&self, a: u64, b: u64, c: u64) -> u64 {
        let f: extern "C" fn(u64, u64, u64) -> u64 = unsafe { self.as_fn() };
        f(a, b, c)
    }

    /// Calls the code as `extern "C" fn(u64, u64, u64, u64) -> u64`.
    ///
    /// # Safety
    ///
    /// The generated function must take four integer arguments.
    pub unsafe fn call4(&self, a: u64, b: u64, c: u64, d: u64) -> u64 {
        let f: extern "C" fn(u64, u64, u64, u64) -> u64 = unsafe { self.as_fn() };
        f(a, b, c, d)
    }

    /// Pins the mapping: it stays mapped and executable until both this
    /// `ExecCode` and every [`CodePin`] are dropped. Takers of raw
    /// function pointers ([`as_fn`](Self::as_fn)) hold a pin to make the
    /// drop hazard impossible instead of merely documented.
    pub fn pin(&self) -> CodePin {
        let mut st = self.pins.lock().unwrap_or_else(|e| e.into_inner());
        st.count += 1;
        drop(st);
        CodePin {
            map: self.map as usize,
            rw: self.rw as usize,
            addr: self.ptr as u64,
            len: self.len,
            state: Arc::clone(&self.pins),
        }
    }
}

impl Drop for ExecCode {
    fn drop(&mut self) {
        let deferred = {
            let mut st = self.pins.lock().unwrap_or_else(|e| e.into_inner());
            if st.count > 0 {
                st.orphaned = true;
            }
            st.count > 0
        };
        if !deferred {
            // SAFETY: releasing a region we own (both views) with no
            // outstanding pins. The caller upholds the drop hazard
            // documented on the type: no generated function may be
            // executing or called after this. Parking zeroes the region
            // through the write alias, so a use-after-drop call runs
            // into zeros and faults (see `pool_put`) rather than
            // executing stale code.
            unsafe { pool_put(self.map, self.rw, self.len) };
        }
        // Otherwise the last CodePin releases the mapping.
    }
}

// SAFETY: immutable machine code; callable from any thread.
unsafe impl Send for ExecCode {}
// SAFETY: no interior mutability.
unsafe impl Sync for ExecCode {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_tiny_function() {
        let mut mem = ExecMem::new(64).unwrap();
        assert_eq!(mem.len() % 4096, 0);
        // mov rax, rdi; add rax, 1; ret
        let code = [0x48, 0x89, 0xf8, 0x48, 0x83, 0xc0, 0x01, 0xc3];
        mem.as_mut_slice()[..code.len()].copy_from_slice(&code);
        let code = mem.finalize().unwrap();
        // SAFETY: the buffer holds a complete emitted function of this arity.
        assert_eq!(unsafe { code.call1(41) }, 42);
        // SAFETY: the buffer holds a complete emitted function of this arity.
        assert_eq!(unsafe { code.call1(u64::MAX) }, 0);
    }

    #[test]
    fn len_rounds_to_pages() {
        let mem = ExecMem::new(1).unwrap();
        assert_eq!(mem.len(), 4096);
        let mem = ExecMem::new(4097).unwrap();
        assert_eq!(mem.len(), 8192);
    }

    #[test]
    #[should_panic(expected = "fn-pointer type")]
    fn as_fn_rejects_wrong_size() {
        let mut mem = ExecMem::new(16).unwrap();
        mem.as_mut_slice()[0] = 0xc3;
        let code = mem.finalize().unwrap();
        // SAFETY: the buffer holds a complete emitted function matching this signature.
        let _: [u64; 2] = unsafe { code.as_fn() };
    }

    #[test]
    #[allow(clippy::len_zero)] // the agreement IS what's under test
    fn is_empty_agrees_with_len() {
        let mut mem = ExecMem::new(1).unwrap();
        assert_eq!(mem.is_empty(), mem.len() == 0);
        assert!(!mem.is_empty());
        mem.as_mut_slice()[0] = 0xc3;
        let code = mem.finalize().unwrap();
        assert_eq!(code.is_empty(), code.len() == 0);
        assert!(!code.is_empty());
    }

    #[test]
    fn guard_pages_bracket_the_region() {
        let mem = ExecMem::new(PAGE).unwrap();
        // The usable region excludes the guards: addr is one page into
        // the mapping and len covers only the requested storage.
        assert_eq!(mem.addr() % PAGE as u64, 0);
        assert_eq!(mem.len(), PAGE);
        assert_eq!(mem.addr(), mem.map as u64 + GUARD_BYTES as u64);
    }

    /// Serializes tests that touch the ≥2-page pool classes: the pool is
    /// process-wide and these tests reason about park/adopt ordering.
    /// (The 1-page class is left to the other tests and never asserted
    /// on.)
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn pool_recycles_and_zeroes() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        // Use a class (4 pages) no unserialized test allocates, so the
        // park → adopt round trip below is deterministic.
        let before = pool_stats();
        let mut mem = ExecMem::new(4 * PAGE).unwrap();
        let first_addr = mem.addr();
        mem.as_mut_slice().fill(0xcc);
        drop(mem); // parks (the class cannot be at cap: we only ever hold one)
        let mut mem = ExecMem::new(4 * PAGE).unwrap();
        let after = pool_stats();
        // Same thread, same shard, nothing else uses this class: the
        // parked mapping must come back, scrubbed.
        assert_eq!(mem.addr(), first_addr);
        assert!(after.hits > before.hits);
        assert!(after.parked > before.parked);
        assert!(mem.as_mut_slice().iter().all(|&b| b == 0));
    }

    #[test]
    fn pool_class_rounding_is_power_of_two() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let mem = ExecMem::new(3 * PAGE).unwrap();
        assert_eq!(mem.len(), 4 * PAGE);
        let mem = ExecMem::new(5 * PAGE).unwrap();
        assert_eq!(mem.len(), 8 * PAGE);
    }

    #[test]
    fn pool_retention_cap_evicts() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        // Fill one class (8 pages) past its retention cap; the extras
        // must be unmapped, not hoarded.
        let before = pool_stats();
        let held: Vec<ExecMem> = (0..RETAIN_PER_CLASS + 3)
            .map(|_| ExecMem::new(8 * PAGE).unwrap())
            .collect();
        drop(held);
        let after = pool_stats();
        assert!(after.evicted > before.evicted);
        assert!(after.currently_parked <= SHARDS * NUM_CLASSES * RETAIN_PER_CLASS);
    }

    #[test]
    fn drain_pool_releases_parked_mappings() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        drop(ExecMem::new(16 * PAGE).unwrap());
        assert!(pool_stats().currently_parked > 0);
        // At minimum our 16-page mapping is released. (Unserialized
        // tests may repark 1-page mappings immediately after, so the
        // pool emptying is asserted via the return value, not a second
        // stats read.)
        assert!(drain_pool() >= 1);
    }

    #[test]
    fn oversized_request_reports_enomem_without_panicking() {
        let err = ExecMem::new(usize::MAX).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(12)); // ENOMEM
        let err = ExecMem::new(usize::MAX - PAGE).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(12));
    }

    #[test]
    fn huge_requests_bypass_the_pool() {
        let mem = ExecMem::new((MAX_POOL_PAGES + 1) * PAGE).unwrap();
        // Unpooled requests round to the page, not a power of two — and
        // a non-power-of-two page count is exactly what `pooled()`
        // rejects, so the drop below unmaps rather than parks.
        assert_eq!(mem.len(), (MAX_POOL_PAGES + 1) * PAGE);
        drop(mem);
    }

    #[test]
    fn finalized_code_parks_on_drop_and_is_reusable() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let mut mem = ExecMem::new(2 * PAGE).unwrap();
        mem.as_mut_slice()[0] = 0xc3; // ret
        let code = mem.finalize().unwrap();
        // A bare `ret` returns whatever is in rax; the call itself is
        // the assertion (the mapping must be executable).
        // SAFETY: the buffer holds a complete emitted function of this arity.
        let _ = unsafe { code.call0() };
        let before = pool_stats();
        drop(code);
        let after = pool_stats();
        assert!(after.parked > before.parked || after.evicted > before.evicted);
        // A fresh allocation of the class must be writable and zeroed
        // even though the parked mapping held executable code.
        let mut mem = ExecMem::new(2 * PAGE).unwrap();
        assert!(mem.as_mut_slice().iter().all(|&b| b == 0));
    }

    #[test]
    fn pinned_code_survives_exec_code_drop_and_drain() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let mut mem = ExecMem::new(2 * PAGE).unwrap();
        // mov rax, rdi; add rax, 1; ret
        let code_bytes = [0x48, 0x89, 0xf8, 0x48, 0x83, 0xc0, 0x01, 0xc3];
        mem.as_mut_slice()[..code_bytes.len()].copy_from_slice(&code_bytes);
        let code = mem.finalize().unwrap();
        let pin = code.pin();
        let pin2 = pin.clone();
        assert_eq!(pin.addr(), code.addr());
        assert_eq!(pin.len(), code.len());
        assert!(!pin.is_empty());
        // SAFETY: the buffer holds a complete emitted function matching this signature.
        let f: extern "C" fn(u64) -> u64 = unsafe { code.as_fn() };
        drop(code); // pinned: must NOT park or unmap the mapping
        drain_pool(); // and draining the pool must not touch it either
        assert_eq!(f(41), 42);
        drop(pin);
        assert_eq!(f(6), 7); // second pin still holds the mapping
        let before = pool_stats();
        drop(pin2); // last pin of an orphaned mapping releases it
        let after = pool_stats();
        assert!(after.parked > before.parked || after.evicted > before.evicted);
    }

    #[test]
    fn unpinned_drop_is_unchanged_and_pin_after_use_is_free() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let mut mem = ExecMem::new(2 * PAGE).unwrap();
        mem.as_mut_slice()[0] = 0xc3; // ret
        let code = mem.finalize().unwrap();
        let pin = code.pin();
        // Dropping the pin while the ExecCode is alive releases nothing.
        drop(pin);
        let before = pool_stats();
        drop(code);
        let after = pool_stats();
        assert!(after.parked > before.parked || after.evicted > before.evicted);
    }

    #[test]
    fn drop_unmaps_code() {
        // The documented drop hazard: as_fn's pointer outlives the
        // borrow. This test exercises the *safe* ordering — pointer use
        // strictly before drop — and then confirms the mapping is gone
        // by remapping fresh memory (the kernel may reuse the range;
        // either way nothing dangles if the ordering is respected).
        let mut mem = ExecMem::new(64).unwrap();
        let code_bytes = [0x48, 0x89, 0xf8, 0xc3]; // mov rax, rdi; ret
        mem.as_mut_slice()[..code_bytes.len()].copy_from_slice(&code_bytes);
        let code = mem.finalize().unwrap();
        // SAFETY: the buffer holds a complete emitted function matching this signature.
        let f: extern "C" fn(u64) -> u64 = unsafe { code.as_fn() };
        assert_eq!(f(7), 7);
        drop(code); // `f` must not be called past this point
        let _fresh = ExecMem::new(64).unwrap();
    }
}
