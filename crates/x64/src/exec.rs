//! Executable memory for natively running generated code.
//!
//! The paper lists "programmer maintenance of cache coherence between
//! instruction and data caches" among the chip-specific chores a dynamic
//! code generation system must hide (§1, `v_end` step 4). On x86-64 the
//! instruction cache snoops stores, so coherence is free; what remains is
//! obtaining memory that may be executed at all. [`ExecMem`] provides it:
//! an anonymous private mapping created read+write for generation and
//! flipped to read+execute by [`ExecMem::finalize`] (W^X).
//!
//! The `mmap`/`mprotect`/`munmap` calls are made directly via the
//! `syscall` instruction so the crate needs no FFI dependency; see
//! DESIGN.md for the rationale.

use std::fmt;
use std::io;

const SYS_MMAP: i64 = 9;
const SYS_MPROTECT: i64 = 10;
const SYS_MUNMAP: i64 = 11;

const PROT_NONE: i64 = 0;
const PROT_READ: i64 = 1;
const PROT_WRITE: i64 = 2;
const PROT_EXEC: i64 = 4;
const MAP_PRIVATE: i64 = 0x02;
const MAP_ANONYMOUS: i64 = 0x20;

const PAGE: usize = 4096;

/// Bytes of inaccessible (`PROT_NONE`) padding on each side of the code
/// region. A generated function that runs off either end of its storage
/// — a straight-line escape past `len` or a wild negative branch — hits
/// a guard page and raises SIGSEGV immediately, which
/// [`GuardedCall`](crate::GuardedCall) converts into a typed
/// [`NativeTrap`](crate::NativeTrap) instead of letting the escape
/// corrupt adjacent heap mappings.
pub const GUARD_BYTES: usize = PAGE;

/// Raw Linux syscall (x86-64). Returns the kernel's value; values in
/// `-4095..0` are negated errnos.
///
/// # Safety
///
/// The caller must uphold the contract of the specific syscall.
unsafe fn syscall6(n: i64, a: i64, b: i64, c: i64, d: i64, e: i64, f: i64) -> i64 {
    let ret: i64;
    core::arch::asm!(
        "syscall",
        inlateout("rax") n => ret,
        in("rdi") a,
        in("rsi") b,
        in("rdx") c,
        in("r10") d,
        in("r8") e,
        in("r9") f,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    ret
}

fn check(ret: i64) -> io::Result<i64> {
    if (-4095..0).contains(&ret) {
        Err(io::Error::from_raw_os_error((-ret) as i32))
    } else {
        Ok(ret)
    }
}

/// A writable anonymous mapping that generated code is emitted into.
///
/// # Examples
///
/// ```
/// use vcode_x64::ExecMem;
/// let mut mem = ExecMem::new(4096)?;
/// mem.as_mut_slice()[0] = 0xb8; // mov eax, 41
/// mem.as_mut_slice()[1..5].copy_from_slice(&41i32.to_le_bytes());
/// mem.as_mut_slice()[5] = 0xc3; // ret
/// let code = mem.finalize()?;
/// let f: extern "C" fn() -> i32 = unsafe { code.as_fn() };
/// assert_eq!(f(), 41);
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct ExecMem {
    /// Start of the whole mapping (low guard page).
    map: *mut u8,
    /// Start of the writable code region (`map + GUARD_BYTES`).
    ptr: *mut u8,
    /// Length of the code region (guards excluded).
    len: usize,
}

impl fmt::Debug for ExecMem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecMem")
            .field("ptr", &self.ptr)
            .field("len", &self.len)
            .finish()
    }
}

impl ExecMem {
    /// Maps `len` bytes (rounded up to the 4 KiB page size) read+write,
    /// bracketed by one `PROT_NONE` guard page on each side (see
    /// [`GUARD_BYTES`]). [`len`](Self::len) and [`addr`](Self::addr)
    /// describe the usable code region only.
    ///
    /// # Errors
    ///
    /// Propagates the `mmap`/`mprotect` failure (`ENOMEM`, resource
    /// limits, ...).
    pub fn new(len: usize) -> io::Result<ExecMem> {
        let len = len.max(1).div_ceil(PAGE) * PAGE;
        let total = len + 2 * GUARD_BYTES;
        // SAFETY: anonymous private mapping with no fixed address; the
        // kernel picks the placement, nothing else references it. Mapped
        // PROT_NONE first so the guards never become accessible.
        let ret = unsafe {
            syscall6(
                SYS_MMAP,
                0,
                total as i64,
                PROT_NONE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        let map = check(ret)? as *mut u8;
        // SAFETY: opening the interior of a mapping we just created.
        let ret = unsafe {
            syscall6(
                SYS_MPROTECT,
                map as i64 + GUARD_BYTES as i64,
                len as i64,
                PROT_READ | PROT_WRITE,
                0,
                0,
                0,
            )
        };
        if let Err(e) = check(ret) {
            // SAFETY: unmapping the mapping we just created.
            unsafe {
                syscall6(SYS_MUNMAP, map as i64, total as i64, 0, 0, 0, 0);
            }
            return Err(e);
        }
        Ok(ExecMem {
            map,
            // SAFETY: in-bounds offset of the mapping.
            ptr: unsafe { map.add(GUARD_BYTES) },
            len,
        })
    }

    /// The writable storage, handed to
    /// [`Assembler::lambda`](vcode::Assembler::lambda) as the client code
    /// pointer.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: we own the mapping, it is PROT_READ|PROT_WRITE and
        // `len` bytes long.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }

    /// The code-region length in bytes (guard pages excluded).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the code region holds zero bytes. Mappings are made at
    /// least one page, so this is false for every constructible value —
    /// computed from `len` rather than hard-coded so the two can never
    /// disagree.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The address generated code will execute at (needed when emitting
    /// absolute-address references to the code itself).
    pub fn addr(&self) -> u64 {
        self.ptr as u64
    }

    /// Flips the code region to read+execute and returns the executable
    /// handle (the paper's `v_end` returning "a pointer to the generated
    /// code", cast to the appropriate function pointer type by the
    /// client). The guard pages stay `PROT_NONE`.
    ///
    /// # Errors
    ///
    /// Propagates the `mprotect` failure.
    pub fn finalize(self) -> io::Result<ExecCode> {
        // SAFETY: `ptr`/`len` describe a mapping we own.
        let ret = unsafe {
            syscall6(
                SYS_MPROTECT,
                self.ptr as i64,
                self.len as i64,
                PROT_READ | PROT_EXEC,
                0,
                0,
                0,
            )
        };
        check(ret)?;
        let code = ExecCode {
            map: self.map,
            ptr: self.ptr,
            len: self.len,
        };
        std::mem::forget(self);
        Ok(code)
    }

    fn total(&self) -> usize {
        self.len + 2 * GUARD_BYTES
    }
}

impl Drop for ExecMem {
    fn drop(&mut self) {
        // SAFETY: unmapping a mapping we own (guards included); errors
        // are ignorable here (C-DTOR-FAIL).
        unsafe {
            syscall6(SYS_MUNMAP, self.map as i64, self.total() as i64, 0, 0, 0, 0);
        }
    }
}

// SAFETY: the mapping is plain memory; access is through &mut self.
unsafe impl Send for ExecMem {}

/// Finalized, executable code, still bracketed by its `PROT_NONE` guard
/// pages.
///
/// # Drop hazard
///
/// Dropping unmaps the code. The borrow checker cannot see through the
/// `unsafe` cast in [`as_fn`](Self::as_fn): the returned function
/// pointer does **not** borrow `self`, so it is possible to drop the
/// `ExecCode` and then call the pointer. That call jumps into an
/// unmapped page — under [`GuardedCall`](crate::GuardedCall) it surfaces
/// as a [`NativeTrap`](crate::NativeTrap); on a bare call it is a crash.
/// Keep the `ExecCode` alive for as long as any pointer obtained from it
/// may be invoked (see the `drop_unmaps_code` test).
pub struct ExecCode {
    /// Start of the whole mapping (low guard page).
    map: *mut u8,
    /// Entry of the executable region (`map + GUARD_BYTES`).
    ptr: *mut u8,
    /// Length of the executable region (guards excluded).
    len: usize,
}

impl fmt::Debug for ExecCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecCode")
            .field("ptr", &self.ptr)
            .field("len", &self.len)
            .finish()
    }
}

impl ExecCode {
    /// Entry address of the code.
    pub fn addr(&self) -> u64 {
        self.ptr as u64
    }

    /// Length of the executable region (guard pages excluded).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the executable region holds zero bytes; false for every
    /// constructible value, computed honestly from `len`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reinterprets the entry point as a function pointer.
    ///
    /// # Safety
    ///
    /// `F` must be a `fn` pointer type whose ABI matches the generated
    /// code (the signature passed to `lambda`, `extern "C"`), and the
    /// code must stay alive while `F` is callable.
    pub unsafe fn as_fn<F: Copy>(&self) -> F {
        assert_eq!(
            std::mem::size_of::<F>(),
            std::mem::size_of::<usize>(),
            "as_fn requires a fn-pointer type"
        );
        // SAFETY: size checked above; validity of the ABI is the
        // caller's obligation.
        unsafe { std::mem::transmute_copy(&self.ptr) }
    }

    /// Calls the code as `extern "C" fn() -> u64`.
    ///
    /// # Safety
    ///
    /// The generated function must take no arguments and return an
    /// integer (or nothing).
    pub unsafe fn call0(&self) -> u64 {
        let f: extern "C" fn() -> u64 = unsafe { self.as_fn() };
        f()
    }

    /// Calls the code as `extern "C" fn(u64) -> u64`.
    ///
    /// # Safety
    ///
    /// The generated function must take one integer argument.
    pub unsafe fn call1(&self, a: u64) -> u64 {
        let f: extern "C" fn(u64) -> u64 = unsafe { self.as_fn() };
        f(a)
    }

    /// Calls the code as `extern "C" fn(u64, u64) -> u64`.
    ///
    /// # Safety
    ///
    /// The generated function must take two integer arguments.
    pub unsafe fn call2(&self, a: u64, b: u64) -> u64 {
        let f: extern "C" fn(u64, u64) -> u64 = unsafe { self.as_fn() };
        f(a, b)
    }

    /// Calls the code as `extern "C" fn(u64, u64, u64) -> u64`.
    ///
    /// # Safety
    ///
    /// The generated function must take three integer arguments.
    pub unsafe fn call3(&self, a: u64, b: u64, c: u64) -> u64 {
        let f: extern "C" fn(u64, u64, u64) -> u64 = unsafe { self.as_fn() };
        f(a, b, c)
    }

    /// Calls the code as `extern "C" fn(u64, u64, u64, u64) -> u64`.
    ///
    /// # Safety
    ///
    /// The generated function must take four integer arguments.
    pub unsafe fn call4(&self, a: u64, b: u64, c: u64, d: u64) -> u64 {
        let f: extern "C" fn(u64, u64, u64, u64) -> u64 = unsafe { self.as_fn() };
        f(a, b, c, d)
    }
}

impl Drop for ExecCode {
    fn drop(&mut self) {
        // SAFETY: unmapping a mapping we own (guards included). The
        // caller upholds the drop hazard documented on the type: no
        // generated function may be executing or called after this.
        unsafe {
            syscall6(
                SYS_MUNMAP,
                self.map as i64,
                (self.len + 2 * GUARD_BYTES) as i64,
                0,
                0,
                0,
                0,
            );
        }
    }
}

// SAFETY: immutable machine code; callable from any thread.
unsafe impl Send for ExecCode {}
// SAFETY: no interior mutability.
unsafe impl Sync for ExecCode {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_tiny_function() {
        let mut mem = ExecMem::new(64).unwrap();
        assert_eq!(mem.len() % 4096, 0);
        // mov rax, rdi; add rax, 1; ret
        let code = [0x48, 0x89, 0xf8, 0x48, 0x83, 0xc0, 0x01, 0xc3];
        mem.as_mut_slice()[..code.len()].copy_from_slice(&code);
        let code = mem.finalize().unwrap();
        assert_eq!(unsafe { code.call1(41) }, 42);
        assert_eq!(unsafe { code.call1(u64::MAX) }, 0);
    }

    #[test]
    fn len_rounds_to_pages() {
        let mem = ExecMem::new(1).unwrap();
        assert_eq!(mem.len(), 4096);
        let mem = ExecMem::new(4097).unwrap();
        assert_eq!(mem.len(), 8192);
    }

    #[test]
    #[should_panic(expected = "fn-pointer type")]
    fn as_fn_rejects_wrong_size() {
        let mut mem = ExecMem::new(16).unwrap();
        mem.as_mut_slice()[0] = 0xc3;
        let code = mem.finalize().unwrap();
        let _: [u64; 2] = unsafe { code.as_fn() };
    }

    #[test]
    #[allow(clippy::len_zero)] // the agreement IS what's under test
    fn is_empty_agrees_with_len() {
        let mut mem = ExecMem::new(1).unwrap();
        assert_eq!(mem.is_empty(), mem.len() == 0);
        assert!(!mem.is_empty());
        mem.as_mut_slice()[0] = 0xc3;
        let code = mem.finalize().unwrap();
        assert_eq!(code.is_empty(), code.len() == 0);
        assert!(!code.is_empty());
    }

    #[test]
    fn guard_pages_bracket_the_region() {
        let mem = ExecMem::new(PAGE).unwrap();
        // The usable region excludes the guards: addr is one page into
        // the mapping and len covers only the requested storage.
        assert_eq!(mem.addr() % PAGE as u64, 0);
        assert_eq!(mem.len(), PAGE);
        assert_eq!(mem.addr(), mem.map as u64 + GUARD_BYTES as u64);
    }

    #[test]
    fn drop_unmaps_code() {
        // The documented drop hazard: as_fn's pointer outlives the
        // borrow. This test exercises the *safe* ordering — pointer use
        // strictly before drop — and then confirms the mapping is gone
        // by remapping fresh memory (the kernel may reuse the range;
        // either way nothing dangles if the ordering is respected).
        let mut mem = ExecMem::new(64).unwrap();
        let code_bytes = [0x48, 0x89, 0xf8, 0xc3]; // mov rax, rdi; ret
        mem.as_mut_slice()[..code_bytes.len()].copy_from_slice(&code_bytes);
        let code = mem.finalize().unwrap();
        let f: extern "C" fn(u64) -> u64 = unsafe { code.as_fn() };
        assert_eq!(f(7), 7);
        drop(code); // `f` must not be called past this point
        let _fresh = ExecMem::new(64).unwrap();
    }
}
