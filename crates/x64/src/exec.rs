//! Executable memory for natively running generated code.
//!
//! The paper lists "programmer maintenance of cache coherence between
//! instruction and data caches" among the chip-specific chores a dynamic
//! code generation system must hide (§1, `v_end` step 4). On x86-64 the
//! instruction cache snoops stores, so coherence is free; what remains is
//! obtaining memory that may be executed at all. [`ExecMem`] provides it:
//! an anonymous private mapping created read+write for generation and
//! flipped to read+execute by [`ExecMem::finalize`] (W^X).
//!
//! The `mmap`/`mprotect`/`munmap` calls are made directly via the
//! `syscall` instruction so the crate needs no FFI dependency; see
//! DESIGN.md for the rationale.

use std::fmt;
use std::io;

const SYS_MMAP: i64 = 9;
const SYS_MPROTECT: i64 = 10;
const SYS_MUNMAP: i64 = 11;

const PROT_READ: i64 = 1;
const PROT_WRITE: i64 = 2;
const PROT_EXEC: i64 = 4;
const MAP_PRIVATE: i64 = 0x02;
const MAP_ANONYMOUS: i64 = 0x20;

/// Raw Linux syscall (x86-64). Returns the kernel's value; values in
/// `-4095..0` are negated errnos.
///
/// # Safety
///
/// The caller must uphold the contract of the specific syscall.
unsafe fn syscall6(n: i64, a: i64, b: i64, c: i64, d: i64, e: i64, f: i64) -> i64 {
    let ret: i64;
    core::arch::asm!(
        "syscall",
        inlateout("rax") n => ret,
        in("rdi") a,
        in("rsi") b,
        in("rdx") c,
        in("r10") d,
        in("r8") e,
        in("r9") f,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    ret
}

fn check(ret: i64) -> io::Result<i64> {
    if (-4095..0).contains(&ret) {
        Err(io::Error::from_raw_os_error((-ret) as i32))
    } else {
        Ok(ret)
    }
}

/// A writable anonymous mapping that generated code is emitted into.
///
/// # Examples
///
/// ```
/// use vcode_x64::ExecMem;
/// let mut mem = ExecMem::new(4096)?;
/// mem.as_mut_slice()[0] = 0xb8; // mov eax, 41
/// mem.as_mut_slice()[1..5].copy_from_slice(&41i32.to_le_bytes());
/// mem.as_mut_slice()[5] = 0xc3; // ret
/// let code = mem.finalize()?;
/// let f: extern "C" fn() -> i32 = unsafe { code.as_fn() };
/// assert_eq!(f(), 41);
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct ExecMem {
    ptr: *mut u8,
    len: usize,
}

impl fmt::Debug for ExecMem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecMem")
            .field("ptr", &self.ptr)
            .field("len", &self.len)
            .finish()
    }
}

impl ExecMem {
    /// Maps `len` bytes (rounded up to the 4 KiB page size) read+write.
    ///
    /// # Errors
    ///
    /// Propagates the `mmap` failure (`ENOMEM`, resource limits, ...).
    pub fn new(len: usize) -> io::Result<ExecMem> {
        let len = len.max(1).div_ceil(4096) * 4096;
        // SAFETY: anonymous private mapping with no fixed address; the
        // kernel picks the placement, nothing else references it.
        let ret = unsafe {
            syscall6(
                SYS_MMAP,
                0,
                len as i64,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        let addr = check(ret)?;
        Ok(ExecMem {
            ptr: addr as *mut u8,
            len,
        })
    }

    /// The writable storage, handed to
    /// [`Assembler::lambda`](vcode::Assembler::lambda) as the client code
    /// pointer.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: we own the mapping, it is PROT_READ|PROT_WRITE and
        // `len` bytes long.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }

    /// The mapping length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Never true; mappings have at least one page.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The address generated code will execute at (needed when emitting
    /// absolute-address references to the code itself).
    pub fn addr(&self) -> u64 {
        self.ptr as u64
    }

    /// Flips the mapping to read+execute and returns the executable
    /// handle (the paper's `v_end` returning "a pointer to the generated
    /// code", cast to the appropriate function pointer type by the
    /// client).
    ///
    /// # Errors
    ///
    /// Propagates the `mprotect` failure.
    pub fn finalize(self) -> io::Result<ExecCode> {
        // SAFETY: `ptr`/`len` describe a mapping we own.
        let ret = unsafe { syscall6(SYS_MPROTECT, self.ptr as i64, self.len as i64, PROT_READ | PROT_EXEC, 0, 0, 0) };
        check(ret)?;
        let code = ExecCode {
            ptr: self.ptr,
            len: self.len,
        };
        std::mem::forget(self);
        Ok(code)
    }
}

impl Drop for ExecMem {
    fn drop(&mut self) {
        // SAFETY: unmapping a mapping we own; errors are ignorable here
        // (C-DTOR-FAIL).
        unsafe {
            syscall6(SYS_MUNMAP, self.ptr as i64, self.len as i64, 0, 0, 0, 0);
        }
    }
}

// SAFETY: the mapping is plain memory; access is through &mut self.
unsafe impl Send for ExecMem {}

/// Finalized, executable code. Unmapped on drop — the caller must ensure
/// no generated function is executing when that happens.
pub struct ExecCode {
    ptr: *mut u8,
    len: usize,
}

impl fmt::Debug for ExecCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecCode")
            .field("ptr", &self.ptr)
            .field("len", &self.len)
            .finish()
    }
}

impl ExecCode {
    /// Entry address of the code.
    pub fn addr(&self) -> u64 {
        self.ptr as u64
    }

    /// Length of the mapping.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Never true.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Reinterprets the entry point as a function pointer.
    ///
    /// # Safety
    ///
    /// `F` must be a `fn` pointer type whose ABI matches the generated
    /// code (the signature passed to `lambda`, `extern "C"`), and the
    /// code must stay alive while `F` is callable.
    pub unsafe fn as_fn<F: Copy>(&self) -> F {
        assert_eq!(
            std::mem::size_of::<F>(),
            std::mem::size_of::<usize>(),
            "as_fn requires a fn-pointer type"
        );
        // SAFETY: size checked above; validity of the ABI is the
        // caller's obligation.
        unsafe { std::mem::transmute_copy(&self.ptr) }
    }

    /// Calls the code as `extern "C" fn() -> u64`.
    ///
    /// # Safety
    ///
    /// The generated function must take no arguments and return an
    /// integer (or nothing).
    pub unsafe fn call0(&self) -> u64 {
        let f: extern "C" fn() -> u64 = unsafe { self.as_fn() };
        f()
    }

    /// Calls the code as `extern "C" fn(u64) -> u64`.
    ///
    /// # Safety
    ///
    /// The generated function must take one integer argument.
    pub unsafe fn call1(&self, a: u64) -> u64 {
        let f: extern "C" fn(u64) -> u64 = unsafe { self.as_fn() };
        f(a)
    }

    /// Calls the code as `extern "C" fn(u64, u64) -> u64`.
    ///
    /// # Safety
    ///
    /// The generated function must take two integer arguments.
    pub unsafe fn call2(&self, a: u64, b: u64) -> u64 {
        let f: extern "C" fn(u64, u64) -> u64 = unsafe { self.as_fn() };
        f(a, b)
    }

    /// Calls the code as `extern "C" fn(u64, u64, u64) -> u64`.
    ///
    /// # Safety
    ///
    /// The generated function must take three integer arguments.
    pub unsafe fn call3(&self, a: u64, b: u64, c: u64) -> u64 {
        let f: extern "C" fn(u64, u64, u64) -> u64 = unsafe { self.as_fn() };
        f(a, b, c)
    }

    /// Calls the code as `extern "C" fn(u64, u64, u64, u64) -> u64`.
    ///
    /// # Safety
    ///
    /// The generated function must take four integer arguments.
    pub unsafe fn call4(&self, a: u64, b: u64, c: u64, d: u64) -> u64 {
        let f: extern "C" fn(u64, u64, u64, u64) -> u64 = unsafe { self.as_fn() };
        f(a, b, c, d)
    }
}

impl Drop for ExecCode {
    fn drop(&mut self) {
        // SAFETY: unmapping a mapping we own.
        unsafe {
            syscall6(SYS_MUNMAP, self.ptr as i64, self.len as i64, 0, 0, 0, 0);
        }
    }
}

// SAFETY: immutable machine code; callable from any thread.
unsafe impl Send for ExecCode {}
// SAFETY: no interior mutability.
unsafe impl Sync for ExecCode {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_tiny_function() {
        let mut mem = ExecMem::new(64).unwrap();
        assert_eq!(mem.len() % 4096, 0);
        // mov rax, rdi; add rax, 1; ret
        let code = [0x48, 0x89, 0xf8, 0x48, 0x83, 0xc0, 0x01, 0xc3];
        mem.as_mut_slice()[..code.len()].copy_from_slice(&code);
        let code = mem.finalize().unwrap();
        assert_eq!(unsafe { code.call1(41) }, 42);
        assert_eq!(unsafe { code.call1(u64::MAX) }, 0);
    }

    #[test]
    fn len_rounds_to_pages() {
        let mem = ExecMem::new(1).unwrap();
        assert_eq!(mem.len(), 4096);
        let mem = ExecMem::new(4097).unwrap();
        assert_eq!(mem.len(), 8192);
    }

    #[test]
    #[should_panic(expected = "fn-pointer type")]
    fn as_fn_rejects_wrong_size() {
        let mut mem = ExecMem::new(16).unwrap();
        mem.as_mut_slice()[0] = 0xc3;
        let code = mem.finalize().unwrap();
        let _: [u64; 2] = unsafe { code.as_fn() };
    }
}
