//! Length decoder for the x86-64 encoding subset of [`crate::encode`].
//!
//! The differential machine-code checker (`vcode::verify::cross_check`)
//! needs to re-walk the emitted bytes and confirm that every recorded
//! vcode instruction span is a whole number of machine instructions and
//! that branch targets land on instruction boundaries. The RISC targets
//! reuse their simulator disassemblers for this; x86-64 has no simulator,
//! so this module decodes exactly the instruction forms the backend can
//! emit — prefixes, REX, opcode, modrm/SIB/displacement, immediate — and
//! rejects everything else. Rejecting unknown encodings is a feature: a
//! byte stream this decoder cannot parse is a byte stream the backend
//! should never have produced.

use vcode::{DecodedInsn, InsnDecoder};

/// [`InsnDecoder`] over the backend's emitted instruction subset.
#[derive(Debug, Clone, Copy, Default)]
pub struct Decoder;

/// Bytes consumed by a modrm byte plus its SIB/displacement, starting at
/// `bytes[0]` = the modrm byte itself. `None` for truncated input or the
/// (never emitted) SIB-with-no-base form.
fn modrm_len(bytes: &[u8]) -> Option<usize> {
    let modrm = *bytes.first()?;
    let md = modrm >> 6;
    let rm = modrm & 7;
    let mut n = 1;
    if md != 0b11 && rm == 0b100 {
        let sib = *bytes.get(1)?;
        n += 1;
        if md == 0b00 && sib & 7 == 0b101 {
            return None; // SIB base=101 with mod=00: not emitted
        }
    }
    n += match (md, rm) {
        (0b00, 0b101) => 4, // rip-relative disp32
        (0b00, _) => 0,
        (0b01, _) => 1,
        (0b10, _) => 4,
        _ => 0, // register direct
    };
    if bytes.len() < n {
        return None;
    }
    Some(n)
}

fn rel32_target(code: &[u8], field: usize, next: usize) -> Option<i64> {
    let rel = i32::from_le_bytes(code.get(field..field + 4)?.try_into().ok()?);
    Some(next as i64 + i64::from(rel))
}

impl InsnDecoder for Decoder {
    fn decode(&self, code: &[u8], at: usize) -> Option<DecodedInsn> {
        let bytes = code.get(at..)?;
        let mut i = 0;
        // Mandatory prefixes (0x66 operand-size, 0xF2/0xF3 SSE scalar).
        let mut prefix66 = false;
        while let Some(&b) = bytes.get(i) {
            match b {
                0x66 => {
                    prefix66 = true;
                    i += 1;
                }
                0xf2 | 0xf3 => i += 1,
                _ => break,
            }
            if i > 3 {
                return None;
            }
        }
        // Optional REX.
        let mut rex_w = false;
        if let Some(&b) = bytes.get(i) {
            if (0x40..=0x4f).contains(&b) {
                rex_w = b & 0x08 != 0;
                i += 1;
            }
        }
        let op = *bytes.get(i)?;
        i += 1;
        let done = |len: usize| {
            Some(DecodedInsn {
                len,
                control: false,
                target: None,
            })
        };
        match op {
            // Two-byte opcodes.
            0x0f => {
                let op2 = *bytes.get(i)?;
                i += 1;
                match op2 {
                    // jcc rel32
                    0x80..=0x8f => Some(DecodedInsn {
                        len: i + 4,
                        control: true,
                        target: rel32_target(code, at + i, at + i + 4),
                    }),
                    // bswap r
                    0xc8..=0xcf => done(i),
                    // modrm-following forms the backend emits: SSE scalar
                    // moves/arithmetic (10/11/2A/2C/2E/2F/51/54/57/58/59/
                    // 5A/5C/5E), imul (AF), widening moves (B6/B7/BE/BF),
                    // setcc (90-9F).
                    0x10
                    | 0x11
                    | 0x2a
                    | 0x2c
                    | 0x2e
                    | 0x2f
                    | 0x51
                    | 0x54
                    | 0x57
                    | 0x58
                    | 0x59
                    | 0x5a
                    | 0x5c
                    | 0x5e
                    | 0xaf
                    | 0xb6
                    | 0xb7
                    | 0xbe
                    | 0xbf
                    | 0x90..=0x9f => done(i + modrm_len(&bytes[i..])?),
                    _ => None,
                }
            }
            // ALU r/m, reg.
            0x01 | 0x09 | 0x21 | 0x29 | 0x31 | 0x39 => done(i + modrm_len(&bytes[i..])?),
            // ALU r/m, imm8 / imm32; shift imm8 shares C1.
            0x83 => done(i + modrm_len(&bytes[i..])? + 1),
            0x81 => done(i + modrm_len(&bytes[i..])? + 4),
            0xc1 => done(i + modrm_len(&bytes[i..])? + 1),
            // imul reg, rm, imm32.
            0x69 => done(i + modrm_len(&bytes[i..])? + 4),
            // mov/lea/movsxd and byte/word stores.
            0x88 | 0x89 | 0x8b | 0x8d | 0x63 => done(i + modrm_len(&bytes[i..])?),
            // mov r, imm32 / movabs r, imm64.
            0xb8..=0xbf => done(i + if rex_w { 8 } else { 4 }),
            // mov r/m, imm32.
            0xc7 => done(i + modrm_len(&bytes[i..])? + 4),
            // group-3 unary / shift-by-cl.
            0xf7 | 0xd3 => done(i + modrm_len(&bytes[i..])?),
            // cdq/cqo (cqo is REX.W + 99).
            0x99 => done(i),
            // jmp/call rel32.
            0xe9 | 0xe8 => Some(DecodedInsn {
                len: i + 4,
                control: true,
                target: rel32_target(code, at + i, at + i + 4),
            }),
            // jmp rel8 (the epilogue patcher's short hop over the
            // unused run of reserved prologue-save nops).
            0xeb => {
                let rel = *bytes.get(i)? as i8;
                Some(DecodedInsn {
                    len: i + 1,
                    control: true,
                    target: Some((at + i + 1) as i64 + i64::from(rel)),
                })
            }
            // group-5: jmp/call r/m (only /2 and /4 are emitted).
            0xff => {
                let ext = (*bytes.get(i)? >> 3) & 7;
                if ext != 2 && ext != 4 {
                    return None;
                }
                Some(DecodedInsn {
                    len: i + modrm_len(&bytes[i..])?,
                    control: true,
                    target: None,
                })
            }
            // ret.
            0xc3 => Some(DecodedInsn {
                len: i,
                control: true,
                target: None,
            }),
            // leave / nop / push / pop.
            0xc9 | 0x90 | 0x50..=0x5f => {
                let _ = prefix66;
                done(i)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{self, cc, r, sse, Mem};
    use vcode::buf::CodeBuffer;

    fn lens(f: impl FnOnce(&mut CodeBuffer<'_>)) -> (Vec<u8>, Vec<usize>) {
        let mut mem = [0u8; 256];
        let mut buf = CodeBuffer::new(&mut mem);
        f(&mut buf);
        let code = buf.as_slice().to_vec();
        let mut at = 0;
        let mut out = Vec::new();
        while at < code.len() {
            let d = Decoder
                .decode(&code, at)
                .unwrap_or_else(|| panic!("undecodable at {at}: {:02x?}", &code[at..]));
            out.push(d.len);
            at += d.len;
        }
        (code, out)
    }

    #[test]
    fn walks_representative_stream() {
        let (_, l) = lens(|b| {
            encode::alu_rr(b, encode::Alu::Add, true, r::RAX, r::RBX); // 3
            encode::alu_imm(b, encode::Alu::Sub, true, r::RDI, 10); // 4
            encode::mov_ri(b, r::R10, 0x1_0000_0000); // 10
            encode::load(b, true, r::RAX, Mem::bd(r::RSP, 8)); // 5
            encode::store8(b, r::RSI, Mem::bd(r::RDI, 0)); // 3
            encode::sse_rr(b, Some(sse::SD), 0x58, 0, 1); // 4
            encode::cvtsi2(b, sse::SD, true, 0, r::RDI); // 5
            encode::setcc(b, cc::E, r::RSI); // 4
            encode::nop(b); // 1
            encode::ret(b); // 1
        });
        assert_eq!(l, vec![3, 4, 10, 5, 3, 4, 5, 4, 1, 1]);
    }

    #[test]
    fn rel32_targets_resolve() {
        let mut mem = [0u8; 64];
        let mut buf = CodeBuffer::new(&mut mem);
        let field = encode::jmp_rel(&mut buf);
        let end = buf.len();
        // Patch the rel32 to jump back to offset 0.
        let rel = 0i64 - end as i64;
        buf.patch_u32(field, rel as i32 as u32);
        let code = buf.as_slice().to_vec();
        let d = Decoder.decode(&code, 0).unwrap();
        assert!(d.control);
        assert_eq!(d.len, end);
        assert_eq!(d.target, Some(0));
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(Decoder.decode(&[0x06, 0x00], 0).is_none()); // invalid in 64-bit
        assert!(Decoder.decode(&[0x0f, 0x05], 0).is_none()); // syscall: never emitted
        assert!(Decoder.decode(&[0x48], 0).is_none()); // bare REX
    }
}
