//! # vcode-x64 — native x86-64 backend for vcode
//!
//! The paper observes that "there is no real conflict between VCODE's
//! interface and that of the most widely used CISC on the market, the x86"
//! (§3.3). This crate is that port, for the 64-bit SysV ABI: it implements
//! [`vcode::Target`] for [`X64`] and provides [`ExecMem`] so generated
//! code runs natively — the zero→aha path of dynamic code generation.
//!
//! ```
//! use vcode::{Assembler, Leaf};
//! use vcode_x64::{ExecMem, X64};
//!
//! // Figure 1 of the paper: int plus1(int x) { return x + 1; }
//! let mut mem = ExecMem::new(4096)?;
//! let mut a = Assembler::<X64>::lambda(mem.as_mut_slice(), "%i", Leaf::Yes)?;
//! let x = a.arg(0);
//! a.addii(x, x, 1);
//! a.reti(x);
//! a.end()?;
//! let code = mem.finalize()?;
//! let plus1: extern "C" fn(i32) -> i32 = unsafe { code.as_fn() };
//! assert_eq!(plus1(41), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Register conventions
//!
//! `rax`, `rcx`, `rdx` and `r11` are reserved for instruction synthesis
//! (division uses `rax:rdx`, shifts use `cl`, `r11` is the universal
//! scratch), and `rsp`/`rbp` for the stack. Everything else is an
//! allocation candidate: `r10` plus the six SysV argument registers as
//! temporaries, `rbx`/`r12`–`r15` as persistent. Incoming arguments homed
//! in `rdx`/`rcx` are evacuated to allocatable registers by `lambda`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod declen;
pub mod encode;
pub mod exec;
pub mod guard;

pub use exec::{
    drain_pool, pool_stats, CodePin, ExecCode, ExecMem, PoolStats, GUARD_BYTES, MAX_POOL_PAGES,
};
pub use guard::{exec_stats, guarded_call_count, GuardedCall, NativeTrap};

use encode::{cc, r, sse, Alu, Mem};
use vcode::asm::Asm;
use vcode::ext::ExtUnOp;
use vcode::label::{Fixup, FixupTarget, Label};
use vcode::op::{BinOp, Cond, Imm, UnOp};
use vcode::reg::{Reg, RegDesc, RegFile};
use vcode::target::{BrOperand, CallFrame, JumpTarget, Leaf, Off, StackSlot, Target};
use vcode::ty::{Sig, Ty};
use vcode::Error;

/// The x86-64 SysV target.
#[derive(Debug, Clone, Copy)]
pub enum X64 {}

/// Universal synthesis scratch register.
const SCRATCH: u8 = r::R11;
/// Floating-point synthesis scratch.
const FSCRATCH: u8 = 15;

/// SysV integer argument slots.
const INT_ARG_SLOTS: [u8; 6] = [r::RDI, r::RSI, r::RDX, r::RCX, r::R8, r::R9];

static INT_REGS: [RegDesc; 11] = vcode::regdescs![int:
    r::R10, CallerSaved, "r10";
    r::R9, Arg(5), "r9";
    r::R8, Arg(4), "r8";
    r::RSI, Arg(1), "rsi";
    r::RDI, Arg(0), "rdi";
    r::RBX, CalleeSaved, "rbx";
    r::R12, CalleeSaved, "r12";
    r::R13, CalleeSaved, "r13";
    r::R14, CalleeSaved, "r14";
    r::R15, CalleeSaved, "r15";
    r::R11, Reserved, "r11";
];

static FLT_REGS: [RegDesc; 16] = vcode::regdescs![flt:
    8, CallerSaved, "xmm8";
    9, CallerSaved, "xmm9";
    10, CallerSaved, "xmm10";
    11, CallerSaved, "xmm11";
    12, CallerSaved, "xmm12";
    13, CallerSaved, "xmm13";
    14, CallerSaved, "xmm14";
    7, Arg(7), "xmm7";
    6, Arg(6), "xmm6";
    5, Arg(5), "xmm5";
    4, Arg(4), "xmm4";
    3, Arg(3), "xmm3";
    2, Arg(2), "xmm2";
    1, Arg(1), "xmm1";
    0, Arg(0), "xmm0";
    15, Reserved, "xmm15";
];

static REGFILE: RegFile = RegFile {
    int: &INT_REGS,
    flt: &FLT_REGS,
    hard_temps: &[
        Reg::int(r::RDI),
        Reg::int(r::RSI),
        Reg::int(r::R8),
        Reg::int(r::R9),
        Reg::int(r::R10),
    ],
    hard_saved: &[
        Reg::int(r::RBX),
        Reg::int(r::R12),
        Reg::int(r::R13),
        Reg::int(r::R14),
    ],
    sp: Reg::int(r::RSP),
    fp: Reg::int(r::RBP),
    zero: None,
};

/// Registers with fixed prologue save slots, in slot order. The first
/// five are callee-saved under the standard convention; the rest exist
/// so clients may *reclassify* caller-saved registers as callee-saved
/// per generated function (paper §5.3's interrupt-handler case) and
/// still get correct save/restore code.
const CALLEE_SAVED: [u8; 10] = [
    r::RBX,
    r::R12,
    r::R13,
    r::R14,
    r::R15,
    r::R10,
    r::RDI,
    r::RSI,
    r::R8,
    r::R9,
];
/// Bytes of the fixed callee-save area below `rbp`.
const SAVE_AREA: usize = CALLEE_SAVED.len() * 8;
/// Bytes of one reserved prologue save instruction
/// (`mov [rbp-disp8], r64` = REX + opcode + modrm + disp8; the deepest
/// slot is `rbp-80`, still within disp8 range).
const SAVE_INSN: usize = 4;

#[inline]
fn is64(ty: Ty) -> bool {
    matches!(ty, Ty::L | Ty::Ul | Ty::P)
}

/// Signed/unsigned condition-code nibble for an integer comparison.
#[inline]
fn int_cc(cond: Cond, signed: bool) -> u8 {
    match (cond, signed) {
        (Cond::Lt, true) => cc::L,
        (Cond::Le, true) => cc::LE,
        (Cond::Gt, true) => cc::G,
        (Cond::Ge, true) => cc::GE,
        (Cond::Lt, false) => cc::B,
        (Cond::Le, false) => cc::BE,
        (Cond::Gt, false) => cc::A,
        (Cond::Ge, false) => cc::AE,
        (Cond::Eq, _) => cc::E,
        (Cond::Ne, _) => cc::NE,
    }
}

impl X64 {
    /// Emits the three-operand → two-operand resolution for a commutable
    /// or plain ALU op.
    #[inline(always)]
    fn alu3(a: &mut Asm<'_>, op: Alu, w: bool, commutes: bool, rd: u8, rs1: u8, rs2: u8) {
        if rd == rs1 {
            encode::alu_rr(&mut a.buf, op, w, rd, rs2);
        } else if rd == rs2 && commutes {
            encode::alu_rr(&mut a.buf, op, w, rd, rs1);
        } else if rd == rs2 {
            encode::mov_rr(&mut a.buf, w, SCRATCH, rs1);
            encode::alu_rr(&mut a.buf, op, w, SCRATCH, rs2);
            encode::mov_rr(&mut a.buf, w, rd, SCRATCH);
        } else {
            encode::mov_rr(&mut a.buf, w, rd, rs1);
            encode::alu_rr(&mut a.buf, op, w, rd, rs2);
        }
    }

    #[inline]
    fn div_mod(a: &mut Asm<'_>, ty: Ty, want_mod: bool, rd: u8, rs1: u8, rs2: u8) {
        debug_assert!(
            rs2 != r::RAX && rs2 != r::RDX,
            "divisor in a reserved register"
        );
        let w = is64(ty);
        let signed = ty.is_signed();
        encode::mov_rr(&mut a.buf, w, r::RAX, rs1);
        if signed {
            if w {
                encode::cqo(&mut a.buf);
            } else {
                encode::cdq(&mut a.buf);
            }
        } else {
            encode::alu_rr(&mut a.buf, Alu::Xor, false, r::RDX, r::RDX);
        }
        encode::unary_rm(&mut a.buf, if signed { 7 } else { 6 }, w, rs2);
        let res = if want_mod { r::RDX } else { r::RAX };
        encode::mov_rr(&mut a.buf, w, rd, res);
    }

    #[inline]
    fn shift(a: &mut Asm<'_>, op: BinOp, ty: Ty, rd: u8, rs1: u8, rs2: u8) {
        let w = is64(ty);
        let ext = match op {
            BinOp::Lsh => 4,
            BinOp::Rsh if ty.is_signed() => 7,
            BinOp::Rsh => 5,
            _ => unreachable!(),
        };
        encode::mov_rr(&mut a.buf, false, r::RCX, rs2);
        if rd != rs1 {
            encode::mov_rr(&mut a.buf, w, rd, rs1);
        }
        encode::shift_cl(&mut a.buf, ext, w, rd);
    }

    #[inline]
    fn sse3(a: &mut Asm<'_>, prefix: u8, opc: u8, commutes: bool, rd: u8, rs1: u8, rs2: u8) {
        if rd == rs1 {
            encode::sse_rr(&mut a.buf, Some(prefix), opc, rd, rs2);
        } else if rd == rs2 && commutes {
            encode::sse_rr(&mut a.buf, Some(prefix), opc, rd, rs1);
        } else if rd == rs2 {
            encode::sse_rr(&mut a.buf, Some(prefix), 0x10, FSCRATCH, rs1);
            encode::sse_rr(&mut a.buf, Some(prefix), opc, FSCRATCH, rs2);
            encode::sse_rr(&mut a.buf, Some(prefix), 0x10, rd, FSCRATCH);
        } else {
            encode::sse_rr(&mut a.buf, Some(prefix), 0x10, rd, rs1);
            encode::sse_rr(&mut a.buf, Some(prefix), opc, rd, rs2);
        }
    }

    #[inline]
    fn load_lit(a: &mut Asm<'_>, prefix: u8, rd: u8, id: vcode::label::LitId) {
        let at = encode::sse_load_rip(&mut a.buf, prefix, rd);
        a.fixup_at(at, FixupTarget::Lit(id), 0);
    }

    /// Immediate-form fallback: the constant doesn't fit the immediate
    /// field (paper §1: "boundary conditions") or the op has no
    /// immediate form, so it goes through the scratch register. Kept out
    /// of line so the small hot arms of `emit_binop_imm` inline cleanly
    /// at every `*ii` call site.
    #[inline(never)]
    fn binop_imm_slow(a: &mut Asm<'_>, op: BinOp, ty: Ty, rd: Reg, rs: Reg, imm: i64) {
        encode::mov_ri(&mut a.buf, SCRATCH, imm);
        Self::emit_binop(a, op, ty, rd, rs, Reg::int(SCRATCH));
    }
}

impl Target for X64 {
    const NAME: &'static str = "x86-64";
    const WORD_BITS: u32 = 64;
    const MAX_SAVE_BYTES: usize = CALLEE_SAVED.len() * SAVE_INSN;
    const CHECKS: vcode::TargetChecks = vcode::TargetChecks {
        word_bits: Self::WORD_BITS,
        insn_align: 1,
        branch_delay_slots: Self::BRANCH_DELAY_SLOTS,
        load_delay_cycles: Self::LOAD_DELAY_CYCLES,
        // r11: instruction-synthesis scratch.
        reserved_int: &[11],
        // xmm15: synthesis scratch.
        reserved_flt: &[15],
    };

    fn regfile() -> &'static RegFile {
        &REGFILE
    }

    fn begin(a: &mut Asm<'_>, sig: &Sig, _leaf: Leaf) -> Result<Vec<Reg>, Error> {
        // push rbp; mov rbp, rsp; sub rsp, imm32 (imm patched at `end`).
        encode::push(&mut a.buf, r::RBP);
        encode::mov_rr(&mut a.buf, true, r::RBP, r::RSP);
        a.buf.put_slice(&[0x48, 0x81, 0xec]);
        a.ts.frame_fix = a.buf.len();
        a.buf.put_u32(0);
        // Worst-case callee-save area in the instruction stream
        // (paper §5.2); filled with the actual saves at `end`.
        let start = a.buf.reserve(Self::MAX_SAVE_BYTES, 0x90);
        a.ts.save_area = (start, a.buf.len());
        // Home the arguments. SysV puts ints 2 and 3 in rdx/rcx, which we
        // reserve for synthesis, so those are evacuated to allocatable
        // registers. Claim every argument-slot register up front so the
        // evacuation targets can never alias a later argument.
        let n_int = sig.args().iter().filter(|t| !t.is_float()).count();
        let n_flt = sig.args().len() - n_int;
        if n_int > 6 {
            return Err(Error::TooManyArgs {
                requested: sig.args().len(),
                max: 6,
            });
        }
        if n_flt > 8 {
            return Err(Error::TooManyArgs {
                requested: sig.args().len(),
                max: 8,
            });
        }
        for &slot in INT_ARG_SLOTS.iter().take(n_int) {
            a.ra.take(Reg::int(slot));
        }
        for i in 0..n_flt {
            a.ra.take(Reg::flt(i as u8));
        }
        let mut args = Vec::with_capacity(sig.args().len());
        let (mut ni, mut nf) = (0usize, 0usize);
        for &ty in sig.args() {
            if ty.is_float() {
                args.push(Reg::flt(nf as u8));
                nf += 1;
            } else {
                let slot = INT_ARG_SLOTS[ni];
                if slot == r::RDX || slot == r::RCX {
                    let dest = a.ra.getreg(vcode::Bank::Int, vcode::RegClass::Temp).ok_or(
                        Error::TooManyArgs {
                            requested: sig.args().len(),
                            max: 6,
                        },
                    )?;
                    encode::mov_rr(&mut a.buf, true, dest.num(), slot);
                    args.push(dest);
                } else {
                    args.push(Reg::int(slot));
                }
                ni += 1;
            }
        }
        Ok(args)
    }

    fn local(a: &mut Asm<'_>, ty: Ty) -> StackSlot {
        let size = ty.size_bytes(64);
        let start = a.locals_bytes.div_ceil(size) * size;
        a.locals_bytes = start + size;
        StackSlot {
            base: Reg::int(r::RBP),
            off: -((SAVE_AREA + start + size) as i32),
            ty,
        }
    }

    #[inline]
    #[allow(clippy::collapsible_match)] // the guard form obscures the ABI cases
    fn emit_ret(a: &mut Asm<'_>, val: Option<(Ty, Reg)>) {
        match val {
            Some((Ty::I, v)) => encode::movsxd(&mut a.buf, r::RAX, v.num()),
            Some((Ty::U, v)) => {
                if v.num() != r::RAX {
                    encode::mov_rr(&mut a.buf, false, r::RAX, v.num());
                }
            }
            Some((Ty::F, v)) => encode::sse_rr(&mut a.buf, Some(sse::SS), 0x10, 0, v.num()),
            Some((Ty::D, v)) => encode::sse_rr(&mut a.buf, Some(sse::SD), 0x10, 0, v.num()),
            Some((_, v)) => {
                if v.num() != r::RAX {
                    encode::mov_rr(&mut a.buf, true, r::RAX, v.num());
                }
            }
            None => {}
        }
        a.ret_sites.push(a.buf.len());
        let at = encode::jmp_rel(&mut a.buf);
        a.fixup_at(at, FixupTarget::Label(a.epilogue), 0);
    }

    fn end(a: &mut Asm<'_>) -> Result<(), Error> {
        // Insert the deferred prologue saves over the reserved nops.
        let used = a.ra.callee_used(vcode::Bank::Int);
        let (start, _) = a.ts.save_area;
        let mut at = start;
        for (slot, &reg) in CALLEE_SAVED.iter().enumerate() {
            if used & (1 << reg) != 0 {
                // mov [rbp - 8*(slot+1)], reg
                let rexb = if reg >= 8 { 0x4c } else { 0x48 };
                let disp = (-8 * (slot as i32 + 1)) as u8;
                a.buf
                    .patch_slice(at, &[rexb, 0x89, 0x45 | (reg & 7) << 3, disp]);
                at += SAVE_INSN;
            }
        }
        // Skip the unused tail of the reserved area with a short jump so
        // leaf-ish functions don't execute a run of nops on every call.
        let (_, save_end) = a.ts.save_area;
        // saturating: after a buffer overflow the reserved area may be
        // truncated, leaving `at` past `save_end`; the overflow is
        // latched and reported by end().
        let rest = save_end.saturating_sub(at);
        if rest >= 2 {
            a.buf.patch_slice(at, &[0xeb, (rest - 2) as u8]);
        }
        // Backpatch the activation-record size, keeping rsp 16-aligned.
        let frame = (SAVE_AREA + a.locals_bytes).div_ceil(16) * 16;
        a.buf.patch_u32(a.ts.frame_fix, frame as u32);
        // Deferred epilogue: restore, leave, ret.
        let here = a.buf.len();
        a.labels.bind(a.epilogue, here);
        for (slot, &reg) in CALLEE_SAVED.iter().enumerate() {
            if used & (1 << reg) != 0 {
                encode::load(
                    &mut a.buf,
                    true,
                    reg,
                    Mem::bd(r::RBP, -8 * (slot as i32 + 1)),
                );
            }
        }
        encode::leave(&mut a.buf);
        encode::ret(&mut a.buf);
        Ok(())
    }

    #[inline]
    fn patch(a: &mut Asm<'_>, fixup: Fixup, dest: usize) {
        // Every x86-64 fixup is a rel32 displacement field:
        // disp = dest - (field_end).
        let disp = dest as i64 - (fixup.at as i64 + 4);
        a.buf.patch_u32(fixup.at, disp as i32 as u32);
    }

    #[inline(always)]
    fn emit_binop(a: &mut Asm<'_>, op: BinOp, ty: Ty, rd: Reg, rs1: Reg, rs2: Reg) {
        if ty.is_float() {
            let prefix = if ty == Ty::F { sse::SS } else { sse::SD };
            let (opc, comm) = match op {
                BinOp::Add => (0x58, true),
                BinOp::Mul => (0x59, true),
                BinOp::Sub => (0x5c, false),
                BinOp::Div => (0x5e, false),
                _ => {
                    a.record_err(Error::BadOperands("float binop"));
                    return;
                }
            };
            Self::sse3(a, prefix, opc, comm, rd.num(), rs1.num(), rs2.num());
            return;
        }
        let w = is64(ty);
        match op {
            BinOp::Add => Self::alu3(a, Alu::Add, w, true, rd.num(), rs1.num(), rs2.num()),
            BinOp::Sub => Self::alu3(a, Alu::Sub, w, false, rd.num(), rs1.num(), rs2.num()),
            BinOp::And => Self::alu3(a, Alu::And, w, true, rd.num(), rs1.num(), rs2.num()),
            BinOp::Or => Self::alu3(a, Alu::Or, w, true, rd.num(), rs1.num(), rs2.num()),
            BinOp::Xor => Self::alu3(a, Alu::Xor, w, true, rd.num(), rs1.num(), rs2.num()),
            BinOp::Mul => {
                let (rd, rs1, rs2) = (rd.num(), rs1.num(), rs2.num());
                if rd == rs1 {
                    encode::imul_rr(&mut a.buf, w, rd, rs2);
                } else if rd == rs2 {
                    encode::imul_rr(&mut a.buf, w, rd, rs1);
                } else {
                    encode::mov_rr(&mut a.buf, w, rd, rs1);
                    encode::imul_rr(&mut a.buf, w, rd, rs2);
                }
            }
            BinOp::Div => Self::div_mod(a, ty, false, rd.num(), rs1.num(), rs2.num()),
            BinOp::Mod => Self::div_mod(a, ty, true, rd.num(), rs1.num(), rs2.num()),
            BinOp::Lsh | BinOp::Rsh => Self::shift(a, op, ty, rd.num(), rs1.num(), rs2.num()),
        }
    }

    #[inline(always)]
    fn emit_binop_imm(a: &mut Asm<'_>, op: BinOp, ty: Ty, rd: Reg, rs: Reg, imm: i64) {
        let w = is64(ty);
        match op {
            BinOp::Add | BinOp::Sub | BinOp::And | BinOp::Or | BinOp::Xor
                if i32::try_from(imm).is_ok() =>
            {
                let alu = match op {
                    BinOp::Add => Alu::Add,
                    BinOp::Sub => Alu::Sub,
                    BinOp::And => Alu::And,
                    BinOp::Or => Alu::Or,
                    _ => Alu::Xor,
                };
                if rd != rs {
                    encode::mov_rr(&mut a.buf, w, rd.num(), rs.num());
                }
                encode::alu_imm(&mut a.buf, alu, w, rd.num(), imm as i32);
            }
            BinOp::Mul if i32::try_from(imm).is_ok() => {
                encode::imul_rri(&mut a.buf, w, rd.num(), rs.num(), imm as i32);
            }
            BinOp::Lsh | BinOp::Rsh => {
                if rd != rs {
                    encode::mov_rr(&mut a.buf, w, rd.num(), rs.num());
                }
                let ext = match op {
                    BinOp::Lsh => 4,
                    BinOp::Rsh if ty.is_signed() => 7,
                    _ => 5,
                };
                let mask = if w { 63 } else { 31 };
                encode::shift_imm(&mut a.buf, ext, w, rd.num(), imm as u8 & mask);
            }
            _ => Self::binop_imm_slow(a, op, ty, rd, rs, imm),
        }
    }

    #[inline]
    fn emit_unop(a: &mut Asm<'_>, op: UnOp, ty: Ty, rd: Reg, rs: Reg) {
        let w = is64(ty);
        match (op, ty) {
            (UnOp::Mov, Ty::F) => {
                if rd != rs {
                    encode::sse_rr(&mut a.buf, Some(sse::SS), 0x10, rd.num(), rs.num());
                }
            }
            (UnOp::Mov, Ty::D) => {
                if rd != rs {
                    encode::sse_rr(&mut a.buf, Some(sse::SD), 0x10, rd.num(), rs.num());
                }
            }
            (UnOp::Mov, _) => {
                if rd != rs {
                    encode::mov_rr(&mut a.buf, w, rd.num(), rs.num());
                }
            }
            (UnOp::Neg, Ty::F | Ty::D) => {
                let (prefix, id) = if ty == Ty::F {
                    (sse::SS, a.lits.intern(0x8000_0000, 4))
                } else {
                    (sse::SD, a.lits.intern(0x8000_0000_0000_0000, 8))
                };
                Self::load_lit(a, prefix, FSCRATCH, id);
                if rd != rs {
                    encode::sse_rr(&mut a.buf, Some(prefix), 0x10, rd.num(), rs.num());
                }
                encode::xorps(&mut a.buf, rd.num(), FSCRATCH);
            }
            (UnOp::Neg, _) => {
                if rd != rs {
                    encode::mov_rr(&mut a.buf, w, rd.num(), rs.num());
                }
                encode::unary_rm(&mut a.buf, 3, w, rd.num());
            }
            (UnOp::Com, _) => {
                if rd != rs {
                    encode::mov_rr(&mut a.buf, w, rd.num(), rs.num());
                }
                encode::unary_rm(&mut a.buf, 2, w, rd.num());
            }
            (UnOp::Not, _) => {
                encode::alu_imm(&mut a.buf, Alu::Cmp, w, rs.num(), 0);
                encode::mov_ri32(&mut a.buf, rd.num(), 0);
                encode::setcc(&mut a.buf, cc::E, rd.num());
            }
        }
    }

    #[inline]
    fn emit_set(a: &mut Asm<'_>, ty: Ty, rd: Reg, imm: Imm) {
        match imm {
            Imm::Int(v) => match ty {
                Ty::I | Ty::U => encode::mov_ri32(&mut a.buf, rd.num(), v as u32),
                _ => encode::mov_ri(&mut a.buf, rd.num(), v),
            },
            Imm::F32(v) => {
                let id = a.lits.intern_f32(v);
                Self::load_lit(a, sse::SS, rd.num(), id);
            }
            Imm::F64(v) => {
                let id = a.lits.intern_f64(v);
                Self::load_lit(a, sse::SD, rd.num(), id);
            }
        }
    }

    #[inline]
    fn emit_cvt(a: &mut Asm<'_>, from: Ty, to: Ty, rd: Reg, rs: Reg) {
        match (from, to) {
            // Within the 32-bit family: normalize the low word.
            (Ty::I, Ty::U) | (Ty::U, Ty::I) => {
                if rd != rs {
                    encode::mov_rr(&mut a.buf, false, rd.num(), rs.num());
                }
            }
            // Widening.
            (Ty::I, Ty::L | Ty::Ul) => encode::movsxd(&mut a.buf, rd.num(), rs.num()),
            (Ty::U, Ty::L | Ty::Ul) => encode::mov_rr(&mut a.buf, false, rd.num(), rs.num()),
            // Narrowing.
            (Ty::L | Ty::Ul, Ty::I | Ty::U) => {
                encode::mov_rr(&mut a.buf, false, rd.num(), rs.num())
            }
            // Word-sized renames.
            (Ty::L, Ty::Ul) | (Ty::Ul, Ty::L) | (Ty::Ul, Ty::P) | (Ty::P, Ty::Ul) => {
                if rd != rs {
                    encode::mov_rr(&mut a.buf, true, rd.num(), rs.num());
                }
            }
            // Int → float.
            (Ty::I, Ty::F) => encode::cvtsi2(&mut a.buf, sse::SS, false, rd.num(), rs.num()),
            (Ty::I, Ty::D) => encode::cvtsi2(&mut a.buf, sse::SD, false, rd.num(), rs.num()),
            (Ty::L, Ty::F) => encode::cvtsi2(&mut a.buf, sse::SS, true, rd.num(), rs.num()),
            (Ty::L, Ty::D) => encode::cvtsi2(&mut a.buf, sse::SD, true, rd.num(), rs.num()),
            (Ty::U, Ty::D) => {
                // Zero-extend, then convert the exact 64-bit value.
                encode::mov_rr(&mut a.buf, false, SCRATCH, rs.num());
                encode::cvtsi2(&mut a.buf, sse::SD, true, rd.num(), SCRATCH);
            }
            // Float → int (C truncation semantics).
            (Ty::F, Ty::I) => encode::cvtt2si(&mut a.buf, sse::SS, false, rd.num(), rs.num()),
            (Ty::D, Ty::I) => encode::cvtt2si(&mut a.buf, sse::SD, false, rd.num(), rs.num()),
            (Ty::F, Ty::L) => encode::cvtt2si(&mut a.buf, sse::SS, true, rd.num(), rs.num()),
            (Ty::D, Ty::L) => encode::cvtt2si(&mut a.buf, sse::SD, true, rd.num(), rs.num()),
            // Float ↔ float.
            (Ty::F, Ty::D) => encode::sse_rr(&mut a.buf, Some(sse::SS), 0x5a, rd.num(), rs.num()),
            (Ty::D, Ty::F) => encode::sse_rr(&mut a.buf, Some(sse::SD), 0x5a, rd.num(), rs.num()),
            _ => a.record_err(Error::BadOperands("unsupported conversion")),
        }
    }

    #[inline]
    fn emit_ld(a: &mut Asm<'_>, ty: Ty, rd: Reg, base: Reg, off: Off) {
        let m = match off {
            Off::I(d) => Mem::bd(base.num(), d),
            Off::R(i) => Mem::bi(base.num(), i.num()),
        };
        match ty {
            Ty::C => encode::load8_sx(&mut a.buf, rd.num(), m),
            Ty::Uc => encode::load8_zx(&mut a.buf, rd.num(), m),
            Ty::S => encode::load16_sx(&mut a.buf, rd.num(), m),
            Ty::Us => encode::load16_zx(&mut a.buf, rd.num(), m),
            Ty::I | Ty::U => encode::load(&mut a.buf, false, rd.num(), m),
            Ty::L | Ty::Ul | Ty::P => encode::load(&mut a.buf, true, rd.num(), m),
            Ty::F => encode::sse_mem(&mut a.buf, Some(sse::SS), 0x10, rd.num(), m),
            Ty::D => encode::sse_mem(&mut a.buf, Some(sse::SD), 0x10, rd.num(), m),
            Ty::V => a.record_err(Error::BadOperands("load of void")),
        }
    }

    #[inline]
    fn emit_st(a: &mut Asm<'_>, ty: Ty, src: Reg, base: Reg, off: Off) {
        let m = match off {
            Off::I(d) => Mem::bd(base.num(), d),
            Off::R(i) => Mem::bi(base.num(), i.num()),
        };
        match ty {
            Ty::C | Ty::Uc => encode::store8(&mut a.buf, src.num(), m),
            Ty::S | Ty::Us => encode::store16(&mut a.buf, src.num(), m),
            Ty::I | Ty::U => encode::store(&mut a.buf, false, src.num(), m),
            Ty::L | Ty::Ul | Ty::P => encode::store(&mut a.buf, true, src.num(), m),
            Ty::F => encode::sse_mem(&mut a.buf, Some(sse::SS), 0x11, src.num(), m),
            Ty::D => encode::sse_mem(&mut a.buf, Some(sse::SD), 0x11, src.num(), m),
            Ty::V => a.record_err(Error::BadOperands("store of void")),
        }
    }

    #[inline]
    fn emit_branch(a: &mut Asm<'_>, cond: Cond, ty: Ty, rs1: Reg, rs2: BrOperand, l: Label) {
        let code = if ty.is_float() {
            let rs2 = match rs2 {
                BrOperand::R(r) => r,
                BrOperand::I(_) => {
                    a.record_err(Error::BadOperands("float branch immediate"));
                    return;
                }
            };
            encode::ucomis(&mut a.buf, ty == Ty::D, rs1.num(), rs2.num());
            int_cc(cond, false)
        } else {
            let w = is64(ty);
            match rs2 {
                BrOperand::R(r2) => encode::alu_rr(&mut a.buf, Alu::Cmp, w, rs1.num(), r2.num()),
                BrOperand::I(imm) => {
                    if let Ok(i) = i32::try_from(imm) {
                        encode::alu_imm(&mut a.buf, Alu::Cmp, w, rs1.num(), i);
                    } else {
                        encode::mov_ri(&mut a.buf, SCRATCH, imm);
                        encode::alu_rr(&mut a.buf, Alu::Cmp, w, rs1.num(), SCRATCH);
                    }
                }
            }
            int_cc(cond, ty.is_signed())
        };
        let at = encode::jcc(&mut a.buf, code);
        a.fixup_at(at, FixupTarget::Label(l), 0);
    }

    #[inline]
    fn emit_jump(a: &mut Asm<'_>, t: JumpTarget) {
        match t {
            JumpTarget::Label(l) => {
                let at = encode::jmp_rel(&mut a.buf);
                a.fixup_at(at, FixupTarget::Label(l), 0);
            }
            JumpTarget::Reg(r) => encode::jmp_rm(&mut a.buf, r.num()),
            JumpTarget::Abs(addr) => {
                encode::mov_ri(&mut a.buf, SCRATCH, addr as i64);
                encode::jmp_rm(&mut a.buf, SCRATCH);
            }
        }
    }

    #[inline]
    fn emit_jal(a: &mut Asm<'_>, t: JumpTarget) {
        match t {
            JumpTarget::Label(l) => {
                let at = encode::call_rel(&mut a.buf);
                a.fixup_at(at, FixupTarget::Label(l), 0);
            }
            JumpTarget::Reg(r) => encode::call_rm(&mut a.buf, r.num()),
            JumpTarget::Abs(addr) => {
                encode::mov_ri(&mut a.buf, SCRATCH, addr as i64);
                encode::call_rm(&mut a.buf, SCRATCH);
            }
        }
    }

    #[inline]
    fn emit_nop(a: &mut Asm<'_>) {
        encode::nop(&mut a.buf);
    }

    fn call_begin(a: &mut Asm<'_>, sig: &Sig) -> CallFrame {
        let _ = a;
        CallFrame {
            sig: sig.clone(),
            stack_bytes: 0,
            next_int: 0,
            next_flt: 0,
            misc: 0,
        }
    }

    fn call_arg(a: &mut Asm<'_>, cf: &mut CallFrame, idx: usize, ty: Ty, src: Reg) {
        debug_assert_eq!(
            cf.sig.args().get(idx).copied(),
            Some(ty),
            "argument type mismatch"
        );
        // Stage every argument on the stack; the pops at call_end move
        // them to their convention registers. Staging makes argument
        // shuffles order-independent (an argument source may itself live
        // in an argument register).
        if ty.is_float() {
            cf.next_flt += 1;
            if cf.next_flt > 8 {
                a.record_err(Error::TooManyArgs {
                    requested: cf.next_flt as usize,
                    max: 8,
                });
                return;
            }
            encode::alu_imm(&mut a.buf, Alu::Sub, true, r::RSP, 8);
            let p = if ty == Ty::F { sse::SS } else { sse::SD };
            encode::sse_mem(&mut a.buf, Some(p), 0x11, src.num(), Mem::bd(r::RSP, 0));
        } else {
            cf.next_int += 1;
            if cf.next_int > 6 {
                a.record_err(Error::TooManyArgs {
                    requested: cf.next_int as usize,
                    max: 6,
                });
                return;
            }
            encode::push(&mut a.buf, src.num());
        }
        cf.stack_bytes += 8;
    }

    fn call_end(a: &mut Asm<'_>, cf: CallFrame, target: JumpTarget, ret: Option<(Ty, Reg)>) {
        // Secure the target before the pops clobber argument registers.
        let target = match target {
            JumpTarget::Reg(r) => {
                encode::mov_rr(&mut a.buf, true, SCRATCH, r.num());
                JumpTarget::Reg(Reg::int(SCRATCH))
            }
            t => t,
        };
        // Unstage in reverse order.
        let mut int_slot = 0usize;
        let mut flt_slot = 0usize;
        let placements: Vec<(bool, usize)> = cf
            .sig
            .args()
            .iter()
            .map(|ty| {
                if ty.is_float() {
                    let s = flt_slot;
                    flt_slot += 1;
                    (true, s)
                } else {
                    let s = int_slot;
                    int_slot += 1;
                    (false, s)
                }
            })
            .collect();
        for (i, &(is_f, slot)) in placements.iter().enumerate().rev() {
            let ty = cf.sig.args()[i];
            if is_f {
                let p = if ty == Ty::F { sse::SS } else { sse::SD };
                encode::sse_mem(&mut a.buf, Some(p), 0x10, slot as u8, Mem::bd(r::RSP, 0));
                encode::alu_imm(&mut a.buf, Alu::Add, true, r::RSP, 8);
            } else {
                encode::pop(&mut a.buf, INT_ARG_SLOTS[slot]);
            }
        }
        match target {
            JumpTarget::Label(l) => {
                let at = encode::call_rel(&mut a.buf);
                a.fixup_at(at, FixupTarget::Label(l), 0);
            }
            JumpTarget::Reg(r) => encode::call_rm(&mut a.buf, r.num()),
            JumpTarget::Abs(addr) => {
                encode::mov_ri(&mut a.buf, SCRATCH, addr as i64);
                encode::call_rm(&mut a.buf, SCRATCH);
            }
        }
        if let Some((ty, rd)) = ret {
            match ty {
                Ty::I => encode::movsxd(&mut a.buf, rd.num(), r::RAX),
                Ty::U => encode::mov_rr(&mut a.buf, false, rd.num(), r::RAX),
                Ty::F => encode::sse_rr(&mut a.buf, Some(sse::SS), 0x10, rd.num(), 0),
                Ty::D => encode::sse_rr(&mut a.buf, Some(sse::SD), 0x10, rd.num(), 0),
                _ => encode::mov_rr(&mut a.buf, true, rd.num(), r::RAX),
            }
        }
    }

    #[inline]
    fn emit_ext_unop(a: &mut Asm<'_>, op: ExtUnOp, ty: Ty, rd: Reg, rs: Reg) -> bool {
        match (op, ty) {
            (ExtUnOp::Sqrt, Ty::F) => {
                encode::sse_rr(&mut a.buf, Some(sse::SS), 0x51, rd.num(), rs.num());
                true
            }
            (ExtUnOp::Sqrt, Ty::D) => {
                encode::sse_rr(&mut a.buf, Some(sse::SD), 0x51, rd.num(), rs.num());
                true
            }
            (ExtUnOp::Bswap, Ty::U) => {
                if rd != rs {
                    encode::mov_rr(&mut a.buf, false, rd.num(), rs.num());
                }
                encode::bswap(&mut a.buf, false, rd.num());
                true
            }
            (ExtUnOp::Bswap, Ty::Ul) => {
                if rd != rs {
                    encode::mov_rr(&mut a.buf, true, rd.num(), rs.num());
                }
                encode::bswap(&mut a.buf, true, rd.num());
                true
            }
            (ExtUnOp::Bswap, Ty::Us) => {
                if rd != rs {
                    encode::mov_rr(&mut a.buf, false, rd.num(), rs.num());
                }
                encode::ror16_imm(&mut a.buf, rd.num(), 8);
                encode::movzx16_rr(&mut a.buf, rd.num(), rd.num());
                true
            }
            _ => false,
        }
    }
}

// ---------------------------------------------------------------------------
// Engine adapter: native execution
// ---------------------------------------------------------------------------

use vcode::engine::{Backend, EngineError, Lambda, Program, TargetId};

/// Finished native code held for the engine: the live [`ExecCode`]
/// mapping plus the arity recorded at compile time.
///
/// Holding the `ExecCode` (rather than a raw function pointer) is what
/// makes cached lambdas immune to [`drain_pool`]: a mapping only enters
/// the pool when its `ExecCode` drops, so code owned by a cache entry is
/// never parked and never released out from under a caller.
pub struct NativeLambda {
    code: ExecCode,
    args: usize,
    len: usize,
    insns: u64,
}

impl std::fmt::Debug for NativeLambda {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeLambda")
            .field("args", &self.args)
            .field("len", &self.len)
            .field("insns", &self.insns)
            .finish_non_exhaustive()
    }
}

impl Lambda for NativeLambda {
    fn target(&self) -> TargetId {
        TargetId::X64
    }

    fn code_len(&self) -> usize {
        self.len
    }

    fn insns(&self) -> u64 {
        self.insns
    }

    fn call(&self, args: &[i32]) -> Result<i64, EngineError> {
        if args.len() != self.args {
            return Err(EngineError::BadArgs {
                expected: self.args,
                got: args.len(),
            });
        }
        // SysV: i32 args travel zero-extended in the low dword of each
        // argument register (the replayed program only reads 32 bits);
        // the upper bits of rax are undefined for an i32 return, so keep
        // only the low dword and sign-extend.
        let a = |i: usize| args[i] as u32 as u64;
        // SAFETY: `self.code` was emitted by the verifier-gated replay
        // for exactly `self.args` integer parameters (checked above),
        // so calling through the matching-arity thunk is sound.
        let raw = unsafe {
            match self.args {
                0 => self.code.call0(),
                1 => self.code.call1(a(0)),
                2 => self.code.call2(a(0), a(1)),
                3 => self.code.call3(a(0), a(1), a(2)),
                _ => self.code.call4(a(0), a(1), a(2), a(3)),
            }
        };
        Ok(i64::from(raw as u32 as i32))
    }

    fn persist_image(&self) -> Option<(usize, Vec<u8>)> {
        // The mapping is rounded up to a page class; only the emitted
        // prefix is the program.
        Some((self.args, self.code.bytes()[..self.len].to_vec()))
    }
}

/// Runtime-selectable engine adapter for the native x86-64 target:
/// replays a recorded [`Program`] through `Assembler<X64>` directly into
/// executable memory and returns an in-place-runnable [`NativeLambda`].
#[derive(Debug, Clone, Copy, Default)]
pub struct X64Backend;

impl Backend for X64Backend {
    fn id(&self) -> TargetId {
        TargetId::X64
    }

    fn word_bits(&self) -> u32 {
        X64::WORD_BITS
    }

    fn compile(&self, prog: &Program) -> Result<std::sync::Arc<dyn Lambda>, EngineError> {
        let mut mem = ExecMem::new(prog.code_capacity())
            .map_err(|e| EngineError::Exec(format!("exec mmap: {e}")))?;
        let fin = vcode::engine::replay::<X64>(prog, mem.as_mut_slice())?;
        let code = mem
            .finalize()
            .map_err(|e| EngineError::Exec(format!("exec seal: {e}")))?;
        Ok(std::sync::Arc::new(NativeLambda {
            code,
            args: prog.args(),
            len: fin.len,
            insns: fin.insns,
        }))
    }

    fn compile_tier2(&self, prog: &Program) -> Result<std::sync::Arc<dyn Lambda>, EngineError> {
        let (opt, _stats) = vcode::tier2::optimize(prog);
        let mut mem = ExecMem::new(opt.code_capacity())
            .map_err(|e| EngineError::Exec(format!("exec mmap: {e}")))?;
        let fin = vcode::tier2::replay_opt::<X64>(&opt, mem.as_mut_slice())?;
        let code = mem
            .finalize()
            .map_err(|e| EngineError::Exec(format!("exec seal: {e}")))?;
        Ok(std::sync::Arc::new(NativeLambda {
            code,
            args: opt.args(),
            len: fin.len,
            insns: fin.insns,
        }))
    }

    fn adopt(
        &self,
        artifact: &vcode::persist::Artifact,
    ) -> Result<std::sync::Arc<dyn Lambda>, EngineError> {
        // Differential re-decode *before* anything lands in executable
        // memory: every instruction must decode, the walk must end on
        // the buffer boundary, every branch target must be a boundary.
        vcode::persist::redecode(&artifact.code, &declen::Decoder)
            .map_err(|e| EngineError::Exec(format!("artifact revalidation: {e}")))?;
        let mem = ExecMem::adopt_bytes(&artifact.code)
            .map_err(|e| EngineError::Exec(format!("exec mmap: {e}")))?;
        let code = mem
            .finalize()
            .map_err(|e| EngineError::Exec(format!("exec seal: {e}")))?;
        Ok(std::sync::Arc::new(NativeLambda {
            code,
            args: artifact.args as usize,
            len: artifact.code.len(),
            insns: artifact.insns,
        }))
    }
}
