//! # vcode-sparc — SPARC V8 backend for vcode
//!
//! The second of the paper's three platforms. The interesting ports of
//! call here:
//!
//! - **register windows** — the prologue is a single `save` that shifts
//!   the window, so callee-saved integer state costs nothing: `%l0`–`%l7`
//!   serve as persistent registers with no save/restore code, and the
//!   epilogue is `ret` with `restore` in its delay slot;
//! - **branch delay slots** — as on MIPS, filled with `nop` unless the
//!   client schedules them;
//! - **the Y register** — 32-bit division reads `Y:rs1`, so signed
//!   divides cost a `sra`/`wr %y` setup, and `mod` is synthesized as
//!   `x - (x / y) * y`;
//! - **no GPR↔FPR moves** — transfers bounce through a scratch slot in
//!   the activation record, as V8 compilers really did.
//!
//! Like the MIPS port, generated code executes on the `vcode-sim`
//! simulator (a little-endian variant; see DESIGN.md).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod encode;

use encode::{cond, fcond, mem, op3, opf, r};
use vcode::asm::Asm;
use vcode::label::{Fixup, FixupTarget, Label};
use vcode::op::{BinOp, Cond, Imm, UnOp};
use vcode::reg::{Reg, RegDesc, RegFile};
use vcode::target::{BrOperand, CallFrame, JumpTarget, Leaf, Off, StackSlot, Target};
use vcode::ty::{Sig, Ty};
use vcode::Error;

/// The SPARC V8 target.
#[derive(Debug, Clone, Copy)]
pub enum Sparc {}

/// Primary scratch (`%g1`).
const G1: u8 = r::G1;
/// Secondary scratch (`%g2`).
const G2: u8 = r::G2;
/// FP scratch pair (`%f28`/`%f29`) and single (`%f30`).
const FS: u8 = 28;

/// ABI window+hidden-param area at the bottom of every frame.
const ABI_AREA: i32 = 92;
/// Outgoing-argument staging area (8 slots).
const STAGE_AREA: i32 = 64;
/// Scratch bytes at the top of the frame for GPR↔FPR transfers.
const SCRATCH_AREA: i32 = 16;
/// Minimum frame size.
const MIN_FRAME: i32 = ABI_AREA + STAGE_AREA + SCRATCH_AREA;

/// Fixup kinds.
const FIX_B22: u8 = 0;
const FIX_CALL30: u8 = 1;

// %o registers: clobbered by calls (the callee's window aliases them),
// so they are the temporaries. %l registers are window-local, preserved
// across calls for free; %i registers carry the incoming arguments.
static INT_REGS: [RegDesc; 24] = vcode::regdescs![int:
    8, CallerSaved, "o0";
    9, CallerSaved, "o1";
    10, CallerSaved, "o2";
    11, CallerSaved, "o3";
    12, CallerSaved, "o4";
    13, CallerSaved, "o5";
    3, CallerSaved, "g3";
    4, CallerSaved, "g4";
    16, CalleeSaved, "l0";
    17, CalleeSaved, "l1";
    18, CalleeSaved, "l2";
    19, CalleeSaved, "l3";
    20, CalleeSaved, "l4";
    21, CalleeSaved, "l5";
    22, CalleeSaved, "l6";
    23, CalleeSaved, "l7";
    29, Arg(5), "i5";
    28, Arg(4), "i4";
    27, Arg(3), "i3";
    26, Arg(2), "i2";
    25, Arg(1), "i1";
    24, Arg(0), "i0";
    1, Reserved, "g1";
    2, Reserved, "g2";
];

static FLT_REGS: [RegDesc; 15] = vcode::regdescs![flt:
    6, CallerSaved, "f6";
    8, CallerSaved, "f8";
    10, CallerSaved, "f10";
    12, CallerSaved, "f12";
    14, CallerSaved, "f14";
    16, CallerSaved, "f16";
    18, CallerSaved, "f18";
    20, CallerSaved, "f20";
    22, CallerSaved, "f22";
    24, CallerSaved, "f24";
    26, CallerSaved, "f26";
    4, Arg(1), "f4";
    2, Arg(0), "f2";
    0, Reserved, "f0";
    28, Reserved, "f28";
];

static REGFILE: RegFile = RegFile {
    int: &INT_REGS,
    flt: &FLT_REGS,
    hard_temps: &[Reg::int(8), Reg::int(9), Reg::int(10), Reg::int(11)],
    hard_saved: &[Reg::int(16), Reg::int(17), Reg::int(18), Reg::int(19)],
    sp: Reg::int(r::SP),
    fp: Reg::int(r::FP),
    zero: Some(Reg::int(r::G0)),
};

impl Sparc {
    fn branch(a: &mut Asm<'_>, l: Label, emit: impl FnOnce(&mut Asm<'_>)) {
        a.fixup_here(FixupTarget::Label(l), FIX_B22);
        emit(a);
        if !a.manual_delay {
            encode::nop(&mut a.buf);
        }
    }

    /// Resolves a memory operand into `(base, Option<imm13>, Option<idx>)`
    /// using `%g1` when needed.
    fn mem_op(a: &mut Asm<'_>, base: Reg, off: Off) -> (u8, Result<i16, u8>) {
        match off {
            Off::I(d) if (-4096..4096).contains(&d) => (base.num(), Ok(d as i16)),
            Off::I(d) => {
                encode::set32(&mut a.buf, G1, d as u32);
                (base.num(), Err(G1))
            }
            Off::R(idx) => (base.num(), Err(idx.num())),
        }
    }

    fn load(a: &mut Asm<'_>, op3v: u8, rd: u8, base: Reg, off: Off) {
        let (b, o) = Self::mem_op(a, base, off);
        match o {
            Ok(imm) => encode::mem_ri(&mut a.buf, op3v, rd, b, imm),
            Err(idx) => encode::mem_rr(&mut a.buf, op3v, rd, b, idx),
        }
    }

    /// `cmp rs1, operand` (subcc into %g0), materializing immediates.
    fn cmp(a: &mut Asm<'_>, rs1: u8, rhs: BrOperand) {
        match rhs {
            BrOperand::R(r2) => encode::f3_rr(&mut a.buf, op3::SUBCC, r::G0, rs1, r2.num()),
            BrOperand::I(i) if (-4096..4096).contains(&i) => {
                encode::f3_ri(&mut a.buf, op3::SUBCC, r::G0, rs1, i as i16);
            }
            BrOperand::I(i) => {
                encode::set32(&mut a.buf, G1, i as u32);
                encode::f3_rr(&mut a.buf, op3::SUBCC, r::G0, rs1, G1);
            }
        }
    }

    fn int_cond(c: Cond, signed: bool) -> u8 {
        match (c, signed) {
            (Cond::Eq, _) => cond::E,
            (Cond::Ne, _) => cond::NE,
            (Cond::Lt, true) => cond::L,
            (Cond::Le, true) => cond::LE,
            (Cond::Gt, true) => cond::G,
            (Cond::Ge, true) => cond::GE,
            (Cond::Lt, false) => cond::CS,
            (Cond::Le, false) => cond::LEU,
            (Cond::Gt, false) => cond::GU,
            (Cond::Ge, false) => cond::CC,
        }
    }

    /// Moves an integer register's bits into an FP register through the
    /// frame scratch slot (V8 has no direct path).
    fn gpr_to_fpr(a: &mut Asm<'_>, fd: u8, rs: u8) {
        encode::mem_ri(&mut a.buf, mem::ST, rs, r::FP, -8);
        encode::mem_ri(&mut a.buf, mem::LDF, fd, r::FP, -8);
    }

    fn fpr_to_gpr(a: &mut Asm<'_>, rd: u8, fs: u8) {
        encode::mem_ri(&mut a.buf, mem::STF, fs, r::FP, -8);
        encode::mem_ri(&mut a.buf, mem::LD, rd, r::FP, -8);
    }

    /// Loads a raw 32-bit pattern into an FP register.
    fn fp_bits(a: &mut Asm<'_>, fd: u8, bits: u32) {
        if bits == 0 {
            encode::mem_ri(&mut a.buf, mem::ST, r::G0, r::FP, -8);
        } else {
            encode::set32(&mut a.buf, G1, bits);
            encode::mem_ri(&mut a.buf, mem::ST, G1, r::FP, -8);
        }
        encode::mem_ri(&mut a.buf, mem::LDF, fd, r::FP, -8);
    }

    fn fmovd(a: &mut Asm<'_>, rd: u8, rs: u8) {
        encode::fpop1(&mut a.buf, opf::FMOVS, rd, 0, rs);
        encode::fpop1(&mut a.buf, opf::FMOVS, rd + 1, 0, rs + 1);
    }
}

/// Immediate-form fallback: materialize the constant in %g1. Out of line
/// so the hot arms of `emit_binop_imm` fold into each call site.
#[inline(never)]
fn binop_imm_slow(a: &mut Asm<'_>, op: BinOp, ty: Ty, rd: Reg, rs: Reg, imm32: i32) {
    encode::set32(&mut a.buf, G1, imm32 as u32);
    Sparc::emit_binop(a, op, ty, rd, rs, Reg::int(G1));
}

impl Target for Sparc {
    const NAME: &'static str = "sparc";
    const WORD_BITS: u32 = 32;
    const BRANCH_DELAY_SLOTS: u32 = 1;
    // Register windows save integer state; only the 3-word save sequence
    // is reserved (patched with the final frame size).
    const MAX_SAVE_BYTES: usize = 0;
    const CHECKS: vcode::TargetChecks = vcode::TargetChecks {
        word_bits: Self::WORD_BITS,
        insn_align: 4,
        branch_delay_slots: Self::BRANCH_DELAY_SLOTS,
        load_delay_cycles: Self::LOAD_DELAY_CYCLES,
        // %g1/%g2: instruction-synthesis scratch.
        reserved_int: &[1, 2],
        // %f0 (return) and %f28 (synthesis scratch).
        reserved_flt: &[0, 28],
    };

    fn regfile() -> &'static RegFile {
        &REGFILE
    }

    fn begin(a: &mut Asm<'_>, sig: &Sig, _leaf: Leaf) -> Result<Vec<Reg>, Error> {
        // sethi %hi(-frame), %g1; or %g1, %lo(-frame), %g1;
        // save %sp, %g1, %sp — imm fields patched at `end`.
        a.ts.frame_fix = a.buf.len();
        encode::sethi(&mut a.buf, G1, 0);
        encode::f3_ri(&mut a.buf, op3::OR, G1, G1, 0);
        encode::f3_rr(&mut a.buf, op3::SAVE, r::SP, r::SP, G1);
        let mut args = Vec::with_capacity(sig.args().len());
        let (mut ni, mut nf) = (0u8, 0u8);
        for &ty in sig.args() {
            if ty.is_float() {
                if nf >= 2 {
                    return Err(Error::TooManyArgs {
                        requested: sig.args().len(),
                        max: 2,
                    });
                }
                let reg = Reg::flt(2 + nf * 2);
                a.ra.take(reg);
                args.push(reg);
                nf += 1;
            } else {
                if ni >= 6 {
                    return Err(Error::TooManyArgs {
                        requested: sig.args().len(),
                        max: 6,
                    });
                }
                let reg = Reg::int(r::I0 + ni);
                a.ra.take(reg);
                args.push(reg);
                ni += 1;
            }
        }
        Ok(args)
    }

    fn local(a: &mut Asm<'_>, ty: Ty) -> StackSlot {
        let size = ty.size_bytes(32);
        let start = a.locals_bytes.div_ceil(size) * size;
        a.locals_bytes = start + size;
        StackSlot {
            base: Reg::int(r::FP),
            off: -(SCRATCH_AREA + (start + size) as i32),
            ty,
        }
    }

    #[inline]
    fn emit_ret(a: &mut Asm<'_>, val: Option<(Ty, Reg)>) {
        match val {
            Some((Ty::F, v)) if v.num() != 0 => {
                encode::fpop1(&mut a.buf, opf::FMOVS, 0, 0, v.num());
            }
            Some((Ty::D, v)) if v.num() != 0 => {
                Self::fmovd(a, 0, v.num());
            }
            Some((_, v)) => encode::f3_rr(&mut a.buf, op3::OR, r::I0, v.num(), r::G0),
            None => {}
        }
        a.ret_sites.push(a.buf.len());
        let l = a.epilogue;
        Self::branch(a, l, |a| encode::bicc(&mut a.buf, cond::A, 0));
    }

    fn end(a: &mut Asm<'_>) -> Result<(), Error> {
        let frame = (MIN_FRAME as usize + a.locals_bytes).div_ceil(8) as i32 * 8;
        let neg = (-frame) as u32;
        // Patch the save sequence.
        let at = a.ts.frame_fix;
        let sethi_w = a.buf.read_u32(at);
        a.buf.patch_u32(at, (sethi_w & 0xffc0_0000) | (neg >> 10));
        let or_w = a.buf.read_u32(at + 4);
        a.buf
            .patch_u32(at + 4, (or_w & 0xffff_e000) | (neg & 0x3ff));
        // Deferred epilogue: ret; restore (the window undoes everything).
        let here = a.buf.len();
        a.labels.bind(a.epilogue, here);
        encode::f3_ri(&mut a.buf, op3::JMPL, r::G0, r::I7, 8);
        encode::f3_rr(&mut a.buf, op3::RESTORE, r::G0, r::G0, r::G0);
        Ok(())
    }

    #[inline]
    fn patch(a: &mut Asm<'_>, fixup: Fixup, dest: usize) {
        let disp = (dest as i64 - fixup.at as i64) / 4;
        let old = a.buf.read_u32(fixup.at);
        match fixup.kind {
            FIX_B22 => {
                if !(-(1 << 21)..(1 << 21)).contains(&disp) {
                    a.record_err(Error::BranchOutOfRange { at: fixup.at, dest });
                    return;
                }
                a.buf
                    .patch_u32(fixup.at, (old & 0xffc0_0000) | (disp as u32 & 0x3f_ffff));
            }
            _ => {
                a.buf
                    .patch_u32(fixup.at, (old & 0xc000_0000) | (disp as u32 & 0x3fff_ffff));
            }
        }
    }

    #[inline(always)]
    fn emit_binop(a: &mut Asm<'_>, op: BinOp, ty: Ty, rd: Reg, rs1: Reg, rs2: Reg) {
        if ty.is_float() {
            let code = match (op, ty) {
                (BinOp::Add, Ty::F) => opf::FADDS,
                (BinOp::Add, _) => opf::FADDD,
                (BinOp::Sub, Ty::F) => opf::FSUBS,
                (BinOp::Sub, _) => opf::FSUBD,
                (BinOp::Mul, Ty::F) => opf::FMULS,
                (BinOp::Mul, _) => opf::FMULD,
                (BinOp::Div, Ty::F) => opf::FDIVS,
                (BinOp::Div, _) => opf::FDIVD,
                _ => {
                    a.record_err(Error::BadOperands("float binop"));
                    return;
                }
            };
            encode::fpop1(&mut a.buf, code, rd.num(), rs1.num(), rs2.num());
            return;
        }
        let (rd, rs1, rs2) = (rd.num(), rs1.num(), rs2.num());
        let signed = ty.is_signed();
        match op {
            BinOp::Add => encode::f3_rr(&mut a.buf, op3::ADD, rd, rs1, rs2),
            BinOp::Sub => encode::f3_rr(&mut a.buf, op3::SUB, rd, rs1, rs2),
            BinOp::And => encode::f3_rr(&mut a.buf, op3::AND, rd, rs1, rs2),
            BinOp::Or => encode::f3_rr(&mut a.buf, op3::OR, rd, rs1, rs2),
            BinOp::Xor => encode::f3_rr(&mut a.buf, op3::XOR, rd, rs1, rs2),
            BinOp::Mul => {
                let m = if signed { op3::SMUL } else { op3::UMUL };
                encode::f3_rr(&mut a.buf, m, rd, rs1, rs2);
            }
            BinOp::Div | BinOp::Mod => {
                // V8 division consumes Y:rs1. The Y setup must not use
                // %g1 — immediate divisors are materialized there.
                if signed {
                    encode::f3_ri(&mut a.buf, op3::SRA, G2, rs1, 31);
                    encode::f3_rr(&mut a.buf, op3::WRY, 0, G2, r::G0);
                } else {
                    encode::f3_rr(&mut a.buf, op3::WRY, 0, r::G0, r::G0);
                }
                let dv = if signed { op3::SDIV } else { op3::UDIV };
                if op == BinOp::Div {
                    encode::f3_rr(&mut a.buf, dv, rd, rs1, rs2);
                } else {
                    // rem = rs1 - (rs1 / rs2) * rs2
                    encode::f3_rr(&mut a.buf, dv, G2, rs1, rs2);
                    encode::f3_rr(&mut a.buf, op3::SMUL, G2, G2, rs2);
                    encode::f3_rr(&mut a.buf, op3::SUB, rd, rs1, G2);
                }
            }
            BinOp::Lsh => encode::f3_rr(&mut a.buf, op3::SLL, rd, rs1, rs2),
            BinOp::Rsh if signed => encode::f3_rr(&mut a.buf, op3::SRA, rd, rs1, rs2),
            BinOp::Rsh => encode::f3_rr(&mut a.buf, op3::SRL, rd, rs1, rs2),
        }
    }

    #[inline(always)]
    fn emit_binop_imm(a: &mut Asm<'_>, op: BinOp, ty: Ty, rd: Reg, rs: Reg, imm: i64) {
        let imm32 = imm as i32;
        let fits = (-4096..4096).contains(&imm32);
        let o = match op {
            BinOp::Add => Some(op3::ADD),
            BinOp::Sub => Some(op3::SUB),
            BinOp::And => Some(op3::AND),
            BinOp::Or => Some(op3::OR),
            BinOp::Xor => Some(op3::XOR),
            BinOp::Lsh => Some(op3::SLL),
            BinOp::Rsh if ty.is_signed() => Some(op3::SRA),
            BinOp::Rsh => Some(op3::SRL),
            _ => None,
        };
        match o {
            Some(op3v) if fits => {
                let v = if matches!(op, BinOp::Lsh | BinOp::Rsh) {
                    imm32 & 31
                } else {
                    imm32
                };
                encode::f3_ri(&mut a.buf, op3v, rd.num(), rs.num(), v as i16);
            }
            _ => binop_imm_slow(a, op, ty, rd, rs, imm32),
        }
    }

    #[inline]
    fn emit_unop(a: &mut Asm<'_>, op: UnOp, ty: Ty, rd: Reg, rs: Reg) {
        match (op, ty) {
            (UnOp::Mov, Ty::F) => {
                if rd != rs {
                    encode::fpop1(&mut a.buf, opf::FMOVS, rd.num(), 0, rs.num());
                }
            }
            (UnOp::Mov, Ty::D) => {
                if rd != rs {
                    Self::fmovd(a, rd.num(), rs.num());
                }
            }
            (UnOp::Mov, _) => {
                if rd != rs {
                    encode::f3_rr(&mut a.buf, op3::OR, rd.num(), rs.num(), r::G0);
                }
            }
            (UnOp::Neg, Ty::F) => encode::fpop1(&mut a.buf, opf::FNEGS, rd.num(), 0, rs.num()),
            (UnOp::Neg, Ty::D) => {
                // Little-endian pairing: the sign lives in the odd (high)
                // register.
                if rd != rs {
                    encode::fpop1(&mut a.buf, opf::FMOVS, rd.num(), 0, rs.num());
                }
                encode::fpop1(&mut a.buf, opf::FNEGS, rd.num() + 1, 0, rs.num() + 1);
            }
            (UnOp::Neg, _) => encode::f3_rr(&mut a.buf, op3::SUB, rd.num(), r::G0, rs.num()),
            (UnOp::Com, _) => encode::f3_rr(&mut a.buf, op3::XNOR, rd.num(), rs.num(), r::G0),
            (UnOp::Not, _) => {
                // rd = (rs == 0): 0 - rs borrows iff rs != 0; addx picks
                // the carry up, xor flips it.
                encode::f3_rr(&mut a.buf, op3::SUBCC, r::G0, r::G0, rs.num());
                encode::f3_rr(&mut a.buf, op3::ADDX, rd.num(), r::G0, r::G0);
                encode::f3_ri(&mut a.buf, op3::XOR, rd.num(), rd.num(), 1);
            }
        }
    }

    #[inline]
    fn emit_set(a: &mut Asm<'_>, ty: Ty, rd: Reg, imm: Imm) {
        match imm {
            Imm::Int(v) => encode::set32(&mut a.buf, rd.num(), v as u32),
            Imm::F32(v) => Self::fp_bits(a, rd.num(), v.to_bits()),
            Imm::F64(v) => {
                let bits = v.to_bits();
                Self::fp_bits(a, rd.num(), bits as u32);
                Self::fp_bits(a, rd.num() + 1, (bits >> 32) as u32);
            }
        }
        let _ = ty;
    }

    #[inline]
    fn emit_cvt(a: &mut Asm<'_>, from: Ty, to: Ty, rd: Reg, rs: Reg) {
        match (from.is_float(), to.is_float()) {
            (false, false) => {
                if rd != rs {
                    encode::f3_rr(&mut a.buf, op3::OR, rd.num(), rs.num(), r::G0);
                }
            }
            (false, true) => {
                Self::gpr_to_fpr(a, rd.num(), rs.num());
                if to == Ty::D {
                    encode::fpop1(&mut a.buf, opf::FITOD, rd.num(), 0, rd.num());
                } else {
                    encode::fpop1(&mut a.buf, opf::FITOS, rd.num(), 0, rd.num());
                }
                if from == Ty::U || from == Ty::Ul {
                    // Unsigned adjust: add 2^32 when the sign bit was set.
                    let skip = a.labels.fresh();
                    Self::cmp(a, rs.num(), BrOperand::I(0));
                    a.fixup_here(FixupTarget::Label(skip), FIX_B22);
                    encode::bicc(&mut a.buf, cond::GE, 0);
                    encode::nop(&mut a.buf);
                    Self::fp_bits(a, FS, 0);
                    Self::fp_bits(a, FS + 1, 0x41f0_0000);
                    encode::fpop1(&mut a.buf, opf::FADDD, rd.num(), rd.num(), FS);
                    let here = a.buf.len();
                    a.labels.bind(skip, here);
                }
            }
            (true, false) => {
                let code = if from == Ty::D {
                    opf::FDTOI
                } else {
                    opf::FSTOI
                };
                encode::fpop1(&mut a.buf, code, FS, 0, rs.num());
                Self::fpr_to_gpr(a, rd.num(), FS);
            }
            (true, true) => match (from, to) {
                (Ty::F, Ty::D) => encode::fpop1(&mut a.buf, opf::FSTOD, rd.num(), 0, rs.num()),
                (Ty::D, Ty::F) => encode::fpop1(&mut a.buf, opf::FDTOS, rd.num(), 0, rs.num()),
                _ => {
                    if rd != rs {
                        if from == Ty::D {
                            Self::fmovd(a, rd.num(), rs.num());
                        } else {
                            encode::fpop1(&mut a.buf, opf::FMOVS, rd.num(), 0, rs.num());
                        }
                    }
                }
            },
        }
    }

    #[inline]
    fn emit_ld(a: &mut Asm<'_>, ty: Ty, rd: Reg, base: Reg, off: Off) {
        match ty {
            Ty::C => Self::load(a, mem::LDSB, rd.num(), base, off),
            Ty::Uc => Self::load(a, mem::LDUB, rd.num(), base, off),
            Ty::S => Self::load(a, mem::LDSH, rd.num(), base, off),
            Ty::Us => Self::load(a, mem::LDUH, rd.num(), base, off),
            Ty::I | Ty::U | Ty::L | Ty::Ul | Ty::P => Self::load(a, mem::LD, rd.num(), base, off),
            Ty::F => Self::load(a, mem::LDF, rd.num(), base, off),
            Ty::D => {
                Self::load(a, mem::LDF, rd.num(), base, off);
                let off2 = match off {
                    Off::I(d) => Off::I(d + 4),
                    Off::R(idx) => {
                        // base+idx+4 via %g2.
                        encode::f3_ri(&mut a.buf, op3::ADD, G2, idx.num(), 4);
                        Off::R(Reg::int(G2))
                    }
                };
                Self::load(a, mem::LDF, rd.num() + 1, base, off2);
            }
            Ty::V => a.record_err(Error::BadOperands("load of void")),
        }
    }

    #[inline]
    fn emit_st(a: &mut Asm<'_>, ty: Ty, src: Reg, base: Reg, off: Off) {
        match ty {
            Ty::C | Ty::Uc => Self::load(a, mem::STB, src.num(), base, off),
            Ty::S | Ty::Us => Self::load(a, mem::STH, src.num(), base, off),
            Ty::I | Ty::U | Ty::L | Ty::Ul | Ty::P => Self::load(a, mem::ST, src.num(), base, off),
            Ty::F => Self::load(a, mem::STF, src.num(), base, off),
            Ty::D => {
                Self::load(a, mem::STF, src.num(), base, off);
                let off2 = match off {
                    Off::I(d) => Off::I(d + 4),
                    Off::R(idx) => {
                        encode::f3_ri(&mut a.buf, op3::ADD, G2, idx.num(), 4);
                        Off::R(Reg::int(G2))
                    }
                };
                Self::load(a, mem::STF, src.num() + 1, base, off2);
            }
            Ty::V => a.record_err(Error::BadOperands("store of void")),
        }
    }

    #[inline]
    fn emit_branch(a: &mut Asm<'_>, c: Cond, ty: Ty, rs1: Reg, rs2: BrOperand, l: Label) {
        if ty.is_float() {
            let BrOperand::R(rs2) = rs2 else {
                a.record_err(Error::BadOperands("float branch immediate"));
                return;
            };
            let code = if ty == Ty::D { opf::FCMPD } else { opf::FCMPS };
            encode::fpop2(&mut a.buf, code, rs1.num(), rs2.num());
            // V8 requires one instruction between fcmp and fbfcc.
            encode::nop(&mut a.buf);
            let fc = match c {
                Cond::Lt => fcond::L,
                Cond::Le => fcond::LE,
                Cond::Gt => fcond::G,
                Cond::Ge => fcond::GE,
                Cond::Eq => fcond::E,
                Cond::Ne => fcond::NE,
            };
            Self::branch(a, l, |a| encode::fbfcc(&mut a.buf, fc, 0));
            return;
        }
        Self::cmp(a, rs1.num(), rs2);
        let cc = Self::int_cond(c, ty.is_signed());
        Self::branch(a, l, |a| encode::bicc(&mut a.buf, cc, 0));
    }

    #[inline]
    fn emit_jump(a: &mut Asm<'_>, t: JumpTarget) {
        match t {
            JumpTarget::Label(l) => {
                Self::branch(a, l, |a| encode::bicc(&mut a.buf, cond::A, 0));
            }
            JumpTarget::Reg(rs) => {
                encode::f3_ri(&mut a.buf, op3::JMPL, r::G0, rs.num(), 0);
                if !a.manual_delay {
                    encode::nop(&mut a.buf);
                }
            }
            JumpTarget::Abs(addr) => {
                encode::set32(&mut a.buf, G1, addr as u32);
                encode::f3_ri(&mut a.buf, op3::JMPL, r::G0, G1, 0);
                encode::nop(&mut a.buf);
            }
        }
    }

    #[inline]
    fn emit_jal(a: &mut Asm<'_>, t: JumpTarget) {
        match t {
            JumpTarget::Label(l) => {
                a.fixup_here(FixupTarget::Label(l), FIX_CALL30);
                encode::call(&mut a.buf, 0);
                encode::nop(&mut a.buf);
            }
            JumpTarget::Reg(rs) => {
                encode::f3_ri(&mut a.buf, op3::JMPL, r::O7, rs.num(), 0);
                encode::nop(&mut a.buf);
            }
            JumpTarget::Abs(addr) => {
                encode::set32(&mut a.buf, G1, addr as u32);
                encode::f3_ri(&mut a.buf, op3::JMPL, r::O7, G1, 0);
                encode::nop(&mut a.buf);
            }
        }
    }

    #[inline]
    fn emit_nop(a: &mut Asm<'_>) {
        encode::nop(&mut a.buf);
    }

    fn call_begin(a: &mut Asm<'_>, sig: &Sig) -> CallFrame {
        let _ = a;
        CallFrame {
            sig: sig.clone(),
            stack_bytes: 0,
            next_int: 0,
            next_flt: 0,
            misc: 0,
        }
    }

    fn call_arg(a: &mut Asm<'_>, cf: &mut CallFrame, idx: usize, ty: Ty, src: Reg) {
        // Stage into this frame's outgoing-argument area (the ABI zone at
        // [%sp + 92], which is exactly what it exists for).
        let off = (ABI_AREA + 8 * idx as i32) as i16;
        if ty.is_float() {
            cf.next_flt += 1;
            if cf.next_flt > 2 {
                a.record_err(Error::TooManyArgs {
                    requested: cf.next_flt as usize,
                    max: 2,
                });
                return;
            }
            encode::mem_ri(&mut a.buf, mem::STF, src.num(), r::SP, off);
            if ty == Ty::D {
                encode::mem_ri(&mut a.buf, mem::STF, src.num() + 1, r::SP, off + 4);
            }
        } else {
            cf.next_int += 1;
            if cf.next_int > 6 {
                a.record_err(Error::TooManyArgs {
                    requested: cf.next_int as usize,
                    max: 6,
                });
                return;
            }
            encode::mem_ri(&mut a.buf, mem::ST, src.num(), r::SP, off);
        }
        cf.stack_bytes += 8;
    }

    fn call_end(a: &mut Asm<'_>, cf: CallFrame, target: JumpTarget, ret: Option<(Ty, Reg)>) {
        // Unstage into the outgoing registers (sources are memory, so no
        // shuffle hazards).
        let (mut int_slot, mut flt_slot) = (0u8, 0u8);
        for (i, &ty) in cf.sig.args().iter().enumerate() {
            let off = (ABI_AREA + 8 * i as i32) as i16;
            if ty.is_float() {
                let f = 2 + flt_slot * 2;
                flt_slot += 1;
                encode::mem_ri(&mut a.buf, mem::LDF, f, r::SP, off);
                if ty == Ty::D {
                    encode::mem_ri(&mut a.buf, mem::LDF, f + 1, r::SP, off + 4);
                }
            } else {
                encode::mem_ri(&mut a.buf, mem::LD, r::O0 + int_slot, r::SP, off);
                int_slot += 1;
            }
        }
        Self::emit_jal(a, target);
        if let Some((ty, rd)) = ret {
            match ty {
                Ty::F => encode::fpop1(&mut a.buf, opf::FMOVS, rd.num(), 0, 0),
                Ty::D => Self::fmovd(a, rd.num(), 0),
                _ => encode::f3_rr(&mut a.buf, op3::OR, rd.num(), r::O0, r::G0),
            }
        }
    }

    #[inline]
    fn emit_ext_unop(a: &mut Asm<'_>, op: vcode::ext::ExtUnOp, ty: Ty, rd: Reg, rs: Reg) -> bool {
        match (op, ty) {
            (vcode::ext::ExtUnOp::Sqrt, Ty::F) => {
                encode::fpop1(&mut a.buf, opf::FSQRTS, rd.num(), 0, rs.num());
                true
            }
            (vcode::ext::ExtUnOp::Sqrt, Ty::D) => {
                encode::fpop1(&mut a.buf, opf::FSQRTD, rd.num(), 0, rs.num());
                true
            }
            (vcode::ext::ExtUnOp::Abs, Ty::F) => {
                encode::fpop1(&mut a.buf, opf::FABSS, rd.num(), 0, rs.num());
                true
            }
            _ => false,
        }
    }
}

vcode::code_backend!(
    /// Runtime-selectable engine adapter for the SPARC target: replays a
    /// recorded [`vcode::engine::Program`] through `Assembler<Sparc>` and
    /// returns the finished image as a simulator-executable
    /// [`vcode::engine::CodeImage`].
    SparcBackend,
    Sparc,
    vcode::engine::TargetId::Sparc
);

#[cfg(test)]
mod tests {
    use super::*;
    use vcode::{Assembler, RegClass};

    fn words(mem: &[u8], n: usize) -> Vec<u32> {
        (0..n)
            .map(|i| u32::from_le_bytes(mem[i * 4..i * 4 + 4].try_into().unwrap()))
            .collect()
    }

    #[test]
    fn plus1_uses_save_restore() {
        let mut mem = vec![0u8; 512];
        let mut a = Assembler::<Sparc>::lambda(&mut mem, "%i", Leaf::Yes).unwrap();
        let x = a.arg(0);
        assert_eq!(x, Reg::int(r::I0), "first int arg in %i0");
        a.addii(x, x, 1);
        a.reti(x);
        let fin = a.end().unwrap();
        let w = words(&mem, fin.len / 4);
        // Prologue: sethi/or with -frame, then save.
        let frame = -((MIN_FRAME + 7) / 8 * 8);
        let neg = frame as u32;
        assert_eq!(w[0] & 0x3f_ffff, neg >> 10, "sethi hi(-frame)");
        assert_eq!(w[1] & 0x3ff, neg & 0x3ff, "or lo(-frame)");
        assert_eq!((w[2] >> 19) & 0x3f, 0x3c, "save");
        // add %i0, 1, %i0.
        let expect = (2u32 << 30) | (24 << 25) | (24 << 14) | (1 << 13) | 1;
        assert_eq!(w[3], expect, "addii maps to add-immediate");
        // Epilogue: jmpl %i7+8, %g0; restore.
        assert_eq!((w[w.len() - 2] >> 19) & 0x3f, 0x38, "ret is jmpl");
        assert_eq!((w[w.len() - 1] >> 19) & 0x3f, 0x3d, "restore in delay slot");
    }

    #[test]
    fn window_persistent_registers_need_no_saves() {
        let mut mem = vec![0u8; 512];
        let mut a = Assembler::<Sparc>::lambda(&mut mem, "", Leaf::No).unwrap();
        let s = a.getreg(RegClass::Persistent).unwrap();
        assert_eq!(s, Reg::int(16), "%l0 is the first persistent register");
        a.seti(s, 7);
        a.retv();
        let fin = a.end().unwrap();
        // Prologue (3) + set (1) + ret branch (2) + epilogue (2) = 8
        // words — no save/restore instructions for %l0.
        assert_eq!(fin.len, 8 * 4);
    }

    #[test]
    fn branch_displacement_is_relative_to_branch() {
        let mut mem = vec![0u8; 512];
        let mut a = Assembler::<Sparc>::lambda(&mut mem, "%i", Leaf::Yes).unwrap();
        let x = a.arg(0);
        let l = a.genlabel();
        a.beqii(x, 0, l); // subcc + be + nop
        a.addii(x, x, 1);
        a.label(l);
        a.reti(x);
        a.end().unwrap();
        let w = words(&mem, 16);
        // w3 = subcc, w4 = be, w5 = delay nop, w6 = addii, label at w7.
        assert_eq!((w[3] >> 19) & 0x3f, 0x14, "subcc");
        assert_eq!((w[4] >> 22) & 7, 2, "Bicc");
        assert_eq!(w[4] & 0x3f_ffff, 3, "disp22 = (w7 - w4) words");
    }

    #[test]
    fn division_sets_up_y() {
        let mut mem = vec![0u8; 512];
        let mut a = Assembler::<Sparc>::lambda(&mut mem, "%i%i", Leaf::Yes).unwrap();
        let (x, y) = (a.arg(0), a.arg(1));
        a.divi(x, x, y);
        a.reti(x);
        a.end().unwrap();
        let w = words(&mem, 8);
        assert_eq!((w[3] >> 19) & 0x3f, 0x27, "sra for sign extension");
        assert_eq!((w[4] >> 19) & 0x3f, 0x30, "wr %y");
        assert_eq!((w[5] >> 19) & 0x3f, 0x0f, "sdiv");
    }
}
