//! SPARC V8 instruction encoders.

use vcode::buf::CodeBuffer;

/// Conventional register numbers.
pub mod r {
    #![allow(missing_docs)]
    pub const G0: u8 = 0;
    pub const G1: u8 = 1;
    pub const G2: u8 = 2;
    pub const G3: u8 = 3;
    pub const G4: u8 = 4;
    pub const O0: u8 = 8;
    pub const O7: u8 = 15; // call link
    pub const SP: u8 = 14; // %o6
    pub const L0: u8 = 16;
    pub const I0: u8 = 24;
    pub const FP: u8 = 30; // %i6
    pub const I7: u8 = 31; // return address
}

/// `op3` codes for format-3 arithmetic (op = 2).
pub mod op3 {
    #![allow(missing_docs)]
    pub const ADD: u8 = 0x00;
    pub const AND: u8 = 0x01;
    pub const OR: u8 = 0x02;
    pub const XOR: u8 = 0x03;
    pub const SUB: u8 = 0x04;
    pub const XNOR: u8 = 0x07;
    pub const ADDX: u8 = 0x08;
    pub const UMUL: u8 = 0x0a;
    pub const SMUL: u8 = 0x0b;
    pub const UDIV: u8 = 0x0e;
    pub const SDIV: u8 = 0x0f;
    pub const SUBCC: u8 = 0x14;
    pub const SLL: u8 = 0x25;
    pub const SRL: u8 = 0x26;
    pub const SRA: u8 = 0x27;
    pub const RDY: u8 = 0x28;
    pub const WRY: u8 = 0x30;
    pub const JMPL: u8 = 0x38;
    pub const SAVE: u8 = 0x3c;
    pub const RESTORE: u8 = 0x3d;
}

/// `op3` codes for memory instructions (op = 3).
pub mod mem {
    #![allow(missing_docs)]
    pub const LD: u8 = 0x00;
    pub const LDUB: u8 = 0x01;
    pub const LDUH: u8 = 0x02;
    pub const LDSB: u8 = 0x09;
    pub const LDSH: u8 = 0x0a;
    pub const ST: u8 = 0x04;
    pub const STB: u8 = 0x05;
    pub const STH: u8 = 0x06;
    pub const LDF: u8 = 0x20;
    pub const STF: u8 = 0x24;
}

/// Integer condition codes for `Bicc`.
pub mod cond {
    #![allow(missing_docs)]
    pub const A: u8 = 8;
    pub const E: u8 = 1;
    pub const NE: u8 = 9;
    pub const L: u8 = 3;
    pub const LE: u8 = 2;
    pub const G: u8 = 10;
    pub const GE: u8 = 11;
    pub const CS: u8 = 5; // unsigned <
    pub const LEU: u8 = 4;
    pub const GU: u8 = 12;
    pub const CC: u8 = 13; // unsigned >=
}

/// FP condition codes for `FBfcc`.
pub mod fcond {
    #![allow(missing_docs)]
    pub const NE: u8 = 1;
    pub const L: u8 = 4;
    pub const G: u8 = 6;
    pub const E: u8 = 9;
    pub const GE: u8 = 11;
    pub const LE: u8 = 13;
}

/// `opf` codes for FPop1 (op3 = 0x34).
pub mod opf {
    #![allow(missing_docs)]
    pub const FMOVS: u16 = 0x001;
    pub const FNEGS: u16 = 0x005;
    pub const FABSS: u16 = 0x009;
    pub const FSQRTS: u16 = 0x029;
    pub const FSQRTD: u16 = 0x02a;
    pub const FADDS: u16 = 0x041;
    pub const FADDD: u16 = 0x042;
    pub const FSUBS: u16 = 0x045;
    pub const FSUBD: u16 = 0x046;
    pub const FMULS: u16 = 0x049;
    pub const FMULD: u16 = 0x04a;
    pub const FDIVS: u16 = 0x04d;
    pub const FDIVD: u16 = 0x04e;
    pub const FITOS: u16 = 0x0c4;
    pub const FDTOS: u16 = 0x0c6;
    pub const FITOD: u16 = 0x0c8;
    pub const FSTOD: u16 = 0x0c9;
    pub const FSTOI: u16 = 0x0d1;
    pub const FDTOI: u16 = 0x0d2;
    pub const FCMPS: u16 = 0x051;
    pub const FCMPD: u16 = 0x052;
}

/// Format 3, register-register: `op3 rd, rs1, rs2`.
#[inline]
pub fn f3_rr(b: &mut CodeBuffer<'_>, op3v: u8, rd: u8, rs1: u8, rs2: u8) {
    b.put_u32(
        (2u32 << 30)
            | (u32::from(rd) << 25)
            | (u32::from(op3v) << 19)
            | (u32::from(rs1) << 14)
            | u32::from(rs2),
    );
}

/// Format 3, register-immediate: `op3 rd, rs1, simm13`.
#[inline]
pub fn f3_ri(b: &mut CodeBuffer<'_>, op3v: u8, rd: u8, rs1: u8, simm13: i16) {
    debug_assert!((-4096..4096).contains(&i32::from(simm13)));
    b.put_u32(
        (2u32 << 30)
            | (u32::from(rd) << 25)
            | (u32::from(op3v) << 19)
            | (u32::from(rs1) << 14)
            | (1 << 13)
            | (simm13 as u32 & 0x1fff),
    );
}

/// Memory op, register offset.
#[inline]
pub fn mem_rr(b: &mut CodeBuffer<'_>, op3v: u8, rd: u8, base: u8, idx: u8) {
    b.put_u32(
        (3u32 << 30)
            | (u32::from(rd) << 25)
            | (u32::from(op3v) << 19)
            | (u32::from(base) << 14)
            | u32::from(idx),
    );
}

/// Memory op, immediate offset.
#[inline]
pub fn mem_ri(b: &mut CodeBuffer<'_>, op3v: u8, rd: u8, base: u8, simm13: i16) {
    b.put_u32(
        (3u32 << 30)
            | (u32::from(rd) << 25)
            | (u32::from(op3v) << 19)
            | (u32::from(base) << 14)
            | (1 << 13)
            | (simm13 as u32 & 0x1fff),
    );
}

/// `sethi %hi(imm22 << 10), rd`.
#[inline]
pub fn sethi(b: &mut CodeBuffer<'_>, rd: u8, imm22: u32) {
    b.put_u32((u32::from(rd) << 25) | (4 << 22) | (imm22 & 0x3f_ffff));
}

/// `nop` (`sethi 0, %g0`).
#[inline]
pub fn nop(b: &mut CodeBuffer<'_>) {
    sethi(b, 0, 0);
}

/// Integer conditional branch, word displacement relative to the branch.
#[inline]
pub fn bicc(b: &mut CodeBuffer<'_>, cond: u8, disp22: i32) {
    b.put_u32((u32::from(cond) << 25) | (2 << 22) | (disp22 as u32 & 0x3f_ffff));
}

/// FP conditional branch.
#[inline]
pub fn fbfcc(b: &mut CodeBuffer<'_>, cond: u8, disp22: i32) {
    b.put_u32((u32::from(cond) << 25) | (6 << 22) | (disp22 as u32 & 0x3f_ffff));
}

/// `call disp30` (pc-relative, links to `%o7`).
#[inline]
pub fn call(b: &mut CodeBuffer<'_>, disp30: i32) {
    b.put_u32((1u32 << 30) | (disp30 as u32 & 0x3fff_ffff));
}

/// FPop1 instruction.
#[inline]
pub fn fpop1(b: &mut CodeBuffer<'_>, opf: u16, rd: u8, rs1: u8, rs2: u8) {
    b.put_u32(
        (2u32 << 30)
            | (u32::from(rd) << 25)
            | (0x34u32 << 19)
            | (u32::from(rs1) << 14)
            | (u32::from(opf) << 5)
            | u32::from(rs2),
    );
}

/// FPop2 (compares).
#[inline]
pub fn fpop2(b: &mut CodeBuffer<'_>, opf: u16, rs1: u8, rs2: u8) {
    b.put_u32(
        (2u32 << 30)
            | (0x35u32 << 19)
            | (u32::from(rs1) << 14)
            | (u32::from(opf) << 5)
            | u32::from(rs2),
    );
}

/// Loads a 32-bit constant into `rd` with `sethi`/`or` (1–2 insns).
#[inline]
pub fn set32(b: &mut CodeBuffer<'_>, rd: u8, v: u32) {
    if (v as i32) >= -4096 && (v as i32) < 4096 {
        f3_ri(b, op3::OR, rd, r::G0, v as i32 as i16);
    } else if v & 0x3ff == 0 {
        sethi(b, rd, v >> 10);
    } else {
        sethi(b, rd, v >> 10);
        f3_ri(b, op3::OR, rd, rd, (v & 0x3ff) as i16);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(f: impl FnOnce(&mut CodeBuffer<'_>)) -> u32 {
        let mut m = [0u8; 16];
        let mut b = CodeBuffer::new(&mut m);
        f(&mut b);
        b.read_u32(0)
    }

    #[test]
    fn add_rr() {
        // add %o0, %o1, %o2 : op=2 rd=10 op3=0 rs1=8 rs2=9
        let w = one(|b| f3_rr(b, op3::ADD, 10, 8, 9));
        assert_eq!(w, (2 << 30) | (10 << 25) | (8 << 14) | 9);
    }

    #[test]
    fn addi_negative_imm() {
        let w = one(|b| f3_ri(b, op3::ADD, r::SP, r::SP, -96));
        assert_eq!(w & 0x1fff, (-96i32 as u32) & 0x1fff);
        assert_eq!((w >> 13) & 1, 1);
    }

    #[test]
    fn save_restore_shapes() {
        let w = one(|b| f3_ri(b, op3::SAVE, r::SP, r::SP, -96));
        assert_eq!((w >> 19) & 0x3f, 0x3c);
        let w = one(|b| f3_rr(b, op3::RESTORE, r::G0, r::G0, r::G0));
        assert_eq!((w >> 19) & 0x3f, 0x3d);
    }

    #[test]
    fn sethi_or_set32() {
        let mut m = [0u8; 16];
        let mut b = CodeBuffer::new(&mut m);
        set32(&mut b, r::G1, 0x12345678);
        assert_eq!(b.len(), 8);
        let hi = b.read_u32(0);
        assert_eq!(hi >> 25 & 31, 1);
        assert_eq!(hi & 0x3f_ffff, 0x12345678 >> 10);
        let mut m = [0u8; 16];
        let mut b = CodeBuffer::new(&mut m);
        set32(&mut b, r::G1, 100);
        assert_eq!(b.len(), 4, "small constants are one or");
    }

    #[test]
    fn branch_and_call() {
        let w = one(|b| bicc(b, cond::NE, -2));
        assert_eq!(w >> 22 & 7, 2);
        assert_eq!(w & 0x3f_ffff, (-2i32 as u32) & 0x3f_ffff);
        let w = one(|b| call(b, 16));
        assert_eq!(w >> 30, 1);
        assert_eq!(w & 0x3fff_ffff, 16);
    }

    #[test]
    fn fp_forms() {
        let w = one(|b| fpop1(b, opf::FADDD, 0, 2, 4));
        assert_eq!((w >> 19) & 0x3f, 0x34);
        assert_eq!((w >> 5) & 0x1ff, 0x042);
        let w = one(|b| fpop2(b, opf::FCMPD, 0, 2));
        assert_eq!((w >> 19) & 0x3f, 0x35);
    }
}
