//! # vcode-repro — reproduction of VCODE (Engler, PLDI 1996)
//!
//! This facade crate re-exports the workspace so the examples and
//! cross-crate integration tests have one import root. The real work
//! lives in the member crates:
//!
//! - [`vcode`] — the dynamic code generation core (the paper's
//!   contribution);
//! - [`vcode_x64`], [`vcode_mips`], [`vcode_sparc`], [`vcode_alpha`] —
//!   the four backends;
//! - [`vcode_sim`] — instruction-set simulators for the three paper
//!   platforms;
//! - [`dcg`] — the IR-tree baseline the paper is ~35× faster than;
//! - [`dpf`] — dynamic packet filters (Table 3);
//! - [`ash`] — fused message pipelines (Table 4);
//! - [`tcc`] — the C-subset compiler client (§4.1).
//!
//! See `README.md` for the quick start, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for paper-vs-measured results.

pub use ash;
pub use dcg;
pub use dpf;
pub use tcc;
pub use vcode;
pub use vcode_alpha;
pub use vcode_mips;
pub use vcode_sim;
pub use vcode_sparc;
pub use vcode_x64;
