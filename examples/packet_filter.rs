//! Dynamic packet filters (paper §4.2): install ten TCP/IP filters,
//! compile them to native code, and classify a packet stream — against
//! the MPF- and PATHFINDER-style interpreted baselines.
//!
//! ```sh
//! cargo run --release --example packet_filter
//! ```

use dpf::mpf::Mpf;
use dpf::packet::{self, PacketSpec};
use dpf::{Dpf, Pathfinder};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let filters = packet::port_filter_set(10, 1000);

    let mut dpf = Dpf::new();
    let mut mpf = Mpf::new();
    let mut pf = Pathfinder::new();
    for f in &filters {
        dpf.insert(f.clone());
        mpf.insert(f);
        pf.insert(f.clone());
    }
    let t0 = Instant::now();
    dpf.compile()?;
    let compile_time = t0.elapsed();
    let c = dpf.compiled().expect("compiled");
    println!(
        "DPF compiled 10 filters: {} bytes of machine code from {} vcode \
         instructions in {:.1} µs (dispatch: {:?})",
        c.code_len,
        c.vcode_insns,
        compile_time.as_secs_f64() * 1e6,
        c.strategies
    );

    // A packet for filter 4, plus misses.
    let hit = packet::build(&PacketSpec {
        dst_port: 1004,
        ..PacketSpec::default()
    });
    let miss = packet::build(&PacketSpec {
        dst_port: 7777,
        ..PacketSpec::default()
    });
    println!("\nclassify(port 1004) = {:?}", dpf.classify(&hit));
    println!("classify(port 7777) = {:?}", dpf.classify(&miss));
    assert_eq!(dpf.classify(&hit), mpf.classify(&hit));
    assert_eq!(dpf.classify(&hit), pf.classify(&hit));

    // The paper's measurement: average time to classify a message
    // destined for one of the ten filters, 100 000 trials (Table 3).
    const TRIALS: u32 = 100_000;
    let time = |f: &dyn Fn(&[u8]) -> Option<u32>| {
        let t = Instant::now();
        let mut sink = 0u64;
        for i in 0..TRIALS {
            let msg = if i % 4 == 3 { &miss } else { &hit };
            sink = sink.wrapping_add(u64::from(f(msg).map_or(u32::MAX, |v| v)));
        }
        std::hint::black_box(sink);
        t.elapsed().as_secs_f64() * 1e9 / f64::from(TRIALS)
    };
    let ns_dpf = time(&|m| dpf.classify(m));
    let ns_pf = time(&|m| pf.classify(m));
    let ns_mpf = time(&|m| mpf.classify(m));
    println!("\nTable 3 analog (avg ns/classification, {TRIALS} trials):");
    println!(
        "  MPF (interpreted, per-filter)  {ns_mpf:8.1} ns   ({:>4.1}x DPF)",
        ns_mpf / ns_dpf
    );
    println!(
        "  PATHFINDER (interpreted trie)  {ns_pf:8.1} ns   ({:>4.1}x DPF)",
        ns_pf / ns_dpf
    );
    println!("  DPF (dynamically compiled)     {ns_dpf:8.1} ns");
    Ok(())
}
