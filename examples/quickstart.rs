//! Quick start: the paper's Figure 1 — dynamically generate
//! `int plus1(int x) { return x + 1; }` and run it natively.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use vcode::target::Leaf;
use vcode::Assembler;
use vcode_mips::Mips;
use vcode_x64::{ExecMem, X64};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Native x86-64: generate, finalize, call. ---
    let mut mem = ExecMem::new(4096)?;
    let mut a = Assembler::<X64>::lambda(mem.as_mut_slice(), "%i", Leaf::Yes)?;
    let x = a.arg(0);
    a.addii(x, x, 1); // v_addii: ADD Integer Immediate
    a.reti(x); // v_reti:  RETurn Integer
    let fin = a.end()?; // v_end:   link + cleanup
    let code = mem.finalize()?;
    let plus1: extern "C" fn(i32) -> i32 = unsafe { code.as_fn() };

    println!("generated {} bytes of x86-64 in-place", fin.len);
    println!("plus1(41)      = {}", plus1(41));
    println!("plus1(i32::MAX) = {}", plus1(i32::MAX));

    // --- The same specification retargeted to MIPS (paper §3.2 shows
    //     the generated MIPS code), disassembled. ---
    let mut mips_mem = vec![0u8; 1024];
    let mut a = Assembler::<Mips>::lambda(&mut mips_mem, "%i", Leaf::Yes)?;
    let x = a.arg(0);
    a.addii(x, x, 1);
    a.reti(x);
    let fin = a.end()?;
    println!("\nthe same VCODE retargeted to MIPS ({} bytes):", fin.len);
    print!("{}", vcode_sim::mips::disasm_all(&mips_mem[..fin.len]));

    // And executed on the simulator.
    let mut m = vcode_sim::mips::Machine::new(1 << 20);
    let entry = m.load_code(&mips_mem[..fin.len])?;
    println!(
        "simulated MIPS plus1(41) = {} ({} instructions)",
        m.call(entry, &[41], 10_000)?,
        m.stats().insns_retired
    );
    Ok(())
}
