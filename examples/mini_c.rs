//! tcc (paper §4.1): compile C source to native code at runtime and call
//! it — no assembler, linker, or external process.
//!
//! ```sh
//! cargo run --example mini_c
//! ```

use tcc::Program;

const SOURCE: &str = r"
// Classic demos, compiled at runtime.
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}

int gcd(int a, int b) {
    while (b != 0) {
        int t = a % b;
        a = b;
        b = t;
    }
    return a;
}

int count_primes(int limit) {
    int k = 0;
    for (int i = 2; i < limit; i++) {
        int prime = 1;
        for (int d = 2; d * d <= i; d++)
            if (i % d == 0) { prime = 0; break; }
        k += prime;
    }
    return k;
}

double mean(double a, double b) { return (a + b) / 2.0; }

void fill_squares(int *out, int n) {
    for (int i = 0; i < n; i++) out[i] = i * i;
}
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t = std::time::Instant::now();
    let prog = Program::compile(SOURCE)?;
    println!(
        "compiled {} functions to {} bytes of x86-64 in {:.1} µs",
        prog.functions().count(),
        prog.code_len,
        t.elapsed().as_secs_f64() * 1e6
    );
    println!("fib(25)          = {}", prog.call_int("fib", &[25])?);
    println!("gcd(1071, 462)   = {}", prog.call_int("gcd", &[1071, 462])?);
    println!(
        "count_primes(1000) = {}",
        prog.call_int("count_primes", &[1000])?
    );
    println!("mean(2.5, 7.5)   = {}", prog.call_f64("mean", &[2.5, 7.5])?);
    let mut squares = [0i32; 8];
    prog.call_int("fill_squares", &[squares.as_mut_ptr() as i64, 8])?;
    println!("fill_squares(8)  = {squares:?}");
    Ok(())
}
