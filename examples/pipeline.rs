//! ASH message pipelines (paper §4.3): dynamically compose checksumming
//! and byte swapping into a single copy loop, and compare against the
//! modular (separate-pass) and hand-integrated baselines — Table 4.
//!
//! The "uncached" rows stream through a working set much larger than the
//! last-level cache, so every message is cold, the regime the paper's
//! flushed measurements capture.
//!
//! ```sh
//! cargo run --release --example pipeline
//! ```

use ash::{integrated, separate, Pipeline, Step};
use std::time::Instant;

const MSG: usize = 16 * 1024;
/// Enough 16 KiB message pairs to overflow any last-level cache.
const RING: usize = 4096;

fn time_warm(mut f: impl FnMut(&[u8], &mut [u8]) -> u16, src: &[u8], dst: &mut [u8]) -> f64 {
    const REPS: u32 = 3000;
    let t = Instant::now();
    for _ in 0..REPS {
        std::hint::black_box(f(src, dst));
    }
    t.elapsed().as_secs_f64() * 1e9 / f64::from(REPS)
}

fn time_cold(mut f: impl FnMut(&[u8], &mut [u8]) -> u16, ring: &mut [u8]) -> f64 {
    let n = ring.len() / (2 * MSG);
    let t = Instant::now();
    for i in 0..n {
        let (a, b) = ring[i * 2 * MSG..(i + 1) * 2 * MSG].split_at_mut(MSG);
        std::hint::black_box(f(a, b));
    }
    t.elapsed().as_secs_f64() * 1e9 / n as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src: Vec<u8> = (0..MSG).map(|i| (i * 31 + 7) as u8).collect();
    let mut dst = vec![0u8; MSG];
    let mut ring = vec![0u8; RING * 2 * MSG];
    for (i, b) in ring.iter_mut().enumerate() {
        *b = (i * 13 + 5) as u8;
    }

    println!("Table 4 analog: 16 KiB messages, ns per message");
    println!("{:24} {:>12} {:>12}", "", "copy+cksum", "copy+cksum+swap");
    let mut rows: Vec<(&str, Vec<f64>)> = vec![
        ("separate, uncached", vec![]),
        ("separate", vec![]),
        ("C integrated", vec![]),
        ("ASH, uncached", vec![]),
        ("ASH", vec![]),
    ];
    for steps in [vec![Step::Checksum], vec![Step::Checksum, Step::Swap]] {
        let p = Pipeline::compile(&steps)?;
        // Correctness cross-check before timing.
        let mut d2 = vec![0u8; MSG];
        let c1 = p.run(&src, &mut dst);
        let c2 = integrated(&steps, &src, &mut d2);
        assert_eq!(c1, c2);
        assert_eq!(dst, d2);

        rows[0]
            .1
            .push(time_cold(|s, d| separate(&steps, s, d), &mut ring));
        rows[1]
            .1
            .push(time_warm(|s, d| separate(&steps, s, d), &src, &mut dst));
        rows[2]
            .1
            .push(time_warm(|s, d| integrated(&steps, s, d), &src, &mut dst));
        rows[3].1.push(time_cold(|s, d| p.run(s, d), &mut ring));
        rows[4]
            .1
            .push(time_warm(|s, d| p.run(s, d), &src, &mut dst));
    }
    for (name, vals) in &rows {
        println!("{name:24} {:>12.0} {:>12.0}", vals[0], vals[1]);
    }
    println!(
        "\nfused-vs-separate, cold: {:.2}x (cksum), {:.2}x (cksum+swap)",
        rows[0].1[0] / rows[3].1[0],
        rows[0].1[1] / rows[3].1[1],
    );
    println!(
        "fused-vs-separate, warm: {:.2}x (cksum), {:.2}x (cksum+swap)",
        rows[1].1[0] / rows[4].1[0],
        rows[1].1[1] / rows[4].1[1],
    );
    Ok(())
}
