//! Retargetability (paper §3.3): one VCODE specification, four machines.
//! The same client code generates for x86-64 (run natively), MIPS, SPARC
//! and Alpha (run on the instruction-set simulators) — and they all
//! agree.
//!
//! ```sh
//! cargo run --example cross_target
//! ```

use vcode::target::Leaf;
use vcode::{Assembler, RegClass, Target};
use vcode_alpha::Alpha;
use vcode_mips::Mips;
use vcode_sparc::Sparc;
use vcode_x64::{ExecMem, X64};

/// The portable specification: gcd(a, b) by repeated remainder.
/// Written once against the idealized RISC interface.
fn gcd_spec<T: Target>(a: &mut Assembler<'_, T>) {
    let (x, y) = (a.arg(0), a.arg(1));
    let top = a.genlabel();
    let done = a.genlabel();
    let t = a.getreg(RegClass::Temp).expect("register");
    a.label(top);
    a.beqii(y, 0, done);
    a.modi(t, x, y);
    a.movi(x, y);
    a.movi(y, t);
    a.jmp(top);
    a.label(done);
    a.reti(x);
}

fn generate<T: Target>() -> Vec<u8> {
    let mut mem = vec![0u8; 4096];
    let mut a = Assembler::<T>::lambda(&mut mem, "%i%i", Leaf::Yes).expect("lambda");
    gcd_spec(&mut a);
    let fin = a.end().expect("end");
    mem.truncate(fin.len);
    mem
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cases = [(48u32, 36u32), (1071, 462), (17, 5), (270, 192)];

    // Native x86-64.
    let mut mem = ExecMem::new(4096)?;
    let mut a = Assembler::<X64>::lambda(mem.as_mut_slice(), "%i%i", Leaf::Yes)?;
    gcd_spec(&mut a);
    let fin = a.end()?;
    let code = mem.finalize()?;
    let native: extern "C" fn(i32, i32) -> i32 = unsafe { code.as_fn() };
    println!("x86-64 (native):    {} bytes", fin.len);

    // The three paper platforms, simulated.
    let mips_code = generate::<Mips>();
    let sparc_code = generate::<Sparc>();
    let alpha_code = generate::<Alpha>();
    println!("MIPS   (simulated): {} bytes", mips_code.len());
    println!("SPARC  (simulated): {} bytes", sparc_code.len());
    println!("Alpha  (simulated): {} bytes", alpha_code.len());

    let mut mips = vcode_sim::mips::Machine::new(1 << 20);
    let mips_entry = mips.load_code(&mips_code)?;
    let mut sparc = vcode_sim::sparc::Machine::new(1 << 20);
    let sparc_entry = sparc.load_code(&sparc_code)?;
    let mut alpha = vcode_sim::alpha::Machine::new(1 << 20);
    let alpha_entry = alpha.load_code(&alpha_code)?;

    println!("\n  a      b    x86-64   MIPS  SPARC  Alpha");
    for (x, y) in cases {
        let n = native(x as i32, y as i32);
        let m = mips.call(mips_entry, &[x, y], 100_000)?;
        let s = sparc.call(sparc_entry, &[x, y], 100_000)?;
        let al = alpha.call(alpha_entry, &[u64::from(x), u64::from(y)], 100_000)?;
        println!("{x:5} {y:6} {n:9} {m:6} {s:6} {al:6}");
        assert_eq!(n as u32, m);
        assert_eq!(n as u32, s);
        assert_eq!(n as u64, al);
    }
    println!(
        "\nall four targets agree; simulated instruction counts: \
         MIPS {}  SPARC {}  Alpha {}",
        mips.stats().insns_retired,
        sparc.stats().insns_retired,
        alpha.stats().insns_retired
    );
    Ok(())
}
