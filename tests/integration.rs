//! Cross-crate integration: the experimental clients interoperate, all
//! built on the same dynamic code generation core.

use ash::{Pipeline, Step};
use dpf::packet::{self, PacketSpec};
use dpf::Dpf;
use tcc::Program;

/// A C implementation of the Internet checksum, compiled at runtime by
/// tcc, must agree with the ASH reference and the vcode-fused pipeline
/// on packets synthesized by the DPF packet generator.
#[test]
fn three_clients_one_checksum() {
    let prog = Program::compile(
        "
        int cksum(char *data, int n) {
            int sum = 0;
            for (int i = 0; i < n; i += 2) {
                int hi = data[i] & 255;
                int lo = data[i + 1] & 255;
                sum += hi * 256 + lo;
            }
            while (sum >> 16) sum = (sum & 65535) + (sum >> 16);
            return (~sum) & 65535;
        }
        ",
    )
    .expect("tcc compiles");
    let packet = packet::build(&PacketSpec {
        payload_len: 70, // keep total length a multiple of 4
        ..PacketSpec::default()
    });
    assert_eq!(packet.len() % 4, 0);
    let reference = ash::reference::checksum(&packet);
    let from_c = prog
        .call_int("cksum", &[packet.as_ptr() as i64, packet.len() as i64])
        .expect("runs") as u16;
    assert_eq!(from_c, reference, "tcc-compiled C checksum");

    let p = Pipeline::compile(&[Step::Checksum]).expect("pipeline compiles");
    let mut copy = vec![0u8; packet.len()];
    let from_ash = p.run(&packet, &mut copy);
    assert_eq!(from_ash, reference, "vcode-fused pipeline checksum");
    assert_eq!(copy, packet, "pipeline copied the packet intact");
}

/// A demultiplex-then-process path: DPF classifies the packet, ASH
/// moves it into the "application buffer" with checksum verification —
/// the exokernel flow of paper §4.2/§4.3 end to end.
#[test]
fn demultiplex_then_deliver() {
    let mut dpf = Dpf::new();
    let ids: Vec<u32> = packet::port_filter_set(8, 5000)
        .into_iter()
        .map(|f| dpf.insert(f))
        .collect();
    dpf.compile().expect("dpf compiles");
    let deliver = Pipeline::compile(&[Step::Checksum]).expect("ash compiles");

    for (i, id) in ids.iter().enumerate() {
        let pkt = packet::build(&PacketSpec {
            dst_port: 5000 + i as u16,
            payload_len: 30,
            ..PacketSpec::default()
        });
        let who = dpf.classify(&pkt);
        assert_eq!(who, Some(*id), "demultiplexed to the right endpoint");
        let mut app_buf = vec![0u8; pkt.len()];
        let ck = deliver.run(&pkt, &mut app_buf);
        assert_eq!(app_buf, pkt);
        assert_eq!(ck, ash::reference::checksum(&pkt));
    }
}

/// tcc-compiled C can *be* a packet filter: the same predicate as a DPF
/// filter, with identical verdicts over a packet soup.
#[test]
fn c_filter_agrees_with_dpf() {
    let prog = Program::compile(
        "
        int is_tcp_port(char *p, int len, int port) {
            if (len < 38) return 0;
            if ((p[12] & 255) != 8 || (p[13] & 255) != 0) return 0;
            if ((p[23] & 255) != 6) return 0;
            int dport = (p[36] & 255) * 256 + (p[37] & 255);
            return dport == port;
        }
        ",
    )
    .expect("compiles");
    let mut dpf = Dpf::new();
    let id = dpf.insert(packet::tcp_port_filter(0x0a00_0002, 443).unwrap());
    dpf.compile().unwrap();

    for port in [80u16, 443, 8080] {
        for proto in [packet::IPPROTO_TCP, packet::IPPROTO_UDP] {
            let pkt = packet::build(&PacketSpec {
                dst_port: port,
                proto,
                ..PacketSpec::default()
            });
            let c_says = prog
                .call_int("is_tcp_port", &[pkt.as_ptr() as i64, pkt.len() as i64, 443])
                .unwrap()
                != 0;
            let dpf_says = dpf.classify(&pkt) == Some(id);
            assert_eq!(c_says, dpf_says, "port {port} proto {proto}");
        }
    }
}

/// The instruction-spec preprocessor drives an actual extension: parse
/// the paper's sqrt spec, confirm the composed names match the methods
/// the extension layer provides, and run the op natively.
#[test]
fn spec_language_matches_extension_layer() {
    let spec = vcode::spec::Spec::parse("(sqrt (rd, rs) (f fsqrts) (d fsqrtd))").unwrap();
    let names: Vec<String> = spec.instructions().iter().map(|d| d.name.clone()).collect();
    assert_eq!(names, ["sqrtf", "sqrtd"]);

    use vcode::target::Leaf;
    use vcode::{Assembler, RegClass};
    let mut mem = vcode_x64::ExecMem::new(4096).unwrap();
    let mut a = Assembler::<vcode_x64::X64>::lambda(mem.as_mut_slice(), "%d", Leaf::Yes).unwrap();
    let x = a.arg(0);
    let t = a.getreg_f(RegClass::Temp).unwrap();
    a.sqrtd(x, x, t); // hardware sqrtsd on this target
    a.retd(x);
    a.end().unwrap();
    let code = mem.finalize().unwrap();
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let f: extern "C" fn(f64) -> f64 = unsafe { code.as_fn() };
    assert_eq!(f(144.0), 12.0);
}

/// Generated code calling tcc-generated code: a vcode client marshals a
/// call to a C function compiled in the same process (the paper's
/// "dynamically generate function calls" ability, §2).
#[test]
fn vcode_calls_tcc_function() {
    use vcode::target::{JumpTarget, Leaf};
    use vcode::{Assembler, RegClass, Sig, Ty};
    let prog = Program::compile("int triple(int x) { return 3 * x; }").unwrap();
    let triple_addr = prog.addr("triple").unwrap();

    let mut mem = vcode_x64::ExecMem::new(4096).unwrap();
    let mut a = Assembler::<vcode_x64::X64>::lambda(mem.as_mut_slice(), "%i", Leaf::No).unwrap();
    let x = a.arg(0);
    let sig = Sig::parse("%i:%i").unwrap();
    let mut cf = a.call_begin(&sig);
    a.call_arg(&mut cf, 0, Ty::I, x);
    let r = a.getreg(RegClass::Temp).unwrap();
    a.call_end(cf, JumpTarget::Abs(triple_addr), Some(r));
    a.addii(r, r, 1);
    a.reti(r);
    a.end().unwrap();
    let code = mem.finalize().unwrap();
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let f: extern "C" fn(i32) -> i32 = unsafe { code.as_fn() };
    assert_eq!(f(10), 31);
}

/// The generic ASH pipeline runs on every simulated paper machine and
/// produces the right checksum and output bytes.
#[test]
fn generic_pipeline_on_all_simulated_targets() {
    let data: Vec<u8> = (0..256).map(|i| (i * 131 + 17) as u8).collect();
    let want_ck = ash::reference::checksum(&data);
    let want_swapped = ash::reference::swapped(&data);
    let steps = [Step::Checksum, Step::Swap];

    // MIPS.
    {
        let mut mem = vec![0u8; 8192];
        let fin = ash::generic::compile_fused::<vcode_mips::Mips>(&mut mem, &steps).unwrap();
        mem.truncate(fin.len);
        let mut m = vcode_sim::mips::Machine::new(1 << 20);
        m.strict_load_delay = true;
        let entry = m.load_code(&mem).unwrap();
        let src = m.alloc(data.len(), 8).unwrap();
        let dst = m.alloc(data.len(), 8).unwrap();
        m.write(src, &data).unwrap();
        let sum = m
            .call(entry, &[dst, src, (data.len() / 4) as u32], 1_000_000)
            .unwrap();
        assert_eq!(
            ash::generic::fold_le_halfwords(sum),
            want_ck,
            "mips checksum"
        );
        assert_eq!(
            m.read(dst, data.len()).unwrap(),
            &want_swapped[..],
            "mips swap"
        );
    }
    // SPARC.
    {
        let mut mem = vec![0u8; 8192];
        let fin = ash::generic::compile_fused::<vcode_sparc::Sparc>(&mut mem, &steps).unwrap();
        mem.truncate(fin.len);
        let mut m = vcode_sim::sparc::Machine::new(1 << 20);
        let entry = m.load_code(&mem).unwrap();
        let src = m.alloc(data.len(), 8).unwrap();
        let dst = m.alloc(data.len(), 8).unwrap();
        m.write(src, &data).unwrap();
        let sum = m
            .call(entry, &[dst, src, (data.len() / 4) as u32], 1_000_000)
            .unwrap();
        assert_eq!(
            ash::generic::fold_le_halfwords(sum),
            want_ck,
            "sparc checksum"
        );
        assert_eq!(
            m.read(dst, data.len()).unwrap(),
            &want_swapped[..],
            "sparc swap"
        );
    }
    // Alpha.
    {
        let mut mem = vec![0u8; 8192];
        let fin = ash::generic::compile_fused::<vcode_alpha::Alpha>(&mut mem, &steps).unwrap();
        mem.truncate(fin.len);
        let mut m = vcode_sim::alpha::Machine::new(1 << 20);
        let entry = m.load_code(&mem).unwrap();
        let src = m.alloc(data.len(), 8).unwrap();
        let dst = m.alloc(data.len(), 8).unwrap();
        m.write(src, &data).unwrap();
        let sum = m
            .call(entry, &[dst, src, (data.len() / 4) as u64], 1_000_000)
            .unwrap();
        assert_eq!(
            ash::generic::fold_le_halfwords(sum as u32),
            want_ck,
            "alpha checksum"
        );
        assert_eq!(
            m.read(dst, data.len()).unwrap(),
            &want_swapped[..],
            "alpha swap"
        );
    }
    // x86-64 (native, through the same generic generator).
    {
        let mut mem = vcode_x64::ExecMem::new(8192).unwrap();
        ash::generic::compile_fused::<vcode_x64::X64>(mem.as_mut_slice(), &steps).unwrap();
        let code = mem.finalize().unwrap();
        // SAFETY: the buffer holds a complete emitted function matching this signature.
        let f: extern "C" fn(*mut u8, *const u8, i32) -> u32 = unsafe { code.as_fn() };
        let mut dst = vec![0u8; data.len()];
        let sum = f(dst.as_mut_ptr(), data.as_ptr(), (data.len() / 4) as i32);
        assert_eq!(
            ash::generic::fold_le_halfwords(sum),
            want_ck,
            "x64 checksum"
        );
        assert_eq!(dst, want_swapped, "x64 swap");
    }
}
