//! Workspace integration: the runtime-retargetable engine layer and its
//! sharded compiled-lambda cache.
//!
//! Exercises the full record → compile → execute surface across all four
//! backends (x86-64 natively, MIPS/SPARC/Alpha on their simulators),
//! cache keying (no cross-backend aliasing, hits on recompile), the
//! thundering-herd guarantee with real codegen, and the pool-drain
//! regression: cached native code must stay executable after
//! `drain_pool`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use vcode::engine::{Backend, Engine, Program, TargetId};
use vcode::{BinOp, Cond, UnOp};

fn all_backends() -> Vec<Arc<dyn Backend>> {
    vec![
        Arc::new(vcode_mips::MipsBackend),
        Arc::new(vcode_sparc::SparcBackend),
        Arc::new(vcode_alpha::AlphaBackend),
        Arc::new(vcode_x64::X64Backend),
    ]
}

fn engine(capacity: usize) -> Engine {
    vcode_sim::engine::install();
    let mut e = Engine::new(capacity);
    for b in all_backends() {
        e.register(b);
    }
    e
}

/// `fn f(x, y) = |x + y| * 3` — uses arithmetic, an immediate form, a
/// branch and a temporary, so every backend's replay path is exercised.
fn sample() -> Program {
    let mut p = Program::new(2).unwrap();
    p.bin(BinOp::Add, 2, 0, 1);
    let skip = p.genlabel();
    p.br_imm(Cond::Ge, 2, 0, skip);
    p.un(UnOp::Neg, 2, 2);
    p.label(skip);
    p.bin_imm(BinOp::Mul, 2, 2, 3);
    p.ret(2);
    p
}

#[test]
fn all_four_backends_agree() {
    let e = engine(64);
    let p = sample();
    for (x, y) in [
        (3i32, 4i32),
        (-10, 2),
        (0, 0),
        (1000, -2000),
        (123_456, -654_321),
    ] {
        let want = i64::from((x + y).abs() * 3);
        for id in TargetId::ALL {
            let f = e.compile_cached(id, &p).unwrap();
            assert_eq!(f.call(&[x, y]).unwrap(), want, "{id} f({x},{y})");
            assert_eq!(f.target(), id);
            assert!(f.code_len() > 0, "{id}");
            assert!(f.insns() > 0, "{id}");
        }
    }
}

#[test]
fn runtime_selection_by_name() {
    let e = engine(16);
    let mut p = Program::new(1).unwrap();
    p.bin_imm(BinOp::Add, 0, 0, 1);
    p.ret(0);
    for name in ["mips", "sparc", "alpha", "x64"] {
        let b = e.backend_by_name(name).unwrap();
        let f = b.compile(&p).unwrap();
        assert_eq!(f.call(&[41]).unwrap(), 42, "{name}");
    }
    assert!(e.backend_by_name("vax").is_err());
}

#[test]
fn same_stream_on_two_backends_does_not_alias() {
    let e = engine(64);
    let p = sample();
    let a = e.compile_cached(TargetId::Mips, &p).unwrap();
    let b = e.compile_cached(TargetId::X64, &p).unwrap();
    // Same vcode stream, different backends: distinct cache entries and
    // distinct code (a MIPS image run natively would be garbage).
    assert!(!Arc::ptr_eq(&a, &b));
    assert_eq!(a.target(), TargetId::Mips);
    assert_eq!(b.target(), TargetId::X64);
    assert_eq!(e.cache().len(), 2);
    // Both entries stay independently warm.
    let a2 = e.compile_cached(TargetId::Mips, &p).unwrap();
    let b2 = e.compile_cached(TargetId::X64, &p).unwrap();
    assert!(Arc::ptr_eq(&a, &a2));
    assert!(Arc::ptr_eq(&b, &b2));
}

#[test]
fn recompile_is_a_cache_hit_with_shared_code() {
    let e = engine(64);
    let p = sample();
    let before = e.cache_stats();
    let f1 = e.compile_cached(TargetId::X64, &p).unwrap();
    let f2 = e.compile_cached(TargetId::X64, &p).unwrap();
    let after = e.cache_stats();
    assert!(Arc::ptr_eq(&f1, &f2), "warm hit must share finished code");
    assert_eq!(after.hits - before.hits, 1);
    assert_eq!(after.misses - before.misses, 1);
    assert_eq!(after.inserts - before.inserts, 1);
    // An equal-content but separately recorded program hits too.
    let f3 = e.compile_cached(TargetId::X64, &sample()).unwrap();
    assert!(Arc::ptr_eq(&f1, &f3));
}

#[test]
fn cached_native_code_survives_drain_pool() {
    let e = engine(64);
    let p = sample();
    let f = e.compile_cached(TargetId::X64, &p).unwrap();
    assert_eq!(f.call(&[5, 7]).unwrap(), 36);
    // Churn some executable memory through the pool, then drain it.
    // Live code is never parked, so the cached lambda must be untouched.
    for _ in 0..8 {
        drop(vcode_x64::ExecMem::new(8 * 4096).unwrap());
    }
    vcode_x64::drain_pool();
    assert_eq!(f.call(&[5, 7]).unwrap(), 36, "cached code after drain");
    // And a fresh lookup still hits the same finished code.
    let f2 = e.compile_cached(TargetId::X64, &p).unwrap();
    assert!(Arc::ptr_eq(&f, &f2));
    assert_eq!(f2.call(&[-4, 1]).unwrap(), 9);
}

#[test]
fn concurrent_same_key_compiles_once() {
    // Real codegen under the herd: N threads race one (backend, stream)
    // key; the backend must run exactly once and everyone shares the
    // result.
    #[derive(Debug)]
    struct Counting {
        inner: vcode_x64::X64Backend,
        compiles: AtomicUsize,
    }
    impl Backend for Counting {
        fn id(&self) -> TargetId {
            TargetId::X64
        }
        fn word_bits(&self) -> u32 {
            64
        }
        fn compile(
            &self,
            prog: &Program,
        ) -> Result<Arc<dyn vcode::engine::Lambda>, vcode::EngineError> {
            self.compiles.fetch_add(1, Ordering::SeqCst);
            self.inner.compile(prog)
        }
    }

    let counting = Arc::new(Counting {
        inner: vcode_x64::X64Backend,
        compiles: AtomicUsize::new(0),
    });
    let mut e = Engine::new(64);
    e.register(counting.clone());
    let e = Arc::new(e);
    let p = Arc::new(sample());

    const THREADS: usize = 8;
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let (e, p, barrier) = (e.clone(), p.clone(), barrier.clone());
            std::thread::spawn(move || {
                barrier.wait();
                let f = e.compile_cached(TargetId::X64, &p).unwrap();
                f.call(&[2, 3]).unwrap()
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), 15);
    }
    assert_eq!(
        counting.compiles.load(Ordering::SeqCst),
        1,
        "thundering herd must compile exactly once"
    );
}

#[test]
fn uncompiled_backend_errors_are_typed() {
    // An engine with nothing registered: every path reports typed
    // errors, no panics.
    let e = Engine::new(4);
    let p = sample();
    assert!(matches!(
        e.compile(TargetId::Mips, &p),
        Err(vcode::EngineError::UnregisteredBackend(TargetId::Mips))
    ));
    assert!(matches!(
        e.compile_cached(TargetId::Alpha, &p),
        Err(vcode::EngineError::UnregisteredBackend(TargetId::Alpha))
    ));
}
