//! Tier-1 model-checker smoke: a seeded 10k-random-schedule run over
//! every concurrency model program (see `crates/mcheck`), wired into
//! plain `cargo test -q` so schedule-dependent regressions in the
//! RCU/cache/tier-latch/quarantine protocols fail fast. The walks are
//! deterministic (seeded SplitMix64 over schedule decisions), so a
//! failure here reproduces exactly; the full exhaustive sweeps run in
//! the dedicated `scripts/ci.sh` stage (`cargo test -p mcheck -q --
//! --ignored`).

use mcheck::{programs, Explorer};

#[test]
fn seeded_10k_random_schedule_smoke() {
    let progs = programs::all();
    // 10_000 schedules spread evenly across the programs; the +1 seed
    // offset keeps every program on its own deterministic stream.
    let per = 10_000 / progs.len() as u64;
    for (i, (name, f)) in progs.iter().enumerate() {
        let report = Explorer::new().random(0x10C4_0000 + i as u64, per, f);
        assert_eq!(report.executions, per);
        if let Some(v) = report.violation {
            panic!(
                "model program {name} violated under seeded random schedules \
                 (replay with Explorer::replay or the printed seed):\n{v}"
            );
        }
    }
}
