//! Workspace integration: the engine's serve-while-compiling surface.
//!
//! `compile_async` must serve every request immediately — interpreting
//! the recorded stream until the background build publishes — and the
//! degraded answers must match the native ones bit-for-bit on every
//! backend.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use vcode::engine::{Backend, Engine, Program, ServeMode, TargetId};
use vcode::{BinOp, Cond, ServiceConfig, UnOp};

fn engine(capacity: usize) -> Engine {
    vcode_sim::engine::install();
    let mut e = Engine::new(capacity);
    e.register(Arc::new(vcode_mips::MipsBackend));
    e.register(Arc::new(vcode_sparc::SparcBackend));
    e.register(Arc::new(vcode_alpha::AlphaBackend));
    e.register(Arc::new(vcode_x64::X64Backend));
    e
}

/// `fn f(x, y) = |x + y| * 3` — the same stream the sync cache suite
/// uses: arithmetic, an immediate form, a branch and a temporary.
fn sample() -> Program {
    let mut p = Program::new(2).unwrap();
    p.bin(BinOp::Add, 2, 0, 1);
    let skip = p.genlabel();
    p.br_imm(Cond::Ge, 2, 0, skip);
    p.un(UnOp::Neg, 2, 2);
    p.label(skip);
    p.bin_imm(BinOp::Mul, 2, 2, 3);
    p.ret(2);
    p
}

fn wait_native(e: &Engine, handle: &vcode::AsyncCompile) {
    let t0 = Instant::now();
    while !handle.native_ready() {
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "background build never published"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(e.service().wait_idle(Duration::from_secs(30)));
}

#[test]
fn degraded_answers_match_native_on_every_backend() {
    let e = engine(64);
    let p = sample();
    let args = [
        (3i32, 4i32),
        (-10, 2),
        (0, 0),
        (1000, -2000),
        (123_456, -654_321),
        (i32::MAX, 1), // wrapping case: degraded and native must agree
    ];
    for id in TargetId::ALL {
        let handle = e.compile_async(id, &p).unwrap();
        // Whatever tier serves, the request is answerable *now*.
        let first: Vec<i64> = args
            .iter()
            .map(|(x, y)| handle.call(&[*x, *y]).unwrap())
            .collect();
        wait_native(&e, &handle);
        assert!(handle.native_ready(), "{id}");
        let native: Vec<i64> = args
            .iter()
            .map(|(x, y)| handle.call(&[*x, *y]).unwrap())
            .collect();
        assert_eq!(first, native, "{id}: degraded must match native");
        // And the native tier agrees with the sync path.
        let sync = e.compile_cached(id, &p).unwrap();
        for ((x, y), want) in args.iter().zip(&native) {
            assert_eq!(sync.call(&[*x, *y]).unwrap(), *want, "{id} f({x},{y})");
        }
    }
}

#[test]
fn warm_key_is_native_from_the_start() {
    let e = engine(64);
    let p = sample();
    e.compile_cached(TargetId::X64, &p).unwrap();
    let handle = e.compile_async(TargetId::X64, &p).unwrap();
    assert_eq!(handle.mode(), ServeMode::Native);
    assert!(handle.native_ready());
    assert!(handle.lambda().code_len() > 0);
    assert_eq!(handle.call(&[5, 7]).unwrap(), 36);
}

#[test]
fn async_thundering_herd_compiles_once() {
    #[derive(Debug)]
    struct Counting {
        inner: vcode_x64::X64Backend,
        compiles: AtomicUsize,
    }
    impl Backend for Counting {
        fn id(&self) -> TargetId {
            TargetId::X64
        }
        fn word_bits(&self) -> u32 {
            64
        }
        fn compile(
            &self,
            prog: &Program,
        ) -> Result<Arc<dyn vcode::engine::Lambda>, vcode::EngineError> {
            self.compiles.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(10));
            self.inner.compile(prog)
        }
    }

    let counting = Arc::new(Counting {
        inner: vcode_x64::X64Backend,
        compiles: AtomicUsize::new(0),
    });
    let mut e = Engine::new(64);
    e.register(counting.clone());
    assert!(e.configure_service(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    }));
    let e = Arc::new(e);
    let p = Arc::new(sample());

    const THREADS: usize = 8;
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let (e, p, barrier) = (e.clone(), p.clone(), barrier.clone());
            std::thread::spawn(move || {
                barrier.wait();
                // Non-blocking: every thread gets an answer immediately,
                // degraded or native.
                let h = e.compile_async(TargetId::X64, &p).unwrap();
                h.call(&[2, 3]).unwrap()
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), 15);
    }
    assert!(e.service().wait_idle(Duration::from_secs(30)));
    assert_eq!(
        counting.compiles.load(Ordering::SeqCst),
        1,
        "async thundering herd must compile exactly once"
    );
    // The published build serves natively now.
    let h = e.compile_async(TargetId::X64, &p).unwrap();
    assert_eq!(h.mode(), ServeMode::Native);
}

#[test]
fn degraded_handle_reports_itself_until_upgrade() {
    let mut e = Engine::new(64);
    // A deliberately slow backend so the degraded window is observable.
    #[derive(Debug)]
    struct Slow(vcode_x64::X64Backend);
    impl Backend for Slow {
        fn id(&self) -> TargetId {
            TargetId::X64
        }
        fn word_bits(&self) -> u32 {
            64
        }
        fn compile(
            &self,
            prog: &Program,
        ) -> Result<Arc<dyn vcode::engine::Lambda>, vcode::EngineError> {
            std::thread::sleep(Duration::from_millis(50));
            self.0.compile(prog)
        }
    }
    e.register(Arc::new(Slow(vcode_x64::X64Backend)));
    let p = sample();
    let before = vcode::obs::service_counters().degraded_calls;
    let h = e.compile_async(TargetId::X64, &p).unwrap();
    assert_eq!(h.mode(), ServeMode::Building);
    assert_eq!(h.lambda().target(), TargetId::X64);
    if !h.native_ready() {
        // Still degraded: code_len advertises the absence of native
        // code, and calls are counted as degraded serves.
        assert_eq!(h.lambda().code_len(), 0);
        assert_eq!(h.call(&[1, 2]).unwrap(), 9);
        assert!(vcode::obs::service_counters().degraded_calls > before);
    }
    wait_native(&e, &h);
    assert!(h.lambda().code_len() > 0, "upgraded handle reports native");
    assert_eq!(h.call(&[1, 2]).unwrap(), 9);
}
