//! Workspace integration: the persistent (L2) code cache.
//!
//! The headline property from the roadmap: a program compiled and
//! persisted by one engine, reloaded by a *fresh* engine from the same
//! artifact directory, must survive revalidation and produce
//! bit-for-bit identical code and identical results on every backend
//! (x86-64 natively, MIPS/SPARC/Alpha on their simulators).

use std::path::PathBuf;
use std::sync::Arc;
use vcode::engine::{Backend, Engine, Program, TargetId};
use vcode::{BinOp, Cond, UnOp};

fn all_backends() -> Vec<Arc<dyn Backend>> {
    vec![
        Arc::new(vcode_mips::MipsBackend),
        Arc::new(vcode_sparc::SparcBackend),
        Arc::new(vcode_alpha::AlphaBackend),
        Arc::new(vcode_x64::X64Backend),
    ]
}

fn engine(capacity: usize) -> Engine {
    vcode_sim::engine::install();
    let mut e = Engine::new(capacity);
    for b in all_backends() {
        e.register(b);
    }
    e
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vcode-persist-it-{}-{}", std::process::id(), tag));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small corpus spanning arithmetic, immediates, branches, unary ops
/// and temporaries, so each backend's full replay path round-trips.
fn corpus() -> Vec<Program> {
    let mut abs3 = Program::new(2).unwrap();
    abs3.bin(BinOp::Add, 2, 0, 1);
    let skip = abs3.genlabel();
    abs3.br_imm(Cond::Ge, 2, 0, skip);
    abs3.un(UnOp::Neg, 2, 2);
    abs3.label(skip);
    abs3.bin_imm(BinOp::Mul, 2, 2, 3);
    abs3.ret(2);

    let mut mix = Program::new(2).unwrap();
    mix.bin(BinOp::Xor, 2, 0, 1);
    mix.bin_imm(BinOp::And, 2, 2, 0xFF);
    mix.bin(BinOp::Sub, 3, 0, 2);
    mix.ret(3);

    let mut inc = Program::new(1).unwrap();
    inc.bin_imm(BinOp::Add, 0, 0, 1);
    inc.ret(0);

    vec![abs3, mix, inc]
}

const ARG_GRID: [(i32, i32); 5] = [(3, 4), (-10, 2), (0, 0), (1000, -2000), (123_456, -654_321)];

/// Persist → reload → revalidate → identical output, on all four
/// backends: engine A compiles and stores through; a fresh engine B
/// over the same directory must serve every program from disk (persist
/// hit counters advance) with bit-identical code images.
#[test]
fn round_trips_on_all_four_backends() {
    let dir = scratch_dir("roundtrip");
    let corpus = corpus();

    // Engine A: compile everything, recording results + code images.
    let a = engine(64);
    assert!(a.enable_persist(&dir).unwrap());
    let mut expect = Vec::new();
    for (pi, p) in corpus.iter().enumerate() {
        for id in TargetId::ALL {
            let f = a.compile_cached(id, p).unwrap();
            let image = f
                .persist_image()
                .expect("fresh compile must be persistable");
            let args = p.args();
            for &(x, y) in &ARG_GRID {
                let call: Vec<i32> = [x, y][..args].to_vec();
                expect.push((pi, id, call.clone(), f.call(&call).unwrap(), image.clone()));
            }
        }
    }
    drop(a);

    // Engine B: fresh caches, same artifact directory. Every compile
    // must be served from disk, not rebuilt.
    let before = vcode::obs::persist_counters();
    let b = engine(64);
    assert!(b.enable_persist(&dir).unwrap());
    for (pi, id, call, want, image) in &expect {
        let f = b.compile_cached(*id, &corpus[*pi]).unwrap();
        let got_image = f.persist_image().expect("reloaded lambda must re-persist");
        assert_eq!(
            &got_image, image,
            "{id} program {pi}: code image must be bit-identical"
        );
        assert_eq!(
            f.call(call).unwrap(),
            *want,
            "{id} program {pi} f({call:?})"
        );
    }
    let after = vcode::obs::persist_counters();
    assert_eq!(
        after.hits - before.hits,
        (corpus.len() * TargetId::ALL.len()) as u64,
        "every (program, target) pair must load from the persistent tier"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The persistent tier is strictly additive: with it disabled nothing
/// touches disk, and enabling it twice keeps the first directory.
#[test]
fn enable_is_first_call_wins() {
    let dir1 = scratch_dir("first");
    let dir2 = scratch_dir("second");
    let e = engine(8);
    assert!(e.enable_persist(&dir1).unwrap());
    assert!(!e.enable_persist(&dir2).unwrap());
    let mut p = Program::new(1).unwrap();
    p.bin_imm(BinOp::Add, 0, 0, 7);
    p.ret(0);
    let f = e.compile_cached(TargetId::X64, &p).unwrap();
    assert_eq!(f.call(&[35]).unwrap(), 42);
    assert!(
        std::fs::read_dir(&dir1).unwrap().next().is_some(),
        "store-through must write into the first directory"
    );
    assert!(
        !dir2.exists() || std::fs::read_dir(&dir2).unwrap().next().is_none(),
        "the losing directory must stay untouched"
    );
    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir2);
}
