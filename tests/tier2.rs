//! Workspace integration: tier-2 optimizing recompilation.
//!
//! Differential contract — tier-2 output must be semantically identical
//! to tier-1 output and to `Program::interpret` on every backend
//! (x86-64 natively, MIPS/SPARC/Alpha on their simulators), across a
//! corpus of fixed kernels, loops and randomly generated programs. On
//! top of that, the heat machinery: a cached lambda past its call
//! threshold upgrades to tier-2 code in place, concurrent callers never
//! observe a torn swap, and tiering off means no wrapper at all.
//!
//! Generated programs keep divisors provably nonzero (`| 1` masking or
//! nonzero immediates): the native x86-64 engine path is unguarded, so
//! a div-by-zero would fault the test process rather than return a
//! typed error. Trap *preservation* is covered by the interpreter-level
//! unit tests in `vcode::tier2` and the simulator cases here.

use std::sync::{Arc, Barrier};
use std::time::Duration;
use vcode::engine::{Backend, Engine, Program, TargetId};
use vcode::regress::XorShift;
use vcode::{BinOp, Cond, TierConfig, UnOp};

fn all_backends() -> Vec<Arc<dyn Backend>> {
    vec![
        Arc::new(vcode_mips::MipsBackend),
        Arc::new(vcode_sparc::SparcBackend),
        Arc::new(vcode_alpha::AlphaBackend),
        Arc::new(vcode_x64::X64Backend),
    ]
}

fn engine(capacity: usize) -> Engine {
    vcode_sim::engine::install();
    let mut e = Engine::new(capacity);
    for b in all_backends() {
        e.register(b);
    }
    e
}

/// `|x + y| * 3`: arithmetic, an immediate form, a branch, a temp.
fn abs_times_3() -> Program {
    let mut p = Program::new(2).unwrap();
    p.bin(BinOp::Add, 2, 0, 1);
    let skip = p.genlabel();
    p.br_imm(Cond::Ge, 2, 0, skip);
    p.un(UnOp::Neg, 2, 2);
    p.label(skip);
    p.bin_imm(BinOp::Mul, 2, 2, 3);
    p.ret(2);
    p
}

/// Counted loop: sum of squares 1..=n (0 for n <= 0), with the
/// redundancy a naive frontend leaves (copies, re-stores, `addi 0`).
fn sum_squares_loop() -> Program {
    let mut p = Program::new(1).unwrap();
    let top = p.genlabel();
    let done = p.genlabel();
    p.set(1, 0); // sum
    p.bin_imm(BinOp::Add, 1, 1, 0); // redundant identity
    p.un(UnOp::Mov, 2, 0); // i = n
    p.un(UnOp::Mov, 2, 2); // self-move
    p.label(top);
    p.br_imm(Cond::Le, 2, 0, done);
    p.bin(BinOp::Mul, 3, 2, 2);
    p.bin(BinOp::Add, 1, 1, 3);
    p.bin_imm(BinOp::Sub, 2, 2, 1);
    p.jmp(top);
    p.label(done);
    p.ret(1);
    p
}

/// Compare-chain classifier in the DPF shape: a ladder of immediate
/// compares, each arm setting a class id and jumping to the exit.
fn classify_ladder() -> Program {
    let mut p = Program::new(1).unwrap();
    let exit = p.genlabel();
    for (k, bound) in [(1i32, 10i32), (2, 100), (3, 1000)] {
        let next = p.genlabel();
        p.br_imm(Cond::Ge, 0, bound, next);
        p.set(1, k);
        p.jmp(exit);
        p.label(next);
    }
    p.set(1, 0);
    p.label(exit);
    p.ret(1);
    p
}

/// Constant-heavy kernel: everything below the final combine folds.
fn const_heavy() -> Program {
    let mut p = Program::new(1).unwrap();
    p.set(1, 6);
    p.bin_imm(BinOp::Mul, 1, 1, 7);
    p.set(2, 100);
    p.bin(BinOp::Add, 2, 2, 1);
    p.bin_imm(BinOp::And, 2, 2, -1);
    p.bin(BinOp::Xor, 3, 0, 2);
    p.ret(3);
    p
}

/// Division with divisors forced nonzero — safe on the unguarded
/// native path while still exercising Div/Mod through tier-2.
fn safe_division() -> Program {
    let mut p = Program::new(2).unwrap();
    p.bin_imm(BinOp::Or, 2, 1, 1); // divisor | 1 != 0
    p.bin(BinOp::Div, 3, 0, 2);
    p.bin_imm(BinOp::Mod, 3, 3, 7);
    p.bin(BinOp::Add, 3, 3, 2);
    p.ret(3);
    p
}

/// A random terminating program: straight-line ops over six registers
/// with occasional forward skip-branches. Loops are excluded (fixed
/// corpus covers them). Two discipline rules keep the program inside
/// semantics every tier defines identically: sources are only ever
/// registers already written (the interpreter zeroes virtual registers,
/// native code does not), and divisors are positive immediates >= 2
/// (no div-by-zero, no MIN/-1 overflow — edges where real ISAs and the
/// word-portable interpreter legitimately disagree).
fn random_program(rng: &mut XorShift) -> Program {
    let mut p = Program::new(2).unwrap();
    let mut init: Vec<u8> = vec![0, 1];
    fn src(rng: &mut XorShift, init: &[u8]) -> u8 {
        init[rng.below(init.len() as u64) as usize]
    }
    fn dst(rng: &mut XorShift, init: &mut Vec<u8>) -> u8 {
        let d = rng.below(6) as u8;
        if !init.contains(&d) {
            init.push(d);
        }
        d
    }
    let n = rng.range(4, 28) as usize;
    for _ in 0..n {
        match rng.below(10) {
            0 => {
                let d = dst(rng, &mut init);
                p.set(d, rng.next_u64() as i32);
            }
            1..=4 => {
                let op = match rng.below(5) {
                    0 => BinOp::Add,
                    1 => BinOp::Sub,
                    2 => BinOp::Mul,
                    3 => BinOp::Xor,
                    _ => BinOp::Or,
                };
                let (a, b) = (src(rng, &init), src(rng, &init));
                let d = dst(rng, &mut init);
                p.bin(op, d, a, b);
            }
            5 => {
                let imm = rng.range(0, 2000) as i32 - 1000;
                let a = src(rng, &init);
                let d = dst(rng, &mut init);
                p.bin_imm(BinOp::Add, d, a, imm);
            }
            6 => {
                let imm = rng.range(2, 500) as i32;
                let op = if rng.below(2) == 0 {
                    BinOp::Div
                } else {
                    BinOp::Mod
                };
                let a = src(rng, &init);
                let d = dst(rng, &mut init);
                p.bin_imm(op, d, a, imm);
            }
            7 => {
                let a = src(rng, &init);
                let d = dst(rng, &mut init);
                p.bin_imm(BinOp::Lsh, d, a, rng.below(31) as i32);
            }
            8 => {
                let op = match rng.below(4) {
                    0 => UnOp::Com,
                    1 => UnOp::Not,
                    2 => UnOp::Mov,
                    _ => UnOp::Neg,
                };
                let a = src(rng, &init);
                let d = dst(rng, &mut init);
                p.un(op, d, a);
            }
            _ => {
                // Forward skip over one set: the set's target is already
                // initialized, so both paths leave it defined.
                let skip = p.genlabel();
                p.br(Cond::Lt, src(rng, &init), src(rng, &init), skip);
                p.set(src(rng, &init), 0x5a5a);
                p.label(skip);
            }
        }
    }
    let r = src(rng, &init);
    p.ret(r);
    p
}

fn fixed_corpus() -> Vec<(&'static str, Program, Vec<Vec<i32>>)> {
    vec![
        (
            "abs_times_3",
            abs_times_3(),
            vec![
                vec![3, 4],
                vec![-10, 2],
                vec![0, 0],
                vec![1000, -2000],
                vec![i32::MAX, 1],
            ],
        ),
        (
            "sum_squares_loop",
            sum_squares_loop(),
            vec![vec![0], vec![1], vec![10], vec![-5], vec![100]],
        ),
        (
            "classify_ladder",
            classify_ladder(),
            vec![vec![5], vec![50], vec![500], vec![5000], vec![-1]],
        ),
        (
            "const_heavy",
            const_heavy(),
            vec![vec![0], vec![12345], vec![-1]],
        ),
        (
            "safe_division",
            safe_division(),
            vec![vec![100, 7], vec![-100, 6], vec![i32::MIN, 2], vec![7, 0]],
        ),
    ]
}

/// The differential core: for one program on one backend, tier-1 code,
/// tier-2 code and the interpreter agree on every argument tuple.
fn assert_tiers_agree(e: &Engine, id: TargetId, name: &str, p: &Program, cases: &[Vec<i32>]) {
    let t1 = e
        .compile(id, p)
        .unwrap_or_else(|er| panic!("{name}/{id} tier-1: {er}"));
    let t2 = e
        .compile_tier2(id, p)
        .unwrap_or_else(|er| panic!("{name}/{id} tier-2: {er}"));
    assert!(
        t2.insns() <= t1.insns(),
        "{name}/{id}: tier-2 grew the code ({} -> {} insns)",
        t1.insns(),
        t2.insns()
    );
    for args in cases {
        let want = p
            .interpret(args, 10_000_000)
            .unwrap_or_else(|er| panic!("{name} interpret({args:?}): {er}"));
        assert_eq!(
            t1.call(args).unwrap(),
            want,
            "{name}/{id} tier-1 on {args:?}"
        );
        assert_eq!(
            t2.call(args).unwrap(),
            want,
            "{name}/{id} tier-2 on {args:?}"
        );
    }
}

#[test]
fn tier2_matches_tier1_and_interpreter_on_all_backends() {
    let e = engine(256);
    for (name, p, cases) in fixed_corpus() {
        for id in TargetId::ALL {
            assert_tiers_agree(&e, id, name, &p, &cases);
        }
    }
}

#[test]
fn tier2_matches_on_random_programs_all_backends() {
    let e = engine(1024);
    let mut rng = XorShift::new(0x7b15_2000);
    let inputs: Vec<Vec<i32>> = vec![
        vec![0, 0],
        vec![1, -1],
        vec![12345, -678],
        vec![i32::MAX, i32::MIN],
    ];
    for case in 0..24 {
        let p = random_program(&mut rng);
        for id in TargetId::ALL {
            assert_tiers_agree(&e, id, &format!("rand{case}"), &p, &inputs);
        }
    }
}

#[test]
fn simulated_div_by_zero_behaves_identically_in_both_tiers() {
    // Div with an unknown, actually-zero divisor: the optimizer may not
    // delete or fold the instruction, so whatever each simulated ISA
    // does with it (typed trap or an architecturally-unpredictable
    // result) must be byte-identical across tiers.
    let e = engine(16);
    let mut p = Program::new(2).unwrap();
    p.bin(BinOp::Div, 2, 0, 1);
    p.ret(2);
    for id in [TargetId::Mips, TargetId::Sparc, TargetId::Alpha] {
        let t1 = e.compile(id, &p).unwrap();
        let t2 = e.compile_tier2(id, &p).unwrap();
        assert_eq!(t1.call(&[10, 2]).unwrap(), 5, "{id}");
        assert_eq!(t2.call(&[10, 2]).unwrap(), 5, "{id}");
        match (t1.call(&[10, 0]), t2.call(&[10, 0])) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "{id} div-zero results diverge"),
            (Err(_), Err(_)) => {}
            (a, b) => panic!("{id} tiers diverge on div-zero: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn hot_lambda_upgrades_in_place_and_stays_correct() {
    let e = engine(64);
    assert!(e.enable_tiering(TierConfig {
        hot_threshold: 8,
        ..TierConfig::default()
    }));
    assert_eq!(
        e.tiering(),
        Some(TierConfig {
            hot_threshold: 8,
            ..TierConfig::default()
        })
    );
    let p = sum_squares_loop();
    let f = e.compile_cached(TargetId::X64, &p).unwrap();
    let tiered = f.as_tiered().expect("tiering wraps cached lambdas");
    assert!(!tiered.upgraded());
    let want = p.interpret(&[10], 1_000_000).unwrap();
    // Drive past the threshold; every call must stay correct whether it
    // runs tier-1, mid-upgrade, or tier-2 code.
    for _ in 0..16 {
        assert_eq!(f.call(&[10]).unwrap(), want);
    }
    assert!(
        e.service().wait_idle(Duration::from_secs(30)),
        "tier-2 build did not finish in bound"
    );
    // The next call latches the published tier-2 code.
    assert_eq!(f.call(&[10]).unwrap(), want);
    assert!(tiered.upgraded(), "hot lambda failed to upgrade");
    let t2 = tiered.optimized().expect("optimized code");
    assert!(
        t2.insns() <= tiered.baseline().insns(),
        "upgrade grew the code"
    );
    assert_eq!(f.call(&[7]).unwrap(), p.interpret(&[7], 1_000_000).unwrap());
}

#[test]
fn warm_hits_share_one_heat_counter() {
    let e = engine(64);
    assert!(e.enable_tiering(TierConfig {
        hot_threshold: 1_000_000,
        ..TierConfig::default()
    }));
    let p = abs_times_3();
    let f1 = e.compile_cached(TargetId::Mips, &p).unwrap();
    let f2 = e.compile_cached(TargetId::Mips, &p).unwrap();
    assert!(Arc::ptr_eq(&f1, &f2), "cache must store the wrapper");
    f1.call(&[1, 2]).unwrap();
    f2.call(&[3, 4]).unwrap();
    assert_eq!(f1.as_tiered().unwrap().calls(), 2);
}

#[test]
fn concurrent_callers_never_observe_a_torn_swap() {
    let e = Arc::new({
        let e = engine(64);
        assert!(e.enable_tiering(TierConfig {
            hot_threshold: 4,
            ..TierConfig::default()
        }));
        e
    });
    let p = classify_ladder();
    let f = e.compile_cached(TargetId::X64, &p).unwrap();
    let cases: Vec<(i32, i64)> = [5, 50, 500, 5000, -7]
        .into_iter()
        .map(|x| (x, p.interpret(&[x], 1_000).unwrap()))
        .collect();
    let threads = 4;
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let f = Arc::clone(&f);
            let barrier = Arc::clone(&barrier);
            let cases = cases.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for round in 0..200 {
                    for &(x, want) in &cases {
                        assert_eq!(f.call(&[x]).unwrap(), want, "round {round}, x={x}");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("caller thread panicked");
    }
    assert!(e.service().wait_idle(Duration::from_secs(30)));
    // After the dust settles the lambda still answers correctly.
    for &(x, want) in &cases {
        assert_eq!(f.call(&[x]).unwrap(), want);
    }
}

#[test]
fn tiering_off_means_no_wrapper() {
    let e = engine(16);
    let f = e.compile_cached(TargetId::X64, &abs_times_3()).unwrap();
    assert!(f.as_tiered().is_none());
}

#[test]
fn async_compiles_tier_up_too() {
    let e = engine(64);
    assert!(e.enable_tiering(TierConfig {
        hot_threshold: 4,
        ..TierConfig::default()
    }));
    let p = const_heavy();
    let want = p.interpret(&[9], 1_000).unwrap();
    let h = e.compile_async(TargetId::Mips, &p).unwrap();
    // Degraded or native, the handle answers correctly right away.
    assert_eq!(h.call(&[9]).unwrap(), want);
    assert!(e.service().wait_idle(Duration::from_secs(30)));
    // The published build is the tiered wrapper; heat it up.
    let f = e.compile_cached(TargetId::Mips, &p).unwrap();
    let tiered = f.as_tiered().expect("async-published lambda is wrapped");
    for _ in 0..8 {
        assert_eq!(f.call(&[9]).unwrap(), want);
    }
    assert!(e.service().wait_idle(Duration::from_secs(30)));
    f.call(&[9]).unwrap();
    assert!(tiered.upgraded());
    assert_eq!(f.call(&[9]).unwrap(), want);
}

/// Cycle-weighted heat (satellite of the persistent-cache PR): with
/// `cycle_weighted` on, heat advances by the *observed execution
/// cycles* of each call (the simulators report theirs through
/// `vcode::obs::note_exec_cycles`), so a long-running callee tiers up
/// after a handful of calls while a cheap one called far more often
/// stays cold — the paper's "optimize where the time goes" policy,
/// not "optimize whatever is called".
#[test]
fn expensive_cold_callee_tiers_up_before_cheap_hot_one() {
    let e = engine(64);
    assert!(e.enable_tiering(TierConfig {
        hot_threshold: 1_000,
        cycle_weighted: true,
    }));
    let cheap_p = abs_times_3();
    let exp_p = sum_squares_loop();
    let cheap = e.compile_cached(TargetId::Mips, &cheap_p).unwrap();
    let exp = e.compile_cached(TargetId::Mips, &exp_p).unwrap();
    let cheap_t = cheap.as_tiered().expect("wrapped");
    let exp_t = exp.as_tiered().expect("wrapped");

    // The cheap callee is *hot* by call count: 30 calls, a few cycles
    // each — far below the 1000-cycle threshold.
    let cheap_want = cheap_p.interpret(&[5, 1], 1_000).unwrap();
    for _ in 0..30 {
        assert_eq!(cheap.call(&[5, 1]).unwrap(), cheap_want);
    }
    // The expensive callee is *cold* by call count: 3 calls, but each
    // burns hundreds of simulated cycles in the loop.
    let exp_want = exp_p.interpret(&[300], 10_000_000).unwrap();
    for _ in 0..3 {
        assert_eq!(exp.call(&[300]).unwrap(), exp_want);
    }

    assert!(
        cheap_t.calls() > exp_t.calls(),
        "setup: the cheap callee must be called more often"
    );
    assert!(
        exp_t.heat() > cheap_t.heat(),
        "cycle weighting must rank the expensive callee hotter ({} vs {})",
        exp_t.heat(),
        cheap_t.heat()
    );
    assert!(
        exp_t.heat() >= 1_000,
        "the expensive callee must cross the threshold"
    );
    assert!(
        cheap_t.heat() < 1_000,
        "the cheap callee must stay below the threshold"
    );

    assert!(e.service().wait_idle(Duration::from_secs(30)));
    // The next call latches the published tier-2 code.
    assert_eq!(exp.call(&[300]).unwrap(), exp_want);
    assert!(exp_t.upgraded(), "expensive callee failed to tier up");
    assert!(
        !cheap_t.upgraded(),
        "cheap callee must not tier up on call count alone"
    );
    assert_eq!(
        exp.call(&[7]).unwrap(),
        exp_p.interpret(&[7], 1_000_000).unwrap()
    );
}
