//! Workspace integration: the retargetability property. Randomly
//! generated straight-line VCODE programs must compute the same result
//! on all four targets — x86-64 executed natively, MIPS/SPARC/Alpha on
//! their instruction-set simulators.

use vcode::regress::XorShift;
use vcode::target::Leaf;
use vcode::{Assembler, Reg, RegClass, Target};
use vcode_x64::ExecMem;

/// One step of a random straight-line program over three int registers.
#[derive(Debug, Clone)]
enum Step {
    Add(u8, u8, u8),
    Sub(u8, u8, u8),
    Mul(u8, u8, u8),
    AddI(u8, u8, i32),
    Xor(u8, u8, u8),
    And(u8, u8, u8),
    Or(u8, u8, u8),
    ShlI(u8, u8, u8),
    ShrI(u8, u8, u8),
    Neg(u8, u8),
    Com(u8, u8),
    Set(u8, i32),
    // A compare-and-skip: if r[a] < r[b] skip the next setting of r[c].
    CmovLt(u8, u8, u8),
}

fn random_step(rng: &mut XorShift) -> Step {
    let r = |rng: &mut XorShift| rng.below(3) as u8;
    match rng.below(13) {
        0 => Step::Add(r(rng), r(rng), r(rng)),
        1 => Step::Sub(r(rng), r(rng), r(rng)),
        2 => Step::Mul(r(rng), r(rng), r(rng)),
        3 => Step::AddI(r(rng), r(rng), rng.range(0, 2000) as i32 - 1000),
        4 => Step::Xor(r(rng), r(rng), r(rng)),
        5 => Step::And(r(rng), r(rng), r(rng)),
        6 => Step::Or(r(rng), r(rng), r(rng)),
        7 => Step::ShlI(r(rng), r(rng), rng.below(31) as u8),
        8 => Step::ShrI(r(rng), r(rng), rng.below(31) as u8),
        9 => Step::Neg(r(rng), r(rng)),
        10 => Step::Com(r(rng), r(rng)),
        11 => Step::Set(r(rng), rng.next_u64() as i32),
        _ => Step::CmovLt(r(rng), r(rng), r(rng)),
    }
}

/// Emits the program for any target.
fn emit<T: Target>(a: &mut Assembler<'_, T>, steps: &[Step]) {
    let (x, y) = (a.arg(0), a.arg(1));
    let r: Vec<Reg> = (0..3)
        .map(|_| a.getreg(RegClass::Temp).expect("reg"))
        .collect();
    a.movi(r[0], x);
    a.movi(r[1], y);
    a.xori(r[2], x, y);
    for s in steps {
        match *s {
            Step::Add(d, p, q) => a.addi(r[d as usize], r[p as usize], r[q as usize]),
            Step::Sub(d, p, q) => a.subi(r[d as usize], r[p as usize], r[q as usize]),
            Step::Mul(d, p, q) => a.muli(r[d as usize], r[p as usize], r[q as usize]),
            Step::AddI(d, p, k) => a.addii(r[d as usize], r[p as usize], i64::from(k)),
            Step::Xor(d, p, q) => a.xori(r[d as usize], r[p as usize], r[q as usize]),
            Step::And(d, p, q) => a.andi(r[d as usize], r[p as usize], r[q as usize]),
            Step::Or(d, p, q) => a.ori(r[d as usize], r[p as usize], r[q as usize]),
            Step::ShlI(d, p, k) => a.lshii(r[d as usize], r[p as usize], i64::from(k)),
            Step::ShrI(d, p, k) => a.rshii(r[d as usize], r[p as usize], i64::from(k)),
            Step::Neg(d, p) => a.negi(r[d as usize], r[p as usize]),
            Step::Com(d, p) => a.comi(r[d as usize], r[p as usize]),
            Step::Set(d, k) => a.seti(r[d as usize], k),
            Step::CmovLt(p, q, d) => {
                let skip = a.genlabel();
                a.blti(r[p as usize], r[q as usize], skip);
                a.seti(r[d as usize], 0x5a5a);
                a.label(skip);
            }
        }
    }
    // Mix all three into the result.
    a.xori(r[0], r[0], r[1]);
    a.addi(r[0], r[0], r[2]);
    a.reti(r[0]);
}

fn run_all(steps: &[Step], x: i32, y: i32) -> (i32, i32, i32, i32) {
    // Native.
    let mut mem = ExecMem::new(64 * 1024).expect("mmap");
    let mut a =
        Assembler::<vcode_x64::X64>::lambda(mem.as_mut_slice(), "%i%i", Leaf::Yes).expect("x64");
    emit(&mut a, steps);
    a.end().expect("end");
    let code = mem.finalize().expect("mprotect");
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let f: extern "C" fn(i32, i32) -> i32 = unsafe { code.as_fn() };
    let native = f(x, y);
    // Simulated.
    let gen = |steps: &[Step]| -> (Vec<u8>, Vec<u8>, Vec<u8>) {
        let mut m1 = vec![0u8; 64 * 1024];
        let mut a = Assembler::<vcode_mips::Mips>::lambda(&mut m1, "%i%i", Leaf::Yes).unwrap();
        emit(&mut a, steps);
        let l1 = a.end().unwrap().len;
        m1.truncate(l1);
        let mut m2 = vec![0u8; 64 * 1024];
        let mut a = Assembler::<vcode_sparc::Sparc>::lambda(&mut m2, "%i%i", Leaf::Yes).unwrap();
        emit(&mut a, steps);
        let l2 = a.end().unwrap().len;
        m2.truncate(l2);
        let mut m3 = vec![0u8; 64 * 1024];
        let mut a = Assembler::<vcode_alpha::Alpha>::lambda(&mut m3, "%i%i", Leaf::Yes).unwrap();
        emit(&mut a, steps);
        let l3 = a.end().unwrap().len;
        m3.truncate(l3);
        (m1, m2, m3)
    };
    let (mc, sc, ac) = gen(steps);
    let mut mips = vcode_sim::mips::Machine::new(1 << 21);
    let e = mips.load_code(&mc).unwrap();
    let mv = mips
        .call(e, &[x as u32, y as u32], 1_000_000)
        .expect("mips") as i32;
    let mut sparc = vcode_sim::sparc::Machine::new(1 << 21);
    let e = sparc.load_code(&sc).unwrap();
    let sv = sparc
        .call(e, &[x as u32, y as u32], 1_000_000)
        .expect("sparc") as i32;
    let mut alpha = vcode_sim::alpha::Machine::new(1 << 21);
    let e = alpha.load_code(&ac).unwrap();
    let av = alpha
        .call(e, &[i64::from(x) as u64, i64::from(y) as u64], 1_000_000)
        .expect("alpha") as i32;
    (native, mv, sv, av)
}

#[test]
fn all_targets_agree() {
    let mut rng = XorShift::new(0xc805);
    for case in 0..48 {
        let n = rng.range(1, 24) as usize;
        let steps: Vec<Step> = (0..n).map(|_| random_step(&mut rng)).collect();
        let x = rng.next_u64() as i32;
        let y = rng.next_u64() as i32;
        let (native, mips, sparc, alpha) = run_all(&steps, x, y);
        assert_eq!(native, mips, "case {case}: x64 vs mips on {steps:?}");
        assert_eq!(native, sparc, "case {case}: x64 vs sparc on {steps:?}");
        assert_eq!(native, alpha, "case {case}: x64 vs alpha on {steps:?}");
    }
}

#[test]
fn fixed_seed_smoke() {
    let steps = vec![
        Step::Add(0, 0, 1),
        Step::Mul(2, 0, 2),
        Step::CmovLt(0, 1, 2),
        Step::ShrI(1, 2, 7),
        Step::Com(0, 1),
    ];
    let (n, m, s, a) = run_all(&steps, 1234, -99);
    assert_eq!(n, m);
    assert_eq!(n, s);
    assert_eq!(n, a);
}
