#!/usr/bin/env bash
# The tier-1 gate. Everything here must pass offline — the workspace has
# no external dependencies (see DESIGN.md "Dependencies"), so a network
# failure can never turn into a build failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
cargo fmt --all --check

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== build (release) =="
cargo build --release --offline

echo "== tests =="
cargo test -q --workspace --offline

echo "== unsafe audit (SAFETY-comment gate) =="
# Every `unsafe` block/fn/impl in the workspace must carry a written
# justification; see scripts/unsafe_audit.sh.
./scripts/unsafe_audit.sh

echo "== model checker: exhaustive concurrency sweeps =="
# The bounded RCU / cache / tier-latch / quarantine model programs,
# explored to completion under the vsync deterministic scheduler (the
# seeded random smoke already ran inside the workspace tests above;
# this is the full DFS sweep). Any violation prints a replayable
# schedule.
cargo test -q -p mcheck --offline --test models -- --ignored

echo "== miri lane (advisory) =="
# Pure-IR paths under Miri; self-skips when the nightly miri component
# is unavailable (see scripts/miri.sh).
./scripts/miri.sh

echo "== tsan lane (advisory) =="
# dpf/cache/service suites under ThreadSanitizer; self-skips when
# nightly rust-src is unavailable (see scripts/tsan.sh).
./scripts/tsan.sh

echo "== fault-injection smoke (hardened execution gate) =="
cargo test -q -p harden --offline --test faults

echo "== verifier gate (streaming checks + differential decoder) =="
# The verifier integration suite: regress-style corpus must come back
# clean on all four backends, every bad-client case must be caught with
# its exact rule, and the machine-code cross-check must pass against
# the simulator decoders.
cargo test -q -p vcode --offline --test verify

echo "== verifier-off overhead smoke (zero-cost-when-disabled gate) =="
# The verifier-off emission loop is the production fast path; its
# ns/insn is held to the same 20% fence as codegen_cost. The
# verifier-on number is recorded but not gated.
VCODE_SMOKE=1 VCODE_BASELINE="$PWD/BENCH_codegen.json" \
    cargo bench -q --offline -p vcode-bench --bench verify_overhead

echo "== codegen-cost smoke (perf regression gate) =="
# Smoke-mode rerun against the committed snapshot: any ns/insn metric
# more than 20% over BENCH_codegen.json fails the build (the bench
# exits non-zero). Regenerate the snapshot with scripts/bench_snapshot.sh
# when a deliberate change moves the numbers.
VCODE_SMOKE=1 VCODE_BASELINE="$PWD/BENCH_codegen.json" \
    cargo bench -q --offline -p vcode-bench --bench codegen_cost

echo "== cache-amortize smoke (lambda-cache gate) =="
# Warm cache hits must stay >=5x cheaper than a cold compile (a hit
# that re-runs emission fails the bench's hard gate), and the cold/warm
# ns metrics are held to the same 20% fence as codegen_cost.
VCODE_SMOKE=1 VCODE_BASELINE="$PWD/BENCH_codegen.json" \
    cargo bench -q --offline -p vcode-bench --bench cache_amortize

echo "== compile-service smoke (graceful-degradation gate) =="
# The async compile service: warm submits, the degraded (interpreter)
# call path and native calls are held to the 20% fence; the bench itself
# hard-fails when a flood past the queue depth does not shed, when an
# accepted build is left unresolved, or when the degradation ladder is
# inverted (interpreter not slower than native).
VCODE_SMOKE=1 VCODE_BASELINE="$PWD/BENCH_codegen.json" \
    cargo bench -q --offline -p vcode-bench --bench compile_service

echo "== par-codegen scaling gate (committed snapshot) =="
# The committed snapshot must show monotone non-decreasing aggregate
# codegen throughput across the whole 1..8t sweep — the multi-core
# scaling cliff (rates *falling* as threads were added, from free-list
# shard contention in the executable-memory pool) stays fixed. The
# bench clamps worker counts to the cores present (oversubscription
# measures the scheduler, not the generator), so any two sweep points
# clamped to the *same* worker count are identical configurations
# measuring one workload; for those pairs the gate allows a 2% noise
# floor instead of demanding growth that cannot exist. Unclamped pairs
# stay strictly monotone. Reads the committed BENCH_codegen.json so the
# gate is deterministic in CI; regenerate with scripts/bench_snapshot.sh
# on a quiet machine when a deliberate change moves the numbers.
par_metric() {
    sed -n "s/.*\"par_codegen\\/$1\": *\\([0-9.]*\\).*/\\1/p" \
        "$PWD/BENCH_codegen.json"
}
r1="$(par_metric minsn_per_s_1t)"; r2="$(par_metric minsn_per_s_2t)"
r4="$(par_metric minsn_per_s_4t)"; r8="$(par_metric minsn_per_s_8t)"
cores="$(par_metric cores)"
if [ -z "$r1" ] || [ -z "$r2" ] || [ -z "$r4" ] || [ -z "$r8" ] || [ -z "$cores" ]; then
    echo "par_codegen gate: snapshot missing 1t/2t/4t/8t/cores metrics" >&2
    exit 1
fi
awk -v r1="$r1" -v r2="$r2" -v r4="$r4" -v r8="$r8" -v c="$cores" 'BEGIN {
    req[1] = 1; req[2] = 2; req[3] = 4; req[4] = 8
    v[1] = r1 + 0; v[2] = r2 + 0; v[3] = r4 + 0; v[4] = r8 + 0
    for (i = 2; i <= 4; i++) {
        lo = req[i - 1] < c ? req[i - 1] : c
        hi = req[i] < c ? req[i] : c
        floor = (hi == lo) ? v[i - 1] * 0.98 : v[i - 1]
        if (v[i] < floor) {
            printf "par_codegen gate: scaling not monotone at %dt->%dt " \
                "(%.2f -> %.2f Minsn/s, cores=%d)\n", \
                req[i - 1], req[i], v[i - 1], v[i], c
            exit 1
        }
    }
    printf "par_codegen scaling ok (cores=%d): 1t=%.2f 2t=%.2f 4t=%.2f 8t=%.2f Minsn/s\n", \
        c, v[1], v[2], v[3], v[4]
}'

echo "== tier-2 recompilation gate (optimizing-tier quality + differential) =="
# The tier-2 bench hard-fails when any DPF/ASH hot-loop kernel
# disagrees across interpreter / tier-1 / tier-2, or when the aggregate
# simulated-cycle reduction drops below the 10% floor (cycle counts are
# deterministic, so the floor is exact). The tier-2 compile ns/insn is
# additionally held to the snapshot's 20% fence.
VCODE_SMOKE=1 VCODE_BASELINE="$PWD/BENCH_codegen.json" \
    cargo bench -q --offline -p vcode-bench --bench tier2

echo "== dpf-service smoke (live-update-under-traffic gate) =="
# The live classifier service: the bench hard-fails when sustained
# classification throughput under ~1k filter updates/s falls below 80%
# of the static-set baseline (measured in the same process, so the gate
# is machine-relative and holds in smoke mode), when an update storm
# leaves a generation unpublished, or when a static run is served by
# the degraded interpreter path. The per-packet single/batch ns metrics
# are held to the snapshot's 20% fence.
VCODE_SMOKE=1 VCODE_BASELINE="$PWD/BENCH_codegen.json" \
    cargo bench -q --offline -p vcode-bench --bench dpf_service

echo "== persist smoke (persistent-cache cold/warm gate) =="
# The persistent (L2) code cache: the bench hard-fails when a warm
# start (artifacts on disk, L1 cleared) is not at least 2x faster to
# first classified packet than a cold start, when store-through writes
# fewer artifacts than sets compiled, or when a warm pass is served by
# fresh compiles instead of verified disk loads.
VCODE_SMOKE=1 VCODE_BASELINE="$PWD/BENCH_codegen.json" \
    cargo bench -q --offline -p vcode-bench --bench persist

echo "== persist warm-start gate (committed snapshot) =="
# The committed snapshot must record a >=2x warm-start speedup — the
# tentpole acceptance criterion, checked against the artifact the repo
# ships, not just the machine CI happens to run on.
persist_metric() {
    sed -n "s/.*\"persist\\/$1\": *\\([0-9.]*\\).*/\\1/p" \
        "$PWD/BENCH_codegen.json"
}
warm_speedup="$(persist_metric warm_speedup)"
if [ -z "$warm_speedup" ]; then
    echo "persist gate: snapshot missing persist/warm_speedup" >&2
    exit 1
fi
awk -v s="$warm_speedup" 'BEGIN {
    if (s + 0 < 2.0) {
        printf "persist gate: committed warm-start speedup %.2fx below the 2x floor\n", s
        exit 1
    }
    printf "persist warm-start ok: %.2fx\n", s
}'

echo "== exec-stats smoke (observability gate) =="
# Every backend — three simulators plus native x86-64 — must expose
# nonzero, schema-stable ExecStats counters; the bench exits non-zero
# when any backend's counters go dark.
cargo bench -q --offline -p vcode-bench --bench exec_stats

echo "CI green."
