#!/usr/bin/env bash
# The tier-1 gate. Everything here must pass offline — the workspace has
# no external dependencies (see DESIGN.md "Dependencies"), so a network
# failure can never turn into a build failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
cargo fmt --all --check

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== build (release) =="
cargo build --release --offline

echo "== tests =="
cargo test -q --workspace --offline

echo "== fault-injection smoke (hardened execution gate) =="
cargo test -q -p harden --offline --test faults

echo "== verifier gate (streaming checks + differential decoder) =="
# The verifier integration suite: regress-style corpus must come back
# clean on all four backends, every bad-client case must be caught with
# its exact rule, and the machine-code cross-check must pass against
# the simulator decoders.
cargo test -q -p vcode --offline --test verify

echo "== verifier-off overhead smoke (zero-cost-when-disabled gate) =="
# The verifier-off emission loop is the production fast path; its
# ns/insn is held to the same 20% fence as codegen_cost. The
# verifier-on number is recorded but not gated.
VCODE_SMOKE=1 VCODE_BASELINE="$PWD/BENCH_codegen.json" \
    cargo bench -q --offline -p vcode-bench --bench verify_overhead

echo "== codegen-cost smoke (perf regression gate) =="
# Smoke-mode rerun against the committed snapshot: any ns/insn metric
# more than 20% over BENCH_codegen.json fails the build (the bench
# exits non-zero). Regenerate the snapshot with scripts/bench_snapshot.sh
# when a deliberate change moves the numbers.
VCODE_SMOKE=1 VCODE_BASELINE="$PWD/BENCH_codegen.json" \
    cargo bench -q --offline -p vcode-bench --bench codegen_cost

echo "== cache-amortize smoke (lambda-cache gate) =="
# Warm cache hits must stay >=50x cheaper than a cold compile (a hit
# that re-runs emission fails the bench's hard gate), and the cold/warm
# ns metrics are held to the same 20% fence as codegen_cost.
VCODE_SMOKE=1 VCODE_BASELINE="$PWD/BENCH_codegen.json" \
    cargo bench -q --offline -p vcode-bench --bench cache_amortize

echo "== exec-stats smoke (observability gate) =="
# Every backend — three simulators plus native x86-64 — must expose
# nonzero, schema-stable ExecStats counters; the bench exits non-zero
# when any backend's counters go dark.
cargo bench -q --offline -p vcode-bench --bench exec_stats

echo "CI green."
