#!/usr/bin/env bash
# The tier-1 gate. Everything here must pass offline — the workspace has
# no external dependencies (see DESIGN.md "Dependencies"), so a network
# failure can never turn into a build failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
cargo fmt --all --check

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== build (release) =="
cargo build --release --offline

echo "== tests =="
cargo test -q --workspace --offline

echo "== fault-injection smoke (hardened execution gate) =="
cargo test -q -p harden --offline --test faults

echo "== verifier gate (streaming checks + differential decoder) =="
# The verifier integration suite: regress-style corpus must come back
# clean on all four backends, every bad-client case must be caught with
# its exact rule, and the machine-code cross-check must pass against
# the simulator decoders.
cargo test -q -p vcode --offline --test verify

echo "== verifier-off overhead smoke (zero-cost-when-disabled gate) =="
# The verifier-off emission loop is the production fast path; its
# ns/insn is held to the same 20% fence as codegen_cost. The
# verifier-on number is recorded but not gated.
VCODE_SMOKE=1 VCODE_BASELINE="$PWD/BENCH_codegen.json" \
    cargo bench -q --offline -p vcode-bench --bench verify_overhead

echo "== codegen-cost smoke (perf regression gate) =="
# Smoke-mode rerun against the committed snapshot: any ns/insn metric
# more than 20% over BENCH_codegen.json fails the build (the bench
# exits non-zero). Regenerate the snapshot with scripts/bench_snapshot.sh
# when a deliberate change moves the numbers.
VCODE_SMOKE=1 VCODE_BASELINE="$PWD/BENCH_codegen.json" \
    cargo bench -q --offline -p vcode-bench --bench codegen_cost

echo "== cache-amortize smoke (lambda-cache gate) =="
# Warm cache hits must stay >=5x cheaper than a cold compile (a hit
# that re-runs emission fails the bench's hard gate), and the cold/warm
# ns metrics are held to the same 20% fence as codegen_cost.
VCODE_SMOKE=1 VCODE_BASELINE="$PWD/BENCH_codegen.json" \
    cargo bench -q --offline -p vcode-bench --bench cache_amortize

echo "== compile-service smoke (graceful-degradation gate) =="
# The async compile service: warm submits, the degraded (interpreter)
# call path and native calls are held to the 20% fence; the bench itself
# hard-fails when a flood past the queue depth does not shed, when an
# accepted build is left unresolved, or when the degradation ladder is
# inverted (interpreter not slower than native).
VCODE_SMOKE=1 VCODE_BASELINE="$PWD/BENCH_codegen.json" \
    cargo bench -q --offline -p vcode-bench --bench compile_service

echo "== par-codegen scaling gate (committed snapshot) =="
# The committed snapshot must show monotone non-decreasing aggregate
# codegen throughput from 1 to 4 threads — the multi-core scaling cliff
# (rates *falling* as threads were added, from free-list shard
# contention in the executable-memory pool) stays fixed. Reads the
# committed BENCH_codegen.json so the gate is deterministic in CI;
# regenerate with scripts/bench_snapshot.sh on a quiet machine when a
# deliberate change moves the numbers.
par_rate() {
    sed -n "s/.*\"par_codegen\\/minsn_per_s_$1t\": *\\([0-9.]*\\).*/\\1/p" \
        "$PWD/BENCH_codegen.json"
}
r1="$(par_rate 1)"; r2="$(par_rate 2)"; r4="$(par_rate 4)"
if [ -z "$r1" ] || [ -z "$r2" ] || [ -z "$r4" ]; then
    echo "par_codegen gate: snapshot missing 1t/2t/4t metrics" >&2
    exit 1
fi
awk -v r1="$r1" -v r2="$r2" -v r4="$r4" 'BEGIN {
    if (r2 + 0 < r1 + 0 || r4 + 0 < r2 + 0) {
        printf "par_codegen gate: scaling not monotone 1..4t " \
            "(1t=%.2f 2t=%.2f 4t=%.2f Minsn/s)\n", r1, r2, r4
        exit 1
    }
    printf "par_codegen scaling monotone: 1t=%.2f <= 2t=%.2f <= 4t=%.2f Minsn/s\n", \
        r1, r2, r4
}'

echo "== exec-stats smoke (observability gate) =="
# Every backend — three simulators plus native x86-64 — must expose
# nonzero, schema-stable ExecStats counters; the bench exits non-zero
# when any backend's counters go dark.
cargo bench -q --offline -p vcode-bench --bench exec_stats

echo "CI green."
