#!/usr/bin/env bash
# The tier-1 gate. Everything here must pass offline — the workspace has
# no external dependencies (see DESIGN.md "Dependencies"), so a network
# failure can never turn into a build failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
cargo fmt --all --check

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== build (release) =="
cargo build --release --offline

echo "== tests =="
cargo test -q --workspace --offline

echo "== fault-injection smoke (hardened execution gate) =="
cargo test -q -p harden --offline --test faults

echo "CI green."
