#!/usr/bin/env bash
# Miri lane (advisory): runs the pure-IR paths — interpreter, tier-2
# passes, the streaming verifier and the lambda-cache logic — under
# Miri's aliasing/UB checker on the nightly toolchain.
#
# Scope is deliberately `-p vcode --lib`: the core crate contains no
# mmap/signal code (executable memory and guard handling live in
# vcode-x64, which is not linked into the core lib tests), so the lane
# runs clean without cfg surgery. The model-checker scheduler tests are
# excluded by filter: they spawn coordinator handshakes per schedule
# point and would dominate the Miri run for no aliasing coverage.
#
# Exits 0 with a notice when the toolchain lacks the miri component
# (e.g. offline dev boxes); CI images with the component installed get
# the real run.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! cargo +nightly miri --version >/dev/null 2>&1; then
    echo "miri: cargo-miri not installed for the nightly toolchain; skipping (advisory lane)"
    echo "miri: install with: rustup component add --toolchain nightly miri"
    exit 0
fi

# Deterministic, isolated, and strict on leaks in the covered paths.
export MIRIFLAGS="${MIRIFLAGS:--Zmiri-strict-provenance}"

echo "== miri: pure-IR suites (interpret / tier2 / verify / cache / rcu passthrough) =="
cargo +nightly miri test --offline -p vcode --lib -- \
    op:: tier2:: verify:: cache:: rcu:: regalloc:: ty::
