#!/usr/bin/env bash
# Regenerates BENCH_codegen.json: one full (non-smoke) run of the
# code-generation benchmarks, with every metric merged into a single
# snapshot at the repo root. Commit the result; CI compares smoke-mode
# reruns of codegen_cost against it and fails on >20% ns/insn
# regressions (see scripts/ci.sh and `vcode_bench::snapshot`).
#
# Take snapshots on a quiet machine: the harness keeps the best of many
# short windows to resist scheduler noise, but a loaded host still
# inflates the floor.
set -euo pipefail
cd "$(dirname "$0")/.."

# Absolute path: cargo runs bench binaries from the package directory,
# not the workspace root.
#
# `--mcheck-only` refreshes just the model-checker interleaving counts
# in an existing snapshot (they are exact, not timing-dependent, so
# they never need a quiet machine).
mcheck_only=0
if [ "${1:-}" = "--mcheck-only" ]; then
    mcheck_only=1
    shift
fi
out="$(pwd)/${1:-BENCH_codegen.json}"

# Merges the exhaustive explorer's per-program interleaving counts
# (exact, deterministic) into the snapshot as mcheck/* metrics.
merge_mcheck_counts() {
    echo "== mcheck interleaving counts =="
    local sweep
    sweep=$(cargo test -q --offline -p mcheck --test models -- --ignored --nocapture \
        | sed -nE 's|^\.*([a-z0-9_]+): ([0-9]+) interleavings explored.*|  "mcheck/\1_interleavings": \2.00,|p')
    if [ -z "$sweep" ]; then
        echo "mcheck sweep produced no counts" >&2
        exit 1
    fi
    {
        sed -e '1d;$d' "$out" | grep -v '"mcheck/' | sed 's/,*[ \t]*$/,/'
        printf '%s\n' "$sweep"
    } | sort > "$out.entries"
    {
        echo '{'
        sed '$ s/,$//' "$out.entries"
        echo '}'
    } > "$out.tmp"
    rm -f "$out.entries"
    mv "$out.tmp" "$out"
}

if [ "$mcheck_only" = 1 ]; then
    [ -f "$out" ] || { echo "no snapshot at $out to merge into" >&2; exit 1; }
    merge_mcheck_counts
    echo "mcheck counts merged into $out"
    exit 0
fi

rm -f "$out"
export VCODE_BENCH_JSON="$out"

echo "== codegen_cost =="
cargo bench -q --offline -p vcode-bench --bench codegen_cost

echo "== ablation =="
cargo bench -q --offline -p vcode-bench --bench ablation

echo "== verify_overhead =="
cargo bench -q --offline -p vcode-bench --bench verify_overhead

echo "== par_codegen =="
cargo bench -q --offline -p vcode-bench --bench par_codegen

echo "== exec_stats =="
cargo bench -q --offline -p vcode-bench --bench exec_stats

echo "== cache_amortize =="
cargo bench -q --offline -p vcode-bench --bench cache_amortize

echo "== compile_service =="
cargo bench -q --offline -p vcode-bench --bench compile_service

echo "== tier2 =="
cargo bench -q --offline -p vcode-bench --bench tier2

echo "== dpf_service =="
cargo bench -q --offline -p vcode-bench --bench dpf_service

echo "== persist =="
cargo bench -q --offline -p vcode-bench --bench persist

merge_mcheck_counts

echo "Snapshot written to $out"
