#!/usr/bin/env bash
# Regenerates BENCH_codegen.json: one full (non-smoke) run of the
# code-generation benchmarks, with every metric merged into a single
# snapshot at the repo root. Commit the result; CI compares smoke-mode
# reruns of codegen_cost against it and fails on >20% ns/insn
# regressions (see scripts/ci.sh and `vcode_bench::snapshot`).
#
# Take snapshots on a quiet machine: the harness keeps the best of many
# short windows to resist scheduler noise, but a loaded host still
# inflates the floor.
set -euo pipefail
cd "$(dirname "$0")/.."

# Absolute path: cargo runs bench binaries from the package directory,
# not the workspace root.
out="$(pwd)/${1:-BENCH_codegen.json}"
rm -f "$out"
export VCODE_BENCH_JSON="$out"

echo "== codegen_cost =="
cargo bench -q --offline -p vcode-bench --bench codegen_cost

echo "== ablation =="
cargo bench -q --offline -p vcode-bench --bench ablation

echo "== verify_overhead =="
cargo bench -q --offline -p vcode-bench --bench verify_overhead

echo "== par_codegen =="
cargo bench -q --offline -p vcode-bench --bench par_codegen

echo "== exec_stats =="
cargo bench -q --offline -p vcode-bench --bench exec_stats

echo "== cache_amortize =="
cargo bench -q --offline -p vcode-bench --bench cache_amortize

echo "== compile_service =="
cargo bench -q --offline -p vcode-bench --bench compile_service

echo "== tier2 =="
cargo bench -q --offline -p vcode-bench --bench tier2

echo "== dpf_service =="
cargo bench -q --offline -p vcode-bench --bench dpf_service

echo "Snapshot written to $out"
