#!/usr/bin/env bash
# ThreadSanitizer lane: runs the concurrency-heavy suites — the dpf
# live-update service, the lambda cache, and the async compile service
# — with `-Zsanitizer=thread`. Complements the mcheck model checker:
# mcheck proves schedules exhaustively on small bounded programs, TSan
# watches the real full-size tests for data races the models abstract
# away.
#
# Needs the nightly toolchain with the rust-src component (the std that
# the tests link must itself be instrumented via -Zbuild-std, or TSan
# reports false positives inside std's own synchronization). Exits 0
# with a notice when the prerequisites are missing; CI images with the
# components installed get the real run.
set -euo pipefail
cd "$(dirname "$0")/.."

host="x86_64-unknown-linux-gnu"
if ! rustup toolchain list 2>/dev/null | grep -q '^nightly'; then
    echo "tsan: nightly toolchain not installed; skipping (advisory lane)"
    exit 0
fi
src="$(rustc +nightly --print sysroot)/lib/rustlib/src/rust/library"
if [ ! -d "$src" ]; then
    echo "tsan: rust-src not installed for nightly (needed for -Zbuild-std); skipping (advisory lane)"
    echo "tsan: install with: rustup component add --toolchain nightly rust-src"
    exit 0
fi

export RUSTFLAGS="-Zsanitizer=thread ${RUSTFLAGS:-}"
# TSan slows execution ~5-15x; give the suites a dedicated target dir
# so instrumented artifacts never mix with normal builds.
export CARGO_TARGET_DIR="${CARGO_TARGET_DIR:-target/tsan}"

echo "== tsan: dpf live-service suite =="
cargo +nightly test --offline -Zbuild-std --target "$host" -p dpf

echo "== tsan: cache + compile-service suites =="
cargo +nightly test --offline -Zbuild-std --target "$host" -p vcode --lib -- cache:: service::
cargo +nightly test --offline -Zbuild-std --target "$host" -p vcode-repro --test service
