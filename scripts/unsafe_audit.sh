#!/usr/bin/env bash
# Unsafe-audit lint: inventories every `unsafe` site in the workspace
# (blocks, fns, impls, trait impls) and fails when any lacks a written
# justification — a `// SAFETY:` comment on or just above the site, or
# a `# Safety` doc section for `unsafe fn` declarations. Combined with
# the workspace-level `unsafe_op_in_unsafe_fn = "deny"` lint this keeps
# every unsafe operation next to the argument for why it is sound.
#
# Usage: scripts/unsafe_audit.sh [-v]
#   -v  also print the full inventory (file:line for every site).
set -euo pipefail
cd "$(dirname "$0")/.."

verbose=0
[ "${1:-}" = "-v" ] && verbose=1

# --others --exclude-standard folds in not-yet-committed sources, so a
# new file's unsafe sites are audited before the first commit that
# ships them, not after.
files=$(git ls-files --cached --others --exclude-standard \
    'crates/*.rs' 'crates/**/*.rs' 'src/**/*.rs' 'tests/*.rs' 2>/dev/null | sort -u || true)
if [ -z "$files" ]; then
    echo "unsafe_audit: no Rust sources found" >&2
    exit 1
fi

total=0
bad=0
report=""
inventory=""

for f in $files; do
    # awk scans each file keeping a sliding window of the previous 12
    # lines; an `unsafe` keyword on a code line must see SAFETY:/#
    # Safety on the same line or inside the window. Comment lines and
    # string-only mentions are skipped (the keyword must be followed by
    # whitespace/brace and not sit inside a doc sentence).
    out=$(awk -v FILE="$f" '
    function trimmed(s) { sub(/^[ \t]+/, "", s); return s }
    {
        line = $0
        t = trimmed(line)
        win[NR % 12] = line
        # Code lines only: skip line comments and doc comments.
        if (t ~ /^\/\//) next
        # An unsafe site: the keyword at a token boundary, starting a
        # block, fn, impl or trait. (The word inside identifiers like
        # unsafe_op_in_unsafe_fn does not match.)
        if (line !~ /(^|[^A-Za-z0-9_])unsafe([ \t]*\{|[ \t]+fn|[ \t]+impl|[ \t]+trait|[ \t]+extern)/) next
        # Type positions are not unsafe operations: `as unsafe extern
        # "C" fn()` casts and `: unsafe fn()` annotations.
        if (line ~ /(as|:)[ \t]+unsafe[ \t]+(extern|fn)/) next
        # Skip mentions inside string literals: a quote earlier on the
        # line with no closing quote before the keyword.
        pre = line; sub(/unsafe.*$/, "", pre)
        n = gsub(/"/, "", pre)
        if (n % 2 == 1) next
        sites++
        ok = 0
        if (line ~ /SAFETY:/) ok = 1
        for (i = 1; i <= 12 && !ok; i++) {
            prev = win[(NR - i + 144) % 12]
            if (prev ~ /SAFETY:|# Safety/) ok = 1
        }
        printf "%s:%d:%s:%s\n", FILE, NR, (ok ? "ok" : "MISSING"), trimmed(line)
    }
    ' "$f")
    [ -z "$out" ] && continue
    n=$(printf '%s\n' "$out" | wc -l)
    total=$((total + n))
    miss=$(printf '%s\n' "$out" | grep ":MISSING:" || true)
    if [ -n "$miss" ]; then
        m=$(printf '%s\n' "$miss" | wc -l)
        bad=$((bad + m))
        report="$report$miss
"
    fi
    inventory="$inventory$out
"
done

if [ "$verbose" = 1 ]; then
    printf '%s' "$inventory"
fi
echo "unsafe_audit: $total unsafe sites inventoried, $bad unannotated"
if [ "$bad" -gt 0 ]; then
    echo "unsafe sites without a SAFETY justification:" >&2
    printf '%s' "$report" | sed 's/:MISSING:/: /' >&2
    echo "add a '// SAFETY: ...' comment (or a '# Safety' doc section for unsafe fns) next to each site" >&2
    exit 1
fi
